"""Critical-section histories (``CSHist`` in Algorithm 1).

For every (thread, lock) pair, the history lists that thread's acquire
events on that lock, each with its TRF timestamp and the timestamp of
its matching release (if any).  Algorithm 1 consumes these FIFO queues
front-to-back during the closure fix-point.  Consumed prefixes stay
consumed across successive closure computations of one abstract-pattern
check (sound by the monotonicity of Proposition 4.4), so each queue is
traversed at most once per check — the key to the linear total time of
Lemma 4.3.

Only the *per-thread last* acquire inside the closure matters: earlier
acquires of the same thread on the same lock release the lock before
the later acquire (locks are non-reentrant), so their releases are
thread-order predecessors of an event already in the closure and enter
it for free.

Closure-membership tests use the O(1) epoch form (acquire and release
timestamps are canonical snapshots; see :mod:`repro.vc.timestamps`);
the full release clock is kept only for the join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.trace.events import OP_ACQUIRE
from repro.trace.trace import Trace, as_trace
from repro.vc.clock import VectorClock
from repro.vc.timestamps import TRFTimestamps


@dataclass
class CSEntry:
    """One critical section: acquire index, its timestamp epoch
    ``(slot, acq_val)``, and the matching release (``rel_val`` is the
    release timestamp's own-slot component; ``None`` if the lock is
    never released in the observed trace)."""

    acq_idx: int
    slot: int
    acq_val: int
    acq_ts: VectorClock
    rel_val: Optional[int]
    rel_ts: Optional[VectorClock]


class CSHistories:
    """Per-(thread, lock) critical-section queues with persistent cursors.

    ``advance_lock(l, T)`` implements lines 4-9 of Algorithm 1 for one
    lock: it walks each thread's queue past every acquire whose
    timestamp is ``⊑ T``, remembering the last such acquire per thread
    (line 6-7: earlier entries are dropped, the last one is kept), and
    returns the join of the matching-release timestamps of all kept
    acquires except the single trace-latest one, whose critical section
    may remain open in the witness reordering.
    """

    def __init__(self, trace: Trace, timestamps: TRFTimestamps) -> None:
        self.trace = trace = as_trace(trace)
        self.timestamps = timestamps
        # Keys are interned (tid, lock id) pairs / lock ids: the queues
        # are built straight off the compiled columns, one pass, no
        # Event objects or string hashing.
        self._queues: Dict[Tuple[int, int], List[CSEntry]] = {}
        self._threads_with_lock: Dict[int, List[int]] = {}
        #: timestamp slot -> lock ids with critical sections by that
        #: thread — the dirty-lock fan-out of the closure worklist
        #: (a grown slot can only unlock progress on these locks).
        self.locks_of_slot: Dict[int, List[int]] = {}
        # Per-lock rows aligned with _threads_with_lock[lock]:
        # [cursor, last-entry, queue].  Rows carry the generation of
        # the check they belong to and are rebuilt lazily: reset()
        # only bumps the generation, so locks a check never touches
        # never pay for a rebuild.
        self._rows: Dict[int, Tuple[int, List[list]]] = {}
        self._gen = 0
        #: static per-lock map: timestamp slot -> row index (each
        #: (thread, lock) pair owns one row; built once, shared by
        #: every reset)
        self._slot_index: Dict[int, Dict[int, int]] = {}
        compiled = trace.compiled
        index = trace.index
        ops, tids, targs = compiled.columns()
        match = index.match
        slots = timestamps._slots
        vals = timestamps._vals
        ts = timestamps._ts
        for i in range(len(ops)):
            if ops[i] != OP_ACQUIRE:
                continue
            rel = match[i]
            entry = CSEntry(
                acq_idx=i,
                slot=slots[i],
                acq_val=vals[i],
                acq_ts=ts[i],
                rel_val=vals[rel] if rel >= 0 else None,
                rel_ts=ts[rel] if rel >= 0 else None,
            )
            key = (tids[i], targs[i])
            if key not in self._queues:
                self._queues[key] = []
                twl = self._threads_with_lock.setdefault(targs[i], [])
                self._slot_index.setdefault(targs[i], {})[slots[i]] = len(twl)
                twl.append(tids[i])
                self.locks_of_slot.setdefault(slots[i], []).append(targs[i])
            self._queues[key].append(entry)
        self.reset()

    def reset(self) -> None:
        """Rewind all cursors (start a fresh abstract-pattern check).

        O(1): row lists are tagged with a generation and rebuilt
        lazily, on the first :meth:`advance_lock` touch of each lock in
        the new check.
        """
        self._gen += 1

    @property
    def locks(self) -> List[int]:
        """Interned lock ids with at least one acquire (opaque tokens
        for :meth:`advance_lock`), in first-acquire order."""
        return list(self._threads_with_lock)

    def advance_lock(self, lock: int, t_clock: VectorClock,
                     slots=None) -> Optional[VectorClock]:
        """One Algorithm 1 inner-loop pass for ``lock`` against ``t_clock``.

        Returns the join of release timestamps that must enter the
        closure, or ``None`` when nothing new is contributed.  Mirrors
        the streaming engine's cursor/worklist scheme: with ``slots``
        given (the clock slots that grew since this lock was last
        advanced), only those threads' rows are touched — a row whose
        own component did not grow cannot move its cursor — and if no
        cursor moves, every prior contribution was already joined into
        the (monotone) closure clock of the current check, so candidate
        rebuilding is skipped entirely.
        """
        entry = self._rows.get(lock)
        if entry is None or entry[0] != self._gen:
            threads = self._threads_with_lock.get(lock)
            if not threads:
                return None
            rows = [[0, None, self._queues[(t, lock)]] for t in threads]
            self._rows[lock] = (self._gen, rows)
        else:
            rows = entry[1]
        tv = t_clock._v
        ltv = len(tv)
        moved = False
        if slots is None or len(slots) >= len(rows):
            # Not selective (typical for a check's first fix-point
            # round): the plain row sweep is cheaper than filtering.
            touched = rows
        else:
            by_slot = self._slot_index[lock]
            touched = [rows[i] for i in
                       {by_slot[s] for s in slots if s in by_slot}]
        for row in touched:
            cursor = row[0]
            queue = row[2]
            n = len(queue)
            if cursor < n:
                slot = queue[0].slot
                bound = tv[slot] if slot < ltv else 0
                if queue[cursor].acq_val <= bound:
                    last = queue[cursor]
                    cursor += 1
                    while cursor < n and queue[cursor].acq_val <= bound:
                        last = queue[cursor]
                        cursor += 1
                    row[0] = cursor
                    row[1] = last
                    moved = True
        if not moved:
            return None
        candidates: Optional[List[CSEntry]] = None
        for row in rows:
            last = row[1]
            if last is not None:
                if candidates is None:
                    candidates = [last]
                else:
                    candidates.append(last)
        if candidates is None or len(candidates) <= 1:
            return None
        latest = candidates[0]
        for entry in candidates:
            if entry.acq_idx > latest.acq_idx:
                latest = entry
        join: Optional[VectorClock] = None
        for entry in candidates:
            if entry is latest or entry.rel_ts is None:
                continue
            bound = tv[entry.slot] if entry.slot < ltv else 0
            if entry.rel_val <= bound:
                continue  # already inside the closure
            if join is None:
                join = entry.rel_ts.copy()
            else:
                join.join_with(entry.rel_ts)
        return join


# -- telemetry ---------------------------------------------------------------
#
# advance_lock runs once per (lock, fix-point round) of every abstract
# pattern check — hot enough that even a guarded call is unwelcome on
# the disabled path.  Same patch-on-enable scheme as repro.vc.clock.

_OBS_COUNTS = {"cs.advance": 0, "cs.contributions": 0, "cs.resets": 0}


def _obs_install():
    c = _OBS_COUNTS
    orig_advance = CSHistories.advance_lock
    orig_reset = CSHistories.reset

    def advance_lock(self, lock, t_clock, slots=None):
        c["cs.advance"] += 1
        join = orig_advance(self, lock, t_clock, slots)
        if join is not None:
            c["cs.contributions"] += 1
        return join

    def reset(self):
        c["cs.resets"] += 1
        orig_reset(self)

    CSHistories.advance_lock = advance_lock
    CSHistories.reset = reset

    def undo():
        CSHistories.advance_lock = orig_advance
        CSHistories.reset = orig_reset

    return undo


def _obs_register() -> None:
    import repro.obs as obs

    obs.register_probe("cs_histories", lambda: dict(_OBS_COUNTS))
    obs.on_enable(_obs_install)


_obs_register()
