"""Lock bookkeeping: abstract acquires and critical-section histories."""

from repro.locks.abstract import AbstractAcquire, collect_abstract_acquires
from repro.locks.history import CSHistories

__all__ = ["AbstractAcquire", "collect_abstract_acquires", "CSHistories"]
