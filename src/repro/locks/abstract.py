"""Abstract acquires (paper Section 4.4).

An abstract acquire ``⟨t, l, L, F⟩`` groups all acquire events of
thread ``t`` on lock ``l`` performed while holding exactly the lock set
``L``; ``F`` lists those events in trace order.  Abstract deadlock
patterns are tuples of abstract acquires with distinct threads and
locks, cyclic ``l_i ∈ L_{(i+1)%k}`` containment, and pairwise-disjoint
held sets — each succinctly encoding ``|F_0|·…·|F_{k-1}|`` concrete
deadlock patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.trace.events import OP_ACQUIRE
from repro.trace.trace import Trace, as_trace


@dataclass(frozen=True)
class AbstractAcquire:
    """``⟨thread, lock, held, events⟩`` — a node of the abstract lock graph.

    Attributes:
        thread: the acquiring thread ``t``.
        lock: the lock ``l`` being acquired.
        held: the exact set ``L`` of locks held at each acquire in
            ``events`` (never contains ``lock``; never empty — top-level
            acquires cannot participate in deadlock patterns).
        events: indices of the member acquire events, in trace order.
    """

    thread: str
    lock: str
    held: FrozenSet[str]
    events: Tuple[int, ...] = field(compare=False)

    @property
    def signature(self) -> Tuple[str, str, FrozenSet[str]]:
        """The (thread, lock, held) triple identifying this node."""
        return (self.thread, self.lock, self.held)

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        held = "{" + ",".join(sorted(self.held)) + "}"
        return f"⟨{self.thread}, {self.lock}, {held}, |F|={len(self.events)}⟩"


@dataclass(frozen=True)
class AbstractAcquireIds:
    """The interned-id form of an abstract acquire.

    ``thread``/``lock`` are intern-table ids, ``held`` a frozenset of
    lock ids.  This is what the abstract-lock-graph edge construction
    and cycle filtering operate on — string :class:`AbstractAcquire`
    objects are materialized only for the surviving patterns.
    """

    thread: int
    lock: int
    held: FrozenSet[int]
    events: Tuple[int, ...] = field(compare=False)

    def to_named(self, compiled) -> AbstractAcquire:
        lock_names = compiled.locks_tab.names
        return AbstractAcquire(
            thread=compiled.threads_tab.names[self.thread],
            lock=lock_names[self.lock],
            held=frozenset(lock_names[lk] for lk in self.held),
            events=self.events,
        )


def collect_abstract_acquire_ids(trace: Trace) -> List[AbstractAcquireIds]:
    """All abstract acquires with non-empty held sets, as interned ids.

    One pass over the compiled columns: acquires are grouped by
    ``(thread id, lock id, held-set)`` using the shared held-set pool
    ids — no Event objects, no string hashing.  Acquires holding no
    lock cannot appear in any deadlock pattern (the pattern needs
    ``l_i ∈ L_{(i+1)%k}`` with non-empty ``L``), so they are skipped,
    keeping the abstract lock graph small.
    """
    trace = as_trace(trace)
    index = trace.index
    ops, tids, targs = trace.compiled.columns()
    held_id = index.held_id
    held_lengths = index.held_lengths
    held_set = index.held_set
    # Two held stacks with the same *set* must group together, so key
    # on a canonical pool id per distinct frozenset.
    canon: Dict[FrozenSet[int], int] = {}
    groups: Dict[Tuple[int, int, int], List[int]] = {}
    order: List[Tuple[int, int, int]] = []
    sets: Dict[int, FrozenSet[int]] = {}
    for i in range(len(ops)):
        if ops[i] != OP_ACQUIRE:
            continue
        hid = held_id[i]
        if not held_lengths[hid]:
            continue
        fs = held_set(hid)
        rep = canon.setdefault(fs, hid)
        key = (tids[i], targs[i], rep)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = bucket = []
            order.append(key)
            sets[rep] = fs
        bucket.append(i)
    return [
        AbstractAcquireIds(thread=k[0], lock=k[1], held=sets[k[2]],
                           events=tuple(groups[k]))
        for k in order
    ]


def collect_abstract_acquires(trace: Trace) -> List[AbstractAcquire]:
    """All abstract acquires of ``trace`` with non-empty held sets
    (string form; see :func:`collect_abstract_acquire_ids`)."""
    trace = as_trace(trace)
    compiled = trace.compiled
    return [a.to_named(compiled) for a in collect_abstract_acquire_ids(trace)]
