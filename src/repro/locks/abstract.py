"""Abstract acquires (paper Section 4.4).

An abstract acquire ``⟨t, l, L, F⟩`` groups all acquire events of
thread ``t`` on lock ``l`` performed while holding exactly the lock set
``L``; ``F`` lists those events in trace order.  Abstract deadlock
patterns are tuples of abstract acquires with distinct threads and
locks, cyclic ``l_i ∈ L_{(i+1)%k}`` containment, and pairwise-disjoint
held sets — each succinctly encoding ``|F_0|·…·|F_{k-1}|`` concrete
deadlock patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.trace.trace import Trace


@dataclass(frozen=True)
class AbstractAcquire:
    """``⟨thread, lock, held, events⟩`` — a node of the abstract lock graph.

    Attributes:
        thread: the acquiring thread ``t``.
        lock: the lock ``l`` being acquired.
        held: the exact set ``L`` of locks held at each acquire in
            ``events`` (never contains ``lock``; never empty — top-level
            acquires cannot participate in deadlock patterns).
        events: indices of the member acquire events, in trace order.
    """

    thread: str
    lock: str
    held: FrozenSet[str]
    events: Tuple[int, ...] = field(compare=False)

    @property
    def signature(self) -> Tuple[str, str, FrozenSet[str]]:
        """The (thread, lock, held) triple identifying this node."""
        return (self.thread, self.lock, self.held)

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:
        held = "{" + ",".join(sorted(self.held)) + "}"
        return f"⟨{self.thread}, {self.lock}, {held}, |F|={len(self.events)}⟩"


def collect_abstract_acquires(trace: Trace) -> List[AbstractAcquire]:
    """All abstract acquires of ``trace`` with non-empty held sets.

    Acquires holding no lock cannot appear in any deadlock pattern
    (the pattern needs ``l_i ∈ L_{(i+1)%k}`` with non-empty ``L``), so
    they are skipped, keeping the abstract lock graph small.
    """
    groups: Dict[Tuple[str, str, FrozenSet[str]], List[int]] = {}
    order: List[Tuple[str, str, FrozenSet[str]]] = []
    for ev in trace:
        if not ev.is_acquire:
            continue
        held = trace.held_locks(ev.idx)
        if not held:
            continue
        key = (ev.thread, ev.target, frozenset(held))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(ev.idx)
    return [
        AbstractAcquire(thread=k[0], lock=k[1], held=k[2], events=tuple(groups[k]))
        for k in order
    ]
