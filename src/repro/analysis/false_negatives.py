"""The Section 6.1 false-negative analysis.

The paper inspects the 53 abstract deadlock patterns its benchmark set
contains beyond the 40 confirmed sync-preserving deadlocks, and
classifies them:

- **48** are not predictable deadlocks at all: for every instantiation
  D, the downward closure of ``pred(D)`` under thread order and
  reads-from alone already contains an event of D, so *no* correct
  reordering (sync-preserving or not) can enable D.
- **4** follow a cross-critical-section scheme: each pattern acquire
  ``acq_i`` is preceded (in thread order) by a completed critical
  section on a lock held at the *other* pattern acquire, again ruling
  out any correct reordering.
- **1** is a predictable deadlock that is not sync-preserving — the
  only genuine miss in the whole dataset.

This module implements that classification for arbitrary traces, so
the same audit can be run on any corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Set

from repro.core.alg import abstract_deadlock_patterns
from repro.core.closure import SPClosureEngine
from repro.core.patterns import AbstractDeadlockPattern, DeadlockPattern
from repro.core.spd_offline import check_abstract_pattern
from repro.trace.trace import Trace
from repro.vc.timestamps import trf_reachable_set


class PatternVerdict(Enum):
    """Classification of one abstract deadlock pattern."""

    SYNC_PRESERVING = "sync-preserving deadlock"
    TRF_BLOCKED = "not predictable: TRF ideal of pred(D) contains D"
    CROSS_CS_BLOCKED = "not predictable: completed cross critical sections"
    NOT_SP_MAYBE_PREDICTABLE = "not sync-preserving; possibly predictable"


@dataclass
class ClassifiedPattern:
    """One abstract pattern with its verdict and evidence."""

    abstract: AbstractDeadlockPattern
    verdict: PatternVerdict
    witness: Optional[DeadlockPattern] = None


@dataclass
class FalseNegativeReport:
    """Aggregate of the audit (the Section 6.1 paragraph as data)."""

    patterns: List[ClassifiedPattern] = field(default_factory=list)

    def count(self, verdict: PatternVerdict) -> int:
        return sum(1 for p in self.patterns if p.verdict == verdict)

    @property
    def num_sync_preserving(self) -> int:
        return self.count(PatternVerdict.SYNC_PRESERVING)

    @property
    def num_provably_unpredictable(self) -> int:
        return self.count(PatternVerdict.TRF_BLOCKED) + self.count(
            PatternVerdict.CROSS_CS_BLOCKED
        )

    @property
    def num_potential_misses(self) -> int:
        """Patterns the sync-preserving criterion might actually miss."""
        return self.count(PatternVerdict.NOT_SP_MAYBE_PREDICTABLE)

    def summary(self) -> str:
        total = len(self.patterns)
        return (
            f"{total} abstract deadlock patterns: "
            f"{self.num_sync_preserving} sync-preserving deadlocks, "
            f"{self.count(PatternVerdict.TRF_BLOCKED)} TRF-blocked, "
            f"{self.count(PatternVerdict.CROSS_CS_BLOCKED)} cross-CS-blocked, "
            f"{self.num_potential_misses} potentially predictable misses"
        )


def _trf_blocked(trace: Trace, pattern: Sequence[int]) -> bool:
    """Every correct reordering is impossible: the TO∪rf downward
    closure of the pattern's predecessors contains a pattern event or a
    thread-order successor of one."""
    stall = {}
    for e in pattern:
        t, pos = trace.thread_position(e)
        stall[t] = pos
    preds = [
        p for p in (trace.thread_predecessor(e) for e in pattern) if p is not None
    ]
    ideal = trf_reachable_set(trace, preds)
    for idx in ideal:
        t, pos = trace.thread_position(idx)
        if t in stall and pos >= stall[t]:
            return True
    return False


def _cross_cs_blocked(trace: Trace, pattern: Sequence[int]) -> bool:
    """The 4-of-53 scheme, for size-2 patterns.

    Each pattern acquire is preceded by a *completed* critical section
    on a lock held at the *other* pattern acquire.  For this to rule
    out every correct reordering, the completed section must sit
    *inside* the thread's still-open critical section on its own
    pattern lock: any reordering must then place

        t_b's completed CS(q)  before  t_a's open acq(q), which is
        before t_a's completed CS(p), which must be before t_b's open
        acq(p), which is before t_b's completed CS(q)

    — a cycle, for some locks ``q ∈ HeldLks(a)``, ``p ∈ HeldLks(b)``.
    """
    if len(pattern) != 2:
        return False

    def nested_completed_cs(e: int, own_lock: str, other_locks: Set[str]) -> Set[str]:
        """Locks from ``other_locks`` with a completed critical section
        in thread(e), positioned after the still-open acquire of
        ``own_lock`` and before ``e``."""
        t, _ = trace.thread_position(e)
        own_acq = None
        found: Set[str] = set()
        for idx in trace.events_of_thread(t):
            if idx >= e:
                break
            ev = trace[idx]
            if ev.is_acquire and ev.target == own_lock:
                rel = trace.match(idx)
                if rel is None or rel > e:
                    own_acq = idx
            if (
                own_acq is not None
                and idx > own_acq
                and ev.is_acquire
                and ev.target in other_locks
            ):
                rel = trace.match(idx)
                if rel is not None and rel < e:
                    found.add(ev.target)
        return found

    a, b = pattern
    held_a = set(trace.held_locks(a))
    held_b = set(trace.held_locks(b))
    for q in held_a:
        # t_a: completed CS on some p ∈ held_b nested inside a's open CS
        # on q; t_b symmetrically: completed CS on q nested inside b's
        # open CS on that same p.
        for p in nested_completed_cs(a, q, held_b):
            if q in nested_completed_cs(b, p, {q}):
                return True
    return False


def classify_patterns(
    trace: Trace, max_size: Optional[int] = None
) -> FalseNegativeReport:
    """Audit every abstract deadlock pattern of ``trace``.

    Patterns confirmed sync-preserving get their witness instantiation;
    the rest are tested against the two provable-unpredictability
    criteria of Section 6.1.  Whatever survives all three is a
    *potential* miss, to be settled (on small traces) by
    :class:`repro.reorder.exhaustive.ExhaustivePredictor`.
    """
    report = FalseNegativeReport()
    _, abstracts = abstract_deadlock_patterns(trace, max_size=max_size)
    if not abstracts:
        return report
    engine = SPClosureEngine(trace)
    for abstract in abstracts:
        witness = check_abstract_pattern(engine, abstract)
        if witness is not None:
            report.patterns.append(
                ClassifiedPattern(abstract, PatternVerdict.SYNC_PRESERVING, witness)
            )
            continue
        verdicts = []
        for concrete in abstract.instantiations():
            if _trf_blocked(trace, concrete.events):
                verdicts.append(PatternVerdict.TRF_BLOCKED)
            elif _cross_cs_blocked(trace, concrete.events):
                verdicts.append(PatternVerdict.CROSS_CS_BLOCKED)
            else:
                verdicts.append(PatternVerdict.NOT_SP_MAYBE_PREDICTABLE)
        # The abstract pattern is provably unpredictable only when every
        # instantiation is.
        if all(v == PatternVerdict.TRF_BLOCKED for v in verdicts):
            verdict = PatternVerdict.TRF_BLOCKED
        elif all(
            v in (PatternVerdict.TRF_BLOCKED, PatternVerdict.CROSS_CS_BLOCKED)
            for v in verdicts
        ):
            verdict = PatternVerdict.CROSS_CS_BLOCKED
        else:
            verdict = PatternVerdict.NOT_SP_MAYBE_PREDICTABLE
        report.patterns.append(ClassifiedPattern(abstract, verdict))
    return report
