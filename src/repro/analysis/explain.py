"""Explain a verdict: the provenance chain behind a closure.

"Why is this pattern not a deadlock?" is the first question a user
asks about a silent detector.  The answer is always a derivation in
the Definition 3 closure rules — some chain of thread-order,
reads-from, and close-the-earlier-critical-section steps drags a
pattern event into ``SPClosure(pred(D))``.  This module re-runs the
closure set-wise while recording, for every event, the rule and parent
that pulled it in, then extracts and renders the chain.

``explain_pattern`` returns a :class:`Explanation`:
- for sync-preserving deadlocks: the witness schedule;
- otherwise: the step-by-step derivation ending at the swallowed
  pattern event, each step naming its rule — directly usable in a bug
  report or a CI annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.trace import Trace


@dataclass(frozen=True)
class Step:
    """One closure-derivation step: ``event`` joined because of
    ``rule`` applied to ``parent`` (None for seeds)."""

    event: int
    rule: str
    parent: Optional[int]

    def render(self, trace: Trace) -> str:
        ev = trace[self.event]
        if self.parent is None:
            return f"{ev} is a thread-local predecessor of the pattern"
        pev = trace[self.parent]
        explanations = {
            "TO": f"{ev} must run before {pev} (same thread)",
            "RF": f"{pev} reads the value written by {ev}",
            "JOIN": f"{pev} joins {ev.thread}, so {ev} must finish first",
            "FORK": f"{ev} forks {pev.thread}, enabling it",
            "LOCK": (
                f"{ev} must close the earlier critical section on "
                f"{trace[self.parent].target}: {pev} re-acquires it inside "
                "the reordering"
            ),
        }
        return explanations.get(self.rule, f"{ev} required by {pev} ({self.rule})")


@dataclass
class Explanation:
    """Outcome of :func:`explain_pattern`."""

    pattern: Tuple[int, ...]
    is_deadlock: bool
    witness: List[int] = field(default_factory=list)
    chain: List[Step] = field(default_factory=list)
    blocked_event: Optional[int] = None

    def render(self, trace: Trace) -> str:
        label = ", ".join(f"e{i}" for i in self.pattern)
        if self.is_deadlock:
            sched = " ".join(f"e{i}" for i in self.witness)
            return (
                f"<{label}> IS a sync-preserving deadlock.\n"
                f"witness schedule: {sched}"
            )
        lines = [f"<{label}> is NOT a sync-preserving deadlock:"]
        for step in self.chain:
            lines.append(f"  - {step.render(trace)}")
        lines.append(
            f"  => {trace[self.blocked_event]} is forced into every candidate "
            "reordering, so it can never be left enabled."
        )
        return "\n".join(lines)


def _provenance_closure(
    trace: Trace, seeds: Sequence[int]
) -> Dict[int, Step]:
    """Set-wise Definition 3 fix-point with parent pointers."""
    prov: Dict[int, Step] = {}
    work: List[int] = []

    def add(idx: int, rule: str, parent: Optional[int]) -> None:
        if idx not in prov:
            prov[idx] = Step(idx, rule, parent)
            work.append(idx)

    fork_of: Dict[str, int] = {}
    for ev in trace:
        if ev.is_fork and ev.target not in fork_of:
            fork_of[ev.target] = ev.idx

    for s in seeds:
        add(s, "SEED", None)
    while True:
        while work:
            idx = work.pop()
            ev = trace[idx]
            pred = trace.thread_predecessor(idx)
            if pred is not None:
                add(pred, "TO", idx)
            else:
                f = fork_of.get(ev.thread)
                if f is not None:
                    add(f, "FORK", idx)
            if ev.is_read:
                w = trace.rf(idx)
                if w is not None:
                    add(w, "RF", idx)
            if ev.is_join:
                child = trace.events_of_thread(ev.target)
                if child:
                    add(child[-1], "JOIN", idx)
        # Lock rule: among same-lock acquires in the set, every
        # non-latest one's release joins (attributed to the later
        # acquire that forces it).
        changed = False
        for lock in trace.locks:
            acqs = [i for i in trace.acquires_of_lock(lock) if i in prov]
            if len(acqs) < 2:
                continue
            latest = max(acqs)
            for a in acqs:
                if a == latest:
                    continue
                rel = trace.match(a)
                if rel is not None and rel not in prov:
                    add(rel, "LOCK", latest)
                    changed = True
        if not changed and not work:
            break
    return prov


def explain_pattern(trace: Trace, pattern: Sequence[int]) -> Explanation:
    """Explain why ``pattern`` is or is not a sync-preserving deadlock."""
    preds = [
        p for p in (trace.thread_predecessor(e) for e in pattern) if p is not None
    ]
    prov = _provenance_closure(trace, preds)
    stall = {}
    for e in pattern:
        t, pos = trace.thread_position(e)
        stall[t] = (pos, e)
    blocked: Optional[int] = None
    blocked_via: Optional[int] = None
    for idx in sorted(prov):
        t, pos = trace.thread_position(idx)
        if t in stall and pos >= stall[t][0]:
            blocked, blocked_via = stall[t][1], idx
            break
    if blocked is None:
        from repro.reorder.witness import witness_from_closure

        return Explanation(
            pattern=tuple(pattern),
            is_deadlock=True,
            witness=witness_from_closure(trace, preds),
        )
    # Walk parent pointers from the event at/after the stall point back
    # to a seed; reverse for presentation.
    chain: List[Step] = []
    cursor: Optional[int] = blocked_via
    while cursor is not None:
        step = prov[cursor]
        chain.append(step)
        cursor = step.parent
    chain.reverse()
    return Explanation(
        pattern=tuple(pattern),
        is_deadlock=False,
        chain=chain,
        blocked_event=blocked,
    )
