"""Run every detector on one trace and diff the verdicts.

The programmatic form of one Table 1 row: deadlock counts, unique
bugs, timings, and the set differences between tools that Appendix C
illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.baselines.dirk import dirk
from repro.baselines.goodlock import goodlock
from repro.baselines.seqcheck import SeqCheckFailure, seqcheck
from repro.core.spd_offline import spd_offline
from repro.core.spd_online import spd_online
from repro.trace.trace import Trace

BugId = Tuple[str, ...]


def exclusive_bugs(
    bug_sets: Dict[str, Optional[Set[BugId]]],
) -> Dict[str, Set[BugId]]:
    """Per tool, the bugs no *other* tool reports.

    ``None`` marks a tool that failed outright (Table 1's ``F``): it
    contributes no bugs and claims none.  Used by the campaign report
    emitter for its disagreement section and mirrored by the
    ``only_*`` accessors of :class:`ComparisonResult`.
    """
    out: Dict[str, Set[BugId]] = {}
    for tool, bugs in bug_sets.items():
        if bugs is None:
            out[tool] = set()
            continue
        others: Set[BugId] = set()
        for other, other_bugs in bug_sets.items():
            if other != tool and other_bugs is not None:
                others |= other_bugs
        out[tool] = bugs - others
    return out


@dataclass
class ComparisonResult:
    """Per-tool unique bug sets and timings for one trace."""

    trace_name: str
    spd_offline_bugs: Set[BugId] = field(default_factory=set)
    spd_online_bugs: Set[BugId] = field(default_factory=set)
    seqcheck_bugs: Optional[Set[BugId]] = None  # None = failed
    dirk_bugs: Optional[Set[BugId]] = None
    goodlock_warnings: int = 0
    times: Dict[str, float] = field(default_factory=dict)

    @property
    def seqcheck_failed(self) -> bool:
        return self.seqcheck_bugs is None

    def only_spd(self) -> Set[BugId]:
        """Bugs SPDOffline finds that SeqCheck misses (Fig. 5 cases)."""
        return self.spd_offline_bugs - (self.seqcheck_bugs or set())

    def only_seqcheck(self) -> Set[BugId]:
        """Bugs SeqCheck finds beyond SPDOffline (Fig. 6 cases)."""
        return (self.seqcheck_bugs or set()) - self.spd_offline_bugs

    def only_dirk(self) -> Set[BugId]:
        """Dirk's value-relaxed extras (Transfer-style)."""
        sound = self.spd_offline_bugs | (self.seqcheck_bugs or set())
        return (self.dirk_bugs or set()) - sound

    def summary(self) -> str:
        sq = "F" if self.seqcheck_failed else len(self.seqcheck_bugs)
        dk = "F" if self.dirk_bugs is None else len(self.dirk_bugs)
        return (
            f"{self.trace_name}: goodlock-warnings={self.goodlock_warnings} "
            f"spd-offline={len(self.spd_offline_bugs)} "
            f"spd-online={len(self.spd_online_bugs)} "
            f"seqcheck={sq} dirk={dk}"
        )


def compare_detectors(
    trace: Trace,
    run_dirk: bool = True,
    dirk_window: int = 10_000,
    dirk_timeout: Optional[float] = 30.0,
    seqcheck_all_instantiations: bool = True,
) -> ComparisonResult:
    """Run Goodlock, SPDOffline, SPDOnline, SeqCheck, and Dirk."""
    result = ComparisonResult(trace_name=trace.name)

    gl = goodlock(trace)
    result.goodlock_warnings = gl.num_warnings
    result.times["goodlock"] = gl.elapsed

    off = spd_offline(trace)
    result.spd_offline_bugs = {r.bug_id for r in off.reports}
    result.times["spd_offline"] = off.elapsed

    onl = spd_online(trace)
    result.spd_online_bugs = onl.unique_bugs()
    result.times["spd_online"] = onl.elapsed

    try:
        sq = seqcheck(
            trace, first_hit_per_abstract=not seqcheck_all_instantiations
        )
        result.seqcheck_bugs = {r.bug_id for r in sq.reports}
        result.times["seqcheck"] = sq.elapsed
    except SeqCheckFailure:
        result.seqcheck_bugs = None

    if run_dirk:
        dk = dirk(trace, window=dirk_window, timeout=dirk_timeout)
        result.dirk_bugs = {r.bug_id for r in dk.reports}
        result.times["dirk"] = dk.elapsed
    return result
