"""Actual-deadlock detection from logged request events.

Prediction reasons about deadlocks that *could* happen; this module
covers the complementary case of a run that *did* deadlock.  Loggers
(RAPID's instrumentation, our scheduler) emit ``req(l)`` when a thread
blocks on an acquire; a trace that ends with mutually waiting requests
encodes the actual deadlock, and :func:`detect_actual_deadlock`
recovers the waits-for cycle from the trace alone — no scheduler state
needed.  This is what a post-mortem on a hung service's event log does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.trace.trace import Trace


@dataclass(frozen=True)
class ActualDeadlock:
    """A waits-for cycle present at the end of the trace."""

    threads: Tuple[str, ...]
    locks: Tuple[str, ...]          # locks[i] is what threads[i] waits for
    request_events: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.threads)

    def bug_id(self, trace: Trace) -> Tuple[str, ...]:
        return tuple(sorted(trace[e].location for e in self.request_events))


def detect_actual_deadlock(trace: Trace) -> Optional[ActualDeadlock]:
    """Recover the deadlock cycle a trace ended in, if any.

    A thread is *blocked* when its last event is an unanswered
    ``req(l)`` (no subsequent acquire of ``l`` by that thread).  The
    waits-for edge goes to the thread holding ``l`` at end of trace.
    Returns the first cycle found, or ``None`` for clean traces.
    """
    # Final lock ownership and per-thread final pending request.
    owner: Dict[str, str] = {}
    pending: Dict[str, Tuple[str, int]] = {}
    for ev in trace:
        if ev.is_acquire:
            owner[ev.target] = ev.thread
            if ev.thread in pending and pending[ev.thread][0] == ev.target:
                del pending[ev.thread]  # the request was granted
        elif ev.is_release:
            if owner.get(ev.target) == ev.thread:
                del owner[ev.target]
        elif ev.is_request:
            pending[ev.thread] = (ev.target, ev.idx)

    # A pending request only blocks if it is the thread's last event.
    blocked: Dict[str, Tuple[str, int]] = {}
    for thread, (lock, idx) in pending.items():
        events = trace.events_of_thread(thread)
        if events and events[-1] == idx:
            blocked[thread] = (lock, idx)

    # Find a cycle in the waits-for graph.
    for start in sorted(blocked):
        chain: List[str] = []
        seen = set()
        t: Optional[str] = start
        while t is not None and t in blocked and t not in seen:
            seen.add(t)
            chain.append(t)
            lock, _ = blocked[t]
            t = owner.get(lock)
            if t in chain:
                k = chain.index(t)
                cycle = chain[k:]
                return ActualDeadlock(
                    threads=tuple(cycle),
                    locks=tuple(blocked[c][0] for c in cycle),
                    request_events=tuple(blocked[c][1] for c in cycle),
                )
    return None
