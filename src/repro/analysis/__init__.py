"""Post-hoc analyses over detection results.

- :mod:`repro.analysis.false_negatives` — the Section 6.1 study:
  classify abstract deadlock patterns that are *not* sync-preserving
  deadlocks into provably-unpredictable categories vs genuine misses.
- :mod:`repro.analysis.comparison` — run every detector on one trace
  and diff their reports (the per-benchmark columns of Table 1).
"""

from repro.analysis.false_negatives import (
    FalseNegativeReport,
    PatternVerdict,
    classify_patterns,
)
from repro.analysis.comparison import ComparisonResult, compare_detectors
from repro.analysis.detection import ActualDeadlock, detect_actual_deadlock
from repro.analysis.explain import Explanation, explain_pattern

__all__ = [
    "FalseNegativeReport",
    "PatternVerdict",
    "classify_patterns",
    "ComparisonResult",
    "compare_detectors",
    "ActualDeadlock",
    "detect_actual_deadlock",
    "Explanation",
    "explain_pattern",
]
