"""``python -m repro`` entry point."""

from repro.cli import entry

if __name__ == "__main__":
    raise SystemExit(entry())
