"""Render ``repro bench profile``: top-k span trees + counter summary.

Aggregates a run's span log (``OUT/obs/spans.jsonl``) by span *path*
(the slash-joined per-thread ancestry each record carries), so the
rendering is a tree of where wall time went, with self-time separated
from children.  With ``--trace``/``--detector`` it instead renders one
cell's embedded rollup from ``run.json`` — available even when the run
streamed no span log (in-memory telemetry), because rollups ride the
result channel.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.obs.export import load_records

__all__ = ["aggregate_spans", "render_tree", "render_counters",
           "render_run_profile", "render_cell_profile"]


def aggregate_spans(records) -> Dict[str, Tuple[int, int]]:
    """path -> (count, total_ns) over span records."""
    agg: Dict[str, List[int]] = {}
    for r in records:
        if r.get("k") != "span":
            continue
        path = r.get("path") or r.get("name", "?")
        slot = agg.get(path)
        if slot is None:
            agg[path] = [1, r.get("dur", 0)]
        else:
            slot[0] += 1
            slot[1] += r.get("dur", 0)
    return {p: (c, t) for p, (c, t) in agg.items()}


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


def render_tree(agg: Dict[str, Tuple[int, int]], top: int = 20) -> List[str]:
    """Render the path aggregation as an indented tree, deepest-first
    accounted as self-time, children sorted by total time."""
    if not agg:
        return ["  (no spans recorded)"]
    children: Dict[str, List[str]] = {}
    roots: List[str] = []
    for path in agg:
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None and parent in agg:
            children.setdefault(parent, []).append(path)
        else:
            roots.append(path)

    lines: List[str] = []
    budget = [top]

    def total(path: str) -> int:
        return agg[path][1]

    def walk(path: str, depth: int) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        cnt, tot = agg[path]
        kids = sorted(children.get(path, ()), key=total, reverse=True)
        self_ns = tot - sum(agg[k][1] for k in kids)
        name = path.rsplit("/", 1)[-1]
        extra = f"  self {_fmt_ns(self_ns)}" if kids else ""
        lines.append(
            f"  {'  ' * depth}{name:<{max(1, 28 - 2 * depth)}}"
            f" {cnt:>7}x  total {_fmt_ns(tot):>9}"
            f"  avg {_fmt_ns(tot / cnt):>9}{extra}"
        )
        for k in kids:
            walk(k, depth + 1)

    for root in sorted(roots, key=total, reverse=True):
        walk(root, 0)
    if budget[0] <= 0 and len(agg) > top:
        lines.append(f"  ... ({len(agg) - top} more span paths; raise -k)")
    return lines


def render_counters(counters: Dict[str, float], top: int = 40) -> List[str]:
    """Render the ``top`` largest counters as aligned text lines."""
    if not counters:
        return ["  (no counters recorded)"]
    lines = []
    items = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
    for name, value in items[:top]:
        val = f"{int(value)}" if float(value).is_integer() else f"{value:.3f}"
        lines.append(f"  {name:<40} {val:>14}")
    if len(items) > top:
        lines.append(f"  ... ({len(items) - top} more counters)")
    return lines


def _load_run_json(out_dir: str) -> Optional[dict]:
    path = os.path.join(out_dir, "run.json")
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def render_run_profile(out_dir: str, top: int = 20) -> str:
    """The whole-run view: span tree from the log + final counters."""
    try:
        records = load_records(out_dir)
    except FileNotFoundError:
        records = []
    counters: Dict[str, float] = {}
    hists: Dict[str, dict] = {}
    for rec in records:
        if rec.get("k") == "counters":
            counters = rec.get("counters") or {}
            hists = rec.get("histograms") or {}
    if not records:
        # fall back to per-cell rollups embedded in run.json
        run = _load_run_json(out_dir)
        if run is None:
            raise FileNotFoundError(
                f"no span log or run.json under {out_dir!r}"
            )
        for cell in run.get("cells", []):
            rollup = cell.get("obs")
            if not rollup:
                continue
            records.extend(rollup.get("spans", []))
            for k, v in (rollup.get("counters") or {}).items():
                counters[k] = counters.get(k, 0) + v
    lines = [f"# profile: {out_dir}", "", "## span tree (by wall time)"]
    lines += render_tree(aggregate_spans(records), top=top)
    lines += ["", "## counters"]
    lines += render_counters(counters)
    if hists:
        lines += ["", "## histograms"]
        for name in sorted(hists):
            h = hists[name]
            cnt = max(1, int(h.get("count", 0)))
            lines.append(
                f"  {name:<40} n={int(h.get('count', 0))}"
                f" mean={h.get('sum', 0) / cnt:.6f}"
                f" min={h.get('min', 0):.6f} max={h.get('max', 0):.6f}"
            )
    return "\n".join(lines) + "\n"


def render_cell_profile(out_dir: str, trace: str, detector: str,
                        top: int = 20) -> str:
    """The single-cell view from the rollup embedded in ``run.json``."""
    run = _load_run_json(out_dir)
    if run is None:
        raise FileNotFoundError(f"no run.json under {out_dir!r}")
    matches = [
        c for c in run.get("cells", [])
        if c.get("trace") == trace and c.get("detector") == detector
    ]
    if not matches:
        have = sorted({
            (c.get("trace"), c.get("detector"))
            for c in run.get("cells", [])
        })
        raise KeyError(
            f"no cell {trace!r} x {detector!r} in run "
            f"(cells: {have[:8]}{'...' if len(have) > 8 else ''})"
        )
    cell = matches[0]
    rollup = cell.get("obs") or {}
    lines = [f"# profile: cell {trace} x {detector}", ""]
    wall = rollup.get("wall")
    cpu = rollup.get("cpu")
    rss = rollup.get("max_rss_kb")
    lines.append(f"  status      {cell.get('status')}")
    if wall is not None:
        lines.append(f"  wall        {wall:.6f}s")
    if cpu is not None:
        lines.append(f"  cpu         {cpu:.6f}s")
    if rss is not None:
        lines.append(f"  peak rss    {rss} KB")
    if rollup.get("spans_truncated"):
        lines.append(f"  (spans truncated: {rollup['spans_truncated']})")
    lines += ["", "## span tree (by wall time)"]
    lines += render_tree(aggregate_spans(rollup.get("spans", [])), top=top)
    lines += ["", "## counters"]
    lines += render_counters(rollup.get("counters") or {})
    return "\n".join(lines) + "\n"
