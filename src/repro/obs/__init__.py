"""Engine-wide tracing and metrics (``repro.obs``).

A zero-dependency, thread-safe telemetry subsystem: context-manager
:func:`span` trees with monotonic timestamps plus named counters,
gauges and histograms.  Every layer of the engine is instrumented —
trace ingestion, index derivation, closure sweeps, vector-clock joins,
the campaign runners, the cache, sharding, streaming sessions and the
run journal — but the whole thing **compiles to a no-op when
disabled**:

- :func:`span`/:func:`count`/... are module-level functions whose first
  statement is a ``_state is None`` check; with telemetry off each call
  is one global load and a branch.
- Call sites too hot even for that (per-join vector-clock counters,
  per-lock history cursor walks) use *patch-on-enable*: they register
  an :func:`on_enable` hook that swaps counting wrappers in only when
  telemetry is activated, so the disabled hot path carries **zero**
  instrumentation code.

Activation mirrors :mod:`repro.faults` — environment-driven so forked
or spawned pool workers inherit it for free:

- ``REPRO_OBS=1`` (or ``true``/``yes``/``on``) — enabled, in-memory
  collection only;
- ``REPRO_OBS=/some/dir`` — enabled, spans streamed to
  ``<dir>/spans.jsonl`` and aggregate metrics written to
  ``<dir>/metrics.json`` on :func:`finish`;
- ``repro bench run --obs OUT/`` and a campaign ``[obs]`` table set the
  variable for the run (workers included) and finalize on exit.

Pool workers never write the shared span log: :func:`reset_for_worker`
switches the child to in-memory collection and the per-cell rollup
(spans + counter deltas + cpu/RSS, see :func:`cell_scope`) rides the
existing per-cell result channel back to the parent, which re-emits the
spans into its own log — crash isolation is untouched, a dying worker
can only ever lose its own telemetry.

Span log format: JSON lines, one object per record.  ``{"k": "span"}``
records carry ``name``, ``cat``, ``path`` (slash-joined ancestry within
the emitting thread), ``ts``/``dur`` (monotonic nanoseconds), ``pid``,
``tid`` and optional ``args``/``error``.  ``{"k": "meta"}`` marks an
activation, ``{"k": "counters"}`` a final aggregate snapshot.  Convert
with ``repro obs export`` (Chrome ``traceEvents`` JSON, loadable in
``chrome://tracing`` / Perfetto) or inspect with
``repro bench profile OUT/``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "ENV_VAR",
    "enabled",
    "enable",
    "disable",
    "maybe_enable_from_env",
    "reset_for_worker",
    "span",
    "event",
    "count",
    "gauge",
    "observe",
    "record_span",
    "on_enable",
    "register_probe",
    "snapshot",
    "drain_spans",
    "cell_scope",
    "finish",
]

#: environment variable holding the activation value (see module docs)
ENV_VAR = "REPRO_OBS"

#: in-memory span retention cap (file-backed states are unbounded);
#: overflowing spans are dropped and counted under ``obs.spans_dropped``
_MEM_CAP = 200_000

#: spans embedded per cell rollup before truncation
_CELL_SPAN_CAP = 512


class _State:
    """Live telemetry collection state (one per enabled process)."""

    def __init__(self, out_dir: Optional[str]) -> None:
        self.out_dir = out_dir
        self.lock = threading.Lock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.hists: Dict[str, Dict[str, float]] = {}
        self.spans: List[dict] = []
        self.dropped = 0
        self.local = threading.local()
        self.t0 = time.monotonic_ns()
        self._fh = None
        self._cell_sink: Optional[List[dict]] = None
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            # line-buffered: every record hits the file as it is
            # emitted, so a forked worker inherits an *empty* buffer —
            # its abandoned handle can never flush duplicate lines into
            # the shared log at interpreter exit
            self._fh = open(os.path.join(out_dir, "spans.jsonl"), "a",
                            buffering=1, encoding="utf-8")
            self.emit({"k": "meta", "event": "enable", "pid": os.getpid(),
                       "t0": self.t0, "wall": time.time()})

    # one json line per record; file writes are serialized, in-memory
    # appends rely on CPython list.append atomicity
    def emit(self, record: dict) -> None:
        sink = self._cell_sink
        if sink is not None and record.get("k") == "span":
            sink.append(record)
        if self._fh is not None:
            line = json.dumps(record, default=str)
            with self.lock:
                self._fh.write(line + "\n")
            return
        if len(self.spans) >= _MEM_CAP:
            self.dropped += 1
            return
        self.spans.append(record)

    def emit_many(self, records) -> None:
        for rec in records:
            self.emit(rec)

    def stack(self) -> List[str]:
        st = getattr(self.local, "stack", None)
        if st is None:
            st = self.local.stack = []
        return st

    def close(self) -> None:
        if self._fh is not None:
            with self.lock:
                self._fh.close()
            self._fh = None


_state: Optional[_State] = None

# (hook, undo-or-None) pairs; hooks run on every enable and may return
# an undo callable run on disable (patch-on-enable instrumentation)
_hooks: List[List[Any]] = []

# named callables returning {counter: value} merged into snapshots
_probes: Dict[str, Callable[[], Dict[str, float]]] = {}


def enabled() -> bool:
    """Whether telemetry collection is currently active."""
    return _state is not None


def enable(out_dir: Optional[str] = None) -> None:
    """Activate telemetry (idempotent; re-enable switches the sink).

    Args:
        out_dir: stream spans to ``<out_dir>/spans.jsonl``; ``None``
            collects in memory (drained via :func:`drain_spans`).
    """
    global _state
    if _state is not None:
        if _state.out_dir == out_dir:
            return
        disable()
    _state = _State(out_dir)
    for pair in _hooks:
        if pair[1] is None:
            pair[1] = pair[0]() or _NO_UNDO


def disable() -> None:
    """Deactivate telemetry and unwind patch-on-enable hooks."""
    global _state
    if _state is None:
        return
    for pair in _hooks:
        if pair[1] is not None:
            if pair[1] is not _NO_UNDO:
                pair[1]()
            pair[1] = None
    _state.close()
    _state = None


def maybe_enable_from_env() -> bool:
    """Activate from :data:`ENV_VAR` if set (workers inherit it).

    Returns True when telemetry is active after the call.
    """
    if _state is not None:
        return True
    val = os.environ.get(ENV_VAR, "").strip()
    if not val or val == "0" or val.lower() in ("false", "no", "off"):
        return False
    if val == "1" or val.lower() in ("true", "yes", "on"):
        enable(None)
    else:
        enable(val)
    return True


def reset_for_worker() -> None:
    """Re-arm telemetry inside a pool worker.

    Forked children inherit the parent's state — including its open
    span-log handle, whose buffered writes would tear the shared file.
    Workers therefore always collect in memory; their spans travel in
    the per-cell rollup through the result channel.
    """
    global _state
    if _state is not None:
        # drop the inherited state without touching the parent's file
        # (closing a forked duplicate flushes its buffer into the log)
        _state._fh = None
        _state = None
        for pair in _hooks:
            if pair[1] is not None:
                # Unwind inherited patch wrappers before re-enabling —
                # method swaps are process-local and safe in a forked
                # child; skipping this would stack a second wrapper on
                # re-enable (and leak one layer past the next disable),
                # double-counting every patched call.
                if pair[1] is not _NO_UNDO:
                    pair[1]()
                pair[1] = None
    val = os.environ.get(ENV_VAR, "").strip()
    if val and val != "0" and val.lower() not in ("false", "no", "off"):
        enable(None)


# -- spans -------------------------------------------------------------------


class _NullSpan:
    """Returned by :func:`span` when disabled: a no-op context."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()
_NO_UNDO = object()


class _Span:
    __slots__ = ("name", "cat", "args", "_start", "_path")

    def __init__(self, name: str, cat: Optional[str], args: Optional[dict]):
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        st = _state
        if st is None:  # disabled between construction and entry
            self._start = None
            return self
        stack = st.stack()
        stack.append(self.name)
        self._path = "/".join(stack)
        self._start = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._start is None:
            return False
        end = time.monotonic_ns()
        st = _state
        if st is not None:
            stack = st.stack()
            if stack and stack[-1] == self.name:
                stack.pop()
            rec = {"k": "span", "name": self.name, "path": self._path,
                   "ts": self._start, "dur": end - self._start,
                   "pid": os.getpid(), "tid": threading.get_ident()}
            if self.cat:
                rec["cat"] = self.cat
            if self.args:
                rec["args"] = self.args
            if exc_type is not None:
                rec["error"] = exc_type.__name__
            st.emit(rec)
        return False


def span(name: str, cat: Optional[str] = None, **args):
    """A timed context manager; nests into a per-thread span tree.

    Exceptions propagate but still close the span (the record carries
    an ``error`` field), so enter/exit stay balanced under failure.
    """
    if _state is None:
        return _NULL_SPAN
    return _Span(name, cat, args or None)


def record_span(name: str, start_ns: int, end_ns: int,
                cat: Optional[str] = None, **args) -> None:
    """Record a span retroactively from explicit monotonic timestamps.

    Used where the interval is only known after the fact (pool queue
    wait, worker lifetime reconstructed from the scheduler loop).
    """
    st = _state
    if st is None:
        return
    rec = {"k": "span", "name": name, "path": name, "ts": int(start_ns),
           "dur": max(0, int(end_ns - start_ns)), "pid": os.getpid(),
           "tid": threading.get_ident()}
    if cat:
        rec["cat"] = cat
    if args:
        rec["args"] = args
    st.emit(rec)


def event(name: str, **args) -> None:
    """Record an instant (zero-duration) event."""
    st = _state
    if st is None:
        return
    ts = time.monotonic_ns()
    rec = {"k": "span", "name": name, "path": name, "ts": ts, "dur": 0,
           "pid": os.getpid(), "tid": threading.get_ident()}
    if args:
        rec["args"] = args
    st.emit(rec)


# -- metrics -----------------------------------------------------------------


def count(name: str, delta: float = 1) -> None:
    """Add ``delta`` to a named monotonic counter."""
    st = _state
    if st is None:
        return
    c = st.counters
    c[name] = c.get(name, 0) + delta


def gauge(name: str, value: float) -> None:
    """Set a named gauge to its latest value."""
    st = _state
    if st is None:
        return
    st.gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one sample into a named histogram (count/sum/min/max)."""
    st = _state
    if st is None:
        return
    h = st.hists.get(name)
    if h is None:
        st.hists[name] = {"count": 1, "sum": value, "min": value,
                          "max": value}
        return
    h["count"] += 1
    h["sum"] += value
    if value < h["min"]:
        h["min"] = value
    if value > h["max"]:
        h["max"] = value


def on_enable(hook: Callable[[], Optional[Callable[[], None]]]) -> None:
    """Register a patch-on-enable hook.

    ``hook()`` runs at every activation and may return an undo callable
    run at :func:`disable`.  If telemetry is already active the hook
    runs immediately.  This is how per-call-hot modules (``vc/``,
    ``locks/history.py``) attach counting wrappers without leaving any
    code on the disabled path.
    """
    pair: List[Any] = [hook, None]
    _hooks.append(pair)
    if _state is not None:
        pair[1] = hook() or _NO_UNDO


def register_probe(name: str,
                   fn: Callable[[], Dict[str, float]]) -> None:
    """Register a collection-time counter source (merged by name into
    every :func:`snapshot`)."""
    _probes[name] = fn


def _probe_counters() -> Dict[str, float]:
    out: Dict[str, float] = {}
    for fn in _probes.values():
        try:
            out.update(fn())
        except Exception:
            continue
    return out


def snapshot() -> Dict[str, Any]:
    """Aggregate counters/gauges/histograms (probes included)."""
    st = _state
    if st is None:
        return {"enabled": False, "counters": {}, "gauges": {},
                "histograms": {}}
    counters = dict(st.counters)
    for k, v in _probe_counters().items():
        counters[k] = counters.get(k, 0) + v
    if st.dropped:
        counters["obs.spans_dropped"] = st.dropped
    return {"enabled": True, "counters": counters,
            "gauges": dict(st.gauges), "histograms": dict(st.hists)}


def drain_spans() -> List[dict]:
    """Return and clear the in-memory span buffer (file-backed states
    keep their log on disk and return nothing here)."""
    st = _state
    if st is None:
        return []
    out, st.spans = st.spans, []
    return out


def emit_spans(records) -> None:
    """Re-emit span records collected elsewhere (a worker's rollup)
    into this process's sink."""
    st = _state
    if st is None:
        return
    st.emit_many(records)


def finish() -> Optional[Dict[str, Any]]:
    """Write the final counter snapshot and close the span log.

    Returns the snapshot (``None`` when disabled).  The state stays
    enabled for in-memory collection; call :func:`disable` to tear
    down.
    """
    st = _state
    if st is None:
        return None
    snap = snapshot()
    st.emit({"k": "counters", "counters": snap["counters"],
             "gauges": snap["gauges"], "histograms": snap["histograms"]})
    if st.out_dir is not None:
        with st.lock:
            st._fh.flush()
        path = os.path.join(st.out_dir, "metrics.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    return snap


# -- per-cell rollups --------------------------------------------------------


class _CellScope:
    """Collects one cell's telemetry delta (see :func:`cell_scope`)."""

    __slots__ = ("args", "_span", "_c0", "_t0", "_cpu0", "_spans",
                 "_prev_sink", "rollup")

    def __init__(self, args: dict):
        self.args = args
        self.rollup: Optional[dict] = None

    def __enter__(self):
        st = _state
        if st is None:
            return self
        self._c0 = dict(st.counters)
        for k, v in _probe_counters().items():
            self._c0[k] = self._c0.get(k, 0) + v
        self._spans: List[dict] = []
        self._prev_sink = st._cell_sink
        st._cell_sink = self._spans
        self._t0 = time.monotonic_ns()
        self._cpu0 = time.process_time_ns()
        self._span = _Span("cell", "exp", self.args or None)
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        st = _state
        if st is None:
            return False
        self._span.__exit__(exc_type, exc, tb)
        st._cell_sink = self._prev_sink
        wall = (time.monotonic_ns() - self._t0) / 1e9
        cpu = (time.process_time_ns() - self._cpu0) / 1e9
        c1 = dict(st.counters)
        for k, v in _probe_counters().items():
            c1[k] = c1.get(k, 0) + v
        delta = {}
        for k, v in c1.items():
            d = v - self._c0.get(k, 0)
            if d:
                delta[k] = d
        spans = self._spans
        truncated = max(0, len(spans) - _CELL_SPAN_CAP)
        if truncated:
            spans = spans[:_CELL_SPAN_CAP]
        self.rollup = {
            "wall": wall,
            "cpu": cpu,
            "max_rss_kb": _max_rss_kb(),
            "counters": delta,
            "spans": spans,
        }
        if truncated:
            self.rollup["spans_truncated"] = truncated
        return False


def cell_scope(**args) -> _CellScope:
    """Scope one campaign cell: spans recorded inside are captured and
    counter/cpu/RSS deltas summarized into ``.rollup`` on exit (``None``
    when telemetry is disabled)."""
    return _CellScope(args)


def _max_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # linux reports KB; darwin reports bytes
    return ru // 1024 if os.uname().sysname == "Darwin" else ru
