"""Convert ``repro.obs`` span logs to Chrome trace-event JSON.

The output is the Trace Event Format's "JSON Object Format": a dict
with a ``traceEvents`` list of complete (``"ph": "X"``) events plus
trailing counter (``"ph": "C"``) samples, loadable in
``chrome://tracing`` and Perfetto.  Timestamps are rebased to the
earliest span and converted from monotonic nanoseconds to microseconds.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["load_records", "to_chrome", "export_chrome"]


def load_records(path: str) -> List[dict]:
    """Load span-log records from a ``spans.jsonl`` file, an obs
    directory, or a run directory containing ``obs/``.

    Torn trailing lines (a crash mid-write) are skipped, mirroring the
    run journal's tolerance.
    """
    files = _span_files(path)
    if not files:
        raise FileNotFoundError(f"no span log found under {path!r}")
    return _load_files(files)


def _load_files(files: List[str]) -> List[dict]:
    records: List[dict] = []
    for fname in files:
        with open(fname, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn tail
                if isinstance(rec, dict):
                    records.append(rec)
    return records


def _span_files(path: str) -> List[str]:
    if os.path.isfile(path):
        return [path]
    # prefer the obs/ subdir: a run directory also holds journal.jsonl,
    # which is the resilience journal, not a span log
    for base in (os.path.join(path, "obs"), path):
        if not os.path.isdir(base):
            continue
        found = sorted(
            os.path.join(base, f) for f in os.listdir(base)
            if f.startswith("spans") and f.endswith(".jsonl")
        )
        if found:
            return found
    return []


def to_chrome(records: Iterable[dict]) -> Dict[str, object]:
    """Build the Chrome ``traceEvents`` object from span-log records."""
    spans = [r for r in records if r.get("k") == "span"]
    counters = [r for r in records if r.get("k") == "counters"]
    t_min = min((r["ts"] for r in spans), default=0)
    events: List[dict] = []
    seen_procs: Dict[Tuple[int, int], None] = {}
    for r in spans:
        ev = {
            "name": r.get("name", "?"),
            "cat": r.get("cat", "repro"),
            "ph": "X",
            "ts": (r["ts"] - t_min) / 1000.0,
            "dur": r.get("dur", 0) / 1000.0,
            "pid": r.get("pid", 0),
            "tid": r.get("tid", 0),
        }
        args = dict(r.get("args") or {})
        if "path" in r:
            args["path"] = r["path"]
        if "error" in r:
            args["error"] = r["error"]
        if args:
            ev["args"] = args
        events.append(ev)
        seen_procs.setdefault((ev["pid"], ev["tid"]), None)
    t_end = max(
        ((r["ts"] - t_min) + r.get("dur", 0) for r in spans), default=0
    ) / 1000.0
    for rec in counters:
        for name, value in sorted((rec.get("counters") or {}).items()):
            events.append({
                "name": name, "cat": "counters", "ph": "C", "ts": t_end,
                "pid": 0, "tid": 0, "args": {"value": value},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome(path: str, out: Optional[str] = None) -> Tuple[dict, str]:
    """Convert ``path`` (span log / obs dir / run dir) and write the
    Chrome JSON next to it (or to ``out``).  Returns (doc, out_path)."""
    files = _span_files(path)
    if not files:
        raise FileNotFoundError(f"no span log found under {path!r}")
    doc = to_chrome(_load_files(files))
    if out is None:
        out = os.path.join(os.path.dirname(files[0]) or ".",
                           "trace_events.json")
    tmp = out + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    os.replace(tmp, out)
    return doc, out
