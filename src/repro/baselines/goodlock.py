"""Goodlock-style deadlock-pattern reporting [Havelund 2000].

Builds the classic lock-order graph — nodes are locks, an edge
``l1 → l2`` records that some thread acquired ``l2`` while holding
``l1`` — and reports every cycle whose witnessing acquire events form a
deadlock pattern.  No realizability reasoning: reports are *potential*
deadlocks and may be false positives (trace σ1 of Fig. 1a is the
canonical one), which is exactly what makes sound prediction the hard
problem this paper solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.kernels as kernels
from repro.core.patterns import DeadlockPattern, is_deadlock_pattern
from repro.graph.digraph import DiGraph
from repro.graph.johnson import simple_cycles
from repro.trace.events import OP_ACQUIRE
from repro.trace.trace import Trace, as_trace


@dataclass
class GoodlockResult:
    """Potential deadlocks found by lock-order cycle detection."""

    warnings: List[DeadlockPattern] = field(default_factory=list)
    num_cycles: int = 0
    elapsed: float = 0.0

    @property
    def num_warnings(self) -> int:
        return len(self.warnings)


def goodlock(
    trace: Trace,
    max_size: Optional[int] = None,
    max_cycles: Optional[int] = None,
    max_warnings_per_cycle: int = 1,
) -> GoodlockResult:
    """Report cyclic lock-acquisition patterns (unsound).

    For each lock-graph cycle, tries to instantiate it with concrete
    acquire events forming a deadlock pattern, reporting up to
    ``max_warnings_per_cycle`` instantiations.
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    graph: DiGraph
    edge_events: Dict[Tuple[int, int], List[int]]
    built = None
    if kernels.backend() == "numpy":
        from repro.kernels.baselines_np import build_lock_graph_np

        built = build_lock_graph_np(trace)
    if built is not None:
        graph, edge_events = built
    else:
        index = trace.index
        ops, _, targs = trace.compiled.columns()
        held_id = index.held_id
        held_offsets = index.held_offsets
        held_lengths = index.held_lengths
        held_pool = index.held_pool
        kernels.record_dispatch("goodlock", "python", events=len(ops))
        # Lock-order graph over interned lock ids;
        # edge (l1, l2) -> acquire events of l2 performed while holding l1
        edge_events = {}
        graph = DiGraph()
        for idx in range(len(ops)):
            if ops[idx] != OP_ACQUIRE:
                continue
            target = targs[idx]
            hid = held_id[idx]
            off = held_offsets[hid]
            for held in held_pool[off:off + held_lengths[hid]]:
                if held == target:
                    continue
                graph.add_edge(held, target)
                edge_events.setdefault((held, target), []).append(idx)

    result = GoodlockResult()
    for cycle in simple_cycles(graph, max_length=max_size, max_cycles=max_cycles):
        result.num_cycles += 1
        locks = [graph.node_at(i) for i in cycle]
        k = len(locks)
        found = 0
        # Instantiate: event i acquires locks[(i+1)%k] while holding locks[i].
        candidates = [
            edge_events.get((locks[i], locks[(i + 1) % k]), []) for i in range(k)
        ]
        for combo in _product_capped(candidates, cap=10_000):
            if is_deadlock_pattern(trace, combo):
                result.warnings.append(DeadlockPattern(tuple(combo)).canonical())
                found += 1
                if found >= max_warnings_per_cycle:
                    break
    result.elapsed = time.perf_counter() - start
    return result


def _product_capped(lists: List[List[int]], cap: int):
    """Cartesian product, lazily, yielding at most ``cap`` tuples."""
    import itertools

    for n, combo in enumerate(itertools.product(*lists)):
        if n >= cap:
            return
        yield combo
