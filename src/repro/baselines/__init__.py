"""Comparator algorithms for the evaluation (Section 6).

- :mod:`repro.baselines.goodlock` — classic unsound deadlock-pattern
  reporting via lock-order graphs [Havelund 2000].
- :mod:`repro.baselines.naive` — sound SP-deadlock detection that
  checks every *concrete* pattern from scratch (the strawman that
  abstract patterns beat; ablation baseline).
- :mod:`repro.baselines.seqcheck` — re-implementation of SeqCheck's
  published strategy [Cai et al. 2021] (closes every critical section
  it includes; may reverse critical-section order; size-2 only;
  requires well-nested locks).
- :mod:`repro.baselines.dirk` — stand-in for the SMT-based Dirk
  [Kalhauge & Palsberg 2018]: windowed exhaustive search with optional
  value relaxation, reproducing both its extra finds and its
  documented unsoundness (Appendix D).
"""

from repro.baselines.goodlock import GoodlockResult, goodlock
from repro.baselines.naive import NaiveResult, naive_sp_detector
from repro.baselines.seqcheck import SeqCheckResult, seqcheck
from repro.baselines.dirk import DirkResult, dirk
from repro.baselines.undead import UndeadResult, undead

__all__ = [
    "GoodlockResult",
    "goodlock",
    "NaiveResult",
    "naive_sp_detector",
    "SeqCheckResult",
    "seqcheck",
    "DirkResult",
    "dirk",
    "UndeadResult",
    "undead",
]
