"""SeqCheck-style sound deadlock prediction [Cai et al. 2021].

A behavioral re-implementation of the published strategy, faithful to
the three properties the paper relies on (Section 6.1 and Appendix C):

1. It closes **every** critical section that enters the candidate
   reordering, except the ones the deadlock events hold at the stall
   point.  (SPDOffline instead may leave the per-lock *latest* included
   critical section open — Fig. 5 separates the two.)
2. It may **reverse** the order of critical sections on the same lock —
   it is not sync-bounded.  (Fig. 6's second deadlock separates the two
   in the other direction.)
3. It handles only deadlocks of size 2 and **fails on traces with
   non-well-nested critical sections** (hsqldb in Table 1).

Per concrete size-2 pattern it computes the "closed-critical-section
closure" of the pattern's predecessors (a fix-point, O(N·T)), rejects
when a pattern event falls inside, and then validates schedulability of
the closure set with a bounded interleaving search (SeqCheck's clever
polynomial ordering is replaced by search; on benchmark-shaped inputs
the first greedy schedule almost always works).  Checking every
concrete pattern is what makes it polynomially slower than SPDOffline
on pattern-rich traces — the 21×/200× gaps of Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.patterns import DeadlockPattern, DeadlockReport
from repro.core.alg import abstract_deadlock_patterns
from repro.trace.trace import Trace
from repro.trace.wellformed import has_well_nested_locks


class SeqCheckFailure(Exception):
    """SeqCheck cannot analyze this trace (non-well-nested locks)."""


@dataclass
class SeqCheckResult:
    reports: List[DeadlockReport] = field(default_factory=list)
    patterns_checked: int = 0
    elapsed: float = 0.0
    failed: bool = False

    @property
    def num_deadlocks(self) -> int:
        return len(self.reports)


def _closed_cs_closure(
    trace: Trace, seeds: Sequence[int], allowed_open: Set[int]
) -> Set[int]:
    """Fix-point: TO/rf/fork/join downward closure + close every
    critical section not in ``allowed_open``.

    One uniform worklist: every event entering the set goes through the
    same handler, whichever rule pulled it in.  (An earlier version
    special-cased fork causality in a side loop that skipped the join
    rule; on the Appendix D FalseDeadlock1 trace that dropped the
    joined child's events from the closure and produced an unsound
    report — caught by the corpus golden tests.)
    """
    fork_of: Dict[str, int] = {}
    for ev in trace:
        if ev.is_fork and ev.target not in fork_of:
            fork_of[ev.target] = ev.idx

    out: Set[int] = set()
    work: List[int] = list(seeds)
    while work:
        idx = work.pop()
        if idx in out:
            continue
        out.add(idx)
        ev = trace[idx]
        pred = trace.thread_predecessor(idx)
        if pred is not None:
            if pred not in out:
                work.append(pred)
        else:
            f = fork_of.get(ev.thread)
            if f is not None and f not in out:
                work.append(f)
        if ev.is_read:
            w = trace.rf(idx)
            if w is not None and w not in out:
                work.append(w)
        if ev.is_join:
            child = trace.events_of_thread(ev.target)
            if child and child[-1] not in out:
                work.append(child[-1])
        if ev.is_acquire and idx not in allowed_open:
            rel = trace.match(idx)
            if rel is not None and rel not in out:
                work.append(rel)
    return out


def _schedulable(
    trace: Trace, events: Set[int], stall: Dict[str, int], budget: int = 200_000
) -> bool:
    """Can ``events`` be interleaved into a correct reordering?

    ``stall`` maps pattern threads to the per-thread position they must
    stop at.  DFS over per-thread progress with memoization; critical
    sections may be scheduled in any (lock-exclusive, rf-respecting)
    order — this is where SeqCheck out-reaches sync-preservation.
    """
    threads = [t for t in trace.threads]
    slot_of = {t: i for i, t in enumerate(threads)}
    per_thread: List[List[int]] = []
    for t in threads:
        evs = [i for i in trace.events_of_thread(t) if i in events]
        # The closure is TO-downward closed, so evs is a prefix.
        per_thread.append(evs)
    fork_of: Dict[str, int] = {}
    for ev in trace:
        if ev.is_fork and ev.target not in fork_of:
            fork_of[ev.target] = ev.idx
    n = len(threads)
    positions = [0] * n
    owner: Dict[str, int] = {}
    last_write: Dict[str, Optional[int]] = {}
    visited: Set[Tuple] = set()
    states = 0

    def done() -> bool:
        return all(positions[i] == len(per_thread[i]) for i in range(n))

    def dfs() -> bool:
        nonlocal states
        if done():
            return True
        key = (tuple(positions), tuple(sorted(last_write.items())))
        if key in visited:
            return False
        visited.add(key)
        states += 1
        if states > budget:
            raise SeqCheckBudget(states)
        for s in range(n):
            if positions[s] >= len(per_thread[s]):
                continue
            idx = per_thread[s][positions[s]]
            ev = trace[idx]
            if positions[s] == 0:
                f = fork_of.get(ev.thread)
                if f is not None:
                    ft, fpos = trace.thread_position(f)
                    fslot = slot_of[ft]
                    scheduled = per_thread[fslot][: positions[fslot]]
                    if f not in scheduled:
                        continue
            if ev.is_acquire and ev.target in owner:
                continue
            if ev.is_release and owner.get(ev.target) != s:
                continue
            if ev.is_read and last_write.get(ev.target) != trace.rf(idx):
                continue
            if ev.is_join:
                cslot = threads.index(ev.target) if ev.target in threads else None
                if cslot is not None and positions[cslot] < len(per_thread[cslot]):
                    continue
            positions[s] += 1
            saved = None
            if ev.is_acquire:
                owner[ev.target] = s
            elif ev.is_release:
                del owner[ev.target]
            elif ev.is_write:
                saved = last_write.get(ev.target, "absent")
                last_write[ev.target] = idx
            ok = dfs()
            positions[s] -= 1
            if ev.is_acquire:
                del owner[ev.target]
            elif ev.is_release:
                owner[ev.target] = s
            elif ev.is_write:
                if saved == "absent":
                    last_write.pop(ev.target, None)
                else:
                    last_write[ev.target] = saved
            if ok:
                return True
        return False

    return dfs()


class SeqCheckBudget(Exception):
    """Schedulability search exceeded its state budget."""


def seqcheck(
    trace: Trace,
    max_patterns: Optional[int] = None,
    schedule_budget: int = 200_000,
    first_hit_per_abstract: bool = True,
) -> SeqCheckResult:
    """Run the SeqCheck-style analysis on ``trace`` (size-2 deadlocks).

    Raises :class:`SeqCheckFailure` on non-well-nested locks (matching
    the tool's documented failure on hsqldb).
    """
    from repro.trace.compiled import ensure_trace

    trace = ensure_trace(trace)
    start = time.perf_counter()
    if not has_well_nested_locks(trace):
        raise SeqCheckFailure(f"{trace.name}: critical sections not well nested")

    result = SeqCheckResult()
    _, abstracts = abstract_deadlock_patterns(trace, max_size=2)
    for abstract in abstracts:
        for pattern in abstract.instantiations():
            if max_patterns is not None and result.patterns_checked >= max_patterns:
                result.elapsed = time.perf_counter() - start
                return result
            result.patterns_checked += 1
            if _check_pattern(trace, pattern, schedule_budget):
                result.reports.append(
                    DeadlockReport.from_pattern(trace, pattern, abstract)
                )
                if first_hit_per_abstract:
                    break
    result.elapsed = time.perf_counter() - start
    return result


def _check_pattern(
    trace: Trace, pattern: DeadlockPattern, schedule_budget: int
) -> bool:
    a, b = pattern.events
    # The critical sections held at the stall points may stay open.
    allowed_open: Set[int] = set()
    stall: Dict[str, int] = {}
    for e in (a, b):
        t, pos = trace.thread_position(e)
        stall[t] = pos
        open_acqs = _open_acquires_before(trace, e)
        allowed_open.update(open_acqs)
    preds = [
        p for p in (trace.thread_predecessor(e) for e in (a, b)) if p is not None
    ]
    closure = _closed_cs_closure(trace, preds, allowed_open)
    # A pattern event (or anything at/after the stall point) inside the
    # closure makes the deadlock unrealizable under this strategy.
    for idx in closure:
        t, pos = trace.thread_position(idx)
        if t in stall and pos >= stall[t]:
            return False
    try:
        return _schedulable(trace, closure, stall, budget=schedule_budget)
    except SeqCheckBudget:
        # Out of budget: the closure test already passed; report
        # optimistically (documented deviation; exercised only by
        # adversarial schedules, not benchmark workloads).
        return True


def _open_acquires_before(trace: Trace, e: int) -> List[int]:
    """Acquire events of the critical sections open at ``e``."""
    t, _ = trace.thread_position(e)
    out = []
    for idx in trace.events_of_thread(t):
        if idx >= e:
            break
        ev = trace[idx]
        if ev.is_acquire:
            rel = trace.match(idx)
            if rel is None or rel > e:
                out.append(idx)
    return out
