"""SeqCheck-style sound deadlock prediction [Cai et al. 2021].

A behavioral re-implementation of the published strategy, faithful to
the three properties the paper relies on (Section 6.1 and Appendix C):

1. It closes **every** critical section that enters the candidate
   reordering, except the ones the deadlock events hold at the stall
   point.  (SPDOffline instead may leave the per-lock *latest* included
   critical section open — Fig. 5 separates the two.)
2. It may **reverse** the order of critical sections on the same lock —
   it is not sync-bounded.  (Fig. 6's second deadlock separates the two
   in the other direction.)
3. It handles only deadlocks of size 2 and **fails on traces with
   non-well-nested critical sections** (hsqldb in Table 1).

Per concrete size-2 pattern it computes the "closed-critical-section
closure" of the pattern's predecessors (a fix-point, O(N·T)), rejects
when a pattern event falls inside, and then validates schedulability of
the closure set with a bounded interleaving search (SeqCheck's clever
polynomial ordering is replaced by search; on benchmark-shaped inputs
the first greedy schedule almost always works).  Checking every
concrete pattern is what makes it polynomially slower than SPDOffline
on pattern-rich traces — the 21×/200× gaps of Table 1.

All the internals operate on :class:`~repro.trace.index.TraceIndex`
int columns: threads, locks, and variables are interned ids, the
closures and schedulability search walk flat arrays, and no ``Event``
object is ever materialized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.patterns import DeadlockPattern, DeadlockReport
from repro.core.alg import abstract_deadlock_patterns
from repro.trace.events import (
    OP_ACQUIRE,
    OP_JOIN,
    OP_READ,
    OP_RELEASE,
    OP_WRITE,
)
from repro.trace.trace import Trace, as_trace
from repro.trace.wellformed import has_well_nested_locks


class SeqCheckFailure(Exception):
    """SeqCheck cannot analyze this trace (non-well-nested locks)."""


@dataclass
class SeqCheckResult:
    reports: List[DeadlockReport] = field(default_factory=list)
    patterns_checked: int = 0
    elapsed: float = 0.0
    failed: bool = False

    @property
    def num_deadlocks(self) -> int:
        return len(self.reports)


def _closed_cs_closure(
    trace: Trace, seeds, allowed_open: Set[int], fork_of: Dict[int, int]
) -> Set[int]:
    """Fix-point: TO/rf/fork/join downward closure + close every
    critical section not in ``allowed_open``.

    One uniform worklist: every event entering the set goes through the
    same handler, whichever rule pulled it in.  (An earlier version
    special-cased fork causality in a side loop that skipped the join
    rule; on the Appendix D FalseDeadlock1 trace that dropped the
    joined child's events from the closure and produced an unsound
    report — caught by the corpus golden tests.)
    """
    index = trace.index
    ops, tids, targs = trace.compiled.columns()
    rf = index.rf
    match = index.match
    thread_pred = index.thread_pred
    events_by_thread = index.events_by_thread

    out: Set[int] = set()
    work: List[int] = list(seeds)
    while work:
        idx = work.pop()
        if idx in out:
            continue
        out.add(idx)
        op = ops[idx]
        pred = thread_pred[idx]
        if pred >= 0:
            if pred not in out:
                work.append(pred)
        else:
            f = fork_of.get(tids[idx])
            if f is not None and f not in out:
                work.append(f)
        if op == OP_READ:
            w = rf[idx]
            if w >= 0 and w not in out:
                work.append(w)
        elif op == OP_JOIN:
            child = events_by_thread[targs[idx]]
            if child and child[-1] not in out:
                work.append(child[-1])
        elif op == OP_ACQUIRE and idx not in allowed_open:
            rel = match[idx]
            if rel >= 0 and rel not in out:
                work.append(rel)
    return out


def _schedulable(
    trace: Trace, events: Set[int], stall: Dict[int, int],
    fork_of: Dict[int, int], budget: int = 200_000
) -> bool:
    """Can ``events`` be interleaved into a correct reordering?

    ``stall`` maps pattern thread ids to the per-thread position they
    must stop at.  DFS over per-thread progress with memoization;
    critical sections may be scheduled in any (lock-exclusive,
    rf-respecting) order — this is where SeqCheck out-reaches
    sync-preservation.
    """
    index = trace.index
    ops, tids, targs = trace.compiled.columns()
    rf = index.rf
    thread_pos = index.thread_pos
    threads = list(index.thread_order)          # tids, appearance order
    slot_of = {t: i for i, t in enumerate(threads)}
    per_thread: List[List[int]] = []
    for t in threads:
        evs = [i for i in index.events_by_thread[t] if i in events]
        # The closure is TO-downward closed, so evs is a prefix.
        per_thread.append(evs)
    n = len(threads)
    positions = [0] * n
    owner: Dict[int, int] = {}                  # lock id -> slot
    last_write: Dict[int, Optional[int]] = {}   # var id -> event
    visited: Set[Tuple] = set()
    states = 0

    def done() -> bool:
        return all(positions[i] == len(per_thread[i]) for i in range(n))

    def dfs() -> bool:
        nonlocal states
        if done():
            return True
        key = (tuple(positions), tuple(sorted(last_write.items())))
        if key in visited:
            return False
        visited.add(key)
        states += 1
        if states > budget:
            raise SeqCheckBudget(states)
        for s in range(n):
            if positions[s] >= len(per_thread[s]):
                continue
            idx = per_thread[s][positions[s]]
            op = ops[idx]
            target = targs[idx]
            if positions[s] == 0:
                f = fork_of.get(tids[idx])
                if f is not None:
                    fslot = slot_of[tids[f]]
                    scheduled = per_thread[fslot][: positions[fslot]]
                    if f not in scheduled:
                        continue
            if op == OP_ACQUIRE and target in owner:
                continue
            if op == OP_RELEASE and owner.get(target) != s:
                continue
            if op == OP_READ and last_write.get(target) != (
                rf[idx] if rf[idx] >= 0 else None
            ):
                continue
            if op == OP_JOIN:
                cslot = slot_of.get(target)
                if cslot is not None and positions[cslot] < len(per_thread[cslot]):
                    continue
            positions[s] += 1
            saved = None
            if op == OP_ACQUIRE:
                owner[target] = s
            elif op == OP_RELEASE:
                del owner[target]
            elif op == OP_WRITE:
                saved = last_write.get(target, "absent")
                last_write[target] = idx
            ok = dfs()
            positions[s] -= 1
            if op == OP_ACQUIRE:
                del owner[target]
            elif op == OP_RELEASE:
                owner[target] = s
            elif op == OP_WRITE:
                if saved == "absent":
                    last_write.pop(target, None)
                else:
                    last_write[target] = saved
            if ok:
                return True
        return False

    return dfs()


class SeqCheckBudget(Exception):
    """Schedulability search exceeded its state budget."""


def seqcheck(
    trace: Trace,
    max_patterns: Optional[int] = None,
    schedule_budget: int = 200_000,
    first_hit_per_abstract: bool = True,
) -> SeqCheckResult:
    """Run the SeqCheck-style analysis on ``trace`` (size-2 deadlocks).

    Raises :class:`SeqCheckFailure` on non-well-nested locks (matching
    the tool's documented failure on hsqldb).
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    if not has_well_nested_locks(trace):
        raise SeqCheckFailure(f"{trace.name}: critical sections not well nested")

    result = SeqCheckResult()
    _, abstracts = abstract_deadlock_patterns(trace, max_size=2)
    fork_of = trace.index.fork_of
    for abstract in abstracts:
        for pattern in abstract.instantiations():
            if max_patterns is not None and result.patterns_checked >= max_patterns:
                result.elapsed = time.perf_counter() - start
                return result
            result.patterns_checked += 1
            if _check_pattern(trace, pattern, schedule_budget, fork_of):
                result.reports.append(
                    DeadlockReport.from_pattern(trace, pattern, abstract)
                )
                if first_hit_per_abstract:
                    break
    result.elapsed = time.perf_counter() - start
    return result


def _check_pattern(
    trace: Trace, pattern: DeadlockPattern, schedule_budget: int,
    fork_of: Dict[int, int]
) -> bool:
    index = trace.index
    tids = trace.compiled.thread_ids
    thread_pos = index.thread_pos
    thread_pred = index.thread_pred
    a, b = pattern.events
    # The critical sections held at the stall points may stay open.
    allowed_open: Set[int] = set()
    stall: Dict[int, int] = {}
    for e in (a, b):
        stall[tids[e]] = thread_pos[e]
        allowed_open.update(_open_acquires_before(trace, e))
    preds = [p for p in (thread_pred[a], thread_pred[b]) if p >= 0]
    closure = _closed_cs_closure(trace, preds, allowed_open, fork_of)
    # A pattern event (or anything at/after the stall point) inside the
    # closure makes the deadlock unrealizable under this strategy.
    for idx in closure:
        t = tids[idx]
        if t in stall and thread_pos[idx] >= stall[t]:
            return False
    try:
        return _schedulable(trace, closure, stall, fork_of,
                            budget=schedule_budget)
    except SeqCheckBudget:
        # Out of budget: the closure test already passed; report
        # optimistically (documented deviation; exercised only by
        # adversarial schedules, not benchmark workloads).
        return True


def _open_acquires_before(trace: Trace, e: int) -> List[int]:
    """Acquire events of the critical sections open at ``e``."""
    index = trace.index
    ops = trace.compiled.ops
    match = index.match
    out = []
    for idx in index.events_by_thread[trace.compiled.thread_ids[e]]:
        if idx >= e:
            break
        if ops[idx] == OP_ACQUIRE:
            rel = match[idx]
            if rel < 0 or rel > e:
                out.append(idx)
    return out
