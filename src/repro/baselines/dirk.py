"""Dirk-style deadlock prediction [Kalhauge & Palsberg 2018] — stand-in.

Dirk encodes deadlock realizability into SMT constraints and solves
windows of the trace independently (window size 10K in the paper's
setup).  There is no SMT solver offline, so this stand-in replaces the
solver with an exhaustive interleaving search per window — observably
equivalent on window-sized subproblems, with the same characteristic
behaviors the evaluation depends on:

- **Windowing**: deadlock patterns spanning two windows are missed.
- **Timeouts**: a wall-clock budget per trace; exceeding it marks the
  run as timed out with partial results (Table 1's T.O entries).
- **Value relaxation** (``relax_values=True``): Dirk models conditional
  control flow and lets reads change writers, so it finds deadlocks
  beyond correct reorderings (Transfer, Deadlock, HashMap in Table 1).
  Dirk reads the program's conditionals, which traces do not record;
  we approximate with a location convention — reads whose ``loc``
  starts with ``ctrl:`` are treated as control-flow-relevant and keep
  their writers even under relaxation.  Dirk's own modelling of such
  reads is imprecise (volatile handshakes slip through), which is one
  of its two Appendix D unsoundness modes (FalseDeadlock2) — untagged
  gating reads reproduce exactly that.
- **Missing lock-set condition** (``faithful_unsound=True``): Dirk's
  constraint formulation omits the requirement that deadlocking events
  hold no common lock, and with it the mutual-exclusion constraints
  that guard the cycle; FalseDeadlock1 (Appendix D) is falsely
  reported.  Modelled here by dropping lock-exclusion constraints from
  the witness search and the disjointness check from the pattern scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.patterns import DeadlockPattern, DeadlockReport
from repro.core.windowed import window_slice
from repro.trace.events import (
    OP_ACQUIRE,
    OP_JOIN,
    OP_READ,
    OP_RELEASE,
    OP_WRITE,
)
from repro.trace.trace import Trace, as_trace


@dataclass
class DirkResult:
    reports: List[DeadlockReport] = field(default_factory=list)
    windows: int = 0
    timed_out: bool = False
    elapsed: float = 0.0

    @property
    def num_deadlocks(self) -> int:
        return len(self.reports)


def dirk(
    trace: Trace,
    window: int = 10_000,
    timeout: Optional[float] = None,
    relax_values: bool = True,
    faithful_unsound: bool = False,
    search_budget: int = 300_000,
) -> DirkResult:
    """Run the Dirk stand-in over ``trace``.

    Args:
        trace: input trace.
        window: window size in events (paper setting: 10K).
        timeout: wall-clock seconds before giving up (Table 1: 3h).
        relax_values: value-relaxed witnesses (reads may change writers).
        faithful_unsound: also reproduce the missing common-lock-set
            condition (Appendix D, FalseDeadlock1).
        search_budget: per-pattern state budget of the witness search.
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    result = DirkResult()
    seen: Set[Tuple[int, ...]] = set()
    for lo in range(0, len(trace), window):
        if timeout is not None and time.perf_counter() - start > timeout:
            result.timed_out = True
            break
        result.windows += 1
        hi = min(lo + window, len(trace))
        sub, back = window_slice(trace, lo, hi)
        deadline = None if timeout is None else start + timeout
        for pattern in _window_patterns(sub, faithful_unsound):
            if timeout is not None and time.perf_counter() - start > timeout:
                result.timed_out = True
                break
            if _quick_refute(sub, pattern, check_rf=not relax_values):
                continue  # program order + tracked reads already forbid it
            ok = _witness_search(
                sub,
                pattern,
                check_rf=not relax_values,
                check_locks=not faithful_unsound,
                budget=search_budget,
                deadline=deadline,
            )
            if ok:
                original = tuple(sorted(back[e] for e in pattern))
                if original not in seen:
                    seen.add(original)
                    result.reports.append(
                        DeadlockReport.from_pattern(trace, DeadlockPattern(original))
                    )
        if result.timed_out:
            break
    result.elapsed = time.perf_counter() - start
    return result


def _window_patterns(sub: Trace, faithful_unsound: bool) -> List[Tuple[int, ...]]:
    """Candidate patterns within a window, any size (Dirk's SMT encoding
    is not size-limited — it finds DiningPhil's size-5 deadlock).

    With ``faithful_unsound`` the disjoint-held-sets condition is
    dropped from size-2 pairs (the encoding omission); the
    cyclic-acquisition conditions remain.
    """
    from repro.baselines.goodlock import goodlock

    out: List[Tuple[int, ...]] = [
        tuple(w.events) for w in goodlock(sub, max_size=6, max_cycles=5_000).warnings
    ]
    if faithful_unsound:
        index = sub.index
        ops, tids, targs = sub.compiled.columns()
        held_id = index.held_id
        held_lengths = index.held_lengths
        held_frozen = index.held_frozen
        seen = {frozenset(p) for p in out}
        acquires = [
            i for i in range(len(ops))
            if ops[i] == OP_ACQUIRE and held_lengths[held_id[i]]
        ]
        for i, a in enumerate(acquires):
            held_a = held_frozen(a)
            for b in acquires[i + 1:]:
                if tids[a] == tids[b] or targs[a] == targs[b]:
                    continue
                if targs[a] not in held_frozen(b) or targs[b] not in held_a:
                    continue
                if frozenset((a, b)) not in seen:
                    seen.add(frozenset((a, b)))
                    out.append((a, b))
    return out


def _quick_refute(trace: Trace, pattern: Tuple[int, ...], check_rf: bool) -> bool:
    """Cheap necessary-condition check before the expensive search.

    Computes the downward closure of the pattern's thread predecessors
    under program order plus the reads-from edges the encoding tracks
    (all reads when ``check_rf``, only ``ctrl:``-tagged reads under
    relaxation) and fork/join.  If the closure reaches a pattern event
    or its thread-order successor region, no witness can exist and the
    interleaving search is skipped.
    """
    index = trace.index
    ops, tids, targs = trace.compiled.columns()
    locs = trace.compiled.locs
    rf = index.rf
    thread_pos = index.thread_pos
    thread_pred = index.thread_pred
    fork_of = index.fork_of

    stall: Dict[int, int] = {}
    for e in pattern:
        t = tids[e]
        if t in stall:
            return True
        stall[t] = thread_pos[e]

    work = [p for p in (thread_pred[e] for e in pattern) if p >= 0]
    seen: Set[int] = set(work)
    while work:
        idx = work.pop()
        t = tids[idx]
        pos = thread_pos[idx]
        if t in stall and pos >= stall[t]:
            return True  # closure swallows a stall point
        preds = [thread_pred[idx] if thread_pred[idx] >= 0 else None]
        op = ops[idx]
        if pos == 0:
            preds.append(fork_of.get(t))
        if op == OP_READ:
            loc = locs.get(idx)
            if check_rf or (loc is not None and loc.startswith("ctrl:")):
                w = rf[idx]
                preds.append(w if w >= 0 else None)
        elif op == OP_JOIN:
            child = index.events_by_thread[targs[idx]]
            if child:
                preds.append(child[-1])
        for p in preds:
            if p is not None and p not in seen:
                seen.add(p)
                work.append(p)
    return False


def _witness_search(
    trace: Trace,
    pattern: Tuple[int, int],
    check_rf: bool,
    check_locks: bool,
    budget: int,
    deadline: Optional[float] = None,
) -> bool:
    """Bounded interleaving search standing in for the SMT query.

    Decides whether both pattern events can be simultaneously enabled
    under program order, fork/join causality, and — depending on the
    flags — reads-from preservation and lock mutual exclusion.
    """
    index = trace.index
    ops, tids, targs = trace.compiled.columns()
    locs = trace.compiled.locs
    rf = index.rf
    thread_pos = index.thread_pos
    threads = list(index.thread_order)              # tids, appearance order
    slot_of = {t: i for i, t in enumerate(threads)}
    per_thread = [index.events_by_thread[t] for t in threads]
    fork_of = index.fork_of

    target: Dict[int, int] = {}
    for e in pattern:
        slot = slot_of[tids[e]]
        if slot in target:
            return False
        target[slot] = thread_pos[e]

    n = len(threads)
    positions = [0] * n
    owner: Dict[int, int] = {}                      # lock id -> slot
    last_write: Dict[int, Optional[int]] = {}       # var id -> event
    visited: Set[Tuple] = set()
    states = 0

    def _is_ctrl_read(idx: int) -> bool:
        loc = locs.get(idx)
        return loc is not None and loc.startswith("ctrl:")

    # Writers must be tracked whenever any read's value can constrain
    # the schedule — always under check_rf, and for ctrl: reads even
    # under relaxation.  Locations are sparse, so scan the loc map, not
    # the trace.
    track_rf = check_rf or any(
        ops[idx] == OP_READ and loc.startswith("ctrl:")
        for idx, loc in locs.items()
    )

    def goal() -> bool:
        return all(positions[s] == p for s, p in target.items())

    def try_apply(s: int):
        """Apply thread s's next event; return undo info or None."""
        pos = positions[s]
        if pos >= len(per_thread[s]):
            return None
        if s in target and pos >= target[s]:
            return None
        idx = per_thread[s][pos]
        op = ops[idx]
        tgt = targs[idx]
        if pos == 0:
            f = fork_of.get(tids[idx])
            if f is not None:
                if positions[slot_of[tids[f]]] <= thread_pos[f]:
                    return None
        if check_locks and op == OP_ACQUIRE and tgt in owner:
            return None
        if check_locks and op == OP_RELEASE and owner.get(tgt) != s:
            return None
        if op == OP_READ and (check_rf or _is_ctrl_read(idx)):
            if last_write.get(tgt) != (rf[idx] if rf[idx] >= 0 else None):
                return None
        if op == OP_JOIN:
            cslot = slot_of.get(tgt)
            if cslot is not None and positions[cslot] < len(per_thread[cslot]):
                return None
        positions[s] += 1
        saved = ("none", None)
        if check_locks and op == OP_ACQUIRE:
            owner[tgt] = s
            saved = ("acq", tgt)
        elif check_locks and op == OP_RELEASE:
            del owner[tgt]
            saved = ("rel", tgt)
        elif track_rf and op == OP_WRITE:
            saved = ("write", (tgt, last_write.get(tgt, "absent")))
            last_write[tgt] = idx
        return (s, saved)

    def undo(applied) -> None:
        s, (kind, data) = applied
        positions[s] -= 1
        if kind == "acq":
            del owner[data]
        elif kind == "rel":
            owner[data] = s
        elif kind == "write":
            var, old = data
            if old == "absent":
                last_write.pop(var, None)
            else:
                last_write[var] = old

    # Explicit DFS stack: each frame is (choice_iter, applied_or_None).
    if goal():
        return True
    stack = [[iter(range(n)), None]]
    visited.add(
        (tuple(positions), tuple(sorted(last_write.items())) if track_rf else ())
    )
    while stack:
        frame = stack[-1]
        advanced = False
        for s in frame[0]:
            applied = try_apply(s)
            if applied is None:
                continue
            if goal():
                return True
            key = (
                tuple(positions),
                tuple(sorted(last_write.items())) if track_rf else (),
            )
            if key in visited:
                undo(applied)
                continue
            visited.add(key)
            states += 1
            if states > budget:
                return False  # solver "unknown": report nothing
            if (
                deadline is not None
                and states % 1024 == 0
                and time.perf_counter() > deadline
            ):
                return False
            stack.append([iter(range(n)), applied])
            advanced = True
            break
        if not advanced:
            _, applied = stack.pop()
            if applied is not None:
                undo(applied)
    return False
