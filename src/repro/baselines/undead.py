"""UNDEAD-style abstract lock-dependency detection [Zhou et al. 2017].

UNDEAD records per-thread lock dependencies ``(t, l, L)`` — thread t
acquired l while holding the set L — deduplicated, and reports cyclic
chains among them.  That is precisely a cycle over this library's
*abstract acquires*, minus any realizability checking: the same
candidate set SPDOffline starts from, reported as-is.

Positioned in the precision ladder between Goodlock (concrete-event
cycles, one warning per concrete cycle) and SPDOffline (abstract
cycles *verified* against sync-preserving reorderings): UNDEAD's
warning count equals the abstract-deadlock-pattern count, its memory
is bounded by distinct dependencies rather than trace length, and its
false positives are exactly the unverified patterns the Section 6.1
audit classifies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.alg import abstract_deadlock_patterns
from repro.core.patterns import AbstractDeadlockPattern
from repro.trace.trace import Trace, as_trace


@dataclass
class UndeadResult:
    """Abstract-level deadlock warnings (unsound: no realizability)."""

    warnings: List[AbstractDeadlockPattern] = field(default_factory=list)
    num_dependencies: int = 0
    elapsed: float = 0.0

    @property
    def num_warnings(self) -> int:
        return len(self.warnings)


def undead(
    trace: Trace,
    max_size: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> UndeadResult:
    """Report every abstract deadlock pattern as a warning."""
    trace = as_trace(trace)
    start = time.perf_counter()
    from repro.locks.abstract import collect_abstract_acquire_ids

    deps = collect_abstract_acquire_ids(trace)
    _, patterns = abstract_deadlock_patterns(
        trace, max_size=max_size, max_cycles=max_cycles
    )
    return UndeadResult(
        warnings=patterns,
        num_dependencies=len(deps),
        elapsed=time.perf_counter() - start,
    )
