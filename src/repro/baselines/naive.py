"""Naive sound detector: check every concrete pattern from scratch.

The strawman that Section 4.4's abstract deadlock patterns beat.  It
enumerates the concrete instantiations of every abstract deadlock
pattern and runs a *fresh* sync-preserving-closure computation per
instantiation — O(N·T) each, so O(N·T·#concrete) total, versus
SPDOffline's O(N·T·#abstract).  Same reports (sound and complete for
sync-preserving deadlocks); used as the ablation baseline quantifying
the abstract-pattern speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.alg import abstract_deadlock_patterns
from repro.core.closure import SPClosureEngine
from repro.core.patterns import DeadlockReport
from repro.trace.trace import Trace, as_trace
from repro.vc.timestamps import TRFTimestamps


@dataclass
class NaiveResult:
    """Reports plus the number of per-pattern closure computations."""

    reports: List[DeadlockReport] = field(default_factory=list)
    patterns_checked: int = 0
    elapsed: float = 0.0

    @property
    def num_deadlocks(self) -> int:
        return len(self.reports)


def naive_sp_detector(
    trace: Trace,
    max_size: Optional[int] = None,
    max_patterns: Optional[int] = None,
    first_hit_per_abstract: bool = True,
) -> NaiveResult:
    """Check each concrete deadlock pattern independently.

    Args:
        trace: input trace.
        max_size: optional deadlock-size cap.
        max_patterns: optional cap on checked instantiations (the
            concrete count can be astronomically larger than the
            abstract count — Vector in Table 1 encodes 10^9).
        first_hit_per_abstract: stop checking an abstract pattern's
            instantiations after the first confirmed deadlock, matching
            SPDOffline's per-abstract-pattern reporting.
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    result = NaiveResult()
    timestamps = TRFTimestamps(trace)
    _, abstracts = abstract_deadlock_patterns(trace, max_size=max_size)
    for abstract in abstracts:
        for pattern in abstract.instantiations():
            if max_patterns is not None and result.patterns_checked >= max_patterns:
                result.elapsed = time.perf_counter() - start
                return result
            result.patterns_checked += 1
            engine = SPClosureEngine(trace, timestamps)  # fresh cursors
            t0 = engine.pred_timestamp_of_events(pattern.events)
            t_clock = engine.compute(t0)
            if all(not timestamps.leq_clock(e, t_clock) for e in pattern.events):
                result.reports.append(
                    DeadlockReport.from_pattern(trace, pattern, abstract)
                )
                if first_hit_per_abstract:
                    break
    result.elapsed = time.perf_counter() - start
    return result
