"""Naive sound detector: check every concrete pattern from scratch.

The strawman that Section 4.4's abstract deadlock patterns beat.  It
enumerates the concrete instantiations of every abstract deadlock
pattern and runs a *fresh* sync-preserving-closure computation per
instantiation — O(N·T) each, so O(N·T·#concrete) total, versus
SPDOffline's O(N·T·#abstract).  Same reports (sound and complete for
sync-preserving deadlocks); used as the ablation baseline quantifying
the abstract-pattern speedup.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional

import repro.kernels as kernels
from repro.core.alg import abstract_deadlock_patterns
from repro.core.closure import SPClosureEngine
from repro.core.patterns import DeadlockReport
from repro.trace.trace import Trace, as_trace
from repro.vc.timestamps import TRFTimestamps

#: instantiations checked per numpy batch (bounds witness-scan latency)
_NAIVE_CHUNK = 256


@dataclass
class NaiveResult:
    """Reports plus the number of per-pattern closure computations."""

    reports: List[DeadlockReport] = field(default_factory=list)
    patterns_checked: int = 0
    elapsed: float = 0.0

    @property
    def num_deadlocks(self) -> int:
        return len(self.reports)


def naive_sp_detector(
    trace: Trace,
    max_size: Optional[int] = None,
    max_patterns: Optional[int] = None,
    first_hit_per_abstract: bool = True,
) -> NaiveResult:
    """Check each concrete deadlock pattern independently.

    Args:
        trace: input trace.
        max_size: optional deadlock-size cap.
        max_patterns: optional cap on checked instantiations (the
            concrete count can be astronomically larger than the
            abstract count — Vector in Table 1 encodes 10^9).
        first_hit_per_abstract: stop checking an abstract pattern's
            instantiations after the first confirmed deadlock, matching
            SPDOffline's per-abstract-pattern reporting.
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    result = NaiveResult()
    timestamps = TRFTimestamps(trace)
    _, abstracts = abstract_deadlock_patterns(trace, max_size=max_size)
    use_np = kernels.backend() == "numpy"

    def check_one(pattern) -> bool:
        engine = SPClosureEngine(trace, timestamps)  # fresh cursors
        t0 = engine.pred_timestamp_of_events(pattern.events)
        t_clock = engine.compute(t0)
        return all(not timestamps.leq_clock(e, t_clock) for e in pattern.events)

    # A concrete pattern is a batch of singleton sequences: the offline
    # kernel's sequence check degenerates to exactly the all-outside
    # test above, so instantiations can be checked a chunk at a time.
    # Counting stays bit-faithful to the python loop: hits mid-chunk
    # discard the over-computed tail, and the max_patterns cap bounds
    # the chunk size up front.
    for abstract in abstracts:
        it = iter(abstract.instantiations())
        while True:
            remaining = (None if max_patterns is None
                         else max_patterns - result.patterns_checked)
            if remaining is not None and remaining <= 0:
                if next(it, None) is None:
                    break
                result.elapsed = time.perf_counter() - start
                kernels.record_dispatch(
                    "naive", "numpy" if use_np else "python",
                    events=result.patterns_checked)
                return result
            size = _NAIVE_CHUNK if remaining is None else min(
                _NAIVE_CHUNK, remaining)
            chunk = list(itertools.islice(it, size))
            if not chunk:
                break
            witnesses = None
            if use_np:
                from repro.kernels.offline_np import check_patterns_batch

                witnesses = check_patterns_batch(
                    trace,
                    [tuple((e,) for e in p.events) for p in chunk],
                    timestamps,
                )
                if witnesses is None:
                    use_np = False
            if witnesses is None:
                witnesses = [check_one(p) or None for p in chunk]
            hit = False
            for pattern, witness in zip(chunk, witnesses):
                result.patterns_checked += 1
                if witness is not None:
                    result.reports.append(
                        DeadlockReport.from_pattern(trace, pattern, abstract)
                    )
                    if first_hit_per_abstract:
                        hit = True
                        break
            if hit:
                break
    kernels.record_dispatch("naive", "numpy" if use_np else "python",
                            events=result.patterns_checked)
    result.elapsed = time.perf_counter() - start
    return result
