"""Command-line interface: ``repro-deadlock`` / ``python -m repro``.

Subcommands:

- ``analyze TRACE``   — run SPDOffline (default) or SPDOnline on a
  trace file in the STD text format and print the deadlock report.
- ``races TRACE``     — sync-preserving data-race prediction.
- ``stats TRACE``     — print the Table-1-style trace characteristics.
- ``generate SPEC``   — synthesize a benchmark-suite trace to stdout.
- ``witness TRACE I J`` — print a witness schedule for a size-2
  pattern, if the pattern is a sync-preserving deadlock.
- ``compare TRACE``   — run every detector and diff the verdicts.
- ``audit TRACE``     — the Section 6.1 false-negative classification.
- ``graph TRACE``     — abstract-lock-graph (or lock-order) DOT dump.
- ``bench run|report|diff`` — whole evaluation campaigns over
  detector×trace matrices (:mod:`repro.exp`), sharded across worker
  processes with ``-j N`` and cached between runs.
- ``bench profile OUT/`` — top-k span tree + counter summary of a
  telemetry-enabled run (or one cell with ``--trace``/``--detector``).
- ``obs export RUN`` — convert a span log (``repro.obs``) to Chrome
  trace-event JSON loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.spd_offline import spd_offline
from repro.core.spd_online import spd_online
from repro.reorder.witness import witness_for_pattern
from repro.synth.suite import SUITE_BY_NAME, build_benchmark
from repro.trace.parser import format_trace, load_trace
from repro.trace.stats import compute_stats


def _print_windowed(args: argparse.Namespace, name: str, result) -> int:
    import json

    if args.json:
        print(json.dumps({
            "trace": name,
            "mode": "windowed",
            "window": args.window,
            "overlap": args.overlap,
            "max_memory_events": args.max_memory_events,
            "windows": result.windows,
            "deadlocks": [
                {"events": list(r.pattern.events),
                 "locations": list(r.locations)}
                for r in result.reports
            ],
            "elapsed_s": result.elapsed,
        }, indent=2))
    else:
        bound = (f", bounded at {args.max_memory_events} events"
                 if args.max_memory_events else "")
        print(f"{name}: {result.num_deadlocks} sync-preserving "
              f"deadlock(s) [windowed, {result.windows} window(s) of "
              f"{args.window}{bound}] in {result.elapsed:.3f}s")
        for r in result.reports:
            evs = ", ".join(f"e{i}" for i in r.pattern.events)
            print(f"  deadlock pattern <{evs}> at {' / '.join(r.locations)}")
    return 0 if result.num_deadlocks == 0 else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    if args.max_memory_events is not None:
        if args.max_memory_events < 1:
            print("--max-memory-events must be >= 1", file=sys.stderr)
            return 2
        if not args.stream and args.window is None:
            print("--max-memory-events requires --stream or --window "
                  "(the batch modes are unbounded by design)",
                  file=sys.stderr)
            return 2
    if args.stream:
        from repro.core.spd_online import SPDOnline
        from repro.stream import StreamSession

        session = StreamSession(name=args.trace,
                                max_memory_events=args.max_memory_events)
        detector = SPDOnline(max_memory_events=args.max_memory_events)
        session.attach(detector)
        import time as _time

        started = _time.perf_counter()
        session.feed_file(args.trace)
        session.close()
        elapsed = _time.perf_counter() - started
        stats = detector.stats()
        if args.json:
            print(json.dumps({
                "trace": args.trace,
                "mode": "stream",
                "max_memory_events": args.max_memory_events,
                "events": stats["events"],
                "evictions": stats["evictions"],
                "tracked_entries": stats["tracked_entries"],
                "deadlocks": [
                    {"events": [r.first_event, r.second_event],
                     "locations": list(r.locations)}
                    for r in detector.reports
                ],
                "elapsed_s": elapsed,
            }, indent=2))
        else:
            bound = (f", bounded at {args.max_memory_events} events, "
                     f"{stats['evictions']} eviction sweep(s)"
                     if args.max_memory_events else "")
            print(f"{args.trace}: {len(detector.reports)} sync-preserving "
                  f"deadlock report(s) [streaming, size 2, "
                  f"{stats['events']} events{bound}] in {elapsed:.3f}s")
            for r in detector.reports:
                print(f"  deadlock between events {r.first_event} and "
                      f"{r.second_event} (locations {r.locations[0]} / "
                      f"{r.locations[1]})")
        return 0 if not detector.reports else 1
    if args.window is not None and args.max_memory_events:
        # Bounded-memory windowed streaming: the file is parsed
        # incrementally and the session evicts everything older than
        # the open window — reports match the batch windowed engine.
        from repro.stream import StreamSession, WindowedSessionClient

        session = StreamSession(name=args.trace,
                                max_memory_events=args.max_memory_events)
        client = WindowedSessionClient(session, window=args.window,
                                       overlap=args.overlap,
                                       max_size=args.max_size)
        session.feed_file(args.trace)
        session.close()
        result = client.result
        return _print_windowed(args, args.trace, result)
    trace = load_trace(args.trace)
    if args.window is not None:
        from repro.core.windowed import spd_offline_windowed

        result = spd_offline_windowed(
            trace, window=args.window, overlap=args.overlap,
            max_size=args.max_size,
        )
        return _print_windowed(args, trace.name, result)
    if args.online:
        result = spd_online(trace)
        if args.json:
            print(json.dumps({
                "trace": trace.name,
                "mode": "online",
                "deadlocks": [
                    {"events": [r.first_event, r.second_event],
                     "locations": list(r.locations)}
                    for r in result.reports
                ],
                "elapsed_s": result.elapsed,
            }, indent=2))
        else:
            print(f"{trace.name}: {result.num_reports} sync-preserving deadlock "
                  f"report(s) [online, size 2] in {result.elapsed:.3f}s")
            for r in result.reports:
                print(f"  deadlock between events {r.first_event} and "
                      f"{r.second_event} (locations {r.locations[0]} / "
                      f"{r.locations[1]})")
        return 0 if result.num_reports == 0 else 1
    if args.shard:
        from repro.exp.shard import ShardError, spd_offline_sharded

        try:
            result = spd_offline_sharded(trace, max_size=args.max_size,
                                         jobs=args.jobs)
        except ShardError as exc:
            print(f"shard cell failed: {exc}", file=sys.stderr)
            return 2
    else:
        result = spd_offline(trace, max_size=args.max_size)
    if args.json:
        print(json.dumps({
            "trace": trace.name,
            "mode": "offline-sharded" if args.shard else "offline",
            "cycles": result.num_cycles,
            "abstract_patterns": result.num_abstract_patterns,
            "concrete_patterns": result.num_concrete_patterns,
            "deadlocks": [
                {"events": list(r.pattern.events), "locations": list(r.locations)}
                for r in result.reports
            ],
            "elapsed_s": result.elapsed,
        }, indent=2))
    else:
        print(f"{trace.name}: {result.num_deadlocks} sync-preserving deadlock(s) "
              f"[{result.num_cycles} cycles, {result.num_abstract_patterns} "
              f"abstract patterns, {result.num_concrete_patterns} concrete] "
              f"in {result.elapsed:.3f}s")
        for r in result.reports:
            evs = ", ".join(f"e{i}" for i in r.pattern.events)
            print(f"  deadlock pattern <{evs}> at {' / '.join(r.locations)}")
    return 0 if result.num_deadlocks == 0 else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    s = compute_stats(trace)
    print(f"name:        {s.name}")
    print(f"events:      {s.num_events}")
    print(f"threads:     {s.num_threads}")
    print(f"variables:   {s.num_variables}")
    print(f"locks:       {s.num_locks}")
    print(f"acquires:    {s.num_acquires} (+{s.num_requests} requests)")
    print(f"nesting:     {s.lock_nesting_depth}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = SUITE_BY_NAME.get(args.benchmark)
    if spec is None:
        print(f"unknown benchmark {args.benchmark!r}; options:", file=sys.stderr)
        print("  " + ", ".join(sorted(SUITE_BY_NAME)), file=sys.stderr)
        return 2
    sys.stdout.write(format_trace(build_benchmark(spec)))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    schedule, ok = witness_for_pattern(trace, (args.first, args.second))
    if not ok:
        print(f"<e{args.first}, e{args.second}> is not a sync-preserving deadlock")
        return 1
    print(f"witness schedule for <e{args.first}, e{args.second}>:")
    for idx in schedule:
        print(f"  {trace[idx]}")
    print(f"  -- both e{args.first} and e{args.second} now enabled: deadlock --")
    return 0


def _cmd_races(args: argparse.Namespace) -> int:
    from repro.core.races import sp_races

    trace = load_trace(args.trace)
    result = sp_races(trace, first_hit_per_pair=not args.all)
    print(f"{trace.name}: {result.num_races} sync-preserving race(s) "
          f"over {result.pairs_considered} conflicting group pair(s) "
          f"in {result.elapsed:.3f}s")
    for r in result.reports:
        print(f"  race on {r.variable}: events {r.first_event}/{r.second_event} "
              f"({r.locations[0]} / {r.locations[1]})")
    return 0 if result.num_races == 0 else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import compare_detectors

    trace = load_trace(args.trace)
    res = compare_detectors(trace, run_dirk=not args.no_dirk)
    print(res.summary())
    for label, bugs in (
        ("only SPDOffline (Fig. 5-style)", res.only_spd()),
        ("only SeqCheck (Fig. 6-style)", res.only_seqcheck()),
        ("only Dirk (value-relaxed)", res.only_dirk()),
    ):
        for bug in sorted(bugs):
            print(f"  {label}: {' / '.join(bug)}")
    for tool, secs in sorted(res.times.items()):
        print(f"  time {tool}: {secs:.3f}s")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.false_negatives import classify_patterns

    trace = load_trace(args.trace)
    report = classify_patterns(trace)
    print(f"{trace.name}: {report.summary()}")
    for cp in report.patterns:
        line = f"  {cp.abstract}: {cp.verdict.value}"
        if cp.witness is not None:
            line += f" (witness {cp.witness})"
        print(line)
    return 0 if report.num_potential_misses == 0 else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis.explain import explain_pattern

    trace = load_trace(args.trace)
    exp = explain_pattern(trace, (args.first, args.second))
    print(exp.render(trace))
    return 0 if exp.is_deadlock else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.trace.profile import profile_trace

    trace = load_trace(args.trace)
    p = profile_trace(trace)
    print(f"{trace.name}: {p.num_events} events, sync ratio "
          f"{100 * p.sync_ratio:.1f}%")
    print("hottest locks:")
    for lp in p.hottest_locks(8):
        shared = "shared" if lp.is_shared else "thread-local"
        print(f"  {lp.lock:20s} {lp.acquisitions:6d} acq  {shared:12s} "
              f"guarded={lp.guarded_acquires} max-span={lp.max_held_span}")
    prone = p.deadlock_prone_locks()
    print(f"deadlock-prone locks ({len(prone)}): {', '.join(prone) or '-'}")
    print("threads:")
    for tp in sorted(p.threads.values(), key=lambda t: -t.events)[:10]:
        print(f"  {tp.thread:12s} {tp.events:6d} events  "
              f"{tp.accesses:6d} accesses  {tp.acquisitions:5d} acq  "
              f"nesting<={tp.max_nesting}")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.graph.dot import alg_to_dot, lock_order_to_dot

    trace = load_trace(args.trace)
    if args.lock_order:
        sys.stdout.write(lock_order_to_dot(trace) + "\n")
    else:
        sys.stdout.write(alg_to_dot(trace) + "\n")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    import json

    from repro.exp.campaign import CampaignError, load_campaign
    from repro.exp.cache import ResultCache
    from repro.exp.report import render_markdown, run_to_json
    from repro.exp.resilience import JOURNAL_NAME, RunJournal, locate_journal
    from repro.exp.runner import InlineRunner, ProcessPoolRunner

    try:
        campaign = load_campaign(args.campaign)
    except (CampaignError, OSError, ValueError) as exc:
        print(f"bad campaign: {exc}", file=sys.stderr)
        return 2
    if args.retries is not None:
        if args.retries < 1:
            print("--retries must be >= 1", file=sys.stderr)
            return 2
        campaign.retry = dict(campaign.retry or {},
                              max_attempts=args.retries)

    resume = None
    if args.resume:
        journal_path = locate_journal(args.resume)
        try:
            resume = RunJournal.load(journal_path)
        except OSError as exc:
            print(f"cannot load journal: {exc}", file=sys.stderr)
            return 2

    out_dir = args.out or os.path.join("bench_runs", campaign.name)
    os.makedirs(out_dir, exist_ok=True)

    # telemetry: --obs wins, then the campaign's [obs] table, then a
    # REPRO_OBS already in the environment.  The CLI exports the env
    # var so pool workers (fork or spawn) inherit the activation.
    import repro.obs as obs

    obs_dir = None
    if args.obs is not None:
        obs_dir = args.obs or os.path.join(out_dir, "obs")
    elif campaign.obs_enabled:
        obs_dir = os.path.join(out_dir, "obs")
    obs_env_before = os.environ.get(obs.ENV_VAR)
    if obs_dir is not None:
        obs_dir = os.path.abspath(obs_dir)
        os.environ[obs.ENV_VAR] = obs_dir
        obs.enable(obs_dir)
    else:
        obs.maybe_enable_from_env()

    cache_dir = os.path.join(out_dir, "cache")
    cache = None if args.no_cache else ResultCache(cache_dir)
    if getattr(args, "fleet", None) is not None:
        from repro.exp.fleet import RemoteRunner

        runner = RemoteRunner(
            queue_dir=args.fleet or None,
            workers=max(args.jobs, 0),   # -j 0: external workers only
            lease_ttl=args.lease_ttl,
            cache_dir=None if args.no_cache else os.path.abspath(cache_dir),
        )
    elif args.shard_contexts:
        from repro.exp.shard import ShardedCampaignRunner

        runner = ShardedCampaignRunner(jobs=args.jobs)
    elif args.jobs <= 1 or args.runner == "inline":
        runner = InlineRunner()
    else:
        runner = ProcessPoolRunner(jobs=args.jobs)

    def progress(res) -> None:
        if not args.quiet:
            mark = ("cached" if res.cached
                    else "journal" if res.replayed else res.status)
            print(f"  [{mark:>7s}] {res.trace_name} × {res.detector_id}",
                  file=sys.stderr)

    with RunJournal(os.path.join(out_dir, JOURNAL_NAME)) as journal:
        journal.start(campaign.name, resumed=resume is not None)
        run = runner.run(campaign, cache=cache, progress=progress,
                         journal=journal, resume=resume)
        journal.finalize(cells=run.num_cells, interrupted=run.interrupted)
    record = run_to_json(run)
    markdown = render_markdown(record)

    run_path = os.path.join(out_dir, "run.json")
    with open(run_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    md_path = os.path.join(out_dir, "report.md")
    with open(md_path, "w", encoding="utf-8") as fh:
        fh.write(markdown)

    if obs.enabled():
        obs.finish()
    if obs_dir is not None:
        # the CLI turned telemetry on, so it turns it off — in-process
        # callers (tests) must not observe a leaked global or env var
        obs.disable()
        if obs_env_before is None:
            os.environ.pop(obs.ENV_VAR, None)
        else:
            os.environ[obs.ENV_VAR] = obs_env_before

    print(markdown)
    counts = run.counts()
    summary = (f"{run.num_cells} cell(s) in {run.elapsed:.2f}s "
               f"({run.cache_hits} cached, {run.journal_replays} replayed, "
               f"{counts['timeout']} timeout, {counts['error']} error")
    if counts["quarantined"]:
        summary += f", {counts['quarantined']} quarantined"
    if counts["fault"]:
        summary += f", {counts['fault']} fault"
    summary += f") -> {run_path}"
    if obs_dir is not None:
        summary += (f"; telemetry -> {obs_dir} "
                    f"(inspect: bench profile {out_dir}, "
                    f"export: obs export {out_dir})")
    print(summary)
    if run.interrupted:
        print(f"interrupted: partial run journaled; resume with "
              f"--resume {out_dir}", file=sys.stderr)
        return 3
    bad = counts["error"] + counts["quarantined"] + counts["fault"]
    return 0 if bad == 0 else 3


def _cmd_bench_cache(args: argparse.Namespace) -> int:
    from repro.exp.cache import ResultCache

    if not args.verify:
        print("nothing to do: pass --verify to scan and prune the cache",
              file=sys.stderr)
        return 2
    root = args.dir
    nested = os.path.join(root, "cache")
    if not os.path.isdir(root):
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    if os.path.isdir(nested):            # accept a bench-run out dir
        root = nested
    stats = ResultCache(root).verify(prune=not args.no_prune)
    print(f"{root}: {stats['scanned']} entrie(s) scanned, "
          f"{stats['ok']} ok, {stats['corrupt']} corrupt, "
          f"{stats['pruned']} pruned")
    return 0 if stats["corrupt"] == 0 else 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    import json

    from repro.exp.report import render_markdown

    with open(args.run, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    print(render_markdown(record))
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    import json

    from repro.exp.report import diff_runs

    with open(args.old, "r", encoding="utf-8") as fh:
        old = json.load(fh)
    with open(args.new, "r", encoding="utf-8") as fh:
        new = json.load(fh)
    diff = diff_runs(old, new)
    print(diff.markdown())
    return 0 if diff.clean else 1


def _cmd_bench_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import render_cell_profile, render_run_profile

    if bool(args.trace) != bool(args.detector):
        print("--trace and --detector go together (one cell has both "
              "coordinates)", file=sys.stderr)
        return 2
    try:
        if args.trace:
            text = render_cell_profile(args.out, args.trace, args.detector,
                                       top=args.top)
        else:
            text = render_run_profile(args.out, top=args.top)
    except (FileNotFoundError, KeyError) as exc:
        detail = exc.args[0] if exc.args else str(exc)
        print(f"bench profile: {detail}", file=sys.stderr)
        return 2
    sys.stdout.write(text)
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs.export import export_chrome

    doc, out_path = export_chrome(args.run, out=args.out)
    print(f"{len(doc['traceEvents'])} trace event(s) -> {out_path}")
    return 0


def _cmd_fleet_worker(args: argparse.Namespace) -> int:
    from repro.exp.fleet import run_worker
    from repro.exp.fleet_queue import QueueError

    try:
        cells = run_worker(args.dir, worker_id=args.id, poll=args.poll,
                           idle_exit=args.idle_exit,
                           max_cells=args.max_cells)
    except QueueError as exc:
        print(f"fleet worker: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    print(f"fleet worker: {cells} cell(s) executed", file=sys.stderr)
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    from repro.exp.fleet import queue_status
    from repro.exp.fleet_queue import QueueError

    try:
        status = queue_status(args.dir)
    except QueueError as exc:
        print(f"fleet status: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _window_size(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("window must be >= 1")
    return value


def _overlap_fraction(text: str) -> float:
    value = float(text)
    if not 0 <= value < 1:
        raise argparse.ArgumentTypeError("overlap must be in [0, 1)")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for doc generation)."""
    parser = argparse.ArgumentParser(
        prog="repro-deadlock",
        description="Sound dynamic deadlock prediction in linear time (PLDI 2023).",
    )
    parser.add_argument(
        "--kernels", choices=("auto", "numpy", "python"), default=None,
        help="kernel backend for the hot loops (default: REPRO_KERNELS "
             "env var, else auto = numpy when importable); outputs are "
             "bit-identical either way")
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="predict deadlocks in a trace file")
    p_an.add_argument("trace", help="trace file (STD text format)")
    mode = p_an.add_mutually_exclusive_group()
    mode.add_argument("--online", action="store_true", help="use SPDOnline (streaming, size 2)")
    mode.add_argument("--stream", action="store_true",
                      help="streaming session mode: parse the file "
                           "incrementally and run SPDOnline through "
                           "repro.stream (same reports as --online; "
                           "combine with --max-memory-events for bounded "
                           "memory on huge traces)")
    mode.add_argument("--window", type=_window_size, default=None, metavar="N",
                      help="bounded-memory mode: overlapping windows of N events")
    mode.add_argument("--shard", action="store_true",
                      help="split into per-lock-context shards and analyze "
                           "across -j worker processes (bit-identical output)")
    p_an.add_argument("-j", "--jobs", type=int, default=2,
                      help="worker processes for --shard (default 2)")
    p_an.add_argument("--max-size", type=int, default=None, help="cap deadlock size")
    p_an.add_argument("--overlap", type=_overlap_fraction, default=0.5,
                      help="window overlap fraction in [0, 1) "
                           "(with --window; default 0.5)")
    p_an.add_argument("--max-memory-events", type=int, default=None, metavar="M",
                      help="bounded-memory eviction horizon: with --stream, "
                           "evict detector state older than M events (sound, "
                           "may miss); with --window, stream the file and "
                           "evict session columns behind the open window")
    p_an.add_argument("--json", action="store_true", help="machine-readable output")
    p_an.set_defaults(func=_cmd_analyze)

    p_st = sub.add_parser("stats", help="print trace characteristics")
    p_st.add_argument("trace")
    p_st.set_defaults(func=_cmd_stats)

    p_gen = sub.add_parser("generate", help="emit a benchmark-suite trace")
    p_gen.add_argument("benchmark", help="Table 1 benchmark name, e.g. Picklock")
    p_gen.set_defaults(func=_cmd_generate)

    p_wit = sub.add_parser("witness", help="witness schedule for a size-2 pattern")
    p_wit.add_argument("trace")
    p_wit.add_argument("first", type=int)
    p_wit.add_argument("second", type=int)
    p_wit.set_defaults(func=_cmd_witness)

    p_rc = sub.add_parser("races", help="sync-preserving race prediction")
    p_rc.add_argument("trace")
    p_rc.add_argument("--all", action="store_true",
                      help="enumerate beyond the first race per group pair")
    p_rc.set_defaults(func=_cmd_races)

    p_cmp = sub.add_parser("compare", help="run all detectors and diff verdicts")
    p_cmp.add_argument("trace")
    p_cmp.add_argument("--no-dirk", action="store_true",
                       help="skip the (slow) Dirk stand-in")
    p_cmp.set_defaults(func=_cmd_compare)

    p_aud = sub.add_parser("audit", help="false-negative classification (Sec. 6.1)")
    p_aud.add_argument("trace")
    p_aud.set_defaults(func=_cmd_audit)

    p_ex = sub.add_parser("explain", help="why is this pattern (not) a deadlock?")
    p_ex.add_argument("trace")
    p_ex.add_argument("first", type=int)
    p_ex.add_argument("second", type=int)
    p_ex.set_defaults(func=_cmd_explain)

    p_pr = sub.add_parser("profile", help="lock contention / thread breakdown")
    p_pr.add_argument("trace")
    p_pr.set_defaults(func=_cmd_profile)

    p_gr = sub.add_parser("graph", help="DOT dump of the abstract lock graph")
    p_gr.add_argument("trace")
    p_gr.add_argument("--lock-order", action="store_true",
                      help="emit the classic lock-order graph instead")
    p_gr.set_defaults(func=_cmd_graph)

    p_bench = sub.add_parser(
        "bench", help="run/report/diff evaluation campaigns (repro.exp)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_brun = bench_sub.add_parser("run", help="execute a campaign file")
    p_brun.add_argument("--campaign", required=True,
                        help="campaign spec (.toml or .json)")
    p_brun.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (1 = serial in-process)")
    p_brun.add_argument("--runner", choices=["process", "inline"],
                        default="process",
                        help="force the serial runner even with -j > 1")
    p_brun.add_argument("--shard-contexts", action="store_true",
                        help="split spd_offline cells into per-lock-context "
                             "shards over the worker pool (bit-identical "
                             "results; run.json diffs clean vs unsharded)")
    p_brun.add_argument("--out", default=None,
                        help="output directory (default bench_runs/<name>)")
    p_brun.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    p_brun.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress on stderr")
    p_brun.add_argument("--resume", default=None, metavar="RUN",
                        help="replay completed cells from a previous run's "
                             "journal (a run output directory or the "
                             "journal.jsonl itself) and execute only the "
                             "remainder")
    p_brun.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry failed cells up to N attempts with "
                             "backoff; cells still failing are quarantined "
                             "(overrides the campaign's [retry] "
                             "max_attempts)")
    p_brun.add_argument("--fleet", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="dispatch cells through a fleet work queue "
                             "(repro.exp.fleet): spawn -j loopback workers "
                             "over a private queue, or coordinate DIR — a "
                             "shared directory that external 'repro fleet "
                             "worker DIR' loops on any machine consume; "
                             "results are bit-identical to the local "
                             "runners")
    p_brun.add_argument("--lease-ttl", type=float, default=10.0,
                        metavar="SECONDS",
                        help="fleet only: heartbeat silence after which a "
                             "leased cell is declared lost and retried "
                             "(default 10)")
    p_brun.add_argument("--obs", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="enable engine telemetry (repro.obs): stream "
                             "the span log to DIR (default OUT/obs) and "
                             "embed per-cell wall/cpu/RSS rollups in "
                             "run.json; also enabled by a campaign [obs] "
                             "table or REPRO_OBS in the environment")
    p_brun.set_defaults(func=_cmd_bench_run)

    p_bcache = bench_sub.add_parser(
        "cache", help="inspect/repair a bench result cache"
    )
    p_bcache.add_argument("dir", help="bench-run output directory (or the "
                                      "cache directory itself)")
    p_bcache.add_argument("--verify", action="store_true",
                          help="scan every entry and prune corrupt ones")
    p_bcache.add_argument("--no-prune", action="store_true",
                          help="with --verify: report corrupt entries "
                               "without deleting them")
    p_bcache.set_defaults(func=_cmd_bench_cache)

    p_brep = bench_sub.add_parser("report", help="re-render a run.json")
    p_brep.add_argument("run", help="run.json from 'bench run'")
    p_brep.set_defaults(func=_cmd_bench_report)

    p_bdiff = bench_sub.add_parser(
        "diff", help="compare two runs cell-by-cell (exit 1 on changes)"
    )
    p_bdiff.add_argument("old", help="baseline run.json")
    p_bdiff.add_argument("new", help="candidate run.json")
    p_bdiff.set_defaults(func=_cmd_bench_diff)

    p_bprof = bench_sub.add_parser(
        "profile", help="top-k span tree + counters of a telemetry run"
    )
    p_bprof.add_argument("out", help="bench-run output directory (a run "
                                     "executed with --obs / REPRO_OBS)")
    p_bprof.add_argument("--trace", default=None,
                         help="render one cell instead (with --detector)")
    p_bprof.add_argument("--detector", default=None,
                         help="the cell's detector id (with --trace)")
    p_bprof.add_argument("-k", "--top", type=int, default=20,
                         help="span paths shown in the tree (default 20)")
    p_bprof.set_defaults(func=_cmd_bench_profile)

    p_fleet = sub.add_parser(
        "fleet", help="multi-machine campaign execution (repro.exp.fleet)"
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    p_fwork = fleet_sub.add_parser(
        "worker", help="claim and execute cells from a fleet queue"
    )
    p_fwork.add_argument("dir", help="the queue directory (any filesystem "
                                     "shared with the coordinator)")
    p_fwork.add_argument("--id", default=None,
                         help="worker id (default: hostname-pid); names "
                              "this worker's lease claims and results "
                              "channel")
    p_fwork.add_argument("--poll", type=float, default=0.05,
                         metavar="SECONDS",
                         help="queue poll / lease heartbeat cadence "
                              "(default 0.05)")
    p_fwork.add_argument("--idle-exit", type=float, default=None,
                         metavar="SECONDS",
                         help="exit after this long with nothing claimable "
                              "(default: wait for the stop marker)")
    p_fwork.add_argument("--max-cells", type=int, default=None, metavar="N",
                         help="exit after executing N cells (testing aid)")
    p_fwork.set_defaults(func=_cmd_fleet_worker)
    p_fstat = fleet_sub.add_parser(
        "status", help="summarize a fleet queue directory"
    )
    p_fstat.add_argument("dir", help="the queue directory")
    p_fstat.set_defaults(func=_cmd_fleet_status)

    p_obs = sub.add_parser(
        "obs", help="telemetry tooling (span logs from repro.obs)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_oexp = obs_sub.add_parser(
        "export", help="convert a span log to Chrome trace-event JSON"
    )
    p_oexp.add_argument("run", help="spans.jsonl, an obs directory, or a "
                                    "bench-run output directory")
    p_oexp.add_argument("-o", "--out", default=None,
                        help="output path (default: trace_events.json "
                             "beside the span log)")
    p_oexp.set_defaults(func=_cmd_obs_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse and dispatch; returns the exit code, *propagates* exceptions.

    In-process callers (tests, scripting) get the raw exception; the
    process entry point (:func:`entry`) maps it to the exit-code
    contract below.
    """
    args = build_parser().parse_args(argv)
    if getattr(args, "kernels", None) is not None:
        import repro.kernels as kernels

        # Scoped, not global: in-process callers (tests, scripting)
        # must not leak one invocation's backend into the next.
        with kernels.use(args.kernels):
            # Resolve eagerly: "--kernels numpy" on a box without numpy
            # is a usage error at startup, not a KernelsError surfacing
            # from a hot loop halfway through a long run.
            kernels.backend()
            return args.func(args)
    return args.func(args)


#: exception types that mean "your input is bad", not "we broke".
def _usage_error_types():
    from repro.exp.campaign import CampaignError
    from repro.faults import FaultSpecError
    from repro.kernels import KernelsError
    from repro.trace.compiled import TraceReadError
    from repro.trace.parser import ParseError

    return (FileNotFoundError, IsADirectoryError, PermissionError,
            ParseError, TraceReadError, CampaignError, FaultSpecError,
            KernelsError)


def entry(argv: Optional[List[str]] = None) -> int:
    """Process entry point enforcing the exit-code contract:

    - ``0`` — success, nothing found;
    - ``1`` — findings (deadlocks/races reported, diff not clean,
      corrupt cache entries found);
    - ``2`` — usage or input error (bad flags, missing/corrupt files,
      malformed campaign);
    - ``3`` — internal error, or a run with crashed / quarantined /
      fault-injected cells;
    - ``130`` — interrupted (SIGINT convention).

    Every error is a single actionable line on stderr; set
    ``REPRO_DEBUG=1`` to re-raise with the full traceback.
    """
    try:
        return main(argv)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        if os.environ.get("REPRO_DEBUG"):
            raise
        code = 2 if isinstance(exc, _usage_error_types()) else 3
        kind = "error" if code == 2 else "internal error"
        detail = " ".join(str(exc).split()) or type(exc).__name__
        print(f"repro-deadlock: {kind}: {detail} "
              f"(set REPRO_DEBUG=1 for the traceback)", file=sys.stderr)
        return code


if __name__ == "__main__":
    raise SystemExit(entry())
