"""Streaming sessions: one incremental engine layer for live traces.

A :class:`StreamSession` accepts events in chunked columnar batches —
from a live :mod:`repro.runtime` program, an incrementally-parsed
``.std`` / ``.std.gz`` file, or a replayed
:class:`~repro.trace.compiled.CompiledTrace` — and maintains the
canonical analysis substrate *incrementally*: an append-only
``CompiledTrace`` plus a :class:`~repro.trace.index.TraceIndex` whose
derived relations (rf / match / thread positions / held sets) grow per
batch instead of being recomputed in one O(N) offline pass.  ``Trace``
views over a growing session are therefore first-class:
:meth:`StreamSession.as_trace` is O(1) and shares the live columns.

Consumers attach through one feed protocol (duck-typed):

- ``feed_batch(compiled, lo, hi, base)`` — required; receives every
  appended batch as column ranges (``base`` is the global index of
  ``compiled``'s first retained event — non-zero only in bounded
  mode).  All streaming detectors (``SPDOnline``, ``SPDOnlineK``,
  ``FastTrack``) and the windowed SPDOffline client implement it.
- ``retain_from()`` — optional; the smallest *global* event index the
  consumer may still read from the session columns, or ``None`` for
  "nothing" (pure streaming detectors keep their own state).
- ``finish()`` — optional; called by :meth:`StreamSession.close` after
  the final flush (e.g. the windowed client drains its last window).

**Bounded mode** (``max_memory_events=N``): the session stops keeping
the full history.  It maintains only the raw columns plus an
incremental acquire/release ``match`` column for the *retained tail*
— everything every attached consumer may still read, evicting consumed
prefixes as retention advances — so peak session memory is
O(max consumer window + batch), not O(trace).  ``as_trace`` is
unavailable once history is gone; detectors are unaffected (they only
ever see each batch once, before eviction).  Event indices exposed to
consumers stay *global* (``base + local``), so reports from bounded
and unbounded sessions are identical.
"""

from __future__ import annotations

import time
from array import array
from typing import Iterable, List, Optional

import repro.obs as obs
from repro.trace.compiled import (
    CompiledTrace,
    TraceReadError,
    _iter_std_lines,
    parse_std_into,
)
from repro.trace.events import OP_ACQUIRE, OP_RELEASE, Event
from repro.trace.index import TraceError, TraceIndex
from repro.trace.trace import Trace

__all__ = ["StreamSession"]

#: default events per flushed batch
_BATCH = 4096


class StreamSession:
    """An incrementally-indexed trace being built from an event stream.

    Args:
        name: label carried into views and reports.
        batch_size: events buffered between automatic flushes (every
            ``feed_*`` helper flushes at this granularity; ``append``
            auto-flushes when the buffer fills).
        max_memory_events: enable *bounded mode* — the session evicts
            column prefixes no attached consumer can still reach and
            keeps no full-history index.  The value is the intended
            retention scale (a windowed client's window, a detector's
            eviction horizon); the session's own buffer is bounded by
            the slowest consumer's ``retain_from`` plus one batch.
    """

    def __init__(self, name: str = "session", batch_size: int = _BATCH,
                 max_memory_events: Optional[int] = None) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_memory_events is not None and max_memory_events < 1:
            raise ValueError("max_memory_events must be >= 1")
        self.name = name
        self.batch_size = batch_size
        self.max_memory_events = max_memory_events
        self.bounded = max_memory_events is not None
        self.compiled = CompiledTrace(name)
        #: global index of ``compiled``'s first retained event (bounded
        #: mode evicts prefixes; 0 forever in full mode)
        self.base = 0
        self._index: Optional[TraceIndex] = None
        if self.bounded:
            self._match = array("i")
            self._open_acq: dict = {}
        self._consumers: List[object] = []
        self._fed = 0          # global count delivered to consumers
        self._closed = False

    # -- session geometry ---------------------------------------------------

    def __len__(self) -> int:
        """Global event count (including any evicted prefix)."""
        return self.base + len(self.compiled)

    @property
    def events_fed(self) -> int:
        """Global count of events already delivered to consumers."""
        return self._fed

    @property
    def index(self) -> Optional[TraceIndex]:
        """The incrementally-maintained :class:`TraceIndex` (full mode).

        Built lazily on first access — a session whose consumers are
        pure streaming detectors never pays for derived relations —
        and kept in sync by every subsequent flush.  ``None`` in
        bounded mode (no full history to index).
        """
        if self.bounded:
            return None
        if self._index is None:
            self._index = TraceIndex(self.compiled)
        return self._index

    def match_view(self) -> array:
        """The acquire/release ``match`` column aligned with the
        session's retained columns (values are *global* indices)."""
        if self.bounded:
            return self._match
        return self.index.match

    # -- consumers ----------------------------------------------------------

    def attach(self, consumer) -> None:
        """Attach a feed consumer; already-fed history is replayed.

        In bounded mode consumers must attach before eviction starts —
        a late consumer cannot be given history that is gone.
        """
        if self.base:
            raise ValueError(
                "cannot attach a consumer after eviction started: "
                "the session no longer holds the full history"
            )
        if self._fed:
            consumer.feed_batch(self.compiled, 0, self._fed, 0)
        self._consumers.append(consumer)

    # -- appending ----------------------------------------------------------

    def append(self, thread: str, op: str, target: str,
               loc: Optional[str] = None) -> int:
        """Append one string event; returns its global index.

        Auto-flushes whenever a full batch has accumulated.
        """
        idx = self.base + self.compiled.append(thread, op, target, loc)
        if len(self) - self._fed >= self.batch_size:
            self.flush()
        return idx

    def append_event(self, event: Event) -> int:
        """Append one :class:`Event` (the runtime-monitor sink shape)."""
        return self.append(event.thread, event.op, event.target, event.loc)

    def feed_events(self, events: Iterable[Event]) -> None:
        """Append an event iterable, flushing per batch."""
        for ev in events:
            self.append(ev.thread, ev.op, ev.target, ev.loc)
        self.flush()

    def feed_compiled(self, source: CompiledTrace,
                      batch_size: Optional[int] = None) -> None:
        """Replay a compiled trace through the session in batches.

        Source ids are remapped through the session's intern tables
        (identity when the session is fresh), so mixing replayed traces
        with live events is well-defined.
        """
        bs = batch_size or self.batch_size
        out = self.compiled
        thread_map = [out.threads_tab.intern(n) for n in source.threads_tab.names]
        lock_map = [out.locks_tab.intern(n) for n in source.locks_tab.names]
        var_map = [out.vars_tab.intern(n) for n in source.vars_tab.names]
        kind_map = _target_maps(thread_map, lock_map, var_map)
        ops, tids, targs = source.columns()
        locs = source.locs
        append_coded = out.append_coded
        for i in range(len(ops)):
            op = ops[i]
            append_coded(op, thread_map[tids[i]], kind_map[op][targs[i]],
                         locs.get(i))
            if len(self) - self._fed >= bs:
                self.flush()
        self.flush()

    def feed_file(self, path: str, batch_size: Optional[int] = None) -> None:
        """Incrementally parse a ``.std`` / ``.std.gz`` file.

        Lines are read in bounded chunks and parsed straight into the
        session columns — the file is never resident as a whole, and in
        bounded mode neither is the trace.
        """
        import zlib

        bs = batch_size or self.batch_size
        lineno = 1
        batch: List[str] = []
        state = {"offset": 0}
        try:
            for line in _iter_std_lines(path, state=state):
                batch.append(line)
                if len(batch) >= bs:
                    lineno = parse_std_into(self.compiled, batch, lineno)
                    batch.clear()
                    self.flush()
        except FileNotFoundError:
            raise
        except (OSError, EOFError, zlib.error, UnicodeDecodeError) as exc:
            raise TraceReadError(
                path, str(exc), byte_offset=state["offset"],
                events_parsed=self.base + len(self.compiled)) from exc
        if batch:
            parse_std_into(self.compiled, batch, lineno)
        self.flush()

    # -- flushing / lifecycle ------------------------------------------------

    def flush(self) -> int:
        """Index and deliver all appended-but-unfed events; returns the
        number of events delivered."""
        glen = self.base + len(self.compiled)
        if self._fed >= glen:
            return 0
        _t0 = time.monotonic_ns() if obs.enabled() else 0
        lo = self._fed - self.base
        hi = glen - self.base
        if self.bounded:
            self._extend_match(lo, hi)
        elif self._index is not None:
            self._index.extend()
        for consumer in self._consumers:
            consumer.feed_batch(self.compiled, lo, hi, self.base)
        self._fed = glen
        if self.bounded:
            self._maybe_evict()
        if _t0:
            obs.record_span("stream.flush", _t0, time.monotonic_ns(),
                            cat="stream", session=self.name, events=hi - lo)
            obs.observe("stream.batch_events", hi - lo)
            obs.gauge("stream.retained_events", len(self.compiled))
        return hi - lo

    def close(self) -> None:
        """Final flush, then notify consumers the stream ended."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        for consumer in self._consumers:
            finish = getattr(consumer, "finish", None)
            if finish is not None:
                finish()

    # -- views ---------------------------------------------------------------

    def as_trace(self) -> Trace:
        """An O(1) :class:`Trace` view sharing the live columns + index.

        The view answers every derived-relation query from the
        incrementally-maintained index; take a fresh view after feeding
        if you rely on the cached entity lists (``threads`` etc.), which
        snapshot on first access.
        """
        if self.bounded:
            raise ValueError(
                "bounded sessions keep no full-history index; "
                "use an unbounded session for Trace views"
            )
        index = self.index
        index.extend()
        view = Trace(self.compiled, name=self.name)
        view._index = index
        return view

    # -- bounded mode internals ----------------------------------------------

    def _extend_match(self, lo: int, hi: int) -> None:
        """Incremental acquire/release matching for the retained tail."""
        ops, tids, targs = self.compiled.columns()
        match = self._match
        match_append = match.append
        open_acq = self._open_acq
        base = self.base
        for i in range(lo, hi):
            match_append(-1)
            op = ops[i]
            if op == OP_ACQUIRE:
                open_acq.setdefault((tids[i], targs[i]), []).append(base + i)
            elif op == OP_RELEASE:
                stack = open_acq.get((tids[i], targs[i]))
                if not stack:
                    raise TraceError(
                        f"release without matching acquire: "
                        f"{self.compiled.event(i)}"
                    )
                acq = stack.pop()
                match[i] = acq
                if acq >= base:
                    match[acq - base] = base + i

    def _maybe_evict(self) -> None:
        """Drop retained columns no consumer can still reach.

        Eviction is amortized: a prefix is dropped only once it makes
        up at least half the buffer (and at least one batch), so each
        event is copied O(1) times over the session's lifetime.
        """
        cut = self._fed
        for consumer in self._consumers:
            retain = getattr(consumer, "retain_from", None)
            if retain is None:
                continue
            bound = retain()
            if bound is not None and bound < cut:
                cut = bound
        k = cut - self.base
        buf = len(self.compiled)
        if k <= 0 or k < self.batch_size or k < buf - k:
            return
        obs.count("stream.eviction_sweeps")
        obs.count("stream.evicted_events", k)
        c = self.compiled
        c.ops = c.ops[k:]
        c.thread_ids = c.thread_ids[k:]
        c.target_ids = c.target_ids[k:]
        c.locs = {j - k: v for j, v in c.locs.items() if j >= k}
        self._match = self._match[k:]
        self.base += k


def _target_maps(thread_map, lock_map, var_map):
    """op code -> id-remap list, mirroring the per-kind target routing
    of :meth:`CompiledTrace._intern_target`."""
    from repro.trace.events import Op
    from repro.trace.compiled import _LOCK_OPS, _THREAD_OPS

    out = {}
    for code in range(len(Op.NAMES)):
        if code in _LOCK_OPS:
            out[code] = lock_map
        elif code in _THREAD_OPS:
            out[code] = thread_map
        else:
            out[code] = var_map
    return out
