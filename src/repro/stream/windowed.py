"""Windowed SPDOffline as a streaming-session client.

The batch :func:`repro.core.windowed.spd_offline_windowed` loads a full
trace, derives its index, and re-projects every window.  This client
instead *rides a session*: it slides its window over the incrementally
maintained columns — the acquire/release ``match`` relation each window
needs for well-formed slicing already exists by the time the window
closes, so no per-window re-parse or full-trace re-derivation ever
happens — and it reports its retention point back to the session, so a
bounded session evicts everything older than the open window and peak
memory stays O(window) on unbounded monitoring streams.

Window placement, slicing, deduplication, and report shape replicate
the batch engine exactly: a session-fed run over the same events is
bit-identical to ``spd_offline_windowed`` (pinned corpus-wide and on
seeded random traces by ``tests/test_stream.py``).
"""

from __future__ import annotations

import time
from typing import List, Optional, Set, Tuple

from repro.core.patterns import DeadlockPattern, DeadlockReport
from repro.core.spd_offline import spd_offline
from repro.core.windowed import WindowedResult
from repro.stream.session import StreamSession
from repro.trace.compiled import CompiledTrace
from repro.trace.events import OP_RELEASE
from repro.trace.trace import as_trace

__all__ = ["WindowedSessionClient", "WindowedResult"]


class WindowedSessionClient:
    """Sliding-window SPDOffline over a :class:`StreamSession`.

    Args:
        session: the session to ride; the client attaches itself.
        window: events per chunk.
        overlap: fraction of each window shared with the next
            (0 ≤ overlap < 1), exactly as in the batch engine.
        max_size: deadlock-size cap forwarded to each window.

    The accumulated :class:`~repro.core.windowed.WindowedResult` lives
    in :attr:`result`; it is complete once the session is closed.
    """

    def __init__(self, session: StreamSession, window: int = 50_000,
                 overlap: float = 0.5, max_size: Optional[int] = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0 <= overlap < 1:
            raise ValueError("overlap must be in [0, 1)")
        self.session = session
        self.window = window
        self.step = max(1, int(window * (1 - overlap)))
        self.max_size = max_size
        self.result = WindowedResult()
        self._lo = 0                      # global start of the open window
        self._last_hi = -1                # global end of the last run window
        self._seen: Set[Tuple[str, ...]] = set()
        self._started = time.perf_counter()
        session.attach(self)

    # -- feed protocol -------------------------------------------------------

    def retain_from(self) -> int:
        """The session may evict everything before the open window."""
        return self._lo

    def feed_batch(self, compiled: CompiledTrace, lo: int, hi: int,
                   base: int = 0) -> None:
        glen = base + hi
        while glen >= self._lo + self.window:
            self._run_window(self._lo, self._lo + self.window)
            self._lo += self.step

    def finish(self) -> None:
        """Drain trailing windows, mirroring the batch engine's loop:
        windows keep sliding until one ends exactly at the trace end,
        and a final partial window covers any remainder."""
        glen = len(self.session)
        while self._lo < glen and self._last_hi != glen:
            self._run_window(self._lo, min(self._lo + self.window, glen))
            if self._last_hi == glen:
                break
            self._lo += self.step
        self.result.elapsed = time.perf_counter() - self._started

    # -- one window ----------------------------------------------------------

    def _location(self, gidx: int) -> str:
        loc = self.session.compiled.locs.get(gidx - self.session.base)
        return loc if loc is not None else f"@{gidx}"

    def _run_window(self, glo: int, ghi: int) -> None:
        """Analyze global window ``[glo, ghi)`` (same slicing rule as
        :func:`repro.core.windowed.window_slice`: releases whose acquire
        precedes the window are dropped)."""
        session = self.session
        base = session.base
        if glo < base:
            raise ValueError("session evicted events of the open window")
        compiled = session.compiled
        ops = compiled.ops
        match = session.match_view()
        keep: List[int] = []
        for j in range(glo - base, ghi - base):
            if ops[j] == OP_RELEASE and match[j] < glo:
                continue
            keep.append(j)
        sub = compiled.project(keep, name=f"{session.name}[{glo}:{ghi}]")
        self.result.windows += 1
        self._last_hi = ghi
        inner = spd_offline(as_trace(sub), max_size=self.max_size)
        for report in inner.reports:
            original = tuple(sorted(base + keep[e] for e in report.pattern.events))
            locations = tuple(self._location(g) for g in original)
            bug = tuple(sorted(locations))
            if bug in self._seen:
                continue
            self._seen.add(bug)
            self.result.reports.append(
                DeadlockReport(pattern=DeadlockPattern(original),
                               locations=locations)
            )
