"""``repro.stream`` — streaming-first sessions over the columnar engine.

One incremental engine layer for every event-at-a-time consumer:

- :class:`~repro.stream.session.StreamSession` maintains
  ``CompiledTrace + TraceIndex`` incrementally from chunked batches
  (live runtime programs, incrementally-parsed ``.std``/``.std.gz``
  files, replayed compiled traces) and fans batches out to attached
  consumers through one feed API;
- :class:`~repro.stream.windowed.WindowedSessionClient` slides the
  bounded-memory SPDOffline window over a session without per-window
  re-projection of the full trace;
- the streaming detectors (``SPDOnline``, ``SPDOnlineK``,
  ``FastTrack``) attach directly — ``session.attach(detector)`` — and
  produce reports bit-identical to their batch ``run`` entry points.
"""

from repro.stream.session import StreamSession
from repro.stream.windowed import WindowedSessionClient

__all__ = ["StreamSession", "WindowedSessionClient"]
