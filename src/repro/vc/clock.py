"""Vector clocks: timestamps mapping threads to local-event counts.

The paper (Section 4.3) uses timestamps ``T : Threads -> N`` with
pointwise comparison ``⊑`` and pointwise maximum ``⊔``.  This module
provides a compact mutable implementation over a fixed thread universe
(threads are interned to integer slots for speed), plus the two
representation tricks the analysis hot paths are built on:

- **copy-on-write snapshots** — :meth:`VectorClock.snapshot` shares the
  underlying component list between the live clock and the snapshot;
  the list is copied lazily, on the next mutation of either side.  A
  streaming detector that snapshots a thread's clock at every acquire,
  release, and write therefore pays at most one list copy per event
  (at the thread's next tick) instead of one per snapshot.

- **epochs** — an :class:`Epoch` is a scalar ``c@t`` summarizing a full
  clock by one component.  For any snapshot ``S`` exported by a thread
  ``t`` whose own component is ``c`` (a *canonical* snapshot, which is
  what every protocol in this repo exports), ``S ⊑ V  ⟺  c ≤ V[t]``:
  clocks only learn about ``t``'s time by (transitively) joining ``t``'s
  canonical snapshots, so knowing time ``c`` implies knowing everything
  ``t`` knew at time ``c``.  This turns the O(threads) ``⊑`` checks of
  the closure fix-point into O(1) integer comparisons, falling back to
  the full clock only where an actual join is required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


class VectorClock:
    """A timestamp over a fixed ordered thread universe.

    The clock stores one integer per thread slot.  Instances sharing a
    universe may be compared and joined; mixing universes is an error
    caught by length mismatch.
    """

    __slots__ = ("_v", "_shared")

    def __init__(self, size_or_values) -> None:
        if isinstance(size_or_values, int):
            self._v: List[int] = [0] * size_or_values
        else:
            self._v = list(size_or_values)
        self._shared = False

    # -- constructors -------------------------------------------------------

    @classmethod
    def bottom(cls, size: int) -> "VectorClock":
        """The least timestamp (all zeros)."""
        return cls(size)

    def copy(self) -> "VectorClock":
        """An independent copy (copy-on-write; the list copy is lazy)."""
        return self.snapshot()

    def snapshot(self) -> "VectorClock":
        """A frozen-in-time view sharing storage until either side mutates.

        Taking a snapshot is O(1).  Both the snapshot and the live clock
        stay fully functional mutable clocks; whichever mutates first
        pays the one list copy.
        """
        self._shared = True
        out = VectorClock.__new__(VectorClock)
        out._v = self._v
        out._shared = True
        return out

    def _own(self) -> None:
        """Materialize a private component list before mutating."""
        if self._shared:
            self._v = list(self._v)
            self._shared = False

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._v)

    def __getitem__(self, slot: int) -> int:
        return self._v[slot]

    def __setitem__(self, slot: int, value: int) -> None:
        self._own()
        self._v[slot] = value

    def component(self, slot: int) -> int:
        """``self[slot]`` with missing components reading as zero."""
        v = self._v
        return v[slot] if slot < len(v) else 0

    def values(self) -> Sequence[int]:
        return tuple(self._v)

    def tick(self, slot: int) -> None:
        """Increment the local component of ``slot``, growing if needed."""
        self._own()
        v = self._v
        if len(v) <= slot:
            v.extend([0] * (slot + 1 - len(v)))
        v[slot] += 1

    def _ensure(self, size: int) -> None:
        """Grow to at least ``size`` slots (new components are zero)."""
        if len(self._v) < size:
            self._own()
            self._v.extend([0] * (size - len(self._v)))

    # -- lattice operations --------------------------------------------------
    #
    # Clocks of different lengths compare by padding the shorter one
    # with zeros: a thread that has not yet appeared contributes no
    # events.  This lets streaming analyses grow the thread universe
    # mid-run without rewriting stored timestamps.

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``⊑`` (missing components are zero)."""
        a, b = self._v, other._v
        if a is b:
            return True
        la, lb = len(a), len(b)
        if la > lb:
            for i in range(lb, la):
                if a[i]:
                    return False
            la = lb
        for i in range(la):
            if a[i] > b[i]:
                return False
        return True

    def join_with(self, other: "VectorClock") -> bool:
        """In-place pointwise ``⊔``; returns True if self changed."""
        b = other._v
        a = self._v
        if a is b:
            return False
        lb = len(b)
        if len(a) < lb:
            self._ensure(lb)
            a = self._v
        changed = False
        for i in range(lb):
            y = b[i]
            if y > a[i]:
                if not changed:
                    self._own()
                    a = self._v
                    changed = True
                a[i] = y
        return changed

    def join_update(self, other: "VectorClock") -> Tuple[int, ...]:
        """In-place ``⊔`` returning the tuple of slots that grew.

        The changed-slot report is what drives dirty-lock worklists in
        the closure engines: a grown slot ``s`` can only unlock progress
        for critical sections of the thread interned at ``s``.
        """
        b = other._v
        a = self._v
        if a is b:
            return ()
        lb = len(b)
        if len(a) < lb:
            self._ensure(lb)
            a = self._v
        changed: List[int] = []
        for i in range(lb):
            y = b[i]
            if y > a[i]:
                if not changed:
                    self._own()
                    a = self._v
                a[i] = y
                changed.append(i)
        return tuple(changed)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pure pointwise ``⊔``."""
        out = self.copy()
        out.join_with(other)
        return out

    def join_many(self, clocks: Iterable["VectorClock"]) -> bool:
        """In-place ``⊔`` over a batch; returns True if self changed.

        Equivalent to folding :meth:`join_with` left to right.  With
        the numpy kernel backend (:mod:`repro.kernels`) a large enough
        batch collapses to one matrix ``max`` followed by a single
        :meth:`join_with` of the result — the same fix-point by
        commutativity/associativity of ``⊔``.  Both paths go through
        ``self.join_with``, so the patch-on-enable telemetry wrappers
        of :mod:`repro.obs` observe every bulk join too (the numpy
        path counts one merged join instead of ``len(clocks)``), and
        enabling telemetry never downgrades the dispatch to python.
        """
        import repro.kernels as kernels

        batch = [c for c in clocks if c._v is not self._v]
        if not batch:
            return False
        np = kernels.numpy_or_none()
        if np is not None and len(batch) >= 8:
            from repro.kernels.vc_np import join_values

            joined = VectorClock(join_values(np, [c._v for c in batch]))
            kernels.record_dispatch("vc_join_many", "numpy",
                                    events=len(batch))
            return self.join_with(joined)
        changed = False
        for c in batch:
            changed = self.join_with(c) or changed
        return changed

    @staticmethod
    def join_all(clocks: Iterable["VectorClock"], size: int) -> "VectorClock":
        """Pointwise max over a collection (``⨆`` in the paper)."""
        out = VectorClock(size)
        out.join_many(clocks)
        return out

    # -- epochs --------------------------------------------------------------

    def epoch(self, slot: int) -> "Epoch":
        """The ``self[slot] @ slot`` epoch of this clock."""
        return Epoch(self.component(slot), slot)

    # -- comparisons ---------------------------------------------------------

    def _stripped(self) -> tuple:
        v = self._v
        n = len(v)
        while n > 0 and v[n - 1] == 0:
            n -= 1
        return tuple(v[:n])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._stripped() == other._stripped()

    def __hash__(self) -> int:
        return hash(self._stripped())

    def __repr__(self) -> str:
        return f"VC{self._v}"


@dataclass(frozen=True)
class Epoch:
    """``c@t``: clock value ``c`` of thread slot ``t``.

    For canonical snapshots (a clock exported by the thread that owns
    slot ``t`` while its own component was ``c``), ``leq`` is an *exact*
    O(1) replacement for the full pointwise comparison — see the module
    docstring.  FastTrack (PLDI 2009) popularized the trick for race
    detection; the deadlock engines here reuse it for every acquire,
    release, and last-write timestamp.
    """

    clock: int
    slot: int

    def leq(self, vc: VectorClock) -> bool:
        """``c@t ⊑ V  ⟺  c ≤ V[t]`` — the O(1) comparison."""
        v = vc._v
        t = self.slot
        return self.clock <= (v[t] if t < len(v) else 0)


# -- telemetry ---------------------------------------------------------------
#
# Joins and COW copies are the per-event hot path of every engine, far
# too hot even for a guarded no-op call.  Instrumentation is therefore
# *patch-on-enable*: counting wrappers are swapped in only while
# repro.obs is active, and the disabled path carries zero extra code.

_OBS_COUNTS = {"vc.join": 0, "vc.join_grew": 0, "vc.join_update": 0,
               "vc.copy": 0, "vc.snapshot": 0}


def _obs_install():
    import repro.obs as obs  # noqa: F401  (hook registration only)

    c = _OBS_COUNTS
    orig_join = VectorClock.join_with
    orig_ju = VectorClock.join_update
    orig_own = VectorClock._own
    orig_snap = VectorClock.snapshot

    def join_with(self, other):
        c["vc.join"] += 1
        changed = orig_join(self, other)
        if changed:
            c["vc.join_grew"] += 1
        return changed

    def join_update(self, other):
        c["vc.join_update"] += 1
        return orig_ju(self, other)

    def _own(self):
        if self._shared:
            c["vc.copy"] += 1
        orig_own(self)

    def snapshot(self):
        c["vc.snapshot"] += 1
        return orig_snap(self)

    VectorClock.join_with = join_with
    VectorClock.join_update = join_update
    VectorClock._own = _own
    VectorClock.snapshot = snapshot

    def undo():
        VectorClock.join_with = orig_join
        VectorClock.join_update = orig_ju
        VectorClock._own = orig_own
        VectorClock.snapshot = orig_snap

    return undo


def _obs_register() -> None:
    import repro.obs as obs

    obs.register_probe("vc", lambda: dict(_OBS_COUNTS))
    obs.on_enable(_obs_install)


_obs_register()


class ThreadUniverse:
    """Interns thread names to dense integer slots."""

    def __init__(self, threads: Iterable[str] = ()) -> None:
        self._slots: Dict[str, int] = {}
        for t in threads:
            self.slot(t)

    def slot(self, thread: str) -> int:
        s = self._slots.get(thread)
        if s is None:
            s = len(self._slots)
            self._slots[thread] = s
        return s

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, thread: str) -> bool:
        return thread in self._slots

    def threads(self) -> Sequence[str]:
        return tuple(self._slots)
