"""Vector clocks: timestamps mapping threads to local-event counts.

The paper (Section 4.3) uses timestamps ``T : Threads -> N`` with
pointwise comparison ``⊑`` and pointwise maximum ``⊔``.  This module
provides a compact mutable implementation over a fixed thread universe
(threads are interned to integer slots for speed).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


class VectorClock:
    """A timestamp over a fixed ordered thread universe.

    The clock stores one integer per thread slot.  Instances sharing a
    universe may be compared and joined; mixing universes is an error
    caught by length mismatch.
    """

    __slots__ = ("_v",)

    def __init__(self, size_or_values) -> None:
        if isinstance(size_or_values, int):
            self._v: List[int] = [0] * size_or_values
        else:
            self._v = list(size_or_values)

    # -- constructors -------------------------------------------------------

    @classmethod
    def bottom(cls, size: int) -> "VectorClock":
        """The least timestamp (all zeros)."""
        return cls(size)

    def copy(self) -> "VectorClock":
        return VectorClock(self._v)

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._v)

    def __getitem__(self, slot: int) -> int:
        return self._v[slot]

    def __setitem__(self, slot: int, value: int) -> None:
        self._v[slot] = value

    def values(self) -> Sequence[int]:
        return tuple(self._v)

    def tick(self, slot: int) -> None:
        """Increment the local component of ``slot``, growing if needed."""
        self._ensure(slot + 1)
        self._v[slot] += 1

    def _ensure(self, size: int) -> None:
        """Grow to at least ``size`` slots (new components are zero)."""
        if len(self._v) < size:
            self._v.extend([0] * (size - len(self._v)))

    # -- lattice operations --------------------------------------------------
    #
    # Clocks of different lengths compare by padding the shorter one
    # with zeros: a thread that has not yet appeared contributes no
    # events.  This lets streaming analyses grow the thread universe
    # mid-run without rewriting stored timestamps.

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``⊑`` (missing components are zero)."""
        a, b = self._v, other._v
        if len(a) > len(b):
            if any(x > 0 for x in a[len(b):]):
                return False
            a = a[: len(b)]
        return all(x <= y for x, y in zip(a, b))

    def join_with(self, other: "VectorClock") -> bool:
        """In-place pointwise ``⊔``; returns True if self changed."""
        b = other._v
        self._ensure(len(b))
        a = self._v
        changed = False
        for i, y in enumerate(b):
            if y > a[i]:
                a[i] = y
                changed = True
        return changed

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pure pointwise ``⊔``."""
        out = self.copy()
        out.join_with(other)
        return out

    @staticmethod
    def join_all(clocks: Iterable["VectorClock"], size: int) -> "VectorClock":
        """Pointwise max over a collection (``⨆`` in the paper)."""
        out = VectorClock(size)
        for c in clocks:
            out.join_with(c)
        return out

    # -- comparisons ---------------------------------------------------------

    def _stripped(self) -> tuple:
        v = self._v
        n = len(v)
        while n > 0 and v[n - 1] == 0:
            n -= 1
        return tuple(v[:n])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._stripped() == other._stripped()

    def __hash__(self) -> int:
        return hash(self._stripped())

    def __repr__(self) -> str:
        return f"VC{self._v}"


class ThreadUniverse:
    """Interns thread names to dense integer slots."""

    def __init__(self, threads: Iterable[str] = ()) -> None:
        self._slots: Dict[str, int] = {}
        for t in threads:
            self.slot(t)

    def slot(self, thread: str) -> int:
        s = self._slots.get(thread)
        if s is None:
            s = len(self._slots)
            self._slots[thread] = s
        return s

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, thread: str) -> bool:
        return thread in self._slots

    def threads(self) -> Sequence[str]:
        return tuple(self._slots)
