"""Thread-reads-from (TRF) timestamps (paper Section 4.3).

``<=TRF`` is the reflexive-transitive closure of thread order united
with reads-from edges (and, in our extension, fork/join edges, which
the paper's artifact also tracks).  The timestamp of an event ``e`` is
``TS(e)(t) = |{ f in thread t | f <=TRF e }|`` so that

    e <=TRF f   iff   TS(e) ⊑ TS(f).

Computed for all events with a single O(N·T) vector-clock pass.

Every stored timestamp is a *canonical snapshot* (taken right after the
owning thread's tick), so membership of an event in a closure timestamp
is the O(1) epoch test :meth:`TRFTimestamps.leq_clock` — the full
clocks are kept only for joins.  Snapshots are copy-on-write, so the
pass performs one list copy per event, amortized, rather than one per
snapshot consumer.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from repro.trace.events import OP_FORK, OP_JOIN, OP_READ, OP_WRITE
from repro.trace.trace import Trace, as_trace
from repro.vc.clock import ThreadUniverse, VectorClock


class TRFTimestamps:
    """All-event TRF timestamps for one trace.

    Access with :meth:`of`.  Timestamps are *inclusive*: ``of(e)``
    counts ``e`` itself in its own thread's component.

    The O(N·T) derivation pass runs once per construction;
    :meth:`checkpoint` / :meth:`restore` serialize the derived state so
    other workers analyzing the *same* trace (e.g. sibling shard cells
    of one causality component) can skip the pass entirely.
    ``TRFTimestamps.computations`` counts derivation passes
    process-wide — the shard pipeline's reuse is pinned against it.
    """

    #: process-wide count of full derivation passes (restores excluded)
    computations = 0

    def __init__(self, trace: Trace) -> None:
        self.trace = trace = as_trace(trace)
        self.universe = ThreadUniverse(trace.threads)
        self._ts: List[VectorClock] = []
        # Per-event epoch of the timestamp: its thread slot and its own
        # component value (== per-thread position + 1).
        self._slots = array("i")
        self._vals = array("i")
        TRFTimestamps.computations += 1
        self._compute()

    def _compute(self) -> None:
        """One pass over the compiled int columns — no Event objects."""
        trace = self.trace
        compiled = trace.compiled
        index = trace.index
        ops, tids, targs = compiled.columns()
        rf = index.rf
        n_threads = len(self.universe)
        slot_of = self.universe.slot
        # tid -> slot / clock; only acting threads have clocks (a fork
        # or join naming a thread that never runs is a no-op).
        n_tids = len(compiled.threads_tab)
        tid_slot = array("i", [-1]) * n_tids
        clocks: List[Optional[VectorClock]] = [None] * n_tids
        thread_names = compiled.threads_tab.names
        for tid in index.thread_order:
            tid_slot[tid] = slot_of(thread_names[tid])
            clocks[tid] = VectorClock.bottom(n_threads)
        last_write_ts: List[Optional[VectorClock]] = [None] * len(compiled.vars_tab)
        ts_append = self._ts.append
        slots_append = self._slots.append
        vals_append = self._vals.append

        for i in range(len(ops)):
            op = ops[i]
            tid = tids[i]
            c = clocks[tid]
            slot = tid_slot[tid]
            if op == OP_READ:
                if rf[i] >= 0:
                    c.join_with(last_write_ts[targs[i]])
            elif op == OP_JOIN:
                # fork/join targets are always interned in threads_tab;
                # clocks[tid] is None only for never-acting threads.
                child_clock = clocks[targs[i]]
                if child_clock is not None:
                    c.join_with(child_clock)
            # Tick after incorporating predecessors so the timestamp is
            # inclusive of the event itself.
            c.tick(slot)
            snapshot = c.snapshot()
            ts_append(snapshot)
            slots_append(slot)
            vals_append(c[slot])
            if op == OP_WRITE:
                last_write_ts[targs[i]] = snapshot
            elif op == OP_FORK:
                child_clock = clocks[targs[i]]
                if child_clock is not None:
                    child_clock.join_with(snapshot)

    def of(self, event_idx: int) -> VectorClock:
        """The (inclusive) TRF timestamp of the event at ``event_idx``."""
        return self._ts[event_idx]

    def epoch(self, event_idx: int):
        """``(slot, value)`` epoch of the event's timestamp."""
        return self._slots[event_idx], self._vals[event_idx]

    def leq_clock(self, event_idx: int, t_clock: VectorClock) -> bool:
        """``TS(e) ⊑ T`` as an O(1) epoch test.

        Exact for closure clocks built by joining stored timestamps:
        ``T`` knows thread ``t`` up to time ``v`` iff it absorbed
        ``t``'s canonical snapshot at ``v``.
        """
        return self._vals[event_idx] <= t_clock.component(self._slots[event_idx])

    def pred_timestamp(self, event_idx: int) -> VectorClock:
        """Timestamp of the thread-local predecessor of ``event_idx``.

        The bottom clock when the event is first in its thread.  This is
        the ``C_pred`` value used by the online algorithm (Algorithm 4)
        and by ``pred(S)`` in Lemma 4.2.
        """
        pred = self.trace.index.thread_pred[event_idx]
        if pred < 0:
            return VectorClock.bottom(len(self.universe))
        return self._ts[pred]

    def leq(self, a: int, b: int) -> bool:
        """``a <=TRF b`` via timestamp comparison (O(1) epoch test)."""
        return self.leq_clock(a, self._ts[b])

    # -- checkpoint / restore ------------------------------------------------

    #: v2 added payload integrity: explicit byte length + sha256, so a
    #: bit-flipped or truncated blob is a detected ``ValueError`` (and
    #: a recompute) rather than silently corrupt timestamps.  v1 blobs
    #: (no checksum) are rejected as stale.
    _CKPT_MAGIC = "repro-trf-v2"
    _CKPT_STALE = ("repro-trf-v1",)

    def checkpoint(self) -> bytes:
        """Serialize the derived timestamps (not the trace).

        One JSON header line (format marker, thread universe, event
        count, payload length + sha256) followed by the raw bytes of
        the epoch columns, the per-event clock lengths, and the
        flattened clock components — deterministic for a given trace,
        cheap to reload with ``array.frombytes``.
        """
        import hashlib
        import json

        lens = array("i", (len(c._v) for c in self._ts))
        flat = array("i")
        for c in self._ts:
            flat.extend(c._v)
        payload = b"".join((
            self._slots.tobytes(), self._vals.tobytes(),
            lens.tobytes(), flat.tobytes(),
        ))
        header = {
            "format": self._CKPT_MAGIC,
            "threads": list(self.universe.threads()),
            "n": len(self._ts),
            "itemsize": array("i").itemsize,
            "payload_len": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        return b"".join((
            json.dumps(header, sort_keys=True).encode("utf-8"), b"\n",
            payload,
        ))

    @classmethod
    def restore(cls, trace: Trace, blob: bytes) -> "TRFTimestamps":
        """Rebuild timestamps for ``trace`` from :meth:`checkpoint` output.

        Validates the format version, that the blob belongs to a trace
        with the same thread universe and event count, and the
        payload's length + sha256 (so bit flips and truncation are
        detected); raises ``ValueError`` otherwise (the caller falls
        back to a fresh derivation).
        """
        import hashlib
        import json

        trace = as_trace(trace)
        head, sep, rest = blob.partition(b"\n")
        if not sep:
            raise ValueError("truncated TRF checkpoint")
        try:
            header = json.loads(head.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ValueError("corrupt TRF checkpoint header") from None
        fmt = header.get("format")
        if fmt in cls._CKPT_STALE:
            raise ValueError(
                f"stale TRF checkpoint version {fmt!r} "
                f"(current: {cls._CKPT_MAGIC})"
            )
        if fmt != cls._CKPT_MAGIC:
            raise ValueError("not a TRF checkpoint")
        if header["itemsize"] != array("i").itemsize:
            raise ValueError("TRF checkpoint from a different platform")
        if header.get("payload_len") != len(rest):
            raise ValueError(
                f"TRF checkpoint payload is {len(rest)} bytes, header "
                f"says {header.get('payload_len')} (truncated?)"
            )
        if hashlib.sha256(rest).hexdigest() != header.get("payload_sha256"):
            raise ValueError("TRF checkpoint payload checksum mismatch "
                             "(corrupt blob)")
        n = header["n"]
        if n != len(trace) or header["threads"] != list(trace.threads):
            raise ValueError("TRF checkpoint is for a different trace")
        size = n * header["itemsize"]
        out = cls.__new__(cls)
        out.trace = trace
        out.universe = ThreadUniverse(header["threads"])
        out._slots = array("i")
        out._slots.frombytes(rest[:size])
        out._vals = array("i")
        out._vals.frombytes(rest[size:2 * size])
        lens = array("i")
        lens.frombytes(rest[2 * size:3 * size])
        flat = array("i")
        flat.frombytes(rest[3 * size:])
        values = flat.tolist()
        ts: List[VectorClock] = []
        off = 0
        for length in lens:
            vc = VectorClock.__new__(VectorClock)
            vc._v = values[off:off + length]
            vc._shared = True  # stored snapshots are never mutated in place
            ts.append(vc)
            off += length
        out._ts = ts
        return out


def compute_trf_timestamps(trace: Trace) -> TRFTimestamps:
    """Convenience constructor for :class:`TRFTimestamps`."""
    return TRFTimestamps(trace)


def trf_reachable_set(trace: Trace, sources: List[int]) -> set:
    """The ``<=TRF`` downward closure of ``sources`` (explicit BFS).

    O(N + edges) reference implementation used by tests to validate the
    timestamp characterization and by the false-negative analysis of
    Section 6.1 (the "downward-closure of pred(D)" criterion).
    """
    fork_of: Dict[str, int] = {}
    for ev in trace:
        if ev.is_fork and ev.target not in fork_of:
            fork_of[ev.target] = ev.idx

    work = list(sources)
    seen = set(sources)

    def push(p: Optional[int]) -> None:
        if p is not None and p not in seen:
            seen.add(p)
            work.append(p)

    while work:
        idx = work.pop()
        ev = trace[idx]
        pred = trace.thread_predecessor(idx)
        push(pred)
        if pred is None:
            push(fork_of.get(ev.thread))  # first event depends on its fork
        if ev.is_read:
            push(trace.rf(idx))
        if ev.is_join:
            child_events = trace.events_of_thread(ev.target)
            if child_events:
                push(child_events[-1])
    return seen
