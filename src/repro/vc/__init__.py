"""Vector clocks and thread-reads-from (TRF) timestamps (paper §4.3)."""

from repro.vc.clock import VectorClock
from repro.vc.timestamps import TRFTimestamps, compute_trf_timestamps

__all__ = ["VectorClock", "TRFTimestamps", "compute_trf_timestamps"]
