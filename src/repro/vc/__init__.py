"""Vector clocks and thread-reads-from (TRF) timestamps (paper §4.3)."""

from repro.vc.clock import Epoch, ThreadUniverse, VectorClock
from repro.vc.timestamps import TRFTimestamps, compute_trf_timestamps

__all__ = [
    "Epoch",
    "ThreadUniverse",
    "VectorClock",
    "TRFTimestamps",
    "compute_trf_timestamps",
]
