"""Happens-Before race detection (Djit⁺/FastTrack style, full clocks).

A conflicting access pair is an *HB race* when the two events are
unordered by ``≤HB``.  The detector streams the trace once, keeping the
last write clock and per-thread read clocks per variable, and reports
the first race per variable-and-thread-pair (plus every racy pair when
``first_only=False``, for comparisons against sync-preserving races).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hb.clocks import HBClocks
from repro.trace.events import OP_READ, OP_WRITE
from repro.trace.trace import Trace, as_trace
from repro.vc.clock import VectorClock


@dataclass(frozen=True)
class HBRace:
    first_event: int
    second_event: int
    variable: str

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.first_event, self.second_event)


@dataclass
class HBRaceResult:
    races: List[HBRace] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def num_races(self) -> int:
        return len(self.races)

    def race_pairs(self) -> Set[Tuple[int, int]]:
        return {r.pair for r in self.races}

    def first_race(self) -> Optional[HBRace]:
        """The race whose second event is trace-earliest — the one
        classical HB detectors are sound for."""
        if not self.races:
            return None
        return min(self.races, key=lambda r: r.second_event)


@dataclass
class _VarState:
    last_write: Optional[int] = None
    last_write_tid: int = -1
    last_write_ts: Optional[VectorClock] = None
    reads: Dict[int, Tuple[int, VectorClock]] = field(default_factory=dict)


def hb_races(trace: Trace, first_only_per_site: bool = True) -> HBRaceResult:
    """All (or first-per-site) HB races of ``trace``.

    Streams the compiled int columns once: variable state is keyed by
    interned variable id, race sites by interned thread-id pairs; the
    variable name is looked up only when a race is actually reported.

    Args:
        trace: input trace.
        first_only_per_site: report one race per
            (variable, thread-pair, kind) combination; ``False``
            enumerates every unordered conflicting pair involving the
            tracked last accesses.
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    clocks = HBClocks(trace)
    compiled = trace.compiled
    ops, tids, targs = compiled.columns()
    var_names = compiled.vars_tab.names
    state: Dict[int, _VarState] = {}
    seen_sites: Set[Tuple] = set()
    result = HBRaceResult()

    def report(a: int, b: int, var: int, site: Tuple) -> None:
        if first_only_per_site:
            if site in seen_sites:
                return
            seen_sites.add(site)
        result.races.append(HBRace(min(a, b), max(a, b), var_names[var]))

    for i in range(len(ops)):
        op = ops[i]
        if op != OP_READ and op != OP_WRITE:
            continue
        var = targs[i]
        tid = tids[i]
        vs = state.get(var)
        if vs is None:
            vs = state[var] = _VarState()
        ts = clocks.of(i)
        if op == OP_WRITE:
            # write-write race with the previous write
            if (
                vs.last_write is not None
                and vs.last_write_tid != tid
                and not vs.last_write_ts.leq(ts)
            ):
                report(vs.last_write, i, var,
                       ("ww", var, vs.last_write_tid, tid))
            # write-read races with every thread's last read
            for r_tid, (r_idx, r_ts) in vs.reads.items():
                if r_tid != tid and not r_ts.leq(ts):
                    report(r_idx, i, var, ("rw", var, r_tid, tid))
            vs.last_write = i
            vs.last_write_tid = tid
            vs.last_write_ts = ts
        else:
            if (
                vs.last_write is not None
                and vs.last_write_tid != tid
                and not vs.last_write_ts.leq(ts)
            ):
                report(vs.last_write, i, var,
                       ("wr", var, vs.last_write_tid, tid))
            vs.reads[tid] = (i, ts)
    result.elapsed = time.perf_counter() - start
    return result


def all_hb_unordered_conflicts(trace: Trace) -> Set[Tuple[int, int]]:
    """Every conflicting pair unordered by HB (quadratic reference)."""
    clocks = HBClocks(trace)
    accesses = [ev.idx for ev in trace if ev.is_access]
    out: Set[Tuple[int, int]] = set()
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            ea, eb = trace[a], trace[b]
            if ea.thread == eb.thread or ea.target != eb.target:
                continue
            if not (ea.is_write or eb.is_write):
                continue
            if not clocks.ordered(a, b):
                out.add((a, b))
    return out
