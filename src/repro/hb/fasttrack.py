"""FastTrack: epoch-optimized Happens-Before race detection
[Flanagan & Freund, PLDI 2009] — the substrate the paper's related
work contrasts with.

The full-vector-clock detector (:mod:`repro.hb.races`) spends O(T) per
access; FastTrack's observation is that most variables are accessed in
a totally ordered way, so the last access can be summarized by an
*epoch* ``c@t`` (clock value c of thread t) and compared in O(1).  The
read state adaptively inflates from an epoch to a full vector clock
only while reads are concurrent, and deflates back on a write.

Faithful to the published state machine:

- write-write: compare the write epoch against the writer's clock;
- write-read / read-write: epoch-vs-clock, with read-share inflation
  (SHARED state) and deflation on exclusive writes;
- locks, fork/join: standard HB clock maintenance.

Equivalence with the full-VC detector on the *first race per variable*
is tested property-style in ``tests/test_fasttrack.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.trace.trace import Trace
from repro.vc.clock import ThreadUniverse, VectorClock


@dataclass(frozen=True)
class Epoch:
    """``c@t``: clock value ``c`` of thread slot ``t``."""

    clock: int
    slot: int

    def leq(self, vc: VectorClock) -> bool:
        """``c@t ⊑ V  ⟺  c ≤ V[t]`` — the O(1) comparison."""
        return self.clock <= (vc[self.slot] if self.slot < len(vc) else 0)


_BOTTOM = Epoch(0, 0)


@dataclass
class _VarState:
    """FastTrack per-variable state: write epoch + read epoch-or-VC."""

    write: Epoch = _BOTTOM
    write_event: Optional[int] = None
    read: Epoch = _BOTTOM
    read_event: Optional[int] = None
    shared_reads: Optional[VectorClock] = None      # SHARED state
    shared_events: Dict[int, int] = field(default_factory=dict)  # slot -> event


@dataclass(frozen=True)
class FastTrackRace:
    first_event: int
    second_event: int
    variable: str
    kind: str  # "ww", "wr", "rw"


@dataclass
class FastTrackResult:
    races: List[FastTrackRace] = field(default_factory=list)
    #: O(1) epoch comparisons vs O(T) vector comparisons performed
    epoch_ops: int = 0
    vector_ops: int = 0
    elapsed: float = 0.0

    @property
    def num_races(self) -> int:
        return len(self.races)

    def racy_variables(self) -> Set[str]:
        return {r.variable for r in self.races}


class FastTrack:
    """Streaming epoch-based HB race detector."""

    def __init__(self) -> None:
        self.universe = ThreadUniverse()
        self._clocks: Dict[str, VectorClock] = {}
        self._last_release: Dict[str, VectorClock] = {}
        self._vars: Dict[str, _VarState] = {}
        self.result = FastTrackResult()
        self._reported: Set[Tuple[str, str]] = set()

    def _clock(self, thread: str) -> VectorClock:
        c = self._clocks.get(thread)
        if c is None:
            slot = self.universe.slot(thread)
            c = VectorClock(slot + 1)
            c[slot] = 1  # epochs start at 1 so c@t ⋢ ⊥ holds
            self._clocks[thread] = c
        return c

    def _report(self, first: Optional[int], second: int, var: str, kind: str) -> None:
        if first is None:
            return
        key = (var, kind)
        if key in self._reported:
            return
        self._reported.add(key)
        self.result.races.append(FastTrackRace(first, second, var, kind))

    # -- handlers (the PLDI'09 state machine) -------------------------------

    def step(self, event) -> None:
        thread = event.thread
        c = self._clock(thread)
        slot = self.universe.slot(thread)
        if event.is_write:
            self._write(event, c, slot)
        elif event.is_read:
            self._read(event, c, slot)
        elif event.is_acquire:
            rel = self._last_release.get(event.target)
            if rel is not None:
                c.join_with(rel)
                self.result.vector_ops += 1
        elif event.is_release:
            self._last_release[event.target] = c.copy()
            c.tick(slot)
        elif event.is_fork:
            child = self._clock(event.target)
            child.join_with(c)
            self.result.vector_ops += 1
            c.tick(slot)
        elif event.is_join:
            child = self._clocks.get(event.target)
            if child is not None:
                c.join_with(child)
                self.result.vector_ops += 1

    def _write(self, event, c: VectorClock, slot: int) -> None:
        vs = self._vars.setdefault(event.target, _VarState())
        # WW check: epoch vs clock, O(1).
        self.result.epoch_ops += 1
        if not vs.write.leq(c) and vs.write.slot != slot:
            self._report(vs.write_event, event.idx, event.target, "ww")
        # RW check.
        if vs.shared_reads is not None:
            self.result.vector_ops += 1
            if not vs.shared_reads.leq(c):
                racer = self._shared_racer(vs, c)
                self._report(racer, event.idx, event.target, "rw")
            # Deflate: exclusive write clears the shared read set.
            vs.shared_reads = None
            vs.shared_events.clear()
            vs.read = _BOTTOM
            vs.read_event = None
        else:
            self.result.epoch_ops += 1
            if not vs.read.leq(c) and vs.read.slot != slot:
                self._report(vs.read_event, event.idx, event.target, "rw")
        vs.write = Epoch(c[slot], slot)
        vs.write_event = event.idx
        c.tick(slot)

    def _read(self, event, c: VectorClock, slot: int) -> None:
        vs = self._vars.setdefault(event.target, _VarState())
        # WR check, O(1).
        self.result.epoch_ops += 1
        if not vs.write.leq(c) and vs.write.slot != slot:
            self._report(vs.write_event, event.idx, event.target, "wr")
        if vs.shared_reads is not None:
            # Already SHARED: O(1) slot update.
            vs.shared_reads._ensure(slot + 1)
            vs.shared_reads[slot] = c[slot]
            vs.shared_events[slot] = event.idx
        else:
            self.result.epoch_ops += 1
            if vs.read.leq(c):
                # Same-epoch or ordered read: stay exclusive.
                vs.read = Epoch(c[slot], slot)
                vs.read_event = event.idx
            else:
                # Concurrent reads: inflate to SHARED.
                vc = VectorClock(max(slot, vs.read.slot) + 1)
                vc[vs.read.slot] = vs.read.clock
                vc[slot] = c[slot]
                vs.shared_reads = vc
                vs.shared_events = {}
                if vs.read_event is not None:
                    vs.shared_events[vs.read.slot] = vs.read_event
                vs.shared_events[slot] = event.idx
        c.tick(slot)

    def _shared_racer(self, vs: _VarState, c: VectorClock) -> Optional[int]:
        """Pick one concrete read event racing with the current write."""
        assert vs.shared_reads is not None
        for s, ev_idx in vs.shared_events.items():
            val = vs.shared_reads[s] if s < len(vs.shared_reads) else 0
            if val > (c[s] if s < len(c) else 0):
                return ev_idx
        return next(iter(vs.shared_events.values()), None)


def fasttrack_races(trace: Trace) -> FastTrackResult:
    """Run FastTrack over a complete trace."""
    det = FastTrack()
    start = time.perf_counter()
    for ev in trace:
        det.step(ev)
    det.result.elapsed = time.perf_counter() - start
    return det.result
