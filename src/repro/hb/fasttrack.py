"""FastTrack: epoch-optimized Happens-Before race detection
[Flanagan & Freund, PLDI 2009] — the substrate the paper's related
work contrasts with.

The full-vector-clock detector (:mod:`repro.hb.races`) spends O(T) per
access; FastTrack's observation is that most variables are accessed in
a totally ordered way, so the last access can be summarized by an
*epoch* ``c@t`` (clock value c of thread t) and compared in O(1).  The
read state adaptively inflates from an epoch to a full vector clock
only while reads are concurrent, and deflates back on a write.

Faithful to the published state machine:

- write-write: compare the write epoch against the writer's clock;
- write-read / read-write: epoch-vs-clock, with read-share inflation
  (SHARED state) and deflation on exclusive writes;
- locks, fork/join: standard HB clock maintenance.

Threads, locks, and variables are interned to dense ints on entry
(:class:`~repro.trace.compiled.CompiledTrace` streams through
pre-interned), lock-release clocks carry their epoch so ordered
re-acquires skip the O(T) join, and the :class:`Epoch` type itself now
lives in :mod:`repro.vc.clock`, shared with the deadlock engines.

Equivalence with the full-VC detector on the *first race per variable*
is tested property-style in ``tests/test_fasttrack.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import repro.kernels as kernels
from repro.trace.compiled import CompiledTrace, InterningDetectorMixin
from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_JOIN,
    OP_READ,
    OP_RELEASE,
    OP_WRITE,
)
from repro.vc.clock import Epoch, ThreadUniverse, VectorClock

__all__ = [
    "Epoch",
    "FastTrack",
    "FastTrackRace",
    "FastTrackResult",
    "fasttrack_races",
]

_BOTTOM = Epoch(0, 0)


class _VarState:
    """FastTrack per-variable state: write epoch + read epoch-or-VC."""

    __slots__ = ("write", "write_event", "read", "read_event",
                 "shared_reads", "shared_events")

    def __init__(self) -> None:
        self.write = _BOTTOM
        self.write_event: Optional[int] = None
        self.read = _BOTTOM
        self.read_event: Optional[int] = None
        self.shared_reads: Optional[VectorClock] = None      # SHARED state
        self.shared_events: Dict[int, int] = {}              # slot -> event


@dataclass(frozen=True)
class FastTrackRace:
    first_event: int
    second_event: int
    variable: str
    kind: str  # "ww", "wr", "rw"


@dataclass
class FastTrackResult:
    races: List[FastTrackRace] = field(default_factory=list)
    #: O(1) epoch comparisons vs O(T) vector comparisons performed
    epoch_ops: int = 0
    vector_ops: int = 0
    elapsed: float = 0.0

    @property
    def num_races(self) -> int:
        return len(self.races)

    def racy_variables(self) -> Set[str]:
        return {r.variable for r in self.races}


class FastTrack(InterningDetectorMixin):
    """Streaming epoch-based HB race detector."""

    def __init__(self) -> None:
        self.universe = ThreadUniverse()
        self._tid: Dict[str, int] = {}
        self._vid: Dict[str, int] = {}
        self._lid: Dict[str, int] = {}
        self._var_names: List[str] = []
        self._clocks: List[VectorClock] = []
        # Threads that have performed an event or been fork targets.
        # A join of a thread never materialized this way is a no-op
        # (its epoch-1 initial clock represents no events; joining it
        # would fabricate an HB edge and mask races).
        self._materialized: List[bool] = []
        # Per-lock (release-epoch value, slot, clock) of the last release.
        self._last_release: List[Optional[Tuple[int, int, VectorClock]]] = []
        self._vars: List[_VarState] = []
        self.result = FastTrackResult()
        self._reported: Set[Tuple[str, str]] = set()

    # -- interning ---------------------------------------------------------

    def _add_thread(self, thread: str) -> int:
        slot = self.universe.slot(thread)
        self._tid[thread] = slot
        c = VectorClock(slot + 1)
        c[slot] = 1  # epochs start at 1 so c@t ⋢ ⊥ holds
        self._clocks.append(c)
        self._materialized.append(False)
        return slot

    def _add_var(self, var: str) -> int:
        vid = len(self._vars)
        self._vid[var] = vid
        self._var_names.append(var)
        self._vars.append(_VarState())
        return vid

    def _add_lock(self, lock: str) -> int:
        lid = len(self._last_release)
        self._lid[lock] = lid
        self._last_release.append(None)
        return lid

    def _report(self, first: Optional[int], second: int, vid: int,
                kind: str) -> None:
        if first is None:
            return
        var = self._var_names[vid]
        key = (var, kind)
        if key in self._reported:
            return
        self._reported.add(key)
        self.result.races.append(FastTrackRace(first, second, var, kind))

    # -- handlers (the PLDI'09 state machine) -------------------------------

    def step(self, event) -> None:
        op, tid, target_id = self._intern_event(event)
        self._step_coded(op, tid, target_id, event.idx)

    def _step_coded(self, op: int, tid: int, target_id: int, idx: int) -> None:
        c = self._clocks[tid]
        self._materialized[tid] = True
        if op == OP_WRITE:
            self._write(idx, target_id, c, tid)
        elif op == OP_READ:
            self._read(idx, target_id, c, tid)
        elif op == OP_ACQUIRE:
            rel = self._last_release[target_id]
            if rel is not None:
                # Epoch fast path: an ordered re-acquire needs no join.
                # Exact because release exports are canonical (each
                # release copies then immediately ticks, so one export
                # per component value); a thread that keeps syncing
                # after being join()ed could break canonicality, which
                # is why joins of unmaterialized threads are no-ops.
                self.result.epoch_ops += 1
                if rel[0] > c.component(rel[1]):
                    c.join_with(rel[2])
                    self.result.vector_ops += 1
        elif op == OP_RELEASE:
            self._last_release[target_id] = (c.component(tid), tid, c.snapshot())
            c.tick(tid)
        elif op == OP_FORK:
            child = self._clocks[target_id]
            self._materialized[target_id] = True
            child.join_with(c)
            self.result.vector_ops += 1
            c.tick(tid)
        elif op == OP_JOIN:
            if self._materialized[target_id]:
                child = self._clocks[target_id]
                c.join_with(child)
                self.result.vector_ops += 1
                # Tick the child past the absorbed observation so a
                # later export of it cannot reuse this component value
                # with more knowledge (acquire joins don't tick) —
                # keeps every export canonical, which the acquire
                # epoch fast-path's exactness depends on.
                child.tick(target_id)

    def _write(self, idx: int, vid: int, c: VectorClock, slot: int) -> None:
        vs = self._vars[vid]
        # WW check: epoch vs clock, O(1).
        self.result.epoch_ops += 1
        write = vs.write
        if write.slot != slot and not write.leq(c):
            self._report(vs.write_event, idx, vid, "ww")
        # RW check.
        if vs.shared_reads is not None:
            self.result.vector_ops += 1
            if not vs.shared_reads.leq(c):
                racer = self._shared_racer(vs, c)
                self._report(racer, idx, vid, "rw")
            # Deflate: exclusive write clears the shared read set.
            vs.shared_reads = None
            vs.shared_events.clear()
            vs.read = _BOTTOM
            vs.read_event = None
        else:
            self.result.epoch_ops += 1
            read = vs.read
            if read.slot != slot and not read.leq(c):
                self._report(vs.read_event, idx, vid, "rw")
        vs.write = Epoch(c[slot], slot)
        vs.write_event = idx
        c.tick(slot)

    def _read(self, idx: int, vid: int, c: VectorClock, slot: int) -> None:
        vs = self._vars[vid]
        # WR check, O(1).
        self.result.epoch_ops += 1
        write = vs.write
        if write.slot != slot and not write.leq(c):
            self._report(vs.write_event, idx, vid, "wr")
        if vs.shared_reads is not None:
            # Already SHARED: O(1) slot update.
            vs.shared_reads._ensure(slot + 1)
            vs.shared_reads[slot] = c[slot]
            vs.shared_events[slot] = idx
        else:
            self.result.epoch_ops += 1
            if vs.read.leq(c):
                # Same-epoch or ordered read: stay exclusive.
                vs.read = Epoch(c[slot], slot)
                vs.read_event = idx
            else:
                # Concurrent reads: inflate to SHARED.
                vc = VectorClock(max(slot, vs.read.slot) + 1)
                vc[vs.read.slot] = vs.read.clock
                vc[slot] = c[slot]
                vs.shared_reads = vc
                vs.shared_events = {}
                if vs.read_event is not None:
                    vs.shared_events[vs.read.slot] = vs.read_event
                vs.shared_events[slot] = idx
        c.tick(slot)

    def _shared_racer(self, vs: _VarState, c: VectorClock) -> Optional[int]:
        """Pick one concrete read event racing with the current write."""
        assert vs.shared_reads is not None
        for s, ev_idx in vs.shared_events.items():
            val = vs.shared_reads[s] if s < len(vs.shared_reads) else 0
            if val > (c[s] if s < len(c) else 0):
                return ev_idx
        return next(iter(vs.shared_events.values()), None)

    # -- batch / session drivers --------------------------------------------

    def _fresh(self) -> bool:
        return not (self._clocks or self._vars or self._last_release)

    def feed_batch(self, compiled: CompiledTrace, lo: int, hi: int,
                   base: int = 0) -> None:
        """Session feed (see :mod:`repro.stream`): FastTrack's coded
        step takes the *global* event index (``base + i``) instead of a
        location, so race reports name the same events a batch run
        over the full trace would."""
        if kernels.backend() == "numpy":
            from repro.kernels.fasttrack_np import feed_batch_runs

            if feed_batch_runs(self, compiled, lo, hi, base,
                               kernels.numpy_or_none()):
                return
            kernels.record_dispatch("fasttrack_runs", "python",
                                    events=hi - lo)
        if self._sync_tables(compiled):
            step_coded = self._step_coded
            ops, tids, targets = compiled.columns()
            for i in range(lo, hi):
                # request events fall through _step_coded as no-ops,
                # matching the string path exactly
                step_coded(ops[i], tids[i], targets[i], base + i)
        else:
            intern = self._intern_event
            step_coded = self._step_coded
            for i in range(lo, hi):
                op, tid, target_id = intern(compiled.event(i))
                step_coded(op, tid, target_id, base + i)

    def run(self, trace) -> FastTrackResult:
        """Stream a whole trace (``Trace`` or ``CompiledTrace``) through
        the same feed path a live session drives."""
        start = time.perf_counter()
        if isinstance(trace, CompiledTrace):
            self.feed_batch(trace, 0, len(trace))
        else:
            for ev in trace:
                self.step(ev)
        self.result.elapsed = time.perf_counter() - start
        return self.result


def fasttrack_races(trace) -> FastTrackResult:
    """Run FastTrack over a complete trace."""
    return FastTrack().run(trace)
