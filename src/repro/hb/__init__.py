"""The Happens-Before partial order and HB-based analyses.

Section 4.1 of the paper contrasts sync-preserving reasoning with the
space of reorderings induced by Happens-Before [Lamport 1978]: HB
implicitly forces every intermediate critical section on a lock to be
present, while sync-preservation may drop them — so HB-based filtering
*hides* deadlocks (σ2's deadlock is HB-ordered!), and HB-based race
detection finds a subset of the sync-preserving races.  This package
provides the HB substrate so those comparisons are executable:

- :class:`HBClocks` — HB vector clocks over a trace.
- :func:`hb_races` — FastTrack-style HB race detection.
- :func:`hb_filtered_patterns` — partial-order pruning of deadlock
  patterns: sound MHP (fork/join) pruning by default, or full HB,
  which provably discards *every* completed pattern — σ2's real
  deadlock included.
"""

from repro.hb.clocks import HBClocks
from repro.hb.races import HBRaceResult, hb_races
from repro.hb.deadlocks import MHPClocks, hb_filtered_patterns
from repro.hb.fasttrack import FastTrack, FastTrackResult, fasttrack_races

__all__ = [
    "HBClocks",
    "HBRaceResult",
    "hb_races",
    "hb_filtered_patterns",
    "MHPClocks",
    "FastTrack",
    "FastTrackResult",
    "fasttrack_races",
]
