"""Partial-order filtering of deadlock patterns — the classical
precision baselines, and why they fail for prediction.

Two filters over Goodlock warnings:

- **May-happen-in-parallel (MHP)**: prune patterns whose events are
  ordered by program order and fork/join alone (the Goodlock-v2 /
  MagicFuzzer-style segmentation check).  Sound to prune — those
  orderings hold in every correct reordering — but still unsound to
  keep (reads-from blocking is invisible to it; σ1 survives).

- **Full Happens-Before** (``include_lock_edges=True``): additionally
  order through per-lock release→acquire edges.  This is the Section
  4.1 cautionary tale in its sharpest form: in any trace where the
  pattern's critical sections completed, *adjacent pattern events
  share a lock and are therefore always HB-ordered* — the filter
  discards every completed pattern, real deadlocks included (σ2!).
  Predictive reasoning must be allowed to drop or reorder critical
  sections; sync-preservation is the paper's calibrated way to do so.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.goodlock import goodlock
from repro.core.patterns import DeadlockPattern
from repro.hb.clocks import HBClocks
from repro.trace.trace import Trace
from repro.vc.clock import ThreadUniverse, VectorClock


class MHPClocks:
    """Vector clocks over program order + fork/join only.

    ``ordered(a, b)`` ⇒ the order holds in *every* correct reordering,
    so pruning on it is sound.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.universe = ThreadUniverse(trace.threads)
        self._ts: List[VectorClock] = []
        clocks = {t: VectorClock.bottom(len(self.universe)) for t in trace.threads}
        for ev in trace:
            c = clocks[ev.thread]
            if ev.is_join:
                child = clocks.get(ev.target)
                if child is not None:
                    c.join_with(child)
            c.tick(self.universe.slot(ev.thread))
            snapshot = c.copy()
            self._ts.append(snapshot)
            if ev.is_fork:
                child = clocks.get(ev.target)
                if child is not None:
                    child.join_with(snapshot)

    def leq(self, a: int, b: int) -> bool:
        return self._ts[a].leq(self._ts[b])

    def ordered(self, a: int, b: int) -> bool:
        return self.leq(a, b) or self.leq(b, a)


@dataclass
class HBFilterResult:
    """Patterns surviving the filter, plus what was discarded."""

    surviving: List[DeadlockPattern] = field(default_factory=list)
    discarded: List[DeadlockPattern] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def num_warnings(self) -> int:
        return len(self.surviving)


def hb_filtered_patterns(
    trace: Trace,
    max_size: Optional[int] = None,
    max_cycles: Optional[int] = None,
    include_lock_edges: bool = False,
) -> HBFilterResult:
    """Goodlock warnings pruned by a partial order.

    With the default MHP order, pruning is sound (pruned patterns are
    unrealizable in any correct reordering) but keeping is not (kept
    patterns may still be blocked by data flow).  With
    ``include_lock_edges`` the order becomes full HB and the filter
    degenerates: completed patterns are always ordered through their
    shared locks, so everything — including real predictable deadlocks
    — is discarded.
    """
    start = time.perf_counter()
    order = (
        HBClocks(trace) if include_lock_edges else MHPClocks(trace)
    )
    result = HBFilterResult()
    warnings = goodlock(trace, max_size=max_size, max_cycles=max_cycles).warnings
    for pattern in warnings:
        events = pattern.events
        ordered = any(
            order.ordered(events[i], events[j])
            for i in range(len(events))
            for j in range(i + 1, len(events))
        )
        if ordered:
            result.discarded.append(pattern)
        else:
            result.surviving.append(pattern)
    result.elapsed = time.perf_counter() - start
    return result
