"""Happens-Before vector clocks.

``≤HB`` is the smallest partial order containing thread order,
release→acquire edges per lock (a critical section happens before
every later-acquired critical section on the same lock), fork edges
(fork before the child's first event), and join edges (the child's
last event before the join).  Following the classical treatment,
reads-from edges are *not* part of HB — lock edges subsume them in
data-race-free executions, and including them would only shrink the
set of detected races further.

Computed with one O(N·T) vector-clock pass (the Djit/FastTrack
skeleton); ``of(e)`` is inclusive, so ``a ≤HB b  ⟺  of(a) ⊑ of(b)``.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_JOIN,
    OP_READ,
    OP_RELEASE,
    OP_WRITE,
)
from repro.trace.trace import Trace, as_trace
from repro.vc.clock import ThreadUniverse, VectorClock


class HBClocks:
    """All-event Happens-Before timestamps for one trace."""

    def __init__(self, trace: Trace, include_rf: bool = False) -> None:
        self.trace = trace = as_trace(trace)
        self.include_rf = include_rf
        self.universe = ThreadUniverse(trace.threads)
        self._ts: List[VectorClock] = []
        self._compute()

    def _compute(self) -> None:
        """One pass over the compiled int columns — no Event objects."""
        trace = self.trace
        compiled = trace.compiled
        index = trace.index
        ops, tids, targs = compiled.columns()
        rf = index.rf
        n = len(self.universe)
        n_tids = len(compiled.threads_tab)
        tid_slot = array("i", [-1]) * n_tids
        clocks: List[Optional[VectorClock]] = [None] * n_tids
        thread_names = compiled.threads_tab.names
        for tid in index.thread_order:
            tid_slot[tid] = self.universe.slot(thread_names[tid])
            clocks[tid] = VectorClock.bottom(n)
        last_release: List[Optional[VectorClock]] = [None] * len(compiled.locks_tab)
        last_write: List[Optional[VectorClock]] = [None] * len(compiled.vars_tab)
        include_rf = self.include_rf

        for i in range(len(ops)):
            op = ops[i]
            c = clocks[tids[i]]
            slot = tid_slot[tids[i]]
            if op == OP_ACQUIRE:
                rel = last_release[targs[i]]
                if rel is not None:
                    c.join_with(rel)
            elif op == OP_JOIN:
                child = clocks[targs[i]]
                if child is not None:
                    c.join_with(child)
            elif op == OP_READ and include_rf:
                if rf[i] >= 0:
                    c.join_with(last_write[targs[i]])
            c.tick(slot)
            snapshot = c.copy()
            self._ts.append(snapshot)
            if op == OP_RELEASE:
                last_release[targs[i]] = snapshot
            elif op == OP_WRITE:
                last_write[targs[i]] = snapshot
            elif op == OP_FORK:
                child = clocks[targs[i]]
                if child is not None:
                    child.join_with(snapshot)

    def of(self, event_idx: int) -> VectorClock:
        return self._ts[event_idx]

    def leq(self, a: int, b: int) -> bool:
        """``a ≤HB b``."""
        return self._ts[a].leq(self._ts[b])

    def ordered(self, a: int, b: int) -> bool:
        """Are the two events comparable under HB (either direction)?"""
        return self.leq(a, b) or self.leq(b, a)


def hb_reachable_set(trace: Trace, sources: List[int], include_rf: bool = False):
    """Explicit BFS reference for ``≤HB`` (test oracle)."""
    fork_of: Dict[str, int] = {}
    for ev in trace:
        if ev.is_fork and ev.target not in fork_of:
            fork_of[ev.target] = ev.idx
    # Per-lock list of (acquire, matching release) in trace order.
    cs_of_lock: Dict[str, List[tuple]] = {}
    for ev in trace:
        if ev.is_acquire:
            cs_of_lock.setdefault(ev.target, []).append(
                (ev.idx, trace.match(ev.idx))
            )

    work = list(sources)
    seen = set(sources)

    def push(p: Optional[int]) -> None:
        if p is not None and p not in seen:
            seen.add(p)
            work.append(p)

    while work:
        idx = work.pop()
        ev = trace[idx]
        pred = trace.thread_predecessor(idx)
        push(pred)
        if pred is None:
            push(fork_of.get(ev.thread))
        if ev.is_acquire:
            for acq, rel in cs_of_lock.get(ev.target, ()):
                if rel is not None and rel < idx:
                    push(rel)
        if ev.is_join:
            child = trace.events_of_thread(ev.target)
            if child:
                push(child[-1])
        if ev.is_read and include_rf:
            push(trace.rf(idx))
    return seen
