"""Bounded-memory windowed analysis (an explicitly lossy deployment mode).

SPDOffline keeps per-trace state linear in N; for monitoring sessions
of unbounded length even that is too much.  ``spd_offline_windowed``
analyzes the trace in overlapping chunks and forgets everything older
than one window — the same engineering compromise Dirk makes
(Section 6.1 discusses its misses), provided here as a first-class,
clearly-labelled mode rather than a silent limitation.

Since the streaming refactor this module is a thin batch adapter: the
window engine itself is :class:`repro.stream.WindowedSessionClient`,
which slides the window over an incrementally-maintained session index
(and powers true bounded-memory streaming via ``repro analyze
--stream``).  Replaying a complete trace through a session reproduces
the historical batch behavior bit for bit.

Guarantees:

- every reported deadlock is a sync-preserving deadlock of the *whole*
  trace restricted to the window (sound for the window, and — because
  a sync-preserving witness never needs events after the pattern —
  sound for the full trace as long as the window covers the pattern's
  closure);
- deadlock patterns whose events span more than ``window`` events may
  be missed (tested explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.patterns import DeadlockReport
from repro.trace.events import OP_RELEASE
from repro.trace.trace import Trace, as_trace


@dataclass
class WindowedResult:
    """Accumulated windowed-analysis output (shared by the batch entry
    point and the streaming session client)."""

    reports: List[DeadlockReport] = field(default_factory=list)
    windows: int = 0
    elapsed: float = 0.0

    @property
    def num_deadlocks(self) -> int:
        return len(self.reports)

    def unique_bugs(self) -> set:
        return {r.bug_id for r in self.reports}


def window_slice(trace: Trace, lo: int, hi: int) -> Tuple[Trace, List[int]]:
    """Well-formed window ``[lo, hi)``: drop releases whose acquire
    precedes the window (slicing mid-critical-section would produce an
    ill-formed sub-trace).  Reads whose writer falls outside silently
    rebind to an in-window writer or the initial value — their
    constraints cannot be validated inside the window, and dropping
    them only *adds* behaviors, which is the documented windowing
    imprecision shared by every windowed mode (this module and the
    Dirk stand-in).  Returns the sub-trace (projected on the compiled
    columns, no Event objects) and the local→global index map."""
    ops = trace.compiled.ops
    match = trace.index.match
    keep: List[int] = []
    for idx in range(lo, hi):
        if ops[idx] == OP_RELEASE and match[idx] < lo:
            continue
        keep.append(idx)
    return trace.project(keep, name=f"{trace.name}[{lo}:{hi}]"), keep


def spd_offline_windowed(
    trace: Trace,
    window: int = 50_000,
    overlap: float = 0.5,
    max_size: Optional[int] = None,
) -> WindowedResult:
    """Windowed SPDOffline with overlapping chunks (batch adapter).

    Replays ``trace`` through a :class:`~repro.stream.StreamSession`
    driving a :class:`~repro.stream.WindowedSessionClient` — window
    placement, slicing, and deduplication are the client's, so batch
    and streaming runs agree bit for bit.

    Args:
        trace: input trace.
        window: events per chunk.
        overlap: fraction of each window shared with the next
            (0 ≤ overlap < 1); overlapping halves catch patterns that
            straddle a boundary by less than ``overlap · window``.
        max_size: deadlock-size cap forwarded to each window.
    """
    from repro.stream.session import StreamSession
    from repro.stream.windowed import WindowedSessionClient

    trace = as_trace(trace)
    session = StreamSession(name=trace.name)
    client = WindowedSessionClient(session, window=window, overlap=overlap,
                                   max_size=max_size)
    session.feed_compiled(trace.compiled)
    session.close()
    return client.result
