"""The paper's primary contribution: sync-preserving deadlock prediction.

Public entry points:

- :func:`spd_offline` — Algorithm 3 (SPDOffline): detect all
  sync-preserving deadlocks of all sizes, two-phase.
- :class:`SPDOnline` / :func:`spd_online` — Algorithm 4 (SPDOnline):
  streaming detection of all size-2 sync-preserving deadlocks.
- :func:`sp_closure` — Algorithm 1 over event sets (reference entry).
- :class:`DeadlockPattern`, :class:`AbstractDeadlockPattern`,
  :class:`DeadlockReport` — result types.
- :func:`build_abstract_lock_graph`, :func:`abstract_deadlock_patterns`
  — the Section 4.5 graph machinery.
"""

from repro.core.patterns import (
    AbstractDeadlockPattern,
    DeadlockPattern,
    DeadlockReport,
    find_concrete_patterns,
    is_deadlock_pattern,
)
from repro.core.alg import (
    abstract_deadlock_patterns,
    build_abstract_lock_graph,
    count_cycles,
)
from repro.core.closure import SPClosureEngine, sp_closure, sp_closure_events
from repro.core.spd_offline import SPDOfflineResult, check_abstract_pattern, spd_offline
from repro.core.spd_online import SPDOnline, spd_online
from repro.core.races import RaceReport, SPRaceResult, is_sp_race, sp_races
from repro.core.windowed import WindowedResult, spd_offline_windowed
from repro.core.spd_online_k import OnlineKReport, SPDOnlineK, spd_online_k

__all__ = [
    "AbstractDeadlockPattern",
    "DeadlockPattern",
    "DeadlockReport",
    "find_concrete_patterns",
    "is_deadlock_pattern",
    "abstract_deadlock_patterns",
    "build_abstract_lock_graph",
    "count_cycles",
    "SPClosureEngine",
    "sp_closure",
    "sp_closure_events",
    "SPDOfflineResult",
    "check_abstract_pattern",
    "spd_offline",
    "SPDOnline",
    "spd_online",
    "RaceReport",
    "SPRaceResult",
    "is_sp_race",
    "sp_races",
    "WindowedResult",
    "spd_offline_windowed",
    "OnlineKReport",
    "SPDOnlineK",
    "spd_online_k",
]
