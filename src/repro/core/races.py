"""Sync-preserving data-race prediction [Mathur et al., POPL 2021].

The paper's sync-preserving deadlock machinery generalizes the race
analysis it was inspired by; this module closes the loop and provides
the race side, on top of the same closure engine.

A pair of conflicting accesses (same variable, different threads, at
least one write) is a *sync-preserving predictable race* when some
sync-preserving correct reordering leaves both events simultaneously
enabled — by the Lemma 4.2 argument, exactly when

    SPClosure(pred({e1, e2})) ∩ {events at/after the stall points} = ∅.

Detection mirrors SPDOffline: conflicting accesses are grouped into
*abstract race patterns* (per ordered pair of (thread, kind) access
groups on one variable), each checked with the incremental pointer
walk of Algorithm 2, reusing closures monotonically (Proposition 4.4
and the Corollary 4.5 skip).

This also realizes the Theorem 3.3 connection: replacing a size-2
deadlock pattern's acquires with writes to a fresh variable turns a
deadlock question into this race question — tested both ways in
``tests/test_races.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.core.closure import SPClosureEngine
from repro.trace.events import OP_READ, OP_WRITE
from repro.trace.trace import Trace, as_trace
from repro.vc.clock import VectorClock


@dataclass(frozen=True)
class RaceReport:
    """A sync-preserving predictable race."""

    first_event: int
    second_event: int
    variable: str
    locations: Tuple[str, str]

    @property
    def bug_id(self) -> Tuple[str, ...]:
        return tuple(sorted(self.locations))


@dataclass
class SPRaceResult:
    reports: List[RaceReport] = field(default_factory=list)
    pairs_considered: int = 0
    elapsed: float = 0.0

    @property
    def num_races(self) -> int:
        return len(self.reports)

    def unique_bugs(self) -> set:
        return {r.bug_id for r in self.reports}

    def race_pairs(self) -> set:
        return {
            tuple(sorted((r.first_event, r.second_event))) for r in self.reports
        }


@dataclass(frozen=True)
class _AccessGroup:
    """All accesses of one (thread, variable, kind) signature, in order."""

    thread: str
    variable: str
    is_write: bool
    events: Tuple[int, ...]


def _access_groups(trace: Trace) -> Dict[str, List[_AccessGroup]]:
    """Group accesses by (thread, variable, kind) over the int columns.

    String names are resolved once per *group*, not per event."""
    compiled = trace.compiled
    ops, tids, targs = compiled.columns()
    by_sig: Dict[Tuple[int, int, int], List[int]] = {}
    order: List[Tuple[int, int, int]] = []
    for i in range(len(ops)):
        op = ops[i]
        if op != OP_READ and op != OP_WRITE:
            continue
        key = (tids[i], targs[i], op)
        bucket = by_sig.get(key)
        if bucket is None:
            by_sig[key] = bucket = []
            order.append(key)
        bucket.append(i)
    thread_names = compiled.threads_tab.names
    var_names = compiled.vars_tab.names
    out: Dict[str, List[_AccessGroup]] = {}
    for key in order:
        t, var, op = key
        out.setdefault(var_names[var], []).append(
            _AccessGroup(thread=thread_names[t], variable=var_names[var],
                         is_write=op == OP_WRITE, events=tuple(by_sig[key]))
        )
    return out


def _abstract_race_patterns(
    trace: Trace,
) -> Iterator[Tuple[_AccessGroup, _AccessGroup]]:
    """Pairs of conflicting access groups (the race analog of abstract
    deadlock patterns)."""
    for groups in _access_groups(trace).values():
        for i, g1 in enumerate(groups):
            for g2 in groups[i + 1:]:
                if g1.thread == g2.thread:
                    continue
                if not (g1.is_write or g2.is_write):
                    continue
                yield g1, g2


def _check_group_pair(
    engine: SPClosureEngine,
    g1: _AccessGroup,
    g2: _AccessGroup,
    first_hit: bool,
) -> List[Tuple[int, int]]:
    """Algorithm 2 transplanted to access groups.

    Walks the two event sequences with pointers, skipping entries the
    monotonically growing closure has swallowed.
    """
    engine.reset()
    ts = engine.timestamps
    trace = engine.trace
    hits: List[Tuple[int, int]] = []
    seqs = (g1.events, g2.events)
    pointers = [0, 0]
    t_clock = VectorClock.bottom(len(ts.universe))

    def stalled_ok(e: int, clock: VectorClock) -> bool:
        """The closure must not include ``e`` (nor, transitively, its
        successors — impossible for a closed set if ``e`` is out)."""
        return not ts.of(e).leq(clock)

    while pointers[0] < len(seqs[0]) and pointers[1] < len(seqs[1]):
        e1 = seqs[0][pointers[0]]
        e2 = seqs[1][pointers[1]]
        for idx in (e1, e2):
            t_clock.join_with(ts.pred_timestamp(idx))
        t_clock = engine.compute(t_clock)
        if stalled_ok(e1, t_clock) and stalled_ok(e2, t_clock):
            hits.append((e1, e2) if e1 < e2 else (e2, e1))
            if first_hit:
                return hits
            # Advance the trace-earlier side to look for further races.
            if e1 < e2:
                pointers[0] += 1
            else:
                pointers[1] += 1
            continue
        # Corollary 4.5 analog: skip entries inside the closure.
        for j in range(2):
            seq = seqs[j]
            i = pointers[j]
            while i < len(seq) and ts.of(seq[i]).leq(t_clock):
                i += 1
            pointers[j] = i
    return hits


def sp_races(
    trace: Trace,
    first_hit_per_pair: bool = True,
) -> SPRaceResult:
    """All sync-preserving predictable races of ``trace``.

    Args:
        trace: the input trace.
        first_hit_per_pair: report only the first race per abstract
            race pattern (the SPDOffline reporting convention);
            ``False`` enumerates further concrete races.
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    result = SPRaceResult()
    engine = SPClosureEngine(trace)
    location_of = trace.compiled.location_of
    for g1, g2 in _abstract_race_patterns(trace):
        result.pairs_considered += 1
        for e1, e2 in _check_group_pair(engine, g1, g2, first_hit_per_pair):
            result.reports.append(
                RaceReport(
                    first_event=e1,
                    second_event=e2,
                    variable=g1.variable,
                    locations=(location_of(e1), location_of(e2)),
                )
            )
    result.elapsed = time.perf_counter() - start
    return result


def is_sp_race(trace: Trace, e1: int, e2: int) -> bool:
    """Point query: is the access pair a sync-preserving race?"""
    ev1, ev2 = trace[e1], trace[e2]
    if not (ev1.is_access and ev2.is_access):
        raise ValueError("race queries need two access events")
    if ev1.thread == ev2.thread or ev1.target != ev2.target:
        return False
    if not (ev1.is_write or ev2.is_write):
        return False
    engine = SPClosureEngine(trace)
    t0 = engine.pred_timestamp_of_events((e1, e2))
    t_clock = engine.compute(t0)
    ts = engine.timestamps
    return not ts.of(e1).leq(t_clock) and not ts.of(e2).leq(t_clock)
