"""Sync-preserving closure computation (Definition 3, Algorithm 1).

The closure of an event set S is the smallest superset closed under

  (a) thread order and reads-from predecessors (the ``<=TRF`` ideal), and
  (b) the lock rule: among any two acquires on the same lock inside the
      set, the earlier one's matching release is also in the set.

Representing the closure by its TRF *timestamp* ``T`` (the downward
closure of S under ``<=TRF`` is exactly ``{e | TS(e) ⊑ T}``), rule (a)
is free and rule (b) becomes Algorithm 1's fix-point over critical-
section histories.
"""

from __future__ import annotations

from typing import Iterable, Set

import repro.obs as obs
from repro.locks.history import CSHistories
from repro.trace.trace import Trace, as_trace
from repro.vc.clock import VectorClock
from repro.vc.timestamps import TRFTimestamps


class SPClosureEngine:
    """Reusable Algorithm 1 runner bound to one trace.

    The engine owns the TRF timestamps and the critical-section
    histories.  :meth:`compute` may be called repeatedly with growing
    timestamps — history cursors persist across calls, which is exactly
    the Proposition 4.4 reuse that makes Algorithm 2 linear overall.
    Call :meth:`reset` between independent abstract-pattern checks.

    The fix-point is worklist-driven, mirroring the streaming engine's
    dirty-lock scheme: after the first pass of a check, a lock is
    re-examined only when the closure clock grew in a slot of a thread
    holding critical sections on it (``CSHistories.locks_of_slot``),
    instead of re-scanning every lock each round.
    """

    def __init__(self, trace: Trace, timestamps: TRFTimestamps | None = None) -> None:
        self.trace = trace = as_trace(trace)
        self.timestamps = timestamps or TRFTimestamps(trace)
        self.histories = CSHistories(trace, self.timestamps)
        self._locks = self.histories.locks  # static once built
        # The monotone clock of the current check (aliased with what
        # compute() returned) and its value snapshot at the end of the
        # last compute — the diff tells which slots the caller grew.
        self._clock: VectorClock | None = None
        self._last_vals: tuple = ()

    def reset(self) -> None:
        self.histories.reset()
        self._clock = None
        self._last_vals = ()

    def compute(self, t0: VectorClock) -> VectorClock:
        """Run Algorithm 1 starting from timestamp ``t0``.

        Returns the (possibly aliased, mutated) fix-point timestamp of
        ``SPClosure({e | TS(e) ⊑ t0})``.  Across calls of one check the
        seeds must be monotone (they are: callers join into the
        returned clock), which lets the worklist start from only the
        slots that grew since the previous fix-point.
        """
        histories = self.histories
        advance = histories.advance_lock
        locks_of_slot = histories.locks_of_slot
        if self._clock is None:
            # First fix-point of a check: every lock is potentially
            # live, so the opening round is a plain full sweep (the
            # dirty bookkeeping would not filter anything).
            t_clock = self._clock = t0.copy()
            grown = []
            for lock in self._locks:
                join = advance(lock, t_clock, None)
                if join is not None:
                    grown.extend(t_clock.join_update(join))
        else:
            # Subsequent fix-points grow from a small delta: the slots
            # the caller (or the new seed) grew since the last one.
            t_clock = self._clock
            if t0 is not t_clock:
                t_clock.join_with(t0)
            last = self._last_vals
            nlast = len(last)
            v = t_clock._v
            grown = [s for s in range(len(v))
                     if v[s] > (last[s] if s < nlast else 0)]
        # Batched rounds: each round advances every dirty lock against
        # exactly the slots that grew last round, and the joins those
        # contribute seed the next round's dirty set.
        rounds = 0
        while grown:
            rounds += 1
            pend: dict = {}
            for s in grown:
                for l2 in locks_of_slot.get(s, ()):
                    dirty = pend.get(l2)
                    if dirty is None:
                        pend[l2] = [s]
                    else:
                        dirty.append(s)
            grown = []
            for lock, slots in pend.items():
                join = advance(lock, t_clock, slots)
                if join is not None:
                    grown.extend(t_clock.join_update(join))
        self._last_vals = tuple(t_clock._v)
        obs.count("closure.compute")
        if rounds:
            obs.count("closure.rounds", rounds)
        return t_clock

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> bytes:
        """Serialize the expensive derived state (the TRF timestamps).

        The critical-section histories are a cheap single pass over the
        acquire column *given* the timestamps, so :meth:`restore`
        rebuilds them instead of shipping them — the blob stays compact
        and version-robust.
        """
        return self.timestamps.checkpoint()

    @classmethod
    def restore(cls, trace: Trace, blob: bytes) -> "SPClosureEngine":
        """An engine over ``trace`` reusing checkpointed timestamps.

        Raises ``ValueError`` when the blob does not belong to
        ``trace`` (callers fall back to a fresh derivation).
        """
        return cls(trace, timestamps=TRFTimestamps.restore(trace, blob))

    def timestamp_of_events(self, events: Iterable[int]) -> VectorClock:
        """``TS(S) = ⨆ {TS(e)}`` for an event set."""
        out = VectorClock.bottom(len(self.timestamps.universe))
        out.join_many(self.timestamps.of(idx) for idx in events)
        return out

    def pred_timestamp_of_events(self, events: Iterable[int]) -> VectorClock:
        """``TS(pred(S))``: join of thread-local-predecessor timestamps."""
        out = VectorClock.bottom(len(self.timestamps.universe))
        out.join_many(self.timestamps.pred_timestamp(idx)
                      for idx in events)
        return out

    def members(self, t_clock: VectorClock) -> Set[int]:
        """The event set denoted by a closure timestamp.

        ``e`` is in the closure iff ``TS(e) ⊑ T``; equivalently, iff
        the event's per-thread position is within ``T``'s component for
        its thread (timestamps are inclusive per-thread counters).
        """
        out: Set[int] = set()
        for thread in self.trace.threads:
            slot = self.timestamps.universe.slot(thread)
            bound = t_clock[slot]
            for idx in self.trace.events_of_thread(thread)[:bound]:
                out.add(idx)
        return out


def sp_closure(trace: Trace, events: Iterable[int]) -> VectorClock:
    """One-shot closure timestamp of an event set (fresh engine)."""
    engine = SPClosureEngine(trace)
    return engine.compute(engine.timestamp_of_events(events))


def sp_closure_events(trace: Trace, events: Iterable[int]) -> Set[int]:
    """One-shot closure of an event set, as a set of event indices."""
    engine = SPClosureEngine(trace)
    t_clock = engine.compute(engine.timestamp_of_events(events))
    return engine.members(t_clock)
