"""Sync-preserving closure computation (Definition 3, Algorithm 1).

The closure of an event set S is the smallest superset closed under

  (a) thread order and reads-from predecessors (the ``<=TRF`` ideal), and
  (b) the lock rule: among any two acquires on the same lock inside the
      set, the earlier one's matching release is also in the set.

Representing the closure by its TRF *timestamp* ``T`` (the downward
closure of S under ``<=TRF`` is exactly ``{e | TS(e) ⊑ T}``), rule (a)
is free and rule (b) becomes Algorithm 1's fix-point over critical-
section histories.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.locks.history import CSHistories
from repro.trace.trace import Trace, as_trace
from repro.vc.clock import VectorClock
from repro.vc.timestamps import TRFTimestamps


class SPClosureEngine:
    """Reusable Algorithm 1 runner bound to one trace.

    The engine owns the TRF timestamps and the critical-section
    histories.  :meth:`compute` may be called repeatedly with growing
    timestamps — history cursors persist across calls, which is exactly
    the Proposition 4.4 reuse that makes Algorithm 2 linear overall.
    Call :meth:`reset` between independent abstract-pattern checks.
    """

    def __init__(self, trace: Trace, timestamps: TRFTimestamps | None = None) -> None:
        self.trace = trace = as_trace(trace)
        self.timestamps = timestamps or TRFTimestamps(trace)
        self.histories = CSHistories(trace, self.timestamps)

    def reset(self) -> None:
        self.histories.reset()

    def compute(self, t0: VectorClock) -> VectorClock:
        """Run Algorithm 1 starting from timestamp ``t0``.

        Returns the (possibly aliased, mutated) fix-point timestamp of
        ``SPClosure({e | TS(e) ⊑ t0})``.
        """
        t_clock = t0.copy()
        histories = self.histories
        locks = histories.locks  # static for a built trace; snapshot once
        advance = histories.advance_lock
        changed = True
        while changed:
            changed = False
            for lock in locks:
                join = advance(lock, t_clock)
                if join is not None and t_clock.join_with(join):
                    changed = True
        return t_clock

    def timestamp_of_events(self, events: Iterable[int]) -> VectorClock:
        """``TS(S) = ⨆ {TS(e)}`` for an event set."""
        out = VectorClock.bottom(len(self.timestamps.universe))
        for idx in events:
            out.join_with(self.timestamps.of(idx))
        return out

    def pred_timestamp_of_events(self, events: Iterable[int]) -> VectorClock:
        """``TS(pred(S))``: join of thread-local-predecessor timestamps."""
        out = VectorClock.bottom(len(self.timestamps.universe))
        for idx in events:
            out.join_with(self.timestamps.pred_timestamp(idx))
        return out

    def members(self, t_clock: VectorClock) -> Set[int]:
        """The event set denoted by a closure timestamp.

        ``e`` is in the closure iff ``TS(e) ⊑ T``; equivalently, iff
        the event's per-thread position is within ``T``'s component for
        its thread (timestamps are inclusive per-thread counters).
        """
        out: Set[int] = set()
        for thread in self.trace.threads:
            slot = self.timestamps.universe.slot(thread)
            bound = t_clock[slot]
            for idx in self.trace.events_of_thread(thread)[:bound]:
                out.add(idx)
        return out


def sp_closure(trace: Trace, events: Iterable[int]) -> VectorClock:
    """One-shot closure timestamp of an event set (fresh engine)."""
    engine = SPClosureEngine(trace)
    return engine.compute(engine.timestamp_of_events(events))


def sp_closure_events(trace: Trace, events: Iterable[int]) -> Set[int]:
    """One-shot closure of an event set, as a set of event indices."""
    engine = SPClosureEngine(trace)
    t_clock = engine.compute(engine.timestamp_of_events(events))
    return engine.members(t_clock)
