"""SPDOffline: two-phase sync-preserving deadlock prediction
(Algorithms 2 and 3 of the paper).

Phase 1 enumerates the abstract deadlock patterns of the trace from the
abstract lock graph.  Phase 2 checks each abstract pattern with the
incremental procedure ``CheckAbsDdlck`` (Algorithm 2): walk the acquire
sequences ``F_0, ..., F_{k-1}`` with one pointer each, compute the
sync-preserving closure of the thread-local predecessors of the current
instantiation, report a deadlock when none of the instantiation's
events landed inside the closure, and otherwise advance each pointer
past every acquire the closure already swallowed (Corollary 4.5).  The
closure timestamp is carried across iterations (Proposition 4.4), so
the whole check runs in time linear in the trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.kernels as kernels
from repro.core.alg import abstract_deadlock_patterns
from repro.core.closure import SPClosureEngine
from repro.core.patterns import (
    AbstractDeadlockPattern,
    DeadlockPattern,
    DeadlockReport,
)
from repro.trace.trace import Trace
from repro.vc.clock import VectorClock


def check_abstract_pattern(
    engine: SPClosureEngine,
    abstract: AbstractDeadlockPattern,
) -> Optional[DeadlockPattern]:
    """Algorithm 2 (``CheckAbsDdlck``).

    Returns the first sync-preserving concrete instantiation of
    ``abstract``, or ``None`` when the abstract pattern contains no
    sync-preserving deadlock.
    """
    events = check_pattern_sequences(
        engine, tuple(a.events for a in abstract.acquires)
    )
    return DeadlockPattern(events) if events is not None else None


def check_pattern_sequences(
    engine: SPClosureEngine,
    sequences: Tuple[Tuple[int, ...], ...],
) -> Optional[Tuple[int, ...]]:
    """Algorithm 2 on raw acquire-event sequences (one per pattern node).

    The event-index core of :func:`check_abstract_pattern`, shared with
    the sharded pipeline (``repro.exp.shard``), where workers check
    patterns against spine-local event indices rather than
    :class:`AbstractDeadlockPattern` objects.  Returns the first
    sync-preserving instantiation (one event per sequence, in sequence
    order), or ``None``.  The engine is reset on entry — cursor state
    is shared within a single check only.
    """
    engine.reset()
    ts = engine.timestamps
    k = len(sequences)
    pointers = [0] * k
    t_clock = VectorClock.bottom(len(ts.universe))

    leq_clock = ts.leq_clock
    while all(pointers[j] < len(sequences[j]) for j in range(k)):
        current = [sequences[j][pointers[j]] for j in range(k)]
        # Closure of the thread-local predecessors of the instantiation,
        # joined into the monotonically growing timestamp.
        for idx in current:
            t_clock.join_with(ts.pred_timestamp(idx))
        t_clock = engine.compute(t_clock)
        if all(not leq_clock(e, t_clock) for e in current):
            return tuple(current)
        # Corollary 4.5: skip every instantiation whose events are
        # already inside the closure — they can never succeed.
        for j in range(k):
            seq = sequences[j]
            i = pointers[j]
            while i < len(seq) and leq_clock(seq[i], t_clock):
                i += 1
            pointers[j] = i
    return None


@dataclass
class SPDOfflineResult:
    """Full output of one SPDOffline run.

    Attributes:
        reports: one report per abstract pattern that contains a
            sync-preserving deadlock (Algorithm 3 reports per abstract
            pattern and stops checking it after the first hit).
        num_cycles: simple cycles in the abstract lock graph (|Cyc|).
        num_abstract_patterns: cycles that are abstract deadlock
            patterns (Table 1 "A. P.").
        num_concrete_patterns: total concrete instantiations encoded by
            the abstract patterns (Table 1 "C. P.").
        elapsed: analysis wall-clock seconds (excludes trace loading).
    """

    reports: List[DeadlockReport] = field(default_factory=list)
    num_cycles: int = 0
    num_abstract_patterns: int = 0
    num_concrete_patterns: int = 0
    elapsed: float = 0.0
    #: pattern events -> witness schedule (filled by ``with_witnesses``)
    witnesses: Dict[Tuple[int, ...], List[int]] = field(default_factory=dict)

    @property
    def num_deadlocks(self) -> int:
        return len(self.reports)

    def unique_bugs(self) -> set:
        return {r.bug_id for r in self.reports}


def spd_offline(
    trace: Trace,
    max_size: Optional[int] = None,
    max_cycles: Optional[int] = None,
    with_witnesses: bool = False,
) -> SPDOfflineResult:
    """Algorithm 3 (SPDOffline): all sync-preserving deadlocks of ``trace``.

    Args:
        trace: the input execution trace.
        max_size: optional cap on deadlock size (cycle length); ``None``
            detects all sizes, ``2`` mirrors the SPDOnline scope.
        max_cycles: optional safety cap on enumerated ALG cycles
            (Theorem 3.1 makes the worst case exponential).
        with_witnesses: additionally build, validate, and attach the
            Lemma 4.1 witness schedule to every report
            (:attr:`SPDOfflineResult.witnesses`).
    """
    from repro.trace.trace import as_trace

    trace = as_trace(trace)
    start = time.perf_counter()
    num_cycles, abstracts = abstract_deadlock_patterns(
        trace, max_size=max_size, max_cycles=max_cycles
    )
    result = SPDOfflineResult(
        num_cycles=num_cycles,
        num_abstract_patterns=len(abstracts),
        num_concrete_patterns=sum(a.num_concrete for a in abstracts),
    )
    if abstracts:
        # Phase 2: pattern checks are mutually independent, so the
        # numpy backend checks them all in one lockstep batch (proven
        # bit-identical to the python loop by tests/test_kernels.py).
        witnesses = None
        if kernels.backend() == "numpy":
            from repro.kernels.offline_np import check_patterns_batch
            from repro.vc.timestamps import TRFTimestamps

            witnesses = check_patterns_batch(
                trace,
                [tuple(a.events for a in ab.acquires) for ab in abstracts],
                TRFTimestamps(trace),
            )
        if witnesses is not None:
            for abstract, events in zip(abstracts, witnesses):
                if events is not None:
                    result.reports.append(
                        DeadlockReport.from_pattern(
                            trace, DeadlockPattern(events), abstract)
                    )
        else:
            engine = SPClosureEngine(trace)
            for abstract in abstracts:
                witness = check_abstract_pattern(engine, abstract)
                if witness is not None:
                    result.reports.append(
                        DeadlockReport.from_pattern(trace, witness, abstract)
                    )
    if with_witnesses:
        from repro.reorder.witness import witness_for_pattern

        for report in result.reports:
            schedule, ok = witness_for_pattern(trace, report.pattern.events)
            assert ok, "sound reports always admit a witness"
            result.witnesses[report.pattern.events] = schedule
    result.elapsed = time.perf_counter() - start
    return result
