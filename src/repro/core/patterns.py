"""Deadlock patterns — concrete and abstract (paper Sections 2 and 4.4).

A *(concrete) deadlock pattern* of size k is a sequence of k acquire
events in k distinct threads on k distinct locks such that each event's
lock is held by the next event (cyclically) and no two events hold a
common lock.  An *abstract deadlock pattern* is the same condition over
abstract acquires, succinctly encoding the product of their event
lists.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.locks.abstract import AbstractAcquire
from repro.trace.events import OP_ACQUIRE
from repro.trace.trace import Trace, as_trace


@dataclass(frozen=True)
class DeadlockPattern:
    """A concrete deadlock pattern: a tuple of acquire-event indices."""

    events: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def canonical(self) -> "DeadlockPattern":
        """Rotation starting at the minimum event index (dedup key)."""
        k = self.events.index(min(self.events))
        return DeadlockPattern(self.events[k:] + self.events[:k])

    def __str__(self) -> str:
        return "⟨" + ", ".join(f"e{i}" for i in self.events) + "⟩"


@dataclass(frozen=True)
class AbstractDeadlockPattern:
    """An abstract deadlock pattern: a cyclic tuple of abstract acquires."""

    acquires: Tuple[AbstractAcquire, ...]

    def __len__(self) -> int:
        return len(self.acquires)

    def __iter__(self):
        return iter(self.acquires)

    @property
    def num_concrete(self) -> int:
        """How many concrete patterns this abstract pattern encodes."""
        n = 1
        for a in self.acquires:
            n *= len(a.events)
        return n

    def instantiations(self) -> Iterator[DeadlockPattern]:
        """All concrete patterns ``F_0 × F_1 × ... × F_{k-1}``."""
        for combo in itertools.product(*(a.events for a in self.acquires)):
            yield DeadlockPattern(tuple(combo))

    def canonical(self) -> "AbstractDeadlockPattern":
        """Rotation starting at the lexicographically least signature."""
        sigs = [
            (a.thread, a.lock, tuple(sorted(a.held)))
            for a in self.acquires
        ]
        k = sigs.index(min(sigs))
        return AbstractDeadlockPattern(self.acquires[k:] + self.acquires[:k])

    def __str__(self) -> str:
        return "⟨" + ", ".join(str(a) for a in self.acquires) + "⟩"


@dataclass(frozen=True)
class DeadlockReport:
    """A reported sync-preserving deadlock.

    Attributes:
        pattern: the witnessing concrete deadlock pattern.
        abstract: the abstract pattern it instantiates (None for
            reports produced by baselines that do not use abstraction).
        locations: source-location tuple for bug deduplication.
    """

    pattern: DeadlockPattern
    locations: Tuple[str, ...]
    abstract: "AbstractDeadlockPattern | None" = field(default=None, compare=False)

    @property
    def bug_id(self) -> Tuple[str, ...]:
        """Unique-bug key: the sorted location tuple (Table 2 semantics)."""
        return tuple(sorted(self.locations))

    @classmethod
    def from_pattern(
        cls,
        trace: Trace,
        pattern: DeadlockPattern,
        abstract: "AbstractDeadlockPattern | None" = None,
    ) -> "DeadlockReport":
        location_of = as_trace(trace).compiled.location_of
        locs = tuple(location_of(i) for i in pattern.events)
        return cls(pattern=pattern, locations=locs, abstract=abstract)


def is_deadlock_pattern(trace: Trace, events: Sequence[int]) -> bool:
    """Check the Section 2 deadlock-pattern conditions on ``events``.

    Runs on the interned index columns: acquire codes, thread/lock ids,
    and held sets as frozensets of lock ids from the shared pool.
    """
    k = len(events)
    if k < 2:
        return False
    trace = as_trace(trace)
    index = trace.index
    ops, tids, targs = trace.compiled.columns()
    if any(ops[i] != OP_ACQUIRE for i in events):
        return False
    if len({tids[i] for i in events}) != k:
        return False
    locks = [targs[i] for i in events]
    if len(set(locks)) != k:
        return False
    held = [index.held_frozen(i) for i in events]
    for i in range(k):
        if locks[i] not in held[(i + 1) % k]:
            return False
    for i in range(k):
        held_i = held[i]
        for j in range(i + 1, k):
            if not held_i.isdisjoint(held[j]):
                return False
    return True


def find_concrete_patterns(trace: Trace, size: int = 2) -> List[DeadlockPattern]:
    """The folklore brute-force deadlock-pattern detector.

    Enumerates all ``size``-tuples of acquire events and filters with
    :func:`is_deadlock_pattern`.  O(A^k); Theorem 3.2 shows the k = 2
    case cannot be beaten below quadratic.  Used as ground truth in
    tests and as the quadratic baseline in the hardness benchmark.
    Patterns are returned in canonical rotation, deduplicated.
    """
    trace = as_trace(trace)
    index = trace.index
    ops = trace.compiled.ops
    held_id = index.held_id
    held_lengths = index.held_lengths
    acquires = [
        i for i in range(len(ops))
        if ops[i] == OP_ACQUIRE and held_lengths[held_id[i]]
    ]
    seen = set()
    out: List[DeadlockPattern] = []
    for combo in itertools.permutations(acquires, size):
        if combo[0] != min(combo):
            continue  # canonical rotations only
        if is_deadlock_pattern(trace, combo):
            pat = DeadlockPattern(tuple(combo))
            if pat.events not in seen:
                seen.add(pat.events)
                out.append(pat)
    return out
