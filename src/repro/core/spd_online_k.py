"""SPDOnline-K: streaming sync-preserving deadlocks of any size ≤ K.

The paper's SPDOnline restricts itself to size-2 deadlocks because
cycles of length 2 need no graph traversal (Section 5); it names
extending online coverage while keeping efficiency as future work.
This module is that extension:

- the **abstract lock graph is maintained incrementally** — nodes
  (abstract-acquire signatures) and their edges only change when a
  *new signature* first appears, at which point the new simple cycles
  through it (length ≤ K) are enumerated and the abstract deadlock
  patterns among them become live *contexts*;
- each context runs the Algorithm 2 pointer walk **with the newest
  event pinned**: when an acquire of signature s arrives, every
  context containing s tries to complete an instantiation from its
  per-coordinate queues, reusing its closure clock monotonically
  (Proposition 4.4) and discarding swallowed entries forever
  (Corollary 4.5);
- every instantiation is eventually examined with its trace-last
  acquire pinned, so the detector reports an abstract pattern iff
  SPDOffline (capped at K) does on the same trace — tested against it
  on random traces.

Signatures are interned-id tuples ``(tid, lid, frozenset(lids))``;
reports translate back to names.  Closure membership checks use the
same O(1) epoch comparisons as the parent.

Worst-case time adds the cycle-enumeration factor that Theorem 3.1
says is unavoidable; with the signature count small (as in practice),
the streaming pass stays near-linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import repro.kernels as kernels
from repro.core.spd_online import SPDOnline, _AcqEntry, _OnlineClosure
from repro.vc.clock import VectorClock

#: Interned signature: (thread id, lock id, held lock ids).
Signature = Tuple[int, int, FrozenSet[int]]
#: Name-level signature, as exposed in reports.
NamedSignature = Tuple[str, str, FrozenSet[str]]


@dataclass
class OnlineKReport:
    """A streaming deadlock report of any size."""

    events: Tuple[int, ...]
    locations: Tuple[str, ...]
    signatures: Tuple[NamedSignature, ...]

    @property
    def bug_id(self) -> Tuple[str, ...]:
        return tuple(sorted(self.locations))

    @property
    def size(self) -> int:
        return len(self.events)


@dataclass
class _Context:
    """A live abstract deadlock pattern: its signature cycle, the
    per-coordinate cursors, and the reusable closure."""

    signatures: Tuple[Signature, ...]
    cursors: List[int]
    closure: _OnlineClosure
    reported: bool = False


class SPDOnlineK(SPDOnline):
    """Streaming detector for sync-preserving deadlocks of size ≤ K.

    Size-2 contexts are handled by the inherited machinery; this class
    adds the graph-driven contexts for 3 ≤ size ≤ ``max_size``.
    """

    def __init__(self, max_size: int = 3,
                 max_memory_events: Optional[int] = None) -> None:
        if max_memory_events is not None:
            raise ValueError(
                "bounded-memory eviction is supported by the size-2 "
                "SPDOnline only (K-contexts hold cursors into the shared "
                "acquire queues that eviction would invalidate)"
            )
        super().__init__()
        if max_size < 2:
            raise ValueError("max_size must be at least 2")
        self.max_size = max_size
        # Incremental ALG over signatures.
        self._sigs: List[Signature] = []
        self._sig_index: Dict[Signature, int] = {}
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        # Per-signature acquire queues (any-size analog of _acq_seq).
        self._sig_entries: Dict[Signature, List[_AcqEntry]] = {}
        # Live contexts, indexed by member signature.
        self._contexts: List[_Context] = []
        self._contexts_of_sig: Dict[Signature, List[_Context]] = {}
        self.k_reports: List[OnlineKReport] = []
        # Flat-column mirror of the signature queues: resolves every
        # free coordinate's swallow sweep with one searchsorted.
        self._sigk = None
        if self._np is not None:
            from repro.kernels.spdk_np import NpSigState

            self._sigk = NpSigState(self._np.np)
            kernels.record_dispatch("spdk", "numpy")
        else:
            kernels.record_dispatch("spdk", "python")

    # -- graph maintenance -------------------------------------------------

    def _add_signature(self, sig: Signature) -> None:
        idx = len(self._sigs)
        self._sig_index[sig] = idx
        self._sigs.append(sig)
        self._succ[idx] = set()
        self._pred[idx] = set()
        t1, l1, held1 = sig
        for j, (t2, l2, held2) in enumerate(self._sigs[:-1]):
            # edge sig -> other: l1 ∈ held2, threads differ, held disjoint
            if t1 != t2 and l1 in held2 and not (held1 & held2):
                self._succ[idx].add(j)
                self._pred[j].add(idx)
            if t2 != t1 and l2 in held1 and not (held2 & held1):
                self._succ[j].add(idx)
                self._pred[idx].add(j)
        self._register_new_cycles(idx)

    def _register_new_cycles(self, start: int) -> None:
        """Simple cycles through the new node, length 3..max_size."""
        path = [start]
        on_path = {start}

        def dfs(node: int) -> None:
            for nxt in self._succ[node]:
                if nxt == start and len(path) >= 3:
                    self._maybe_register(tuple(self._sigs[i] for i in path))
                elif nxt > start:
                    continue  # canonical: only nodes older than start... (new node is max index)
                elif nxt not in on_path and len(path) < self.max_size:
                    path.append(nxt)
                    on_path.add(nxt)
                    dfs(nxt)
                    on_path.discard(nxt)
                    path.pop()

        dfs(start)

    def _maybe_register(self, cycle: Tuple[Signature, ...]) -> None:
        k = len(cycle)
        threads = {s[0] for s in cycle}
        locks = {s[1] for s in cycle}
        if len(threads) != k or len(locks) != k:
            return
        for i in range(k):
            for j in range(i + 1, k):
                if cycle[i][2] & cycle[j][2]:
                    return
        ctx = _Context(
            signatures=cycle,
            cursors=[0] * k,
            closure=self._new_closure(),
        )
        self._contexts.append(ctx)
        for sig in cycle:
            self._contexts_of_sig.setdefault(sig, []).append(ctx)

    # -- event handling -------------------------------------------------------

    def _handle_acquire(self, tid: int, lid: int, loc: Optional[str],
                        clock: VectorClock) -> None:
        held_before = frozenset(self._held[tid])
        super()._handle_acquire(tid, lid, loc, clock)
        if not held_before or self.max_size < 3:
            return
        sig: Signature = (tid, lid, held_before)
        entries = self._sig_entries.get(sig)
        if entries is None:
            self._sig_entries[sig] = entries = []
            self._add_signature(sig)
        # The entry was already queued by the parent for size-2; build
        # the any-size entry from the same data.
        last = self._acq_seq[(tid, lid, next(iter(held_before)))][-1]
        entries.append(last)
        if self._sigk is not None:
            self._sigk.append(sig, last.ts_val)
        for ctx in self._contexts_of_sig.get(sig, ()):
            self._check_context(ctx, sig, last)

    def _check_context(self, ctx: _Context, sig: Signature,
                       new_entry: _AcqEntry) -> None:
        """Algorithm 2 with the newest event pinned at sig's coordinate."""
        if ctx.reported:
            return
        pin = ctx.signatures.index(sig)
        k = len(ctx.signatures)
        sigk = self._sigk
        swept = 0
        try:
            ctx.closure.join_seed(new_entry.pred_ts)
            while True:
                candidate: List[Optional[_AcqEntry]] = [None] * k
                candidate[pin] = new_entry
                for j in range(k):
                    if j == pin:
                        continue
                    queue = self._sig_entries.get(ctx.signatures[j], [])
                    if ctx.cursors[j] >= len(queue):
                        return  # some coordinate has no candidate yet
                    candidate[j] = queue[ctx.cursors[j]]
                seed = None
                for entry in candidate:
                    if seed is None:
                        seed = entry.pred_ts.copy()
                    else:
                        seed.join_with(entry.pred_ts)
                t_clock = ctx.closure.compute(seed)
                swallowed = False
                if sigk is not None:
                    # One searchsorted sweeps every free coordinate: a
                    # signature queue holds one thread's strictly
                    # increasing acquire values, so the python walk
                    # stops exactly at max(cursor, bisect(vals, bound)).
                    free = [j for j in range(k) if j != pin]
                    new = sigk.sweep(
                        [ctx.signatures[j] for j in free],
                        [ctx.cursors[j] for j in free],
                        [t_clock.component(ctx.signatures[j][0])
                         for j in free],
                    )
                    for j, nc in zip(free, new):
                        if nc != ctx.cursors[j]:
                            swept += nc - ctx.cursors[j]
                            ctx.cursors[j] = nc
                            swallowed = True
                else:
                    for j in range(k):
                        if j == pin:
                            continue
                        queue = self._sig_entries.get(ctx.signatures[j], [])
                        i = ctx.cursors[j]
                        # Epoch test for closure membership of each
                        # queued acquire.
                        while i < len(queue) and (
                            queue[i].ts_val <= t_clock.component(queue[i].tid)
                        ):
                            i += 1
                        if i != ctx.cursors[j]:
                            swept += i - ctx.cursors[j]
                            swallowed = True
                        ctx.cursors[j] = i
                if not swallowed:
                    if all(e.ts_val > t_clock.component(e.tid)
                           for e in candidate):
                        ctx.reported = True
                        self.k_reports.append(
                            OnlineKReport(
                                events=tuple(e.idx for e in candidate),
                                locations=tuple(e.loc for e in candidate),
                                signatures=tuple(
                                    self._named_signature(s)
                                    for s in ctx.signatures
                                ),
                            )
                        )
                    return
        finally:
            kernels.record_dispatch(
                "spdk", "numpy" if sigk is not None else "python",
                events=swept)

    # -- checkpoint / restore hooks ----------------------------------------

    def _checkpoint_extra(self, state: Dict) -> None:
        """Serialize contexts as plain tuples (see SPDOnline.checkpoint).

        A pickled :class:`_Context` would drag the whole detector along
        through its closure's owner backref (numpy mirrors included);
        the canonical form — signatures, cursors, the closure's
        canonical clock, the reported flag — is backend-agnostic and
        rebuilds bit-identically under either kernel backend.
        """
        state.pop("_sigk", None)
        state.pop("_contexts_of_sig", None)
        state["_contexts"] = [
            (ctx.signatures, list(ctx.cursors),
             ctx.closure.canonical_clock(), ctx.reported)
            for ctx in self._contexts
        ]

    def _restore_extra(self) -> None:
        self._sigk = None
        if self._np is not None:
            from repro.kernels.spdk_np import NpSigState

            self._sigk = NpSigState.from_entries(self._np.np,
                                                 self._sig_entries)
        contexts: List[_Context] = []
        legacy = False
        for item in self._contexts:
            if isinstance(item, _Context):
                # Legacy blob: pickled context objects over a frozen
                # shadow detector; rebind the closures to the live one.
                legacy = True
                item.closure._owner = self
                contexts.append(item)
            else:
                signatures, cursors, clock_values, reported = item
                closure = self._new_closure()
                closure.seed_values(clock_values)
                contexts.append(_Context(signatures=signatures,
                                         cursors=cursors, closure=closure,
                                         reported=reported))
        self._contexts = contexts
        if not legacy:
            index: Dict[Signature, List[_Context]] = {}
            for ctx in contexts:
                for sig in ctx.signatures:
                    index.setdefault(sig, []).append(ctx)
            self._contexts_of_sig = index

    def _named_signature(self, sig: Signature) -> NamedSignature:
        tid, lid, held = sig
        lock_names = self._lock_names
        return (
            self._thread_names[tid],
            lock_names[lid],
            frozenset(lock_names[h] for h in held),
        )


def spd_online_k(trace, max_size: int = 3) -> SPDOnlineK:
    """Run :class:`SPDOnlineK` over a complete trace."""
    det = SPDOnlineK(max_size=max_size)
    det.run(trace)
    return det
