"""The abstract lock graph ``ALG`` (paper Section 4.5).

Nodes are abstract acquires ``⟨t, l, L, F⟩``; an edge ``(η1, η2)``
exists when ``t1 ≠ t2``, ``l1 ∈ L2``, and ``L1 ∩ L2 = ∅``.  Every
abstract deadlock pattern appears as a simple cycle of ALG; a cycle is
an abstract deadlock pattern when additionally all threads are
distinct, all locks are distinct, and all held sets pairwise disjoint
(the edge relation only guarantees this for adjacent nodes).

Graph construction and cycle filtering run entirely over the interned
id form (:class:`~repro.locks.abstract.AbstractAcquireIds`): edges
compare int thread/lock ids and intersect frozensets of lock ids.
String :class:`AbstractAcquire` objects are materialized only for the
patterns that survive the filter.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import repro.kernels as kernels
from repro.core.patterns import AbstractDeadlockPattern
from repro.graph.digraph import DiGraph
from repro.graph.johnson import simple_cycles
from repro.locks.abstract import (
    AbstractAcquire,
    AbstractAcquireIds,
    collect_abstract_acquire_ids,
)
from repro.trace.trace import Trace, as_trace


def _build_alg_edges(acquires: Sequence[AbstractAcquireIds]) -> DiGraph:
    """``ALG`` over node indices ``0..len(acquires)-1`` (int ids)."""
    if kernels.backend() == "numpy":
        from repro.kernels.alg_np import build_alg_edges_np

        graph = build_alg_edges_np(acquires)
        if graph is not None:
            return graph
    kernels.record_dispatch("alg_edges", "python", events=len(acquires))
    graph: DiGraph = DiGraph()
    for i in range(len(acquires)):
        graph.add_node(i)
    # Index nodes by membership lock for edge construction: an edge
    # η1 → η2 needs l1 ∈ L2, so bucket targets by each held lock.
    by_held_lock: dict = {}
    for j, eta in enumerate(acquires):
        for lk in eta.held:
            by_held_lock.setdefault(lk, []).append(j)
    for i, eta1 in enumerate(acquires):
        held1 = eta1.held
        t1 = eta1.thread
        for j in by_held_lock.get(eta1.lock, ()):
            eta2 = acquires[j]
            if t1 != eta2.thread and held1.isdisjoint(eta2.held):
                graph.add_edge(i, j)
    return graph


def build_abstract_lock_graph(trace: Trace) -> DiGraph:
    """Construct ``ALG(trace)`` over :class:`AbstractAcquire` nodes.

    The string-keyed public form (node identity is the ``⟨t, l, L⟩``
    signature); the detectors use the id-level internals directly.
    """
    trace = as_trace(trace)
    acquires = collect_abstract_acquire_ids(trace)
    id_graph = _build_alg_edges(acquires)
    compiled = trace.compiled
    named = [a.to_named(compiled) for a in acquires]
    graph: DiGraph = DiGraph()
    for eta in named:
        graph.add_node(eta)
    for i, j in id_graph.edges():
        graph.add_edge(named[i], named[j])
    return graph


def cycle_is_abstract_pattern(nodes: List[AbstractAcquireIds]) -> bool:
    """Distinct threads/locks and pairwise-disjoint held sets."""
    k = len(nodes)
    threads = {n.thread for n in nodes}
    locks = {n.lock for n in nodes}
    if len(threads) != k or len(locks) != k:
        return False
    for i in range(k):
        held_i = nodes[i].held
        for j in range(i + 1, k):
            if not held_i.isdisjoint(nodes[j].held):
                return False
    return True


def enumerate_alg_cycles(
    graph: DiGraph,
    max_length: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> Iterator[List[AbstractAcquire]]:
    """Simple cycles of ALG as lists of abstract acquires."""
    for idx_cycle in simple_cycles(graph, max_length=max_length, max_cycles=max_cycles):
        yield [graph.node_at(i) for i in idx_cycle]


def abstract_deadlock_patterns(
    trace: Trace,
    max_size: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> Tuple[int, List[AbstractDeadlockPattern]]:
    """Phase 1 of SPDOffline.

    Returns ``(num_cycles, patterns)`` — the total simple-cycle count of
    ALG (the ``|Cyc|`` column of Table 1) and the cycles that pass the
    abstract-deadlock-pattern filter (the ``A. P.`` column).
    """
    trace = as_trace(trace)
    acquires = collect_abstract_acquire_ids(trace)
    graph = _build_alg_edges(acquires)
    compiled = trace.compiled
    num_cycles = 0
    patterns: List[AbstractDeadlockPattern] = []
    named: dict = {}

    def name_of(i: int) -> AbstractAcquire:
        eta = named.get(i)
        if eta is None:
            eta = named[i] = acquires[i].to_named(compiled)
        return eta

    for idx_cycle in simple_cycles(graph, max_length=max_size, max_cycles=max_cycles):
        num_cycles += 1
        nodes = [acquires[i] for i in idx_cycle]
        if cycle_is_abstract_pattern(nodes):
            patterns.append(
                AbstractDeadlockPattern(tuple(name_of(i) for i in idx_cycle)).canonical()
            )
    return num_cycles, patterns


def count_cycles(trace: Trace, max_cycles: Optional[int] = None) -> int:
    """``|Cyc|``: number of simple cycles in ALG (Table 1 column 7)."""
    graph = _build_alg_edges(collect_abstract_acquire_ids(as_trace(trace)))
    return sum(1 for _ in simple_cycles(graph, max_cycles=max_cycles))


# -- shard-aware entry points (repro.exp.shard) -------------------------------


def build_alg_ids(trace: Trace) -> Tuple[List[AbstractAcquireIds], DiGraph]:
    """``(abstract acquires, ALG over their indices)`` in interned form.

    The coordinator-side entry of the sharded pipeline: nodes carry
    their full-trace held sets (including thread-local locks), so the
    phase-1 pattern filter inside a worker sees exactly what the serial
    engine sees even though the spine projection drops those locks'
    events.
    """
    acquires = collect_abstract_acquire_ids(as_trace(trace))
    return acquires, _build_alg_edges(acquires)


def alg_components(graph: DiGraph) -> List[List[int]]:
    """Weakly connected components of ALG that can carry a cycle.

    Simple cycles never leave a weak component, so components are the
    independent "lock contexts" the sharded pipeline fans out over.
    Returned as ascending node-index lists, sorted by minimum node;
    singleton components are dropped — ALG has no self-loops (the edge
    relation requires distinct threads), so they contain no cycles.
    """
    n = graph.num_nodes
    adjacency = graph.adjacency()
    undirected: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in adjacency[i]:
            undirected[i].append(j)
            undirected[j].append(i)
    seen = bytearray(n)
    components: List[List[int]] = []
    for root in range(n):
        if seen[root]:
            continue
        seen[root] = 1
        comp = [root]
        work = [root]
        while work:
            u = work.pop()
            for v in undirected[u]:
                if not seen[v]:
                    seen[v] = 1
                    comp.append(v)
                    work.append(v)
        if len(comp) > 1:
            comp.sort()
            components.append(comp)
    return components


def enumerate_subgraph_cycles(
    num_nodes: int,
    edges: Sequence[Tuple[int, int]],
    max_length: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> Iterator[List[int]]:
    """Simple cycles of one component subgraph (worker-side phase 1).

    ``edges`` are pairs of *local* node indices; local order must be
    ascending in the global node ids (the coordinator sorts), so the
    enumeration order here — starts ascending, Johnson's within-start
    order — maps monotonically onto the whole-graph order and the
    reducer can merge per-component streams back into the serial
    engine's exact output order.
    """
    graph: DiGraph = DiGraph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i, j in edges:
        graph.add_edge(i, j)
    return simple_cycles(graph, max_length=max_length, max_cycles=max_cycles)
