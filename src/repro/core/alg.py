"""The abstract lock graph ``ALG`` (paper Section 4.5).

Nodes are abstract acquires ``⟨t, l, L, F⟩``; an edge ``(η1, η2)``
exists when ``t1 ≠ t2``, ``l1 ∈ L2``, and ``L1 ∩ L2 = ∅``.  Every
abstract deadlock pattern appears as a simple cycle of ALG; a cycle is
an abstract deadlock pattern when additionally all threads are
distinct, all locks are distinct, and all held sets pairwise disjoint
(the edge relation only guarantees this for adjacent nodes).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.patterns import AbstractDeadlockPattern
from repro.graph.digraph import DiGraph
from repro.graph.johnson import simple_cycles
from repro.locks.abstract import AbstractAcquire, collect_abstract_acquires
from repro.trace.trace import Trace


def build_abstract_lock_graph(trace: Trace) -> DiGraph:
    """Construct ``ALG(trace)`` over :class:`AbstractAcquire` nodes."""
    graph: DiGraph = DiGraph()
    acquires = collect_abstract_acquires(trace)
    for eta in acquires:
        graph.add_node(eta)
    # Index nodes by membership lock for edge construction: an edge
    # η1 → η2 needs l1 ∈ L2, so bucket targets by each held lock.
    by_held_lock = {}
    for eta in acquires:
        for lk in eta.held:
            by_held_lock.setdefault(lk, []).append(eta)
    for eta1 in acquires:
        for eta2 in by_held_lock.get(eta1.lock, ()):
            if eta1.thread != eta2.thread and not (eta1.held & eta2.held):
                graph.add_edge(eta1, eta2)
    return graph


def _cycle_is_abstract_pattern(nodes: List[AbstractAcquire]) -> bool:
    """Distinct threads/locks and pairwise-disjoint held sets."""
    k = len(nodes)
    threads = {n.thread for n in nodes}
    locks = {n.lock for n in nodes}
    if len(threads) != k or len(locks) != k:
        return False
    for i in range(k):
        for j in range(i + 1, k):
            if nodes[i].held & nodes[j].held:
                return False
    return True


def enumerate_alg_cycles(
    graph: DiGraph,
    max_length: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> Iterator[List[AbstractAcquire]]:
    """Simple cycles of ALG as lists of abstract acquires."""
    for idx_cycle in simple_cycles(graph, max_length=max_length, max_cycles=max_cycles):
        yield [graph.node_at(i) for i in idx_cycle]


def abstract_deadlock_patterns(
    trace: Trace,
    max_size: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> Tuple[int, List[AbstractDeadlockPattern]]:
    """Phase 1 of SPDOffline.

    Returns ``(num_cycles, patterns)`` — the total simple-cycle count of
    ALG (the ``|Cyc|`` column of Table 1) and the cycles that pass the
    abstract-deadlock-pattern filter (the ``A. P.`` column).
    """
    graph = build_abstract_lock_graph(trace)
    num_cycles = 0
    patterns: List[AbstractDeadlockPattern] = []
    for nodes in enumerate_alg_cycles(graph, max_length=max_size, max_cycles=max_cycles):
        num_cycles += 1
        if _cycle_is_abstract_pattern(nodes):
            patterns.append(AbstractDeadlockPattern(tuple(nodes)).canonical())
    return num_cycles, patterns


def count_cycles(trace: Trace, max_cycles: Optional[int] = None) -> int:
    """``|Cyc|``: number of simple cycles in ALG (Table 1 column 7)."""
    graph = build_abstract_lock_graph(trace)
    return sum(1 for _ in simple_cycles(graph, max_cycles=max_cycles))
