"""SPDOnline: streaming sync-preserving deadlock prediction of size-2
deadlocks (Algorithm 4 of the paper).

The algorithm processes one event at a time and never looks back at the
raw trace.  Its state:

- ``C_t`` — the TRF timestamp of the last event of each thread;
- ``LW_x`` — the timestamp of the last write to each variable;
- critical-section history: a global append-only list of
  (acquire-ts, release-ts) entries per (thread, lock), with *per-context*
  cursors — the literal algorithm keeps one queue copy per context
  ``⟨t1, l1, t2, l2⟩`` and consumes it destructively; a shared list with
  per-context cursors is observationally identical and lighter;
- ``AcqHist⟨u⟩_{t,l,l'}`` — FIFO queues of (pred-ts, ts) for acquires of
  ``l`` by ``t`` holding ``l'``, one copy per opposing thread ``u``,
  consumed by ``checkDeadlock``;
- ``I⟨u,l',t,l⟩`` — the persistent, monotonically growing closure
  timestamp per ordered context (Proposition 4.4 reuse).

On an acquire of ``l`` by ``t`` holding ``l'``, the handler pairs the
new event against the queued acquires of every other thread ``u`` on
``l'`` holding ``l`` — the two abstract acquires form a size-2 abstract
deadlock pattern — and runs the closure check.  Queue entries that fail
to produce a deadlock are discarded forever (Corollary 4.5).

Representation (the performance model):

- threads, locks, and variables are interned to dense ints on entry;
  every per-thread/per-lock map is a list indexed by id, and a
  :class:`~repro.trace.compiled.CompiledTrace` streams straight through
  without touching strings;
- acquire/release/last-write timestamps are *canonical snapshots*, so
  every ``⊑`` test in the hot path is an O(1) epoch comparison
  (see :mod:`repro.vc.clock`); snapshots are copy-on-write, so a thread
  pays at most one clock copy per event;
- an acquire of ``l`` holding ``l'`` consults only the threads indexed
  under ``(l', l)`` — the threads that actually queued opposing
  acquires — instead of scanning every known thread;
- the per-context closure runs a dirty-lock worklist: a lock is
  re-examined only when the closure clock grew in a slot of a thread
  holding critical sections on it, or when its history gained records
  (tracked by an append-only log with per-closure cursors), instead of
  re-scanning every known lock each fix-point round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import repro.kernels as kernels
from repro.core.patterns import DeadlockPattern, DeadlockReport
from repro.trace.compiled import CompiledTrace, InterningDetectorMixin
from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_JOIN,
    OP_READ,
    OP_RELEASE,
    OP_WRITE,
    Event,
)
from repro.trace.trace import Trace
from repro.vc.clock import ThreadUniverse, VectorClock


class _CSRecord:
    """One critical section in the global history.

    ``acq_val`` is the acquiring thread's component at the acquire
    (its canonical epoch); ``rel_val``/``rel_ts`` are filled at release.
    The full acquire clock is never needed: closure membership of an
    acquire is exactly the epoch test ``acq_val <= T[tid]``.
    """

    __slots__ = ("acq_idx", "tid", "acq_val", "rel_val", "rel_ts")

    def __init__(self, acq_idx: int, tid: int, acq_val: int) -> None:
        self.acq_idx = acq_idx
        self.tid = tid
        self.acq_val = acq_val
        self.rel_val: Optional[int] = None
        self.rel_ts: Optional[VectorClock] = None


class _AcqEntry:
    """Queued acquire awaiting deadlock checks.

    ``(tid, ts_val)`` is the epoch of the acquire's (post-tick)
    timestamp; ``pred_ts`` the full thread-predecessor clock used to
    seed closures; ``loc`` the location carried into reports.
    """

    __slots__ = ("idx", "tid", "ts_val", "pred_ts", "loc")

    def __init__(self, idx: int, tid: int, ts_val: int,
                 pred_ts: VectorClock, loc: str) -> None:
        self.idx = idx
        self.tid = tid
        self.ts_val = ts_val
        self.pred_ts = pred_ts
        self.loc = loc


# Context key: the ordered abstract pattern ⟨u, l', {l}⟩ vs ⟨t, l, {l'}⟩,
# as interned ids.
_Ctx = Tuple[int, int, int, int]

#: deferred checkDeadlock calls buffered before a forced flush
_MB_LIMIT = 64


class _OnlineClosure:
    """Per-context Algorithm 1 over the shared critical-section history.

    The closure clock grows monotonically across calls (Proposition
    4.4).  Work is driven by a dirty-lock worklist: seeds report which
    slots they grew (``join_update``), the owner's append log reports
    history growth, and only the affected locks are re-advanced.
    """

    __slots__ = ("_owner", "_by_lock", "clock", "_log_pos", "_pending")

    def __init__(self, owner: "SPDOnline") -> None:
        self._owner = owner
        # lid -> per-thread [cursor, last-record, records] rows, aligned
        # with owner.threads_with_lock[lid] (synced lazily on growth).
        self._by_lock: Dict[int, List[list]] = {}
        self.clock = VectorClock(0)
        # Cursor into the owner's append-only cs_log (in *absolute*
        # positions — eviction mode compacts the log and advances
        # owner.cs_log_base): histories that gained records past this
        # point are dirty for this closure.  -1 = never computed; the
        # first compute dirties every lock with records directly
        # (O(locks), not O(log)).
        self._log_pos = -1
        self._pending: Set[int] = set()

    def canonical_clock(self) -> List[int]:
        """Backend-agnostic checkpoint form (see SPDOnline.checkpoint).

        The closure state *is* its clock: cursors and candidates are
        derivable (a record is consumed iff its acquire value is ≤ the
        clock's thread component), and every consumed contribution is
        already folded into the fix-point clock.  A closure rebuilt
        from the clock alone self-heals bit-identically on its next
        compute — re-joining already-absorbed releases is a ⊑-skipped
        no-op at the fix-point.
        """
        return list(self.clock._v)

    def seed_values(self, values: List[int]) -> None:
        """Adopt restored clock components (rebuild-from-checkpoint)."""
        if values:
            self.clock.join_with(VectorClock(values))

    def join_seed(self, seed: VectorClock) -> None:
        """Grow the closure clock; mark locks reachable from grown slots."""
        grown = self.clock.join_update(seed)
        if grown:
            lot = self._owner.locks_of_thread
            n = len(lot)
            pend = self._pending
            for s in grown:
                if s < n:
                    pend.update(lot[s])

    def compute(self, seed: VectorClock) -> VectorClock:
        """Fix-point closure starting from ``clock ⊔ seed``."""
        self.join_seed(seed)
        owner = self._owner
        t_clock = self.clock
        # Histories that gained records since this closure last looked:
        # consume the owner's append log from this closure's cursor.
        # When the backlog exceeds the lock count (first compute, or a
        # long-idle closure), dirtying every lock with records is the
        # cheaper superset — per compute this costs
        # O(min(new records, locks)).
        pend = self._pending
        log = owner.cs_log
        base = owner.cs_log_base
        pos = self._log_pos
        n = base + len(log)
        if pos < n:
            if pos < base or n - pos > len(owner.threads_with_lock):
                pend.update(owner.threads_with_lock)
            else:
                for j in range(pos - base, len(log)):
                    pend.add(log[j])
            self._log_pos = n
        if not pend:
            return t_clock
        lot = owner.locks_of_thread
        nlot = len(lot)
        work = list(pend)
        while work:
            lid = work.pop()
            pend.discard(lid)
            joins = self._advance_lock(lid, t_clock)
            if joins:
                self._owner._closure_iterations += 1
                for rel_ts in joins:
                    for s in t_clock.join_update(rel_ts):
                        if s < nlot:
                            for l2 in lot[s]:
                                if l2 not in pend:
                                    pend.add(l2)
                                    work.append(l2)
        return t_clock

    def _advance_lock(
        self, lid: int, t_clock: VectorClock
    ) -> Optional[List[VectorClock]]:
        owner = self._owner
        tv = t_clock._v
        ltv = len(tv)
        twl = owner.threads_with_lock.get(lid)
        if not twl:
            return None
        rows = self._by_lock.get(lid)
        # Rows created over an already-evicted history must fold the
        # evicted releases' summary clock into the closure (a sound
        # overapproximation — see SPDOnline._evict_stale); ``extra``
        # carries those joins out even when no cursor moves.
        extra: Optional[List[VectorClock]] = None
        evicted = owner._evicted_rel
        if rows is None:
            rows = self._by_lock[lid] = [
                [0, None, owner.cs_history[(tid, lid)], tid] for tid in twl
            ]
            if evicted:
                extra = self._eviction_summaries(evicted, twl, lid)
        elif len(rows) < len(twl):
            fresh = twl[len(rows):]
            for tid in fresh:
                rows.append([0, None, owner.cs_history[(tid, lid)], tid])
            if evicted:
                extra = self._eviction_summaries(evicted, fresh, lid)
        # Pass 1: advance cursors.  If none moves, every prior
        # contribution was already joined into t_clock (and, with
        # mutex-exclusive locking, a non-latest candidate's release
        # timestamp was already recorded when its successor acquire
        # entered the history) — nothing new, skip candidate building.
        moved = False
        for row in rows:
            cursor = row[0]
            records = row[2]
            n = len(records)
            if cursor < n:
                tid = row[3]
                bound = tv[tid] if tid < ltv else 0
                if records[cursor].acq_val <= bound:
                    last = records[cursor]
                    cursor += 1
                    while cursor < n and records[cursor].acq_val <= bound:
                        last = records[cursor]
                        cursor += 1
                    row[0] = cursor
                    row[1] = last
                    moved = True
        if not moved:
            return extra
        candidates = [row[1] for row in rows if row[1] is not None]
        if len(candidates) <= 1:
            return extra
        latest = candidates[0]
        for rec in candidates:
            if rec.acq_idx > latest.acq_idx:
                latest = rec
        joins: Optional[List[VectorClock]] = extra
        for rec in candidates:
            if rec is latest or rec.rel_ts is None:
                continue
            bound = tv[rec.tid] if rec.tid < ltv else 0
            if rec.rel_val <= bound:
                continue  # release already inside the closure
            if joins is None:
                joins = [rec.rel_ts]
            else:
                joins.append(rec.rel_ts)
        return joins

    @staticmethod
    def _eviction_summaries(evicted, tids, lid) -> Optional[List[VectorClock]]:
        out: Optional[List[VectorClock]] = None
        for tid in tids:
            summary = evicted.get((tid, lid))
            if summary is not None:
                if out is None:
                    out = [summary]
                else:
                    out.append(summary)
        return out

    def _after_eviction(self, trimmed: Dict[Tuple[int, int], int]) -> None:
        """Rebase row cursors after the owner trimmed history prefixes.

        A cursor already past the trimmed prefix just shifts; a cursor
        that had *not* consumed every evicted record joins that
        history's summary clock instead — the closure can only grow,
        which keeps every subsequent report sound (reports fire when an
        acquire stays *outside* the closure, so overapproximating can
        only suppress them: eviction misses, never fabricates).
        """
        pending: Optional[VectorClock] = None
        evicted = self._owner._evicted_rel
        for lid, rows in self._by_lock.items():
            for row in rows:
                k = trimmed.get((row[3], lid))
                if not k:
                    continue
                if row[0] >= k:
                    row[0] -= k
                else:
                    row[0] = 0
                    summary = evicted.get((row[3], lid))
                    if summary is not None:
                        if pending is None:
                            pending = summary.copy()
                        else:
                            pending.join_with(summary)
        if pending is not None:
            self.join_seed(pending)


@dataclass
class OnlineReport:
    """A deadlock declared by the streaming analysis."""

    first_event: int
    second_event: int
    context: Tuple[str, str, str, str]
    locations: Tuple[str, str]

    @property
    def bug_id(self) -> Tuple[str, ...]:
        return tuple(sorted(self.locations))


class SPDOnline(InterningDetectorMixin):
    """Streaming detector; feed events with :meth:`step`.

    Example::

        det = SPDOnline()
        for ev in trace:
            det.step(ev)
        print(det.reports)

    Feeding a :class:`~repro.trace.compiled.CompiledTrace` through
    :meth:`run` (or attaching to a :class:`repro.stream.StreamSession`,
    which delivers batches through :meth:`feed_batch`) skips string
    interning entirely.

    ``max_memory_events`` enables *bounded-memory eviction* for
    unbounded monitoring sessions: closed critical-section records and
    queued guarded acquires older than that horizon are periodically
    discarded, so tracked state stays O(horizon + entities) instead of
    O(trace).  Eviction is *sound but lossy*: evicted releases are
    folded into per-history summary clocks that only ever **grow** the
    closures consulting them, so every report the detector still makes
    is a true sync-preserving deadlock — eviction can miss reports the
    exact detector would have made, never fabricate new ones (pinned by
    ``tests/test_stream.py``).
    """

    def __init__(self, max_memory_events: Optional[int] = None) -> None:
        if max_memory_events is not None and max_memory_events < 1:
            raise ValueError("max_memory_events must be >= 1")
        self.universe = ThreadUniverse()
        # Intern tables (thread id == universe slot).
        self._tid: Dict[str, int] = {}
        self._thread_names: List[str] = []
        self._lid: Dict[str, int] = {}
        self._lock_names: List[str] = []
        self._vid: Dict[str, int] = {}
        # Dense per-id state.
        self._clocks: List[VectorClock] = []
        self._held: List[List[int]] = []
        self._last_write: List[Optional[Tuple[int, int, VectorClock]]] = []
        #: per-thread list of locks the thread has critical sections on
        self.locks_of_thread: List[List[int]] = []
        #: append-only log of lock ids, one entry per critical-section
        #: record; closures consume it via a private cursor to learn
        #: which histories grew since they last computed
        self.cs_log: List[int] = []
        # Shared critical-section history (per thread, lock), plus the
        # open-acquire stack used to fill release timestamps.
        self.cs_history: Dict[Tuple[int, int], List[_CSRecord]] = {}
        self._open_cs: Dict[Tuple[int, int], List[_CSRecord]] = {}
        self.threads_with_lock: Dict[int, List[int]] = {}
        # AcqHist: shared per-(thread, lock, held-lock) acquire lists with
        # per-context cursors (equivalent to the per-opposing-thread queue
        # copies of Algorithm 4, but robust to threads appearing later),
        # plus the (lock, held-lock) -> threads index that narrows the
        # checkDeadlock fan-out to threads with opposing entries.
        self._acq_seq: Dict[Tuple[int, int, int], List[_AcqEntry]] = {}
        self._pair_threads: Dict[Tuple[int, int], List[int]] = {}
        self._ctx_cursor: Dict[_Ctx, int] = {}
        self._closures: Dict[_Ctx, _OnlineClosure] = {}
        self.reports: List[OnlineReport] = []
        self._events_seen = 0
        # Bounded-memory eviction (None = keep everything, the exact
        # algorithm).  cs_log_base counts log entries compacted away;
        # _evicted_rel maps a trimmed (thread, lock) history to the
        # join of its evicted release timestamps (the sound
        # overapproximation closures consult instead).
        self.max_memory_events = max_memory_events
        self.cs_log_base = 0
        self._evicted_rel: Dict[Tuple[int, int], VectorClock] = {}
        self._evicted_counts: Dict[Tuple[int, int], int] = {}
        if max_memory_events is not None:
            self._evict_period = max(1, max_memory_events // 2)
            self._next_evict: Optional[int] = (
                max_memory_events + self._evict_period
            )
        else:
            self._evict_period = 0
            self._next_evict = None
        # Instrumentation (cheap counters; see stats()).
        self._closure_iterations = 0
        self._deadlock_checks = 0
        self._evictions = 0
        # Vectorized closure backend (repro.kernels): numpy mirrors of
        # the critical-section history, maintained write-through by the
        # event handlers.  Exact mode only — eviction trims history
        # prefixes, which the stateless numpy cursors cannot track.
        self._np = None
        if max_memory_events is None:
            self._init_kernel()
        # Per-event micro-batch deferral (exact mode + numpy only):
        # non-batchable checkDeadlock calls queue here and replay at
        # flush boundaries — consecutive no-op checks of one context
        # collapse into a single folded seed join, and the python path
        # stays the inline differential oracle.
        self._mb: Optional[List[tuple]] = (
            [] if self._np is not None else None)

    def _init_kernel(self) -> None:
        np_mod = kernels.numpy_or_none()
        if np_mod is not None:
            from repro.kernels.online_np import NpOnlineState

            self._np = NpOnlineState(np_mod)
            kernels.record_dispatch("online_closure", "numpy")
        else:
            kernels.record_dispatch("online_closure", "python")

    def _new_closure(self):
        """Per-context closure of the active kernel backend.

        Both implementations compute the same (unique) Algorithm 1
        fix-point over the same shared history; reports are
        bit-identical (tests/test_kernels.py).
        """
        if self._np is not None:
            from repro.kernels.online_np import NpOnlineClosure

            return NpOnlineClosure(self)
        return _OnlineClosure(self)

    # -- bookkeeping -------------------------------------------------------

    def _add_thread(self, thread: str) -> int:
        tid = len(self._thread_names)
        self._tid[thread] = tid
        self._thread_names.append(thread)
        self.universe.slot(thread)
        self._clocks.append(VectorClock(0))
        self._held.append([])
        self.locks_of_thread.append([])
        return tid

    def _add_lock(self, lock: str) -> int:
        lid = len(self._lock_names)
        self._lid[lock] = lid
        self._lock_names.append(lock)
        return lid

    def _add_var(self, var: str) -> int:
        vid = len(self._last_write)
        self._vid[var] = vid
        self._last_write.append(None)
        return vid

    # -- event handlers (Algorithm 4) ---------------------------------------

    def step(self, event: Event) -> List[OnlineReport]:
        """Process one event; return the reports it triggered."""
        before = len(self.reports)
        op, tid, target_id = self._intern_event(event)
        self._step_coded(op, tid, target_id, event.loc)
        if self._mb:
            self._flush_checks()
        return self.reports[before:]

    def feed_batch(self, compiled: CompiledTrace, lo: int, hi: int,
                   base: int = 0) -> None:
        super().feed_batch(compiled, lo, hi, base)
        if self._mb:
            self._flush_checks()

    def _step_coded(self, op: int, tid: int, target_id: int,
                    loc: Optional[str]) -> None:
        """Process one already-interned event."""
        clock = self._clocks[tid]
        if op == OP_WRITE:
            self._last_write[target_id] = (tid, clock.component(tid),
                                           clock.snapshot())
            clock.tick(tid)
        elif op == OP_READ:
            lw = self._last_write[target_id]
            # Epoch fast path: the last-write snapshot is already ⊑ the
            # reader's clock iff the reader knows the writer's epoch.
            if lw is not None and lw[1] > clock.component(lw[0]):
                clock.join_with(lw[2])
            clock.tick(tid)
        elif op == OP_ACQUIRE:
            self._handle_acquire(tid, target_id, loc, clock)
        elif op == OP_RELEASE:
            clock.tick(tid)
            key = (tid, target_id)
            stack = self._open_cs.get(key)
            if stack:
                rec = stack.pop()
                rec.rel_val = clock[tid]
                rec.rel_ts = clock.snapshot()
                if self._np is not None:
                    self._np.on_release(tid, target_id, rec.acq_val,
                                        rec.rel_val, rec.rel_ts._v)
            held = self._held[tid]
            for j in range(len(held) - 1, -1, -1):
                if held[j] == target_id:
                    del held[j]
                    break
        elif op == OP_FORK:
            child_clock = self._clocks[target_id]
            clock.tick(tid)
            child_clock.join_with(clock)
        elif op == OP_JOIN:
            clock.join_with(self._clocks[target_id])
            clock.tick(tid)
        else:  # request events carry no analysis semantics
            clock.tick(tid)
        self._events_seen += 1
        if self._next_evict is not None and self._events_seen >= self._next_evict:
            self._evict_stale()

    def _handle_acquire(self, tid: int, lid: int, loc: Optional[str],
                        clock: VectorClock) -> None:
        idx = self._events_seen
        c_pred = clock.snapshot()
        clock.tick(tid)
        val = clock[tid]
        # Record the critical section in the shared history.
        key = (tid, lid)
        records = self.cs_history.get(key)
        if records is None:
            records = self.cs_history[key] = []
            self.threads_with_lock.setdefault(lid, []).append(tid)
            self.locks_of_thread[tid].append(lid)
        rec = _CSRecord(acq_idx=idx, tid=tid, acq_val=val)
        records.append(rec)
        self.cs_log.append(lid)
        if self._np is not None:
            self._np.on_acquire(tid, lid, val, idx)
        open_stack = self._open_cs.get(key)
        if open_stack is None:
            open_stack = self._open_cs[key] = []
        open_stack.append(rec)

        held = self._held[tid]
        if not held:
            held.append(lid)
            return
        held_before = held[:]
        held.append(lid)

        # Queue this acquire for future checks by opposing threads.
        entry = _AcqEntry(idx=idx, tid=tid, ts_val=val, pred_ts=c_pred,
                          loc=loc if loc is not None else f"@{idx}")
        acq_seq = self._acq_seq
        pair_threads = self._pair_threads
        for l2 in held_before:
            skey = (tid, lid, l2)
            queue = acq_seq.get(skey)
            if queue is None:
                acq_seq[skey] = [entry]
                # Index this thread under (lock, held-lock) so opposing
                # acquires find it without scanning all threads.
                pair = pair_threads.get((lid, l2))
                if pair is None:
                    pair_threads[(lid, l2)] = [tid]
                else:
                    pair.append(tid)
            else:
                queue.append(entry)

        # Check against queued opposing acquires: u acquired l2 holding lid.
        closures = self._closures
        mb = self._mb
        for l2 in held_before:
            for u in pair_threads.get((l2, lid), ()):
                if u == tid:
                    continue
                queue = acq_seq.get((u, l2, lid))
                if not queue:
                    continue
                opp_ctx: _Ctx = (u, l2, tid, lid)
                closure = closures.get(opp_ctx)
                if closure is None:
                    closure = self._new_closure()
                    closures[opp_ctx] = closure
                if mb is None:
                    self._check_deadlock(queue, len(queue), closure,
                                         opp_ctx, c_pred, entry)
                else:
                    # Defer: capture the queue length now — entries
                    # appended later are invisible to this check (their
                    # acquire values postdate every timestamp the
                    # closure can reach from this event's seeds).
                    mb.append((queue, len(queue), closure, opp_ctx,
                               c_pred, entry))
        if mb is not None and len(mb) >= _MB_LIMIT:
            self._flush_checks()

    def _check_deadlock(
        self,
        queue: List[_AcqEntry],
        n: int,
        closure: _OnlineClosure,
        ctx: _Ctx,
        c_pred: VectorClock,
        new_entry: _AcqEntry,
    ) -> None:
        """The ``checkDeadlock`` helper of Algorithm 4.

        Walks the first ``n`` entries of the opposing acquire list from
        this context's cursor (``n`` is the queue length at the
        triggering event — the micro-batch replay passes the captured
        length so deferred checks see exactly the event-time queue).
        Entries swallowed by the closure are skipped forever
        (Corollary 4.5); the first entry that survives the closure is a
        sync-preserving deadlock with ``new_entry``.
        """
        closure.join_seed(c_pred)
        cursor = self._ctx_cursor.get(ctx, 0)
        while cursor < n:
            old = queue[cursor]
            self._deadlock_checks += 1
            t_clock = closure.compute(old.pred_ts)
            # Epoch test: old's acquire timestamp ⊑ closure clock?
            if old.ts_val > t_clock.component(old.tid):
                u, l2, t, lock = ctx
                names = self._thread_names
                lock_names = self._lock_names
                self.reports.append(
                    OnlineReport(
                        first_event=old.idx,
                        second_event=new_entry.idx,
                        context=(names[u], lock_names[l2],
                                 names[t], lock_names[lock]),
                        locations=(old.loc, new_entry.loc),
                    )
                )
                break
            cursor += 1
        self._ctx_cursor[ctx] = cursor

    def _flush_checks(self) -> None:
        """Replay deferred checkDeadlock calls in arrival order.

        Exactness: each deferred call replays against the queue prefix
        captured at its event (``qn``), and the closure state it sees
        is what the inline run would have seen — extra history recorded
        between the event and the flush is either unreachable (a later
        acquire's value exceeds every component any event-time seed can
        produce) or redundant (a consumable candidate's release was
        already recorded when its successor's acquire entered the
        history).  Consecutive calls on one context with nothing left
        to walk are pure seed joins, and sequential joins equal one
        join of the folded seed — that collapse is the micro-batch
        saving.
        """
        buf = self._mb
        if not buf:
            return
        self._mb = []
        kernels.record_dispatch("online_microbatch", "numpy",
                                events=len(buf))
        cursors = self._ctx_cursor
        i = 0
        n = len(buf)
        while i < n:
            queue, qn, closure, ctx, c_pred, entry = buf[i]
            cursor = cursors.get(ctx, 0)
            if cursor >= qn:
                j = i + 1
                while j < n and buf[j][2] is closure and buf[j][1] <= cursor:
                    j += 1
                if j - i == 1:
                    closure.join_seed(c_pred)
                else:
                    acc = c_pred.copy()
                    for t in range(i + 1, j):
                        acc.join_with(buf[t][4])
                    closure.join_seed(acc)
                i = j
                continue
            self._check_deadlock(queue, qn, closure, ctx, c_pred, entry)
            i += 1

    # -- bounded-memory eviction (Corollary 4.5 + summary clocks) -----------

    def _evict_stale(self) -> None:
        """Discard tracked state older than the eviction horizon.

        Three sweeps, each sound under the report rule (a report fires
        only when an acquire stays *outside* the computed closure, so
        any change that can only grow closures or drop candidate
        patterns yields misses, never fabrications):

        1. **Critical-section histories** — closed records older than
           the horizon are removed prefix-wise; their release clocks
           are folded into a per-(thread, lock) summary that closures
           join *unconditionally* wherever the exact algorithm might
           have joined a subset (the spine insight in reverse: we keep
           a one-clock overapproximation of everything the closure
           could still reach through the evicted records).
        2. **Guarded-acquire queues** (AcqHist) — entries older than
           the horizon can never be re-examined usefully at bounded
           memory; dropping them forfeits only the patterns they
           anchor.  Context cursors shift with the trimmed prefix
           (entries a cursor had not reached are simply missed).
        3. **The history-growth log** — closures lagging more than the
           lock count behind take the dirty-all-locks fallback anyway,
           so only that many trailing entries are kept;
           :attr:`cs_log_base` keeps absolute positions meaningful.
        """
        self._next_evict = self._events_seen + self._evict_period
        horizon = self._events_seen - self.max_memory_events
        if horizon <= 0:
            return
        trimmed: Dict[Tuple[int, int], int] = {}
        for key, records in self.cs_history.items():
            k = 0
            n = len(records)
            while (k < n and records[k].rel_ts is not None
                   and records[k].acq_idx < horizon):
                k += 1
            if not k:
                continue
            summary = self._evicted_rel.get(key)
            if summary is None:
                summary = self._evicted_rel[key] = VectorClock(0)
            for rec in records[:k]:
                summary.join_with(rec.rel_ts)
            del records[:k]
            self._evicted_counts[key] = self._evicted_counts.get(key, 0) + k
            trimmed[key] = k
        if trimmed:
            for closure in self._closures.values():
                closure._after_eviction(trimmed)
        acq_trim: Dict[Tuple[int, int, int], int] = {}
        for skey, queue in self._acq_seq.items():
            k = 0
            n = len(queue)
            while k < n and queue[k].idx < horizon:
                k += 1
            if k:
                del queue[:k]
                acq_trim[skey] = k
        if acq_trim:
            cursors = self._ctx_cursor
            for ctx, cur in cursors.items():
                k = acq_trim.get((ctx[0], ctx[1], ctx[3]))
                if k:
                    cursors[ctx] = cur - k if cur > k else 0
        keep = len(self.threads_with_lock) + 1
        excess = len(self.cs_log) - keep
        if excess > 0:
            del self.cs_log[:excess]
            self.cs_log_base += excess
        self._evictions += 1

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> bytes:
        """Serialize the complete detector state.

        The blob captures clocks, histories, queues, closures, and
        reports — restoring and feeding the remainder of a stream
        yields exactly the reports of an uninterrupted run.  Only the
        session-table identity link is dropped (a restored detector
        re-interns event names on its next feed).
        """
        import pickle

        if self._mb:
            self._flush_checks()
        state = dict(self.__dict__)
        state.pop("_synced_tabs", None)
        # Closures serialize as their canonical clock (a plain int
        # list): backend-agnostic and numpy-free, so a blob written
        # under REPRO_KERNELS=numpy restores under python and vice
        # versa.  The numpy history mirror is likewise dropped and
        # resynced from the canonical records on restore.
        state.pop("_np", None)
        state.pop("_mb", None)
        state["_closures"] = {
            ctx: closure.canonical_clock()
            for ctx, closure in self._closures.items()
        }
        self._checkpoint_extra(state)
        return pickle.dumps((type(self).__name__, state),
                            protocol=pickle.HIGHEST_PROTOCOL)

    def _checkpoint_extra(self, state: Dict) -> None:
        """Subclass hook: rewrite derived state before pickling."""

    @classmethod
    def restore(cls, blob: bytes) -> "SPDOnline":
        """Rebuild a detector from :meth:`checkpoint` output."""
        import pickle

        kind, state = pickle.loads(blob)
        if kind != cls.__name__:
            raise ValueError(
                f"checkpoint was taken from {kind}, not {cls.__name__}"
            )
        out = cls.__new__(cls)
        out.__dict__.update(state)
        out._np = None
        if out.max_memory_events is None:
            out._init_kernel()
            if out._np is not None:
                from repro.kernels.online_np import NpOnlineState

                out._np = NpOnlineState.from_history(out._np.np,
                                                     out.cs_history)
        # Closures checkpoint as canonical clocks (current blobs) or as
        # pickled objects with an ``_owner`` backref to a shadow copy of
        # the detector (legacy blobs).  Rebuild the former under the
        # active kernel backend; rebind the latter so they track the
        # live detector rather than the frozen shadow.
        closures = {}
        for ctx, closure in out._closures.items():
            if isinstance(closure, _OnlineClosure):
                closure._owner = out
            else:
                values = closure
                closure = out._new_closure()
                closure.seed_values(values)
            closures[ctx] = closure
        out._closures = closures
        out._mb = [] if out._np is not None else None
        out._restore_extra()
        return out

    def _restore_extra(self) -> None:
        """Subclass hook: rebuild derived state after unpickling."""

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cheap counters for overhead analysis.

        - ``events``: events processed so far.
        - ``deadlock_checks``: queue entries examined by checkDeadlock.
        - ``contexts``: distinct ⟨t1, l1, t2, l2⟩ closures materialized.
        - ``acquire_entries``: total queued guarded acquires.
        - ``cs_records``: critical sections recorded.
        - ``tracked_entries``: live per-event state (records + queued
          acquires + log entries) — the quantity bounded-memory
          eviction keeps O(horizon); asserted by the memory benchmark.
        - ``evictions``: eviction sweeps performed.
        """
        if self._mb:
            self._flush_checks()
        cs_records = sum(len(v) for v in self.cs_history.values())
        acquire_entries = sum(len(v) for v in self._acq_seq.values())
        return {
            "events": self._events_seen,
            "deadlock_checks": self._deadlock_checks,
            "contexts": len(self._closures),
            "acquire_entries": acquire_entries,
            "cs_records": cs_records,
            "tracked_entries": cs_records + acquire_entries + len(self.cs_log),
            "evictions": self._evictions,
        }

    # -- batch driver ---------------------------------------------------------

    def _fresh(self) -> bool:
        return not (self._events_seen or self._thread_names)

    def run(self, trace) -> "SPDOnlineResult":
        """Stream a whole trace; accepts :class:`Trace` (string events)
        or :class:`~repro.trace.compiled.CompiledTrace` (interned fast
        path).  Both route through :meth:`feed_batch` — the same code
        path a live :class:`repro.stream.StreamSession` drives."""
        start = time.perf_counter()
        if isinstance(trace, CompiledTrace):
            self.feed_batch(trace, 0, len(trace))
        else:
            for ev in trace:
                self.step(ev)
        elapsed = time.perf_counter() - start
        return SPDOnlineResult(
            reports=list(self.reports), elapsed=elapsed, stats=self.stats()
        )


@dataclass
class SPDOnlineResult:
    """Output of a full streaming run."""

    reports: List[OnlineReport] = field(default_factory=list)
    elapsed: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def num_reports(self) -> int:
        return len(self.reports)

    def unique_bugs(self) -> Set[Tuple[str, ...]]:
        return {r.bug_id for r in self.reports}

    def deadlock_pairs(self) -> Set[Tuple[int, int]]:
        """Distinct (event, event) pairs reported (order-normalized)."""
        return {
            tuple(sorted((r.first_event, r.second_event)))  # type: ignore[misc]
            for r in self.reports
        }

    def to_reports(self, trace: Trace) -> List[DeadlockReport]:
        """Convert to the offline report type (for comparisons)."""
        out = []
        for r in self.reports:
            pat = DeadlockPattern(tuple(sorted((r.first_event, r.second_event))))
            out.append(DeadlockReport.from_pattern(trace, pat))
        return out


def spd_online(trace) -> SPDOnlineResult:
    """Run :class:`SPDOnline` over a complete trace."""
    return SPDOnline().run(trace)
