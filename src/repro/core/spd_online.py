"""SPDOnline: streaming sync-preserving deadlock prediction of size-2
deadlocks (Algorithm 4 of the paper).

The algorithm processes one event at a time and never looks back at the
raw trace.  Its state:

- ``C_t`` — the TRF timestamp of the last event of each thread;
- ``LW_x`` — the timestamp of the last write to each variable;
- critical-section history: a global append-only list of
  (acquire-ts, release-ts) entries per (thread, lock), with *per-context*
  cursors — the literal algorithm keeps one queue copy per context
  ``⟨t1, l1, t2, l2⟩`` and consumes it destructively; a shared list with
  per-context cursors is observationally identical and lighter;
- ``AcqHist⟨u⟩_{t,l,l'}`` — FIFO queues of (pred-ts, ts) for acquires of
  ``l`` by ``t`` holding ``l'``, one copy per opposing thread ``u``,
  consumed by ``checkDeadlock``;
- ``I⟨u,l',t,l⟩`` — the persistent, monotonically growing closure
  timestamp per ordered context (Proposition 4.4 reuse).

On an acquire of ``l`` by ``t`` holding ``l'``, the handler pairs the
new event against the queued acquires of every other thread ``u`` on
``l'`` holding ``l`` — the two abstract acquires form a size-2 abstract
deadlock pattern — and runs the closure check.  Queue entries that fail
to produce a deadlock are discarded forever (Corollary 4.5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.patterns import DeadlockPattern, DeadlockReport
from repro.trace.events import Event
from repro.trace.trace import Trace
from repro.vc.clock import ThreadUniverse, VectorClock


@dataclass
class _CSRecord:
    """One critical section in the global history."""

    acq_idx: int
    acq_ts: VectorClock
    rel_ts: Optional[VectorClock] = None


@dataclass
class _AcqEntry:
    """Queued acquire awaiting deadlock checks: (pred-ts, ts, index, loc)."""

    idx: int
    pred_ts: VectorClock
    ts: VectorClock
    loc: str


# Context key: the ordered abstract pattern ⟨u, l', {l}⟩ vs ⟨t, l, {l'}⟩.
_Ctx = Tuple[str, str, str, str]


class _OnlineClosure:
    """Per-context Algorithm 1 over the shared critical-section history."""

    def __init__(self, owner: "SPDOnline") -> None:
        self._owner = owner
        self._cursors: Dict[Tuple[str, str], int] = {}
        self._last: Dict[Tuple[str, str], Optional[_CSRecord]] = {}
        self.clock = VectorClock(0)

    def compute(self, seed: VectorClock) -> VectorClock:
        """Fix-point closure starting from ``clock ⊔ seed``."""
        t_clock = self.clock
        t_clock.join_with(seed)
        owner = self._owner
        changed = True
        while changed:
            changed = False
            for lock in owner.known_locks:
                join = self._advance_lock(lock, t_clock)
                if join is not None and t_clock.join_with(join):
                    changed = True
        return t_clock

    def _advance_lock(self, lock: str, t_clock: VectorClock) -> Optional[VectorClock]:
        owner = self._owner
        candidates: List[_CSRecord] = []
        for thread in owner.threads_with_lock.get(lock, ()):
            key = (thread, lock)
            records = owner.cs_history.get(key)
            if not records:
                continue
            cursor = self._cursors.get(key, 0)
            last = self._last.get(key)
            while cursor < len(records) and records[cursor].acq_ts.leq(t_clock):
                last = records[cursor]
                cursor += 1
            self._cursors[key] = cursor
            self._last[key] = last
            if last is not None:
                candidates.append(last)
        if len(candidates) <= 1:
            return None
        latest = max(candidates, key=lambda r: r.acq_idx)
        join: Optional[VectorClock] = None
        for rec in candidates:
            if rec is latest or rec.rel_ts is None or rec.rel_ts.leq(t_clock):
                continue
            if join is None:
                join = rec.rel_ts.copy()
            else:
                join.join_with(rec.rel_ts)
        return join


@dataclass
class OnlineReport:
    """A deadlock declared by the streaming analysis."""

    first_event: int
    second_event: int
    context: _Ctx
    locations: Tuple[str, str]

    @property
    def bug_id(self) -> Tuple[str, ...]:
        return tuple(sorted(self.locations))


class SPDOnline:
    """Streaming detector; feed events with :meth:`step`.

    Example::

        det = SPDOnline()
        for ev in trace:
            det.step(ev)
        print(det.reports)
    """

    def __init__(self) -> None:
        self.universe = ThreadUniverse()
        self._clocks: Dict[str, VectorClock] = {}
        self._last_write: Dict[str, VectorClock] = {}
        self._held: Dict[str, List[str]] = {}
        # Shared critical-section history (per thread, lock), plus the
        # open-acquire stack used to fill release timestamps.
        self.cs_history: Dict[Tuple[str, str], List[_CSRecord]] = {}
        self._open_cs: Dict[Tuple[str, str], List[_CSRecord]] = {}
        self.threads_with_lock: Dict[str, List[str]] = {}
        self.known_locks: List[str] = []
        self._known_threads: List[str] = []
        # AcqHist: shared per-(thread, lock, held-lock) acquire lists with
        # per-context cursors (equivalent to the per-opposing-thread queue
        # copies of Algorithm 4, but robust to threads appearing later).
        self._acq_seq: Dict[Tuple[str, str, str], List[_AcqEntry]] = {}
        self._ctx_cursor: Dict[_Ctx, int] = {}
        self._closures: Dict[_Ctx, _OnlineClosure] = {}
        self.reports: List[OnlineReport] = []
        self._events_seen = 0
        # Instrumentation (cheap counters; see stats()).
        self._closure_iterations = 0
        self._deadlock_checks = 0

    # -- bookkeeping -------------------------------------------------------

    def _clock_of(self, thread: str) -> VectorClock:
        c = self._clocks.get(thread)
        if c is None:
            self.universe.slot(thread)
            c = VectorClock(0)
            self._clocks[thread] = c
            self._held[thread] = []
            self._known_threads.append(thread)
        return c

    def _note_lock(self, lock: str) -> None:
        if lock not in self.threads_with_lock:
            self.threads_with_lock[lock] = []
            self.known_locks.append(lock)

    # -- event handlers (Algorithm 4) ---------------------------------------

    def step(self, event: Event) -> List[OnlineReport]:
        """Process one event; return the reports it triggered."""
        before = len(self.reports)
        t = event.thread
        clock = self._clock_of(t)
        slot = self.universe.slot(t)
        if event.is_write:
            self._last_write[event.target] = clock.copy()
            clock.tick(slot)
        elif event.is_read:
            lw = self._last_write.get(event.target)
            if lw is not None:
                clock.join_with(lw)
            clock.tick(slot)
        elif event.is_acquire:
            self._handle_acquire(event, clock, slot)
        elif event.is_release:
            clock.tick(slot)
            key = (t, event.target)
            stack = self._open_cs.get(key)
            if stack:
                rec = stack.pop()
                rec.rel_ts = clock.copy()
            held = self._held[t]
            for j in range(len(held) - 1, -1, -1):
                if held[j] == event.target:
                    del held[j]
                    break
        elif event.is_fork:
            child_clock = self._clock_of(event.target)
            clock.tick(slot)
            child_clock.join_with(clock)
        elif event.is_join:
            child_clock = self._clocks.get(event.target)
            if child_clock is not None:
                clock.join_with(child_clock)
            clock.tick(slot)
        else:  # request events carry no analysis semantics
            clock.tick(slot)
        self._events_seen += 1
        return self.reports[before:]

    def _handle_acquire(self, event: Event, clock: VectorClock, slot: int) -> None:
        t, lock = event.thread, event.target
        self._note_lock(lock)
        c_pred = clock.copy()
        clock.tick(slot)
        snapshot = clock.copy()
        # Record the critical section in the shared history.
        key = (t, lock)
        if key not in self.cs_history:
            self.cs_history[key] = []
            self.threads_with_lock[lock].append(t)
        rec = _CSRecord(acq_idx=self._events_seen, acq_ts=snapshot)
        self.cs_history[key].append(rec)
        self._open_cs.setdefault(key, []).append(rec)

        held = list(self._held[t])
        self._held[t].append(lock)
        if not held:
            return

        # Queue this acquire for future checks by opposing threads.
        entry = _AcqEntry(
            idx=self._events_seen, pred_ts=c_pred, ts=snapshot, loc=event.location
        )
        for l2 in held:
            self._acq_seq.setdefault((t, lock, l2), []).append(entry)

        # Check against queued opposing acquires: u acquired l2 holding lock.
        for l2 in held:
            for u in self._known_threads:
                if u == t:
                    continue
                queue = self._acq_seq.get((u, l2, lock))
                if not queue:
                    continue
                opp_ctx: _Ctx = (u, l2, t, lock)
                closure = self._closures.get(opp_ctx)
                if closure is None:
                    closure = _OnlineClosure(self)
                    self._closures[opp_ctx] = closure
                self._check_deadlock(queue, closure, opp_ctx, c_pred, entry)

    def _check_deadlock(
        self,
        queue: List[_AcqEntry],
        closure: _OnlineClosure,
        ctx: _Ctx,
        c_pred: VectorClock,
        new_entry: _AcqEntry,
    ) -> None:
        """The ``checkDeadlock`` helper of Algorithm 4.

        Walks the opposing acquire list from this context's cursor.
        Entries swallowed by the closure are skipped forever
        (Corollary 4.5); the first entry that survives the closure is a
        sync-preserving deadlock with ``new_entry``.
        """
        closure.clock.join_with(c_pred)
        cursor = self._ctx_cursor.get(ctx, 0)
        while cursor < len(queue):
            old = queue[cursor]
            self._deadlock_checks += 1
            t_clock = closure.compute(old.pred_ts)
            if not old.ts.leq(t_clock):
                self.reports.append(
                    OnlineReport(
                        first_event=old.idx,
                        second_event=new_entry.idx,
                        context=ctx,
                        locations=(old.loc, new_entry.loc),
                    )
                )
                break
            cursor += 1
        self._ctx_cursor[ctx] = cursor

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cheap counters for overhead analysis.

        - ``events``: events processed so far.
        - ``deadlock_checks``: queue entries examined by checkDeadlock.
        - ``contexts``: distinct ⟨t1, l1, t2, l2⟩ closures materialized.
        - ``acquire_entries``: total queued guarded acquires.
        - ``cs_records``: critical sections recorded.
        """
        return {
            "events": self._events_seen,
            "deadlock_checks": self._deadlock_checks,
            "contexts": len(self._closures),
            "acquire_entries": sum(len(v) for v in self._acq_seq.values()),
            "cs_records": sum(len(v) for v in self.cs_history.values()),
        }

    # -- batch driver ---------------------------------------------------------

    def run(self, trace: Trace) -> "SPDOnlineResult":
        start = time.perf_counter()
        for ev in trace:
            self.step(ev)
        elapsed = time.perf_counter() - start
        return SPDOnlineResult(
            reports=list(self.reports), elapsed=elapsed, stats=self.stats()
        )


@dataclass
class SPDOnlineResult:
    """Output of a full streaming run."""

    reports: List[OnlineReport] = field(default_factory=list)
    elapsed: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def num_reports(self) -> int:
        return len(self.reports)

    def unique_bugs(self) -> Set[Tuple[str, ...]]:
        return {r.bug_id for r in self.reports}

    def deadlock_pairs(self) -> Set[Tuple[int, int]]:
        """Distinct (event, event) pairs reported (order-normalized)."""
        return {
            tuple(sorted((r.first_event, r.second_event)))  # type: ignore[misc]
            for r in self.reports
        }

    def to_reports(self, trace: Trace) -> List[DeadlockReport]:
        """Convert to the offline report type (for comparisons)."""
        out = []
        for r in self.reports:
            pat = DeadlockPattern(tuple(sorted((r.first_event, r.second_event))))
            out.append(DeadlockReport.from_pattern(trace, pat))
        return out


def spd_online(trace: Trace) -> SPDOnlineResult:
    """Run :class:`SPDOnline` over a complete trace."""
    return SPDOnline().run(trace)
