"""Multi-machine fleet runner: cells over a shared work queue.

:class:`RemoteRunner` is the third point of the runner split
(InlineRunner / ProcessPoolRunner / RemoteRunner, mirroring
instrumentation-infra's local-pool / cluster-pool shape): it plugs into
the same :meth:`~repro.exp.runner._BaseRunner.run_tasks` seam, so
caching, journal replay, retry/backoff/quarantine, ``--resume``, and
drain-on-SIGINT all behave exactly as they do for the local runners —
the only thing that changes is *where* a cell executes.

Dispatch goes through a :class:`~repro.exp.fleet_queue.FleetQueue`
directory (tasks / leases / per-worker results channels — see that
module for the protocol) that ``repro fleet worker DIR`` loops consume.
Workers can be anywhere the directory is visible: the coordinator
spawns loopback subprocess workers by default (``workers=N``), and
external workers on other machines attach to the same directory and
are indistinguishable.  Results are folded back through ``on_result``
in the coordinator, so the result cache, the run journal, and the obs
rollup channel see remote cells exactly like pool cells.

Failure semantics:

- a worker that dies mid-cell stops heartbeating its lease; after
  ``lease_ttl`` seconds of silence the coordinator synthesizes the
  same ``status="error"`` a dead pool worker produces and the cell
  re-enters the normal retry path (locally spawned workers are reaped
  faster: a dead pid expires its lease immediately);
- duplicate result delivery (a retransmitting worker, an expired lease
  whose original result arrives late) is deduplicated by
  ``(cell index, attempt)`` — first record wins;
- a torn result line (worker died mid-append) is never consumed —
  per-worker channels mean it cannot corrupt other workers' records —
  and surfaces as the lease expiry it accompanies;
- SIGINT/SIGTERM drain: leased cells finish and are journaled,
  unleased task files are withdrawn, and ``--resume`` picks up the
  rest — bit-identical to an undisturbed run, which
  ``tests/test_chaos.py`` pins for every one of these fault classes.

Workers warm-start from the shared result cache
(:class:`~repro.exp.cache.ResultCache` over the blob-store root in
``queue.json``): a cell another run already computed is served from
the cache inside the worker, and fresh ``ok``/``timeout`` results are
written back, so a fleet over a shared filesystem accumulates one
content-addressed result store for all machines.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Set, Tuple

import repro.faults as faults
import repro.obs as obs
from repro.exp.cache import ResultCache
from repro.exp.fleet_queue import (
    FleetQueue,
    QueueError,
    ResultsReader,
    ResultsWriter,
    default_worker_id,
    task_name,
)
from repro.exp.runner import (
    _CACHEABLE,
    CellResult,
    CellTask,
    ProcessPoolRunner,
    _BaseRunner,
    _can_trap_signals,
    _crash_result,
    _stderr_tail,
    _timeout_result,
    _worker_main,
)

__all__ = ["RemoteRunner", "run_worker", "queue_status"]


# -- worker side --------------------------------------------------------------


def _run_leased_cell(task: CellTask, tmpdir: str, poll: float,
                     heartbeat) -> Tuple[dict, str]:
    """Execute one leased cell in a child process (full crash isolation
    + enforceable timeout, identical to one pool worker), calling
    ``heartbeat`` every poll while it runs.  Returns ``(result record,
    stderr tail)``."""
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    stem = os.path.join(tmpdir, f"{task_name(task.index, task.attempt)}")
    out_path, err_path = stem + ".json", stem + ".stderr"
    proc = ctx.Process(target=_worker_main, args=(task, out_path, err_path),
                       daemon=True)
    proc.start()
    deadline = (time.monotonic() + task.timeout
                if task.timeout is not None and task.timeout > 0 else None)
    timed_out = False
    while proc.is_alive():
        if deadline is not None and time.monotonic() >= deadline:
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():
                proc.kill()
            timed_out = True
            break
        time.sleep(poll)
        heartbeat()
    proc.join()
    tail = _stderr_tail(err_path)
    if timed_out:
        res = _timeout_result(task)
    else:
        res = ProcessPoolRunner._collect(task, out_path, proc.exitcode, tail)
    for p in (out_path, err_path):
        try:
            os.unlink(p)
        except OSError:
            pass
    return res.to_json(), tail


def run_worker(root: str, worker_id: Optional[str] = None,
               poll: float = 0.05, idle_exit: Optional[float] = None,
               max_cells: Optional[int] = None) -> int:
    """The ``repro fleet worker DIR`` loop: claim, execute, report.

    Runs until the queue's stop marker appears (or ``idle_exit``
    seconds pass with nothing claimable, or ``max_cells`` cells ran).
    Cells execute in per-cell child processes; the loop heartbeats the
    lease while a cell runs and appends the result to this worker's
    fsync'd results channel.  Returns the number of cells executed.
    """
    queue = FleetQueue(root)
    meta = queue.meta()                    # raises QueueError if not a queue
    worker_id = worker_id or default_worker_id()
    writer = ResultsWriter(queue, worker_id)
    cache_root = meta.get("cache")
    cache = ResultCache(cache_root) if cache_root else None
    obs.maybe_enable_from_env()
    cells = 0
    idle_since = time.monotonic()
    tmpdir = tempfile.mkdtemp(prefix=f"repro-fleet-{worker_id}-")
    try:
        while not queue.stopped():
            claimed_any = False
            for name in queue.list_tasks():
                if queue.stopped() or (max_cells is not None
                                       and cells >= max_cells):
                    break
                if not queue.try_claim(name, worker_id):
                    continue
                task = queue.load_task(name)
                if task is None:
                    # consumed/withdrawn between listing and claim
                    queue.release_lease(name)
                    continue
                claimed_any = True
                record = None
                if cache is not None:
                    hit = cache.get(task.key())
                    if hit is not None and hit.get("status") in _CACHEABLE:
                        obs.count("fleet.worker_cache_hits")
                        record, tail = hit, ""
                if record is None:
                    record, tail = _run_leased_cell(
                        task, tmpdir, poll, lambda: queue.heartbeat(name))
                    if (cache is not None
                            and record.get("status") in _CACHEABLE):
                        cache.put(task.key(), record)
                queue.heartbeat(name)      # result imminent: stay fresh
                writer.append(name, task.index, task.attempt, record, tail)
                cells += 1
                obs.count("fleet.worker_cells")
            if max_cells is not None and cells >= max_cells:
                break
            if claimed_any:
                idle_since = time.monotonic()
            else:
                if (idle_exit is not None
                        and time.monotonic() - idle_since >= idle_exit):
                    break
                time.sleep(poll)
    finally:
        writer.close()
        shutil.rmtree(tmpdir, ignore_errors=True)
    return cells


# -- coordinator side ---------------------------------------------------------


class RemoteRunner(_BaseRunner):
    """Dispatch cells through a shared work queue + blob store.

    Args:
        queue_dir: the queue directory (any filesystem the workers can
            see).  ``None`` creates a private temp directory — the
            loopback mode — and removes it afterwards; an explicit
            directory is left in place so external workers can attach
            and so a crashed run can be inspected.
        workers: loopback worker subprocesses to spawn (0 = rely
            entirely on externally attached ``repro fleet worker``
            loops).  Dead spawned workers are respawned while
            undispatched work remains.
        lease_ttl: seconds of heartbeat silence after which a leased
            cell is declared lost and re-enters the retry path.
        cache_dir: result-cache root advertised to workers via
            ``queue.json`` (the shared blob store).  Usually the same
            directory the coordinator's own :class:`ResultCache` uses.
        worker_poll: poll/heartbeat cadence passed to spawned workers.
    """

    poll_interval = 0.05

    #: hard ceiling on worker respawns per run (a crash-looping worker
    #: binary must not fork-bomb the coordinator).
    max_respawns = 16

    def __init__(self, queue_dir: Optional[str] = None, workers: int = 2,
                 lease_ttl: float = 10.0, cache_dir: Optional[str] = None,
                 worker_poll: float = 0.02) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.queue_dir = queue_dir
        self.workers = workers
        self.lease_ttl = lease_ttl
        self.cache_dir = cache_dir
        self.worker_poll = worker_poll
        self._stop = False

    # one worker subprocess, stdout/stderr to a log in the queue dir
    def _spawn_worker(self, root: str, wid: str) -> subprocess.Popen:
        log_dir = os.path.join(root, "workers")
        os.makedirs(log_dir, exist_ok=True)
        log = open(os.path.join(log_dir, f"{wid}.log"), "ab")
        cmd = [sys.executable, "-m", "repro", "fleet", "worker", root,
               "--id", wid, "--poll", str(self.worker_poll)]
        try:
            proc = subprocess.Popen(cmd, stdout=log, stderr=log,
                                    stdin=subprocess.DEVNULL)
        finally:
            log.close()
        obs.count("fleet.workers_spawned")
        return proc

    def _execute(self, tasks: List[CellTask], on_result) -> bool:
        results_done = 0
        self._stop = False
        old_handlers = {}
        if _can_trap_signals():
            def _on_signal(signum, frame):
                if self._stop:             # second signal: force-abort
                    raise KeyboardInterrupt
                self._stop = True

            for sig in (signal.SIGINT, signal.SIGTERM):
                old_handlers[sig] = signal.signal(sig, _on_signal)

        private_dir = self.queue_dir is None
        root = self.queue_dir or tempfile.mkdtemp(prefix="repro-fleet-")
        queue = FleetQueue(root)
        queue.init(meta={
            "cache": os.path.abspath(self.cache_dir) if self.cache_dir
            else None,
            "coordinator_pid": os.getpid(),
        })
        reader = ResultsReader(queue)
        #: (index, attempt) -> (task, task name); what's on the wire
        outstanding: Dict[Tuple[int, int], Tuple[CellTask, str]] = {}
        #: attempts already folded (result consumed OR lease expired) —
        #: the dedup set that absorbs duplicate/late deliveries
        handled: Set[Tuple[int, int]] = set()
        delayed: List[Tuple[float, CellTask]] = []   # (ready time, task)
        for task in tasks:
            outstanding[(task.index, task.attempt)] = (
                task, queue.enqueue(task))

        spawned: List[subprocess.Popen] = []
        respawns = 0
        _obs_on = obs.enabled()

        def handle(task: CellTask, res: CellResult, tail: str) -> None:
            nonlocal results_done
            _, retry = on_result(task, res, stderr_tail=tail,
                                 stop=self._stop)
            if retry is not None:
                delay, next_task = retry
                obs.event("fleet.retry", cell=task.index,
                          attempt=task.attempt, status=res.status,
                          delay=delay)
                obs.count("runner.retries")
                delayed.append((time.monotonic() + delay, next_task))
            else:
                results_done += 1

        def fold(task: CellTask, name: str, res: CellResult,
                 tail: str) -> None:
            handled.add((task.index, task.attempt))
            outstanding.pop((task.index, task.attempt), None)
            queue.release_lease(name)
            queue.remove_task(name)
            if _obs_on and res.obs:
                # fold the worker's in-memory telemetry into the
                # coordinator's log/snapshot, exactly like the pool
                if res.obs.get("spans"):
                    obs.emit_spans(res.obs["spans"])
                for cname, delta in (res.obs.get("counters") or {}).items():
                    obs.count(cname, delta)
            handle(task, res, tail)

        try:
            while outstanding or delayed:
                if self._stop:
                    # drain: the stop marker keeps workers from
                    # claiming anything new, unleased cells are
                    # withdrawn (resume re-runs them), leased cells
                    # finish and are journaled
                    if not queue.stopped():
                        queue.post_stop()
                    delayed.clear()
                    for key, (task, name) in list(outstanding.items()):
                        if queue.lease_age(name) is None:
                            queue.remove_task(name)
                            outstanding.pop(key)
                now = time.monotonic()
                if delayed:
                    ready = [d for d in delayed if d[0] <= now]
                    if ready:
                        delayed[:] = [d for d in delayed if d[0] > now]
                        for _, task in sorted(ready,
                                              key=lambda d: d[1].index):
                            outstanding[(task.index, task.attempt)] = (
                                task, queue.enqueue(task))

                # 1) consume completed results (before expiry: a result
                # that made it to disk always beats a stale lease)
                for _, rec in reader.poll():
                    key = (rec.get("index"), rec.get("attempt"))
                    if key in handled or key not in outstanding:
                        obs.count("fleet.duplicate_results")
                        continue
                    task, name = outstanding[key]
                    try:
                        res = CellResult.from_json(task.index, rec["result"])
                    except (KeyError, TypeError):
                        res = _crash_result(task, None,
                                            rec.get("stderr_tail", ""))
                    fold(task, name, res, rec.get("stderr_tail", ""))

                # 2) reap lost workers: expired heartbeats, dead pids
                for key, (task, name) in list(outstanding.items()):
                    age = queue.lease_age(name)
                    if age is None:
                        continue           # not claimed yet
                    expired = age >= self.lease_ttl
                    if not expired and spawned:
                        owner = queue.lease_owner(name)
                        pid = owner.get("pid") if owner else None
                        dead = {p.pid for p in spawned
                                if p.poll() is not None}
                        expired = pid in dead
                    if not expired:
                        continue
                    obs.count("fleet.lease_expiries")
                    detail = (f"worker lease expired after "
                              f"{age:.1f}s without a heartbeat "
                              f"(ttl {self.lease_ttl}s)")
                    res = _crash_result(task, None)
                    res.error = detail
                    fold(task, name, res, "")

                # 3) keep the loopback fleet at strength
                if self.workers and not self._stop and outstanding:
                    spawned = [p for p in spawned if p.poll() is None] + [
                        p for p in spawned if p.poll() is not None]
                    alive = [p for p in spawned if p.poll() is None]
                    want = min(self.workers, len(outstanding))
                    while (len(alive) < want
                           and len(spawned) - len(alive)
                           <= self.max_respawns):
                        wid = f"w{len(spawned)}"
                        proc = self._spawn_worker(root, wid)
                        spawned.append(proc)
                        alive.append(proc)

                faults.fire("pool_tick", done=results_done)
                if outstanding or delayed:
                    time.sleep(self.poll_interval)
        finally:
            queue.post_stop()
            deadline = time.monotonic() + 5.0
            for proc in spawned:
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            if private_dir:
                shutil.rmtree(root, ignore_errors=True)
            for sig, handler in old_handlers.items():
                signal.signal(sig, handler)
        return self._stop


def queue_status(root: str) -> dict:
    """A point-in-time summary of a queue directory (``repro fleet
    status DIR``)."""
    queue = FleetQueue(root)
    meta = queue.meta()
    tasks = queue.list_tasks()
    leases = queue.list_leases()
    results = 0
    try:
        for fn in os.listdir(queue.results_dir):
            if not fn.endswith(".jsonl"):
                continue
            with open(os.path.join(queue.results_dir, fn), "rb") as fh:
                results += sum(1 for line in fh if line.endswith(b"\n"))
    except OSError:
        pass
    return {
        "root": root,
        "cache": meta.get("cache"),
        "stopped": queue.stopped(),
        "tasks_pending": len(tasks),
        "tasks_leased": sum(1 for t in tasks if t in set(leases)),
        "results_delivered": results,
    }
