"""Declarative campaign specs: trace sources × detector configs.

A :class:`Campaign` is the unit the runner executes — the evaluation
matrix of the paper expressed as data.  It can be built directly in
Python (the perf benchmark does) or loaded from a TOML/JSON file
(:func:`load_campaign`), e.g.::

    name = "paper-tables"
    default_timeout = 120.0

    [[traces]]
    kind = "file"
    glob = "corpus/*.std"          # relative to this file

    [[traces]]
    kind = "synth"
    benchmark = "Picklock"         # a Table 1 row replica

    [[detectors]]
    name = "spd_offline"

    [[detectors]]
    name = "windowed"
    config = { window = 2000 }
    only = ["sigma*"]              # fnmatch over trace names
    retry = { max_attempts = 1 }   # opt this column out of retries

    [retry]                        # campaign-wide RetryPolicy
    max_attempts = 3               # (see repro.exp.resilience); a
    backoff = 1.0                  # detector's own retry table is
    jitter = 0.25                  # layered on top of it

Trace sources know how to *digest* themselves (the content address the
result cache keys on) and how to *load* themselves inside a worker
process; detectors are registry names plus a JSON-able config.
"""

from __future__ import annotations

import fnmatch
import glob as globlib
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exp.detectors import get_adapter


class CampaignError(Exception):
    """Malformed campaign spec."""


_SUITE_ENV_CAPS = ("REPRO_SUITE_MAX_EVENTS", "REPRO_SUITE_MAX_THREADS",
                   "REPRO_SUITE_MAX_LOCKS", "REPRO_SUITE_MAX_VARS")


@dataclass
class TraceSource:
    """One trace of the campaign matrix.

    Kinds:

    - ``file``: an on-disk STD trace (``.std`` / ``.std.gz``);
    - ``synth``: a Table 1 benchmark replica from
      :data:`repro.synth.suite.SUITE_BY_NAME` (generated in the worker);
    - ``random``: a :class:`~repro.synth.random_traces.RandomTraceConfig`
      workload (the perf benchmark's traces);
    - ``spine``: a serialized causality-spine shard
      (:func:`repro.trace.shard.save_spine`) — internal to the
      shard-and-merge pipeline (:mod:`repro.exp.shard`).
    """

    kind: str
    name: str
    path: Optional[str] = None          # kind == "file" / "spine"
    benchmark: Optional[str] = None     # kind == "synth"
    params: Dict = field(default_factory=dict)  # kind == "random"

    def __post_init__(self) -> None:
        if self.kind not in ("file", "synth", "random", "spine"):
            raise CampaignError(f"unknown trace kind {self.kind!r}")
        if self.kind in ("file", "spine") and not self.path:
            raise CampaignError(f"trace {self.name!r}: {self.kind} kind needs a path")
        if self.kind == "synth" and not self.benchmark:
            raise CampaignError(f"trace {self.name!r}: synth kind needs a benchmark")

    def digest(self) -> str:
        """Content address of the trace (what the cache keys on).

        Files hash their bytes; generated sources hash the generator
        identity and every knob that affects the emitted events (for
        suite replicas that includes the scaling-cap environment).
        """
        h = hashlib.sha256()
        if self.kind in ("file", "spine"):
            with open(self.path, "rb") as fh:
                for chunk in iter(lambda: fh.read(1 << 20), b""):
                    h.update(chunk)
        elif self.kind == "synth":
            caps = {k: os.environ.get(k) for k in _SUITE_ENV_CAPS}
            h.update(json.dumps(["synth", self.benchmark, caps],
                                sort_keys=True).encode())
        else:
            h.update(json.dumps(["random", self.params],
                                sort_keys=True).encode())
        return h.hexdigest()

    def load(self):
        """Materialize the trace (called inside the worker process)."""
        if self.kind == "file":
            from repro.trace.compiled import load_compiled_trace

            return load_compiled_trace(self.path, name=self.name)
        if self.kind == "spine":
            from repro.trace.shard import load_spine

            return load_spine(self.path)
        if self.kind == "synth":
            from repro.synth.suite import SUITE_BY_NAME, build_benchmark
            from repro.trace.compiled import compile_trace

            spec = SUITE_BY_NAME.get(self.benchmark)
            if spec is None:
                raise CampaignError(f"unknown suite benchmark {self.benchmark!r}")
            return compile_trace(build_benchmark(spec), name=self.name)
        from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
        from repro.trace.compiled import compile_trace

        return compile_trace(
            generate_random_trace(RandomTraceConfig(**self.params)),
            name=self.name,
        )

    def to_json(self) -> dict:
        out = {"kind": self.kind, "name": self.name}
        if self.path:
            out["path"] = self.path
        if self.benchmark:
            out["benchmark"] = self.benchmark
        if self.params:
            out["params"] = self.params
        return out


@dataclass
class DetectorSpec:
    """One detector column: registry name + config + cell policy.

    ``retry`` is a raw :class:`~repro.exp.resilience.RetryPolicy` spec
    dict; it layers over the campaign-level policy field by field (the
    effective policy is resolved in :meth:`Campaign.cells`).
    """

    name: str
    id: str = ""                        # display id; defaults to name
    config: Dict = field(default_factory=dict)
    timeout: Optional[float] = None     # None = campaign default
    repeats: Optional[int] = None       # None = campaign default
    only: List[str] = field(default_factory=list)  # fnmatch over trace names
    retry: Optional[Dict] = None        # RetryPolicy overrides

    def __post_init__(self) -> None:
        try:
            get_adapter(self.name)      # fail fast on unknown detectors
        except KeyError as exc:
            raise CampaignError(exc.args[0]) from None
        if self.timeout is not None and self.timeout <= 0:
            raise CampaignError(
                f"detector {self.name!r}: timeout must be positive "
                "(omit it for no timeout)"
            )
        if self.retry is not None:
            from repro.exp.resilience import RetryPolicy

            try:                        # fail fast on a bad spec
                RetryPolicy.from_json(self.retry)
            except ValueError as exc:
                raise CampaignError(
                    f"detector {self.name!r}: {exc}") from None
        if not self.id:
            self.id = self.name

    def applies_to(self, trace_name: str) -> bool:
        return not self.only or any(
            fnmatch.fnmatchcase(trace_name, pat) for pat in self.only
        )

    def to_json(self) -> dict:
        out = {"name": self.name, "id": self.id}
        if self.config:
            out["config"] = self.config
        if self.timeout is not None:
            out["timeout"] = self.timeout
        if self.repeats is not None:
            out["repeats"] = self.repeats
        if self.only:
            out["only"] = self.only
        if self.retry is not None:
            out["retry"] = self.retry
        return out


@dataclass
class Campaign:
    """The full matrix: every applicable (trace, detector) pair."""

    name: str
    traces: List[TraceSource] = field(default_factory=list)
    detectors: List[DetectorSpec] = field(default_factory=list)
    default_timeout: Optional[float] = 120.0
    default_repeats: int = 1
    include_stats: bool = True          # implicit Table 1 stats cell per trace
    retry: Optional[Dict] = None        # campaign-wide RetryPolicy spec
    obs: Optional[Dict] = None          # telemetry: {"enabled": bool}

    def __post_init__(self) -> None:
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise CampaignError("default_timeout must be positive "
                                "(use None for no timeout)")
        if self.obs is not None:
            bad = set(self.obs) - {"enabled"}
            if bad:
                raise CampaignError(
                    f"unknown [obs] keys {sorted(bad)} (options: enabled)")
            if not isinstance(self.obs.get("enabled", True), bool):
                raise CampaignError("[obs] enabled must be a boolean")
        if self.retry is not None:
            from repro.exp.resilience import RetryPolicy

            try:
                RetryPolicy.from_json(self.retry)
            except ValueError as exc:
                raise CampaignError(str(exc)) from None
        names = [t.name for t in self.traces]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise CampaignError(f"duplicate trace names: {sorted(dupes)}")
        ids = [d.id for d in self.detectors]
        dupes = {i for i in ids if ids.count(i) > 1}
        if dupes:
            raise CampaignError(
                f"duplicate detector ids: {sorted(dupes)} (set 'id' to disambiguate)"
            )

    def effective_retry(self, det: DetectorSpec):
        """The resolved retry policy for one detector column: its
        ``retry`` table layered over the campaign's (None when neither
        sets one — the runner keeps classic single-attempt statuses)."""
        if self.retry is None and det.retry is None:
            return None
        from repro.exp.resilience import RetryPolicy

        base = (RetryPolicy.from_json(self.retry)
                if self.retry is not None else None)
        if det.retry is None:
            return base
        return RetryPolicy.from_json(det.retry, base=base)

    def cells(self) -> List["CellTask"]:
        """The deterministic cell list: trace-major, detector-minor,
        with the implicit ``stats`` cell first in each trace group."""
        from repro.exp.runner import CellTask

        columns = list(self.detectors)
        # match by name *or* id: a detector merely id'd "stats" must
        # not collide with the injected column either
        if self.include_stats and not any(
            d.name == "stats" or d.id == "stats" for d in columns
        ):
            columns.insert(0, DetectorSpec(name="stats", repeats=1))
        tasks: List[CellTask] = []
        policies = {d.id: self.effective_retry(d) for d in columns}
        for trace in self.traces:
            digest = trace.digest()
            for det in columns:
                if not det.applies_to(trace.name):
                    continue
                tasks.append(CellTask(
                    index=len(tasks),
                    trace=trace,
                    trace_digest=digest,
                    detector=det,
                    timeout=det.timeout if det.timeout is not None
                    else self.default_timeout,
                    repeats=det.repeats if det.repeats is not None
                    else self.default_repeats,
                    retry=policies[det.id],
                ))
        return tasks

    def to_json(self) -> dict:
        out = {
            "name": self.name,
            "default_timeout": self.default_timeout,
            "default_repeats": self.default_repeats,
            "traces": [t.to_json() for t in self.traces],
            "detectors": [d.to_json() for d in self.detectors],
        }
        if self.retry is not None:
            out["retry"] = self.retry
        if self.obs is not None:
            out["obs"] = self.obs
        return out

    @property
    def obs_enabled(self) -> bool:
        """Does the campaign itself opt into telemetry (``[obs]``)?"""
        return bool(self.obs) and bool(self.obs.get("enabled", True))


def _trace_name_for_path(path: str) -> str:
    base = os.path.basename(path)
    for suffix in (".std.gz", ".std", ".gz"):
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return base


def _parse_traces(entries, base_dir: str) -> List[TraceSource]:
    sources: List[TraceSource] = []
    for entry in entries:
        kind = entry.get("kind", "file")
        if kind == "file":
            paths = []
            if "glob" in entry:
                pattern = os.path.join(base_dir, entry["glob"])
                paths = sorted(globlib.glob(pattern))
                if not paths:
                    raise CampaignError(f"glob matched no traces: {entry['glob']!r}")
            elif "path" in entry:
                paths = [os.path.join(base_dir, entry["path"])]
            else:
                raise CampaignError("file trace needs 'path' or 'glob'")
            for p in paths:
                sources.append(TraceSource(
                    kind="file",
                    name=entry.get("name") or _trace_name_for_path(p),
                    path=p,
                ))
        elif kind == "synth":
            if "suite" in entry:
                from repro.synth.suite import resolve_suite

                for bench in resolve_suite(entry["suite"]):
                    sources.append(TraceSource(kind="synth", name=bench,
                                               benchmark=bench))
            elif "benchmark" in entry:
                bench = entry["benchmark"]
                sources.append(TraceSource(
                    kind="synth", name=entry.get("name") or bench,
                    benchmark=bench,
                ))
            else:
                raise CampaignError("synth trace needs 'benchmark' or 'suite'")
        elif kind == "spine":
            # Spine sources only make sense inside the shard pipeline
            # (the _spd_shard cells it generates); a normal detector
            # cannot consume one.
            raise CampaignError(
                "trace kind 'spine' is internal to the shard-and-merge "
                "pipeline (repro.exp.shard) and cannot be used in a "
                "campaign file"
            )
        elif kind == "random":
            if "name" not in entry:
                raise CampaignError("random trace needs a 'name'")
            # accept both spellings so a campaign embedded in a
            # run.json (which serializes 'params') round-trips
            sources.append(TraceSource(
                kind="random", name=entry["name"],
                params=dict(entry.get("config") or entry.get("params") or {}),
            ))
        else:
            raise CampaignError(f"unknown trace kind {kind!r}")
    return sources


def load_campaign(path: str) -> Campaign:
    """Load a campaign file (``.toml`` or ``.json``).

    Relative trace paths/globs resolve against the campaign file's
    directory, so campaign files are position-independent.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if path.endswith(".json"):
        try:
            data = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{path}: invalid JSON: {exc}") from None
    else:
        try:
            import tomllib
        except ImportError as exc:                      # Python < 3.11
            raise CampaignError(
                "TOML campaigns need Python >= 3.11 (tomllib); "
                "use the JSON form instead"
            ) from exc
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise CampaignError(f"{path}: invalid TOML: {exc}") from None

    base_dir = os.path.dirname(os.path.abspath(path))
    try:
        detectors = [
            DetectorSpec(
                name=d["name"],
                id=d.get("id", ""),
                config=dict(d.get("config", {})),
                timeout=d.get("timeout"),
                repeats=d.get("repeats"),
                only=list(d.get("only", [])),
                retry=dict(d["retry"]) if "retry" in d else None,
            )
            for d in data.get("detectors", [])
        ]
    except KeyError as exc:
        raise CampaignError(f"detector entry missing {exc}") from None
    campaign = Campaign(
        name=data.get("name") or _trace_name_for_path(path),
        traces=_parse_traces(data.get("traces", []), base_dir),
        detectors=detectors,
        default_timeout=data.get("default_timeout", 120.0),
        default_repeats=int(data.get("default_repeats", 1)),
        include_stats=bool(data.get("include_stats", True)),
        retry=dict(data["retry"]) if "retry" in data else None,
        obs=dict(data["obs"]) if "obs" in data else None,
    )
    if not campaign.traces:
        raise CampaignError(f"campaign {campaign.name!r} has no traces")
    if not campaign.detectors:
        raise CampaignError(f"campaign {campaign.name!r} has no detectors")
    return campaign
