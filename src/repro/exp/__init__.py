"""``repro.exp`` — parallel experiment orchestration.

The paper's evaluation is a detector×benchmark matrix (Tables 1-2);
this package runs such matrices as *campaigns*:

- :mod:`repro.exp.campaign` — declarative campaign specs (Python API
  plus TOML/JSON files): trace sources × detector configs, timeouts,
  repetition counts;
- :mod:`repro.exp.detectors` — the detector registry mapping campaign
  names (``spd_offline``, ``spd_online``, ``fasttrack``, ...) to
  normalized adapters;
- :mod:`repro.exp.runner` — a sharded multiprocess runner with
  per-cell wall-clock timeouts and crash isolation, plus a serial
  in-process runner with identical result semantics;
- :mod:`repro.exp.cache` — a content-addressed result cache keyed by
  (trace digest, detector, config, code version), so re-running a
  campaign only executes changed cells;
- :mod:`repro.exp.report` — paper-style Table 1 / Table 2 emitters
  (Markdown + JSON) and a run-to-run diff;
- :mod:`repro.exp.resilience` — the fault-tolerance layer: crash-safe
  run journal + resume, declarative retry/backoff policies, and
  quarantine for cells that exhaust their retries;
- :mod:`repro.exp.fleet` — the multi-machine runner: cells dispatched
  through a shared-directory work queue (:mod:`repro.exp.fleet_queue`)
  to ``repro fleet worker`` loops, results folded back through the
  same journal/retry path, bit-identical to the local runners.

The CLI front door is ``repro-deadlock bench run|report|diff``.
"""

from repro.exp.cache import ResultCache, cell_key, code_version
from repro.exp.campaign import (
    Campaign,
    CampaignError,
    DetectorSpec,
    TraceSource,
    load_campaign,
)
from repro.exp.resilience import (
    JournalState,
    RetryPolicy,
    RunJournal,
    journal_key,
    locate_journal,
)
from repro.exp.runner import CellResult, CellTask, InlineRunner, ProcessPoolRunner, RunResult
from repro.exp.report import diff_runs, render_markdown, run_to_json

#: lazily re-exported from repro.exp.shard (PEP 562): shard.py imports
#: the whole analysis engine at module level, and eagerly pulling it in
#: here would slow every ProcessPoolRunner worker spawn — the rest of
#: this package defers heavy imports the same way.
_SHARD_EXPORTS = frozenset({
    "ShardError",
    "ShardPlan",
    "ShardedCampaignRunner",
    "merge_shard_outputs",
    "spd_offline_sharded",
    "split_trace",
})

#: same deferral for the fleet (it pulls in subprocess/multiprocessing
#: plumbing no in-process campaign needs).
_FLEET_EXPORTS = frozenset({"RemoteRunner", "FleetQueue"})


def __getattr__(name):
    if name in _SHARD_EXPORTS:
        from repro.exp import shard

        return getattr(shard, name)
    if name in _FLEET_EXPORTS:
        from repro.exp import fleet, fleet_queue

        return getattr(fleet, name, None) or getattr(fleet_queue, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Campaign",
    "CampaignError",
    "CellResult",
    "CellTask",
    "DetectorSpec",
    "FleetQueue",
    "InlineRunner",
    "JournalState",
    "ProcessPoolRunner",
    "RemoteRunner",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "RunResult",
    "ShardError",
    "ShardPlan",
    "ShardedCampaignRunner",
    "TraceSource",
    "cell_key",
    "code_version",
    "diff_runs",
    "journal_key",
    "load_campaign",
    "locate_journal",
    "merge_shard_outputs",
    "render_markdown",
    "run_to_json",
    "spd_offline_sharded",
    "split_trace",
]
