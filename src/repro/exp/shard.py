"""Shard-and-merge SPDOffline: split a trace into per-context shards,
fan them across worker processes, merge cell outputs bit-identically.

The paper's analyses are linear-time and per-context independent: every
simple cycle of the abstract lock graph lives inside one weakly
connected component ("lock context"), and every abstract-pattern check
(Algorithm 2) runs against a fresh closure engine.  This module turns
that independence into a scale-out pipeline on top of the PR-2
machinery:

- **split** (:func:`split_trace`): one pass builds the ALG in interned
  form, partitions its nodes into contexts, groups threads into
  *causally independent components*
  (:func:`repro.trace.shard.causality_components` — connected via
  shared locks, reads-from edges, or fork/join; closures provably
  never cross them), and projects each component onto its own
  *causality spine* — fork/join edges, rf pairs, and shared-lock
  critical sections; thread-local lock traffic, requests, initial
  reads, and unobserved writes are dropped.  Each shard is one
  component's event columns; per-worker memory is bounded by the
  largest component's spine, not the trace.
- **map** (:class:`~repro.exp.runner.ProcessPoolRunner` over
  ``_spd_shard`` cells): each component's contexts are balanced into
  at most ``jobs`` cells — the ALG subgraphs travel in the cell
  config, the sub-spine travels by path — with the usual per-cell
  wall-clock timeouts, crash isolation, and content-addressed caching
  (spine digest × contexts × code version).
- **reduce** (:func:`merge_shard_outputs`): per-context cycle counts
  and pattern verdicts are merged back into one
  :class:`~repro.core.spd_offline.SPDOfflineResult`.  Cycles are
  enumerated per component with globally-ascending starts, so sorting
  pattern records by ``(start node, per-component sequence)``
  reproduces the serial engine's exact enumeration — and therefore
  report — order.  Event indices come back in original-trace
  coordinates.

``tests/test_shard_differential.py`` pins bit-identity of the whole
pipeline against the serial engine on the corpus and hundreds of
randomized traces, serial and ``-j 2``.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro.kernels as kernels
import repro.obs as obs
from repro.core.alg import (
    alg_components,
    build_alg_ids,
    cycle_is_abstract_pattern,
    enumerate_subgraph_cycles,
)
from repro.core.closure import SPClosureEngine
from repro.core.patterns import (
    AbstractDeadlockPattern,
    DeadlockPattern,
    DeadlockReport,
)
from repro.core.spd_offline import SPDOfflineResult, check_pattern_sequences
from repro.exp.cache import ResultCache, cell_key, detector_code_version
from repro.exp.campaign import Campaign, DetectorSpec, TraceSource
from repro.exp.runner import (
    STATUS_OK,
    STATUS_TIMEOUT,
    CellResult,
    InlineRunner,
    ProcessPoolRunner,
    RunResult,
)
from repro.locks.abstract import AbstractAcquire, AbstractAcquireIds
from repro.trace.shard import (
    Spine,
    build_component_spines,
    causality_components,
    save_spine,
    spine_masks,
)
from repro.trace.trace import Trace, as_trace

#: detector registry names the sharded campaign runner reroutes.
SHARDABLE_DETECTORS = ("spd_offline",)


class ShardError(RuntimeError):
    """A shard cell failed (crash or timeout); carries the cell results."""

    def __init__(self, message: str, results: Sequence[CellResult] = ()) -> None:
        super().__init__(message)
        self.results = list(results)

    @property
    def timed_out(self) -> bool:
        return any(r.status == STATUS_TIMEOUT for r in self.results)


# -- split --------------------------------------------------------------------


@dataclass
class ShardPlan:
    """Everything the map/reduce phases need for one trace.

    ``spines`` maps causality-component label -> that component's
    sub-spine.  ``cells`` are JSON-able shard configs, each bound to
    one component: ``{"component": c, "contexts": [...]}`` where every
    context carries its ALG subgraph — ``nodes`` as ``[global id,
    thread id, lock id, held lock ids (sorted), event indices]`` rows
    in ascending global-id order (full-trace held sets, so the
    worker's pattern filter matches the serial engine's) and ``edges``
    as local index pairs.
    """

    trace: Trace
    spines: Dict[int, Spine]
    cells: List[Dict]
    num_alg_nodes: int
    num_contexts: int

    @property
    def num_components(self) -> int:
        return len(self.spines)


def _context_weight(ctx: Dict) -> int:
    return sum(len(row[4]) for row in ctx["nodes"])


def _balanced_bins(contexts: List[Dict], bins: int) -> List[List[Dict]]:
    """Greedy weight balancing of one component's contexts into at most
    ``bins`` cells (deterministic; bin/contents order is stable)."""
    if bins <= 1 or len(contexts) <= 1:
        return [contexts]
    order = sorted(range(len(contexts)),
                   key=lambda i: (-_context_weight(contexts[i]), i))
    loads = [0] * min(bins, len(contexts))
    packed: List[List[int]] = [[] for _ in loads]
    for i in order:
        b = loads.index(min(loads))
        packed[b].append(i)
        loads[b] += _context_weight(contexts[i]) + 1
    return [[contexts[i] for i in sorted(group)] for group in packed if group]


def split_trace(trace, jobs: Optional[int] = None) -> ShardPlan:
    """The streaming splitter: trace -> per-component spines + contexts.

    With ``jobs`` given, each component's contexts are balanced into at
    most ``jobs`` cells (one closure engine per cell); without it,
    every context gets its own cell.
    """
    trace = as_trace(trace)
    acquires, graph = build_alg_ids(trace)
    adjacency = graph.adjacency()
    masks = spine_masks(trace.index)
    thread_comp = causality_components(trace.index, shared=masks[0])
    by_comp: Dict[int, List[Dict]] = {}
    num_contexts = 0
    for comp in alg_components(graph):
        local = {g: i for i, g in enumerate(comp)}
        edges = sorted(
            (local[g], local[j]) for g in comp for j in adjacency[g]
        )
        nodes = [
            [g, acquires[g].thread, acquires[g].lock,
             sorted(acquires[g].held), list(acquires[g].events)]
            for g in comp
        ]
        # Every context lives inside exactly one causality component:
        # adjacent ALG nodes share a lock, and sharing a lock connects
        # the threads.
        label = thread_comp[acquires[comp[0]].thread]
        by_comp.setdefault(label, []).append(
            {"nodes": nodes, "edges": [list(e) for e in edges]}
        )
        num_contexts += 1
    cells: List[Dict] = []
    for label in sorted(by_comp):
        groups = (_balanced_bins(by_comp[label], jobs) if jobs
                  else [[ctx] for ctx in by_comp[label]])
        for group in groups:
            cells.append({"component": label, "contexts": group})
    spines = build_component_spines(trace.index, thread_comp, set(by_comp),
                                    masks=masks)
    return ShardPlan(
        trace=trace,
        spines=spines,
        cells=cells,
        num_alg_nodes=graph.num_nodes,
        num_contexts=num_contexts,
    )


# -- map (worker side) --------------------------------------------------------


def _component_engine(spine: Spine, trace: Trace) -> SPClosureEngine:
    """The cell's closure engine, sharing derived state per component.

    The TRFTimestamps/CSHistories pass over a component's sub-spine is
    identical for every cell of that component (ROADMAP lever (a)); the
    first cell to need an engine checkpoints the derived timestamps
    next to the spine file (atomically, so racing pool workers at worst
    both derive) and sibling cells restore instead of re-deriving.  The
    checkpoint's lifetime is the shard run's temp directory, and
    restore validates the format version, payload checksum, thread
    universe and event count, so a stale, bit-flipped, or torn file is
    a *logged* fall-back to a fresh derivation — never silent state
    corruption, never a crashed cell.
    """
    path = spine.path
    if path is None:
        return SPClosureEngine(trace)
    ckpt = path + ".ckpt"
    try:
        with open(ckpt, "rb") as fh:
            return SPClosureEngine.restore(trace, fh.read())
    except FileNotFoundError:
        pass                            # first cell of the component
    except (OSError, ValueError) as exc:
        import logging

        logging.getLogger(__name__).warning(
            "discarding unusable engine checkpoint %s (%s); recomputing",
            ckpt, exc)
    engine = SPClosureEngine(trace)
    try:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(ckpt), suffix=".ckpt")
        with os.fdopen(fd, "wb") as fh:
            fh.write(engine.checkpoint())
        os.replace(tmp, ckpt)
    except OSError:
        pass
    return engine


def run_shard(spine: Spine, config: Dict) -> Dict:
    """Execute one shard cell against its component sub-spine.

    For each context in the cell, phase 1 enumerates the ALG
    subgraph's simple cycles in the serial engine's canonical order
    and filters abstract patterns; phase 2 checks every pattern with
    one shared closure engine over the sub-spine (reset per check,
    exactly like the serial engine; derived per component once and
    shared through checkpoints — see :func:`_component_engine`).
    Returns a JSON-able record; all event indices are translated back
    to original-trace coordinates.
    """
    compiled = spine.compiled
    trace = compiled.to_trace()
    from_orig = spine.from_orig()
    to_orig = spine.to_orig
    max_size = config.get("max_size")

    engine: Optional[SPClosureEngine] = None
    contexts_out: List[Dict] = []
    #: (pattern record, spine-local sequences) awaiting phase 2
    pending: List[Tuple[Dict, Tuple[Tuple[int, ...], ...]]] = []
    total_witnessed = 0
    obs.count("shard.contexts", len(config["contexts"]))
    for ctx in config["contexts"]:
        rows = ctx["nodes"]
        gids = [row[0] for row in rows]
        nodes = [
            AbstractAcquireIds(thread=row[1], lock=row[2],
                               held=frozenset(row[3]), events=tuple(row[4]))
            for row in rows
        ]
        edges = [tuple(e) for e in ctx["edges"]]

        num_cycles = 0
        # per-start cycle counts, in enumeration order.  Starts ascend
        # globally in the serial engine and every start is unique to
        # one context, so the coordinator can reconstruct the *global*
        # enumeration prefix from these counts and cut a `max_cycles`
        # cap at merge time — workers never see the cap, keeping shard
        # cells cache-warm across different cap values.
        start_counts: Dict[int, int] = {}
        patterns: List[Dict] = []
        for cycle in enumerate_subgraph_cycles(len(nodes), edges,
                                               max_length=max_size):
            num_cycles += 1
            start_gid = gids[cycle[0]]
            ordinal = start_counts.get(start_gid, 0)
            start_counts[start_gid] = ordinal + 1
            if not cycle_is_abstract_pattern([nodes[i] for i in cycle]):
                continue
            named = tuple(nodes[i].to_named(compiled) for i in cycle)
            abstract = AbstractDeadlockPattern(named).canonical()
            sequences = tuple(
                tuple(from_orig[e] for e in a.events)
                for a in abstract.acquires
            )
            record = {
                "start": start_gid,
                "cycle": ordinal,        # within-start enumeration index
                "nodes": [
                    {"thread": a.thread, "lock": a.lock,
                     "held": sorted(a.held), "events": list(a.events)}
                    for a in abstract.acquires
                ],
                "witness": None,
            }
            pending.append((record, sequences))
            patterns.append(record)
        contexts_out.append({
            "num_cycles": num_cycles,
            "starts": [[s, n] for s, n in sorted(start_counts.items())],
            "patterns": patterns,
        })

    # Phase 2 over the whole cell at once: the checks are mutually
    # independent, so the numpy backend sweeps them in one lockstep
    # batch (the same kernel ``spd_offline`` dispatches to); the
    # python loop checks them in discovery order, which is exactly the
    # order the old per-cycle code used.
    if pending:
        if engine is None:
            engine = _component_engine(spine, trace)
        seqs = [s for _, s in pending]
        witnesses = None
        if kernels.backend() == "numpy":
            from repro.kernels.offline_np import check_patterns_batch

            witnesses = check_patterns_batch(trace, seqs, engine.timestamps)
        if witnesses is None:
            witnesses = [check_pattern_sequences(engine, s) for s in seqs]
        for (record, _), witness in zip(pending, witnesses):
            if witness is not None:
                total_witnessed += 1
                record["witness"] = [to_orig[e] for e in witness]
    return {"primary": total_witnessed, "contexts": contexts_out}


# -- reduce -------------------------------------------------------------------


def merge_shard_outputs(trace, outputs: Sequence[Dict],
                        max_cycles: Optional[int] = None) -> SPDOfflineResult:
    """Merge shard cell outputs into one canonical result.

    Pattern records are sorted by ``(cycle start node, per-context
    sequence)``.  Johnson's enumeration visits start nodes in globally
    ascending order and every start is unique to one context, so this
    merge is exactly the serial enumeration order — reports come out
    cell-for-cell identical to :func:`~repro.core.spd_offline.spd_offline`.

    ``max_cycles`` caps the *global* enumeration prefix exactly as the
    serial engine's cap does: workers report per-start cycle counts
    (``ctx["starts"]``) and a within-start ordinal per pattern, so the
    global position of any cycle is ``cycles_before[its start] + its
    ordinal`` — patterns at or past position ``max_cycles`` are cut
    here, and ``num_cycles`` clamps to the cap.
    """
    trace = as_trace(trace)
    contexts = [ctx for out in outputs for ctx in out["contexts"]]
    total_cycles = sum(c["num_cycles"] for c in contexts)
    cycles_before: Dict[int, int] = {}
    if max_cycles is not None:
        acc = 0
        for start, count in sorted(
                (pair[0], pair[1])
                for ctx in contexts for pair in ctx["starts"]):
            cycles_before[start] = acc
            acc += count
        total_cycles = min(total_cycles, max_cycles)
    result = SPDOfflineResult(num_cycles=total_cycles)
    records: List[Tuple[int, int, Dict]] = []
    for ctx in contexts:
        for seq, rec in enumerate(ctx["patterns"]):
            if (max_cycles is not None
                    and cycles_before[rec["start"]] + rec["cycle"]
                    >= max_cycles):
                continue            # past the serial enumeration prefix
            records.append((rec["start"], seq, rec))
    records.sort(key=lambda r: (r[0], r[1]))
    for _, _, rec in records:
        abstract = AbstractDeadlockPattern(tuple(
            AbstractAcquire(thread=n["thread"], lock=n["lock"],
                            held=frozenset(n["held"]), events=tuple(n["events"]))
            for n in rec["nodes"]
        ))
        result.num_abstract_patterns += 1
        result.num_concrete_patterns += abstract.num_concrete
        if rec["witness"] is not None:
            pattern = DeadlockPattern(tuple(rec["witness"]))
            result.reports.append(
                DeadlockReport.from_pattern(trace, pattern, abstract)
            )
    return result


# -- the whole pipeline -------------------------------------------------------


def spd_offline_sharded(
    trace,
    max_size: Optional[int] = None,
    max_cycles: Optional[int] = None,
    jobs: int = 2,
    runner=None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    with_witnesses: bool = False,
    progress: Optional[Callable[[CellResult], None]] = None,
) -> SPDOfflineResult:
    """Sharded Algorithm 3: bit-identical to :func:`spd_offline`.

    Args:
        trace: the input trace (any form :func:`as_trace` accepts).
        max_size: optional cap on deadlock size, as in the serial engine.
        max_cycles: optional cap on the *global* enumeration prefix, as
            in the serial engine.  Workers enumerate uncapped (so shard
            cells stay cache-warm across cap values) and report
            per-start cycle counts; the merge step cuts the prefix
            (:func:`merge_shard_outputs`), keeping Table-1 ``|Cyc|``
            cells bit-identical to the serial engine.
        jobs: worker processes (1 = in-process, still shard-by-shard).
        runner: override the runner (e.g. a shared pool); defaults to
            :class:`ProcessPoolRunner` for ``jobs > 1``.
        cache: optional result cache; shard cells are keyed by spine
            digest × context config × code version, so an unchanged
            trace re-analyzes for free.
        timeout: per-shard wall-clock budget in seconds.
        with_witnesses: attach Lemma 4.1 witness schedules, as in the
            serial engine.
        progress: per-shard-cell callback (``repro bench`` progress).
    """
    trace = as_trace(trace)
    start = time.perf_counter()
    with obs.span("shard.split", cat="shard", trace=trace.name):
        plan = split_trace(trace, jobs=jobs)
    if not plan.cells:
        result = SPDOfflineResult()
    else:
        with tempfile.TemporaryDirectory(prefix="repro-shard-") as tmp:
            sources = []
            source_name = {}
            for comp in sorted(plan.spines):
                path = os.path.join(tmp, f"spine{comp}.bin")
                save_spine(plan.spines[comp], path)
                name = f"comp{comp}"
                source_name[comp] = name
                sources.append(TraceSource(kind="spine", name=name, path=path))
            # Each cell binds to its component's sub-spine via `only`.
            campaign = Campaign(
                name=f"{trace.name}-shards",
                traces=sources,
                detectors=[
                    DetectorSpec(
                        name="_spd_shard", id=f"shard{k}",
                        config={"max_size": max_size,
                                "contexts": cell["contexts"]},
                        only=[source_name[cell["component"]]],
                    )
                    for k, cell in enumerate(plan.cells)
                ],
                default_timeout=timeout,
                include_stats=False,
            )
            if runner is None:
                runner = (ProcessPoolRunner(jobs=jobs) if jobs > 1
                          else InlineRunner())
            with obs.span("shard.map", cat="shard", cells=len(plan.cells),
                          components=plan.num_components):
                run = runner.run(campaign, cache=cache, progress=progress)
        bad = [r for r in run.results if r.status != STATUS_OK]
        if bad:
            raise ShardError(
                "; ".join(f"{r.detector_id}: {r.status}" for r in bad),
                results=run.results,
            )
        with obs.span("shard.merge", cat="shard", cells=len(run.results)):
            result = merge_shard_outputs(
                trace, [r.output for r in run.results],
                max_cycles=max_cycles)
    if with_witnesses:
        from repro.reorder.witness import witness_for_pattern

        for report in result.reports:
            schedule, ok = witness_for_pattern(trace, report.pattern.events)
            assert ok, "sound reports always admit a witness"
            result.witnesses[report.pattern.events] = schedule
    result.elapsed = time.perf_counter() - start
    return result


# -- campaign integration (repro bench run --shard-contexts) ------------------


class ShardedCampaignRunner:
    """Campaign runner that reroutes ``spd_offline`` cells through the
    shard-and-merge pipeline (``repro bench run --shard-contexts``).

    Every other cell runs through the wrapped pool unchanged.  A
    rerouted cell produces the *same output record* as its serial
    counterpart — ``bench diff`` between a sharded and an unsharded
    run is clean — and *reads* the serial cell's cache key, so results
    a plain run computed are reused.  Results computed *by the shard
    pipeline* are written under a key additionally versioned by the
    pipeline's own code closure (via ``_spd_shard``): an edit to the
    shard code invalidates them instead of leaving a stale record
    under the serial engine's version.  Shard sub-cells additionally
    cache under their own spine-digest keys.  The cell's ``timeout``
    becomes the per-shard
    budget; ``repeats`` is ignored for rerouted cells (one pipeline
    wall-clock is recorded).  ``max_cycles`` cells shard too: workers
    report per-start cycle counts and the merge step cuts the global
    enumeration prefix, pinned sharded ≡ serial.
    """

    def __init__(self, jobs: int = 2,
                 detectors: Sequence[str] = SHARDABLE_DETECTORS) -> None:
        self.jobs = jobs
        self.pool = ProcessPoolRunner(jobs=jobs) if jobs > 1 else InlineRunner()
        self.detectors = tuple(detectors)

    def _shardable(self, task) -> bool:
        return task.detector.name in self.detectors

    @staticmethod
    def _sharded_key(task) -> str:
        """Write-side cache key: the serial cell payload, versioned by
        both the serial detector's code closure and the shard
        pipeline's (``_spd_shard`` covers exp/shard.py, trace/shard.py,
        and everything they import)."""
        import hashlib

        version = hashlib.sha256(
            f"{detector_code_version(task.detector.name)}"
            f"+{detector_code_version('_spd_shard')}".encode()
        ).hexdigest()[:16]
        return cell_key(task.trace_digest, task.detector.name,
                        task.detector.config, task.timeout, task.repeats,
                        version=version)

    def run(self, campaign: Campaign, cache: Optional[ResultCache] = None,
            progress: Optional[Callable[[CellResult], None]] = None,
            journal=None, resume=None) -> RunResult:
        from repro.exp.resilience import journal_key

        start = time.perf_counter()
        tasks = campaign.cells()
        plain = [t for t in tasks if not self._shardable(t)]
        results: Dict[int, CellResult] = {}
        ordered_plain, stats = self.pool.run_tasks(
            plain, cache=cache, progress=progress,
            journal=journal, resume=resume)
        for res in ordered_plain:
            results[res.index] = res
        for task in tasks:
            if task.index in results:
                continue
            if stats.interrupted:
                break           # drain: rerouted cells resume later
            jkey = journal_key(task)
            if resume is not None:
                rec = resume.replayable(jkey)
                if rec is not None:
                    hit = CellResult.from_json(task.index, rec, replayed=True)
                    hit.trace_name = task.trace.name
                    hit.detector_name = task.detector.name
                    hit.detector_id = task.detector.id
                    results[task.index] = hit
                    stats.journal_replays += 1
                    if (cache is not None
                            and hit.status in (STATUS_OK, STATUS_TIMEOUT)):
                        # same backfill as _BaseRunner.run_tasks, under
                        # the shard pipeline's write-side key
                        skey = self._sharded_key(task)
                        if cache.get(skey) is None:
                            cache.put(skey, replace(
                                hit, cached=False, replayed=False).to_json())
                            stats.cache_backfills += 1
                            obs.count("cache.backfills")
                    if journal is not None and resume.path != journal.path:
                        journal.record_cell(jkey, hit.to_json())
                    if progress is not None:
                        progress(hit)
                    continue
            res = self._run_sharded_cell(task, cache, progress)
            if res.cached:
                stats.cache_hits += 1
            results[task.index] = res
            if journal is not None:
                journal.record_cell(jkey, res.to_json())
            if progress is not None:
                progress(res)
        ordered = [results[t.index] for t in tasks if t.index in results]
        return RunResult(campaign=campaign, results=ordered,
                         elapsed=time.perf_counter() - start,
                         cache_hits=stats.cache_hits,
                         journal_replays=stats.journal_replays,
                         cache_backfills=stats.cache_backfills,
                         interrupted=stats.interrupted)

    def _run_sharded_cell(self, task, cache: Optional[ResultCache],
                          progress) -> CellResult:
        from repro.exp.detectors import spd_offline_record

        base = dict(
            index=task.index,
            trace_name=task.trace.name,
            trace_digest=task.trace_digest,
            detector_name=task.detector.name,
            detector_id=task.detector.id,
            config=task.detector.config,
        )
        shard_key = self._sharded_key(task)
        if cache is not None:
            # Serve a serial run's record when one exists — but only an
            # ``ok`` one: the bit-identity argument covers outputs, not
            # timeouts, and a cell the serial engine timed out on is
            # exactly the one the per-shard budget might let finish.
            rec = cache.get(task.key())
            if rec is not None and rec.get("status") != STATUS_OK:
                rec = None
            if rec is None:
                rec = cache.get(shard_key)
            if rec is not None:
                hit = CellResult.from_json(task.index, rec, cached=True)
                hit.trace_name = task.trace.name
                hit.detector_name = task.detector.name
                hit.detector_id = task.detector.id
                return hit
        t0 = time.perf_counter()
        try:
            trace = task.trace.load()
            num_events = len(trace)
            res = spd_offline_sharded(
                trace,
                max_size=task.detector.config.get("max_size"),
                max_cycles=task.detector.config.get("max_cycles"),
                jobs=self.jobs,
                runner=self.pool,
                cache=cache,
                timeout=task.timeout,
                progress=progress,
            )
        except ShardError as exc:
            status = STATUS_TIMEOUT if exc.timed_out else "error"
            return CellResult(status=status, error=str(exc), **base)
        except Exception:
            import traceback

            return CellResult(status="error",
                              error=traceback.format_exc(limit=20), **base)
        cell = CellResult(status=STATUS_OK, output=spd_offline_record(res),
                          num_events=num_events,
                          times=[time.perf_counter() - t0], **base)
        if cache is not None:
            cache.put(shard_key, cell.to_json())
        return cell
