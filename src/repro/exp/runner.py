"""Campaign execution: a serial runner and a sharded process-pool runner.

Both runners share cell semantics — load the trace, run the detector
adapter ``repeats`` times, normalize into a :class:`CellResult` — and
differ only in *where* the cell runs:

- :class:`InlineRunner` executes cells in-process (debuggable with a
  plain ``pdb``/profiler; timeouts enforced via ``SIGALRM`` when
  running on the main thread of a Unix process, best-effort otherwise);
- :class:`ProcessPoolRunner` fans cells across ``jobs`` forked worker
  processes.  Each cell gets its own process, so a segfaulting or
  OOM-killed detector records ``status="error"`` for its cell and
  never takes down the campaign, and a wall-clock ``timeout`` is
  enforced by terminating the worker (``status="timeout"``).

Workers hand results back through per-cell JSON files written
atomically into a private temp directory — no pipe buffering limits,
and a worker that dies mid-cell simply leaves no file, which the
parent records as the crash it was.  Worker stderr is captured per
attempt, so crash diagnostics include the tool's last words.  Results
always come back in campaign cell order regardless of completion
order, so parallel and serial runs are cell-for-cell comparable
(modulo timing fields, which :meth:`CellResult.comparable` strips).

Fault tolerance (:mod:`repro.exp.resilience`) is threaded through both
runners identically:

- failed attempts retry with deterministic backoff per the cell's
  :class:`~repro.exp.resilience.RetryPolicy`; cells that exhaust their
  retries are **quarantined** (``status="quarantined"``) with the full
  attempt timeline, not silently dropped and not fatal;
- every attempt and every final outcome is appended to the run's
  crash-safe journal, and ``resume`` replays journaled outcomes so an
  interrupted run re-executes only the remainder;
- SIGINT/SIGTERM *drain*: in-flight workers finish and are journaled,
  unstarted cells are skipped, and the partial, loadable
  :class:`RunResult` comes back with ``interrupted=True``.  A second
  signal force-aborts.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import sys
import tempfile
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import repro.faults as faults
import repro.obs as obs
from repro.exp.cache import ResultCache, cell_key, detector_code_version
from repro.exp.campaign import Campaign, DetectorSpec, TraceSource
from repro.exp.detectors import get_adapter
from repro.exp.resilience import (
    NO_RETRY,
    JournalState,
    RetryPolicy,
    RunJournal,
    journal_key,
)

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
STATUS_FAULT = "fault"                   # injected fault (repro.faults)
STATUS_QUARANTINED = "quarantined"       # retries exhausted

#: statuses worth caching (errors/faults/quarantines always re-run).
_CACHEABLE = (STATUS_OK, STATUS_TIMEOUT)

#: how much captured worker stderr survives into diagnostics.
_STDERR_TAIL_BYTES = 2048


@dataclass
class CellTask:
    """One (trace, detector) cell, fully resolved and picklable."""

    index: int
    trace: TraceSource
    trace_digest: str
    detector: DetectorSpec
    timeout: Optional[float]
    repeats: int
    retry: Optional[RetryPolicy] = None
    attempt: int = 1                     # 1-based; not part of the key

    def key(self) -> str:
        # Version the key by the detector's module dependency closure,
        # not the whole package: commits that don't touch this
        # detector's code (or the shared trace pipeline) keep its
        # cached cells warm.
        return cell_key(self.trace_digest, self.detector.name,
                        self.detector.config, self.timeout, self.repeats,
                        version=detector_code_version(self.detector.name))

    @property
    def policy(self) -> RetryPolicy:
        return self.retry if self.retry is not None else NO_RETRY


@dataclass
class CellResult:
    """Outcome of one cell.

    ``status`` is about the *runner*: ``ok`` means the adapter returned
    (even if the tool reported its own failure as data, e.g. SeqCheck's
    ``F``), ``timeout`` means the wall-clock budget expired, ``error``
    means the cell crashed (exception, signal, or dead worker),
    ``fault`` means an injected fault fired (:mod:`repro.faults`), and
    ``quarantined`` means the cell kept failing until its retry budget
    ran out — ``attempts`` then carries the full timeline.
    """

    index: int
    trace_name: str
    trace_digest: str
    detector_name: str
    detector_id: str
    config: Dict
    status: str
    output: Optional[Dict] = None
    error: Optional[str] = None
    num_events: Optional[int] = None
    times: List[float] = field(default_factory=list)
    cpu_times: List[float] = field(default_factory=list)
    cached: bool = False
    replayed: bool = False               # served from the run journal
    attempts: List[dict] = field(default_factory=list)
    timeout_enforced: bool = True
    #: per-cell telemetry rollup (wall/cpu/RSS, counter deltas, spans)
    #: when :mod:`repro.obs` was enabled where the cell ran; rides the
    #: result channel so pool and inline runs report identically.
    obs: Optional[dict] = None

    @property
    def elapsed(self) -> Optional[float]:
        """Best (minimum) per-repetition wall-clock seconds."""
        return min(self.times) if self.times else None

    @property
    def cpu_elapsed(self) -> Optional[float]:
        """Best (minimum) per-repetition CPU seconds (process time of
        wherever the cell ran — its worker, or the inline process)."""
        return min(self.cpu_times) if self.cpu_times else None

    def comparable(self) -> dict:
        """Everything except timing/caching — the determinism contract
        between :class:`InlineRunner` and :class:`ProcessPoolRunner`
        (``error`` text is process-specific, so only the status and the
        output participate)."""
        return {
            "trace": self.trace_name,
            "trace_digest": self.trace_digest,
            "detector": self.detector_id,
            "config": self.config,
            "status": self.status,
            "output": self.output,
            "num_events": self.num_events,
        }

    def to_json(self) -> dict:
        out = dict(self.comparable())
        out["detector_name"] = self.detector_name
        out["error"] = self.error
        out["times"] = [round(t, 6) for t in self.times]
        out["elapsed"] = round(self.elapsed, 6) if self.times else None
        if self.cpu_times:
            out["cpu_times"] = [round(t, 6) for t in self.cpu_times]
            out["cpu_elapsed"] = round(self.cpu_elapsed, 6)
        if self.obs is not None:
            out["obs"] = self.obs
        out["cached"] = self.cached
        if self.replayed:
            out["replayed"] = True
        if self.attempts:
            out["attempts"] = self.attempts
        if not self.timeout_enforced:
            out["timeout_enforced"] = False
        return out

    @classmethod
    def from_json(cls, index: int, rec: dict, cached: bool = False,
                  replayed: bool = False) -> "CellResult":
        return cls(
            index=index,
            trace_name=rec["trace"],
            trace_digest=rec["trace_digest"],
            detector_name=rec.get("detector_name", rec["detector"]),
            detector_id=rec["detector"],
            config=rec.get("config", {}),
            status=rec["status"],
            output=rec.get("output"),
            error=rec.get("error"),
            num_events=rec.get("num_events"),
            times=list(rec.get("times", [])),
            cpu_times=list(rec.get("cpu_times", [])),
            obs=rec.get("obs"),
            cached=cached,
            replayed=replayed,
            attempts=list(rec.get("attempts", [])),
            timeout_enforced=rec.get("timeout_enforced", True),
        )


@dataclass
class RunStats:
    """Execution bookkeeping ``run_tasks`` hands back beside results."""

    cache_hits: int = 0
    journal_replays: int = 0
    #: journal replays whose record was missing from the result cache
    #: and got written back — a resumed run against a cold (or remote)
    #: cache leaves it warm, not holey.
    cache_backfills: int = 0
    interrupted: bool = False


@dataclass
class RunResult:
    """One campaign execution: ordered cell results + bookkeeping.

    ``interrupted`` runs carry only the cells that finished (or were
    replayed) before the drain — still a loadable, reportable result;
    resume picks up the rest from the journal.
    """

    campaign: Campaign
    results: List[CellResult] = field(default_factory=list)
    elapsed: float = 0.0
    cache_hits: int = 0
    journal_replays: int = 0
    cache_backfills: int = 0
    interrupted: bool = False

    @property
    def num_cells(self) -> int:
        return len(self.results)

    def counts(self) -> Dict[str, int]:
        out = {STATUS_OK: 0, STATUS_TIMEOUT: 0, STATUS_ERROR: 0,
               STATUS_FAULT: 0, STATUS_QUARANTINED: 0}
        for r in self.results:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.num_cells if self.results else 0.0

    def cell(self, trace_name: str, detector_id: str) -> Optional[CellResult]:
        for r in self.results:
            if r.trace_name == trace_name and r.detector_id == detector_id:
                return r
        return None


class _CellTimeout(Exception):
    pass


class _DrainInterrupt(BaseException):
    """SIGINT/SIGTERM during a run: drain, journal, finalize.

    Derives from ``BaseException`` so a cell's blanket ``except
    Exception`` cannot swallow the shutdown request.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"interrupted by signal {signum}")
        self.signum = signum


def run_cell(task: CellTask) -> CellResult:
    """Execute one cell in the current process (no timeout handling).

    Telemetry activates from the environment (pool workers inherit
    ``REPRO_OBS``); when active, the cell's spans plus counter/cpu/RSS
    deltas come back as the result's ``obs`` rollup — through the same
    per-cell channel as everything else, so crash isolation holds.
    """
    base = dict(
        index=task.index,
        trace_name=task.trace.name,
        trace_digest=task.trace_digest,
        detector_name=task.detector.name,
        detector_id=task.detector.id,
        config=task.detector.config,
    )
    obs.maybe_enable_from_env()
    scope = obs.cell_scope(index=task.index, trace=task.trace.name,
                           detector=task.detector.id, attempt=task.attempt)
    with scope:
        res = _run_cell_inner(task, base)
    if scope.rollup is not None:
        res.obs = scope.rollup
    return res


def _run_cell_inner(task: CellTask, base: dict) -> CellResult:
    try:
        faults.fire("cell", index=task.index, attempt=task.attempt,
                    detector=task.detector.id, trace=task.trace.name)
        adapter = get_adapter(task.detector.name)
        with obs.span("trace.source", cat="exp", trace=task.trace.name):
            trace = task.trace.load()
        num_events = len(trace)
        times: List[float] = []
        cpu_times: List[float] = []
        output: Optional[dict] = None
        for _ in range(max(1, task.repeats)):
            c0 = time.process_time()
            t0 = time.perf_counter()
            output = adapter(trace, task.detector.config)
            times.append(time.perf_counter() - t0)
            cpu_times.append(time.process_time() - c0)
        return CellResult(status=STATUS_OK, output=output,
                          num_events=num_events, times=times,
                          cpu_times=cpu_times, **base)
    except _CellTimeout:
        return CellResult(status=STATUS_TIMEOUT,
                          error=f"timed out after {task.timeout}s", **base)
    except faults.InjectedFault as exc:
        return CellResult(status=STATUS_FAULT, error=str(exc), **base)
    except Exception:
        return CellResult(status=STATUS_ERROR,
                          error=traceback.format_exc(limit=20), **base)


def _timeout_result(task: CellTask) -> CellResult:
    return CellResult(
        index=task.index,
        trace_name=task.trace.name,
        trace_digest=task.trace_digest,
        detector_name=task.detector.name,
        detector_id=task.detector.id,
        config=task.detector.config,
        status=STATUS_TIMEOUT,
        error=f"timed out after {task.timeout}s",
    )


def _crash_result(task: CellTask, exitcode: Optional[int],
                  stderr_tail: str = "") -> CellResult:
    detail = f"worker died with exit code {exitcode} before reporting a result"
    if stderr_tail:
        detail += f"; stderr tail:\n{stderr_tail}"
    return CellResult(
        index=task.index,
        trace_name=task.trace.name,
        trace_digest=task.trace_digest,
        detector_name=task.detector.name,
        detector_id=task.detector.id,
        config=task.detector.config,
        status=STATUS_ERROR,
        error=detail,
    )


def _attempt_record(task: CellTask, res: CellResult,
                    stderr_tail: str = "") -> dict:
    """One entry of a cell's attempt timeline (quarantine diagnostics)."""
    rec = {
        "attempt": task.attempt,
        "status": res.status,
        "elapsed": round(res.elapsed, 6) if res.times else None,
    }
    if res.error:
        rec["error"] = res.error[-500:]
    if stderr_tail:
        rec["stderr_tail"] = stderr_tail
    return rec


def _quarantined(res: CellResult, timeline: List[dict]) -> CellResult:
    """The terminal record of a cell that exhausted its retries."""
    last = res.error or res.status
    return replace(
        res,
        status=STATUS_QUARANTINED,
        output=None,
        error=(f"quarantined after {len(timeline)} failed attempt(s); "
               f"last failure ({res.status}): {last}"),
        attempts=list(timeline),
    )


def _restamp(res: CellResult, task: CellTask) -> CellResult:
    # The key hashes content (digest/config), not display identity —
    # restamp the current task's names so a renamed trace or re-id'd
    # detector never resurrects the labels it was first cached under.
    res.trace_name = task.trace.name
    res.detector_name = task.detector.name
    res.detector_id = task.detector.id
    return res


def _stderr_tail(path: Optional[str]) -> str:
    if not path:
        return ""
    try:
        with open(path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(max(0, size - _STDERR_TAIL_BYTES))
            return fh.read().decode("utf-8", errors="replace").strip()
    except OSError:
        return ""


class _BaseRunner:
    """Shared cache/journal-aware orchestration; subclasses run the
    misses through :meth:`_execute`."""

    def run(self, campaign: Campaign, cache: Optional[ResultCache] = None,
            progress: Optional[Callable[[CellResult], None]] = None,
            journal: Optional[RunJournal] = None,
            resume: Optional[JournalState] = None) -> RunResult:
        start = time.perf_counter()
        tasks = campaign.cells()
        ordered, stats = self.run_tasks(tasks, cache=cache, progress=progress,
                                        journal=journal, resume=resume)
        return RunResult(campaign=campaign, results=ordered,
                         elapsed=time.perf_counter() - start,
                         cache_hits=stats.cache_hits,
                         journal_replays=stats.journal_replays,
                         cache_backfills=stats.cache_backfills,
                         interrupted=stats.interrupted)

    def run_tasks(self, tasks: List[CellTask],
                  cache: Optional[ResultCache] = None,
                  progress: Optional[Callable[[CellResult], None]] = None,
                  journal: Optional[RunJournal] = None,
                  resume: Optional[JournalState] = None,
                  ) -> Tuple[List[CellResult], RunStats]:
        """Run a bare task list; returns ``(results in task order,
        run stats)``.  The seam the sharded campaign runner
        (:mod:`repro.exp.shard`) uses to mix shard cells and ordinary
        cells over one pool.

        Resolution order per cell: journal replay (``resume``) beats
        cache hit beats execution.  Fresh attempts retry/backoff per
        the task's policy; every attempt and final outcome is appended
        to ``journal``.  On SIGINT/SIGTERM the in-flight cells drain
        and the returned list holds only completed cells
        (``stats.interrupted`` set).
        """
        results: Dict[int, CellResult] = {}
        stats = RunStats()
        misses: List[CellTask] = []
        keys: Dict[int, str] = {}
        jkeys: Dict[int, str] = {}
        timelines: Dict[int, List[dict]] = {}
        for task in tasks:
            jkey = jkeys[task.index] = journal_key(task)
            if resume is not None:
                rec = resume.replayable(jkey)
                if rec is not None:
                    hit = CellResult.from_json(task.index, rec, replayed=True)
                    results[task.index] = _restamp(hit, task)
                    stats.journal_replays += 1
                    if cache is not None and hit.status in _CACHEABLE:
                        # Backfill: a replayed cell never reaches the
                        # fresh-execution cache.put below, so resuming
                        # against a cold/remote cache would leave its
                        # record permanently missing.
                        key = keys[task.index] = task.key()
                        if cache.get(key) is None:
                            clean = replace(hit, cached=False,
                                            replayed=False).to_json()
                            cache.put(key, clean)
                            stats.cache_backfills += 1
                            obs.count("cache.backfills")
                    if journal is not None and resume.path != journal.path:
                        journal.record_cell(jkey, hit.to_json())
                    if progress is not None:
                        progress(hit)
                    continue
            key = keys[task.index] = task.key()
            rec = cache.get(key) if cache is not None else None
            if rec is not None:
                hit = CellResult.from_json(task.index, rec, cached=True)
                results[task.index] = _restamp(hit, task)
                stats.cache_hits += 1
                if journal is not None:
                    journal.record_cell(jkey, hit.to_json())
                if progress is not None:
                    progress(hit)
            else:
                misses.append(task)

        def on_result(task: CellTask, res: CellResult, stderr_tail: str = "",
                      stop: bool = False):
            """Journal one attempt; returns ``(final, retry)`` where
            exactly one is set: ``final`` is the finished cell, and
            ``retry`` is ``(backoff delay, next-attempt task)``."""
            policy = task.policy
            timeline = timelines.setdefault(task.index, [])
            timeline.append(_attempt_record(task, res, stderr_tail))
            if journal is not None:
                journal.record_attempt(jkeys[task.index], task.attempt,
                                       res.status, res.error)
            if not stop and policy.should_retry(res.status, task.attempt):
                delay = policy.delay_for(jkeys[task.index], task.attempt)
                return None, (delay, replace(task, attempt=task.attempt + 1))
            if policy.exhausted(res.status, task.attempt):
                res = _quarantined(res, timeline)
            elif len(timeline) > 1:
                res.attempts = list(timeline)
            results[task.index] = res
            if cache is not None and res.status in _CACHEABLE:
                cache.put(keys[task.index], res.to_json())
            if journal is not None:
                journal.record_cell(jkeys[task.index], res.to_json())
            if progress is not None:
                progress(res)
            return res, None

        stats.interrupted = self._execute(misses, on_result)
        ordered = [results[t.index] for t in tasks if t.index in results]
        return ordered, stats

    def _execute(self, tasks: List[CellTask], on_result) -> bool:
        """Run ``tasks``, reporting each attempt through ``on_result``
        and scheduling the retries it returns; returns True when the
        run was interrupted (drained early)."""
        raise NotImplementedError


def _can_trap_signals() -> bool:
    return threading.current_thread() is threading.main_thread()


class InlineRunner(_BaseRunner):
    """Serial in-process execution with identical result semantics.

    Timeouts use ``SIGALRM`` and therefore require the main thread of a
    Unix process; anywhere else a one-time warning is emitted, the cell
    simply runs to completion, and the result records
    ``timeout_enforced: false`` so reports can flag it (pass
    ``enforce_timeouts=False`` to make the opt-out explicit, e.g. for
    perf measurements where an alarm would perturb timings).
    """

    #: process-wide: the unenforced-timeout warning fires once, not per cell.
    _warned_unenforced = False

    def __init__(self, enforce_timeouts: bool = True) -> None:
        self.enforce_timeouts = enforce_timeouts

    def _can_alarm(self) -> bool:
        return (self.enforce_timeouts
                and hasattr(signal, "SIGALRM")
                and threading.current_thread() is threading.main_thread())

    def _run_one(self, task: CellTask) -> CellResult:
        # non-positive timeouts mean "no timeout" in BOTH runners
        # (campaign validation rejects them; this guards hand-built
        # CellTasks, where setitimer(0) would silently disarm here
        # while the pool runner would kill the worker immediately)
        wants_timeout = task.timeout is not None and task.timeout > 0
        if wants_timeout and self._can_alarm():
            def _on_alarm(signum, frame):
                raise _CellTimeout()

            old = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, task.timeout)
            # The outer except catches an alarm that fires outside
            # run_cell's own handler — after it returned but before
            # the timer is disarmed, or while it was building an
            # error result.  The budget elapsed either way, so
            # "timeout" is the honest verdict.
            try:
                try:
                    res = run_cell(task)
                finally:
                    signal.setitimer(signal.ITIMER_REAL, 0.0)
                    signal.signal(signal.SIGALRM, old)
            except _CellTimeout:
                res = _timeout_result(task)
            return res
        res = run_cell(task)
        if wants_timeout and self.enforce_timeouts:
            # A timeout was requested but could not be enforced (no
            # SIGALRM / not the main thread): say so once, and mark the
            # result so downstream reports can flag it.
            res.timeout_enforced = False
            if not InlineRunner._warned_unenforced:
                InlineRunner._warned_unenforced = True
                warnings.warn(
                    "InlineRunner cannot enforce cell timeouts here "
                    "(SIGALRM needs the main thread of a Unix process); "
                    "cells run to completion and their results record "
                    "timeout_enforced: false",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return res

    def _execute(self, tasks, on_result) -> bool:
        from collections import deque

        queue = deque(tasks)
        interrupted = False
        old_handlers = {}
        trap = _can_trap_signals()
        if trap:
            def _on_signal(signum, frame):
                raise _DrainInterrupt(signum)

            for sig in (signal.SIGINT, signal.SIGTERM):
                old_handlers[sig] = signal.signal(sig, _on_signal)
        try:
            while queue:
                task = queue.popleft()
                try:
                    res = self._run_one(task)
                    _, retry = on_result(task, res)
                    if retry is not None:
                        delay, next_task = retry
                        obs.event("cell.retry", cell=task.index,
                                  attempt=task.attempt, status=res.status,
                                  delay=delay)
                        obs.count("runner.retries")
                        if delay > 0:
                            time.sleep(delay)
                        queue.appendleft(next_task)
                except _DrainInterrupt:
                    # the in-flight cell is discarded un-journaled;
                    # resume re-executes it.
                    interrupted = True
                    break
        finally:
            for sig, handler in old_handlers.items():
                signal.signal(sig, handler)
        return interrupted


def _worker_main(task: CellTask, out_path: str, err_path: str) -> None:
    try:
        fd = os.open(err_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        os.dup2(fd, 2)
        os.close(fd)
        # rebind the Python-level stream too: the inherited sys.stderr
        # may wrap something other than fd 2 (a capturing test harness,
        # an io redirect), and the tool's last words must land in the
        # err file either way
        sys.stderr = os.fdopen(2, "w", closefd=False)
    except OSError:
        pass                        # diagnostics are best-effort
    # Never write the parent's span log from a child: re-arm telemetry
    # as in-memory collection; spans travel in the result's rollup.
    obs.reset_for_worker()
    res = run_cell(task)
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(res.to_json(), fh)
    os.replace(tmp, out_path)


class ProcessPoolRunner(_BaseRunner):
    """Fan cells across ``jobs`` worker processes (one process per
    cell: full crash isolation, enforceable wall-clock timeouts)."""

    #: scheduler poll cadence; cells are detector runs measured in
    #: (fractions of) seconds, so 20ms of slack is noise.
    poll_interval = 0.02

    def __init__(self, jobs: int = 2, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._stop = False

    def _execute(self, tasks, on_result) -> bool:
        results_done = 0
        pending: List[CellTask] = list(tasks)
        delayed: List[Tuple[float, CellTask]] = []   # (ready time, task)
        running: Dict = {}   # proc -> (task, deadline, out_path, err_path)
        self._stop = False
        old_handlers = {}
        if _can_trap_signals():
            def _on_signal(signum, frame):
                if self._stop:           # second signal: force-abort
                    raise KeyboardInterrupt
                self._stop = True

            for sig in (signal.SIGINT, signal.SIGTERM):
                old_handlers[sig] = signal.signal(sig, _on_signal)
        tmpdir = tempfile.mkdtemp(prefix="repro-exp-")
        # queue-wait accounting: tasks are ready the moment they enter
        # `pending` (or their retry backoff expires)
        _obs_on = obs.enabled()
        enq_ns: Dict[Tuple[int, int], int] = {}
        if _obs_on:
            t_ready = time.monotonic_ns()
            for t in pending:
                enq_ns[(t.index, t.attempt)] = t_ready

        def handle(task: CellTask, res: CellResult, stderr_tail: str) -> None:
            nonlocal results_done
            _, retry = on_result(task, res, stderr_tail=stderr_tail,
                                 stop=self._stop)
            if retry is not None:
                delay, next_task = retry
                obs.event("pool.retry", cell=task.index,
                          attempt=task.attempt, status=res.status,
                          delay=delay)
                obs.count("runner.retries")
                delayed.append((time.monotonic() + delay, next_task))
            else:
                results_done += 1

        try:
            while running or ((pending or delayed) and not self._stop):
                if self._stop:
                    pending.clear()
                    delayed.clear()
                now = time.monotonic()
                if delayed:
                    ready = [t for t in delayed if t[0] <= now]
                    if ready:
                        delayed[:] = [t for t in delayed if t[0] > now]
                        if _obs_on:
                            t_ready = time.monotonic_ns()
                            for _, t in ready:
                                enq_ns[(t.index, t.attempt)] = t_ready
                        # deterministic re-queue order: by cell index
                        pending.extend(t for _, t in
                                       sorted(ready, key=lambda r: r[1].index))
                while pending and len(running) < self.jobs:
                    task = pending.pop(0)
                    stem = os.path.join(
                        tmpdir, f"cell-{task.index}-a{task.attempt}")
                    out_path = stem + ".json"
                    err_path = stem + ".stderr"
                    proc = self._ctx.Process(
                        target=_worker_main, args=(task, out_path, err_path),
                        daemon=True,
                    )
                    proc.start()
                    start_ns = 0
                    if _obs_on:
                        start_ns = time.monotonic_ns()
                        obs.count("pool.workers_started")
                        ready_at = enq_ns.pop((task.index, task.attempt),
                                              start_ns)
                        obs.record_span("pool.queue_wait", ready_at,
                                        start_ns, cat="pool",
                                        cell=task.index,
                                        attempt=task.attempt)
                    # mirror InlineRunner: non-positive = no timeout
                    deadline = (time.monotonic() + task.timeout
                                if task.timeout is not None and task.timeout > 0
                                else None)
                    running[proc] = (task, deadline, out_path, err_path,
                                     start_ns)

                faults.fire("pool_tick", done=results_done)
                time.sleep(self.poll_interval)
                now = time.monotonic()
                finished = []
                for proc, (task, deadline, out_path, err_path,
                           start_ns) in list(running.items()):
                    if not proc.is_alive():
                        finished.append(proc)
                    elif deadline is not None and now >= deadline:
                        proc.terminate()
                        proc.join(1.0)
                        if proc.is_alive():
                            proc.kill()
                            proc.join()
                        running.pop(proc)
                        if start_ns:
                            obs.record_span("pool.exec", start_ns,
                                            time.monotonic_ns(), cat="pool",
                                            cell=task.index, status="timeout")
                            obs.count("pool.timeouts")
                        handle(task, _timeout_result(task),
                               _stderr_tail(err_path))
                for proc in finished:
                    task, _, out_path, err_path, start_ns = running.pop(proc)
                    proc.join()
                    tail = _stderr_tail(err_path)
                    res = self._collect(task, out_path, proc.exitcode, tail)
                    if start_ns:
                        obs.record_span("pool.exec", start_ns,
                                        time.monotonic_ns(), cat="pool",
                                        cell=task.index, status=res.status)
                        if res.status == STATUS_ERROR and res.output is None:
                            obs.count("pool.worker_crashes")
                        if res.obs:
                            # the worker collected in memory; fold its
                            # spans and counter deltas into the parent's
                            # log/snapshot so run-level telemetry covers
                            # pool runs too
                            if res.obs.get("spans"):
                                obs.emit_spans(res.obs["spans"])
                            for name, delta in (res.obs.get("counters")
                                                or {}).items():
                                obs.count(name, delta)
                    handle(task, res, tail)
        finally:
            for proc in running:
                proc.kill()
                proc.join()
            shutil.rmtree(tmpdir, ignore_errors=True)
            for sig, handler in old_handlers.items():
                signal.signal(sig, handler)
        return self._stop

    @staticmethod
    def _collect(task: CellTask, out_path: str, exitcode: Optional[int],
                 stderr_tail: str = "") -> CellResult:
        try:
            with open(out_path, "r", encoding="utf-8") as fh:
                rec = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return _crash_result(task, exitcode, stderr_tail)
        if exitcode != 0:
            # result file exists but the worker still died (e.g. crash
            # during interpreter teardown) — trust the recorded result
            # only if it is complete.
            try:
                return CellResult.from_json(task.index, rec)
            except KeyError:
                return _crash_result(task, exitcode, stderr_tail)
        return CellResult.from_json(task.index, rec)
