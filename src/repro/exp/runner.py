"""Campaign execution: a serial runner and a sharded process-pool runner.

Both runners share cell semantics — load the trace, run the detector
adapter ``repeats`` times, normalize into a :class:`CellResult` — and
differ only in *where* the cell runs:

- :class:`InlineRunner` executes cells in-process (debuggable with a
  plain ``pdb``/profiler; timeouts enforced via ``SIGALRM`` when
  running on the main thread of a Unix process, best-effort otherwise);
- :class:`ProcessPoolRunner` fans cells across ``jobs`` forked worker
  processes.  Each cell gets its own process, so a segfaulting or
  OOM-killed detector records ``status="error"`` for its cell and
  never takes down the campaign, and a wall-clock ``timeout`` is
  enforced by terminating the worker (``status="timeout"``).

Workers hand results back through per-cell JSON files written
atomically into a private temp directory — no pipe buffering limits,
and a worker that dies mid-cell simply leaves no file, which the
parent records as the crash it was.  Results always come back in
campaign cell order regardless of completion order, so parallel and
serial runs are cell-for-cell comparable (modulo timing fields, which
:meth:`CellResult.comparable` strips).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exp.cache import ResultCache, cell_key, detector_code_version
from repro.exp.campaign import Campaign, DetectorSpec, TraceSource
from repro.exp.detectors import get_adapter

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"

#: statuses worth caching (errors always re-run).
_CACHEABLE = (STATUS_OK, STATUS_TIMEOUT)


@dataclass
class CellTask:
    """One (trace, detector) cell, fully resolved and picklable."""

    index: int
    trace: TraceSource
    trace_digest: str
    detector: DetectorSpec
    timeout: Optional[float]
    repeats: int

    def key(self) -> str:
        # Version the key by the detector's module dependency closure,
        # not the whole package: commits that don't touch this
        # detector's code (or the shared trace pipeline) keep its
        # cached cells warm.
        return cell_key(self.trace_digest, self.detector.name,
                        self.detector.config, self.timeout, self.repeats,
                        version=detector_code_version(self.detector.name))


@dataclass
class CellResult:
    """Outcome of one cell.

    ``status`` is about the *runner*: ``ok`` means the adapter returned
    (even if the tool reported its own failure as data, e.g. SeqCheck's
    ``F``), ``timeout`` means the wall-clock budget expired, ``error``
    means the cell crashed (exception, signal, or dead worker).
    """

    index: int
    trace_name: str
    trace_digest: str
    detector_name: str
    detector_id: str
    config: Dict
    status: str
    output: Optional[Dict] = None
    error: Optional[str] = None
    num_events: Optional[int] = None
    times: List[float] = field(default_factory=list)
    cached: bool = False

    @property
    def elapsed(self) -> Optional[float]:
        """Best (minimum) per-repetition wall-clock seconds."""
        return min(self.times) if self.times else None

    def comparable(self) -> dict:
        """Everything except timing/caching — the determinism contract
        between :class:`InlineRunner` and :class:`ProcessPoolRunner`
        (``error`` text is process-specific, so only the status and the
        output participate)."""
        return {
            "trace": self.trace_name,
            "trace_digest": self.trace_digest,
            "detector": self.detector_id,
            "config": self.config,
            "status": self.status,
            "output": self.output,
            "num_events": self.num_events,
        }

    def to_json(self) -> dict:
        out = dict(self.comparable())
        out["detector_name"] = self.detector_name
        out["error"] = self.error
        out["times"] = [round(t, 6) for t in self.times]
        out["elapsed"] = round(self.elapsed, 6) if self.times else None
        out["cached"] = self.cached
        return out

    @classmethod
    def from_json(cls, index: int, rec: dict, cached: bool = False) -> "CellResult":
        return cls(
            index=index,
            trace_name=rec["trace"],
            trace_digest=rec["trace_digest"],
            detector_name=rec.get("detector_name", rec["detector"]),
            detector_id=rec["detector"],
            config=rec.get("config", {}),
            status=rec["status"],
            output=rec.get("output"),
            error=rec.get("error"),
            num_events=rec.get("num_events"),
            times=list(rec.get("times", [])),
            cached=cached,
        )


@dataclass
class RunResult:
    """One campaign execution: ordered cell results + bookkeeping."""

    campaign: Campaign
    results: List[CellResult] = field(default_factory=list)
    elapsed: float = 0.0
    cache_hits: int = 0

    @property
    def num_cells(self) -> int:
        return len(self.results)

    def counts(self) -> Dict[str, int]:
        out = {STATUS_OK: 0, STATUS_TIMEOUT: 0, STATUS_ERROR: 0}
        for r in self.results:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.num_cells if self.results else 0.0

    def cell(self, trace_name: str, detector_id: str) -> Optional[CellResult]:
        for r in self.results:
            if r.trace_name == trace_name and r.detector_id == detector_id:
                return r
        return None


class _CellTimeout(Exception):
    pass


def run_cell(task: CellTask) -> CellResult:
    """Execute one cell in the current process (no timeout handling)."""
    base = dict(
        index=task.index,
        trace_name=task.trace.name,
        trace_digest=task.trace_digest,
        detector_name=task.detector.name,
        detector_id=task.detector.id,
        config=task.detector.config,
    )
    try:
        adapter = get_adapter(task.detector.name)
        trace = task.trace.load()
        num_events = len(trace)
        times: List[float] = []
        output: Optional[dict] = None
        for _ in range(max(1, task.repeats)):
            t0 = time.perf_counter()
            output = adapter(trace, task.detector.config)
            times.append(time.perf_counter() - t0)
        return CellResult(status=STATUS_OK, output=output,
                          num_events=num_events, times=times, **base)
    except _CellTimeout:
        return CellResult(status=STATUS_TIMEOUT,
                          error=f"timed out after {task.timeout}s", **base)
    except Exception:
        return CellResult(status=STATUS_ERROR,
                          error=traceback.format_exc(limit=20), **base)


def _timeout_result(task: CellTask) -> CellResult:
    return CellResult(
        index=task.index,
        trace_name=task.trace.name,
        trace_digest=task.trace_digest,
        detector_name=task.detector.name,
        detector_id=task.detector.id,
        config=task.detector.config,
        status=STATUS_TIMEOUT,
        error=f"timed out after {task.timeout}s",
    )


def _crash_result(task: CellTask, exitcode: Optional[int]) -> CellResult:
    return CellResult(
        index=task.index,
        trace_name=task.trace.name,
        trace_digest=task.trace_digest,
        detector_name=task.detector.name,
        detector_id=task.detector.id,
        config=task.detector.config,
        status=STATUS_ERROR,
        error=f"worker died with exit code {exitcode} before reporting a result",
    )


class _BaseRunner:
    """Shared cache-aware orchestration; subclasses run the misses."""

    def run(self, campaign: Campaign, cache: Optional[ResultCache] = None,
            progress: Optional[Callable[[CellResult], None]] = None) -> RunResult:
        start = time.perf_counter()
        tasks = campaign.cells()
        ordered, hits = self.run_tasks(tasks, cache=cache, progress=progress)
        return RunResult(campaign=campaign, results=ordered,
                         elapsed=time.perf_counter() - start, cache_hits=hits)

    def run_tasks(self, tasks: List[CellTask],
                  cache: Optional[ResultCache] = None,
                  progress: Optional[Callable[[CellResult], None]] = None,
                  ) -> Tuple[List[CellResult], int]:
        """Run a bare task list (cache-aware); returns ``(results in
        task order, cache hits)``.  The seam the sharded campaign
        runner (:mod:`repro.exp.shard`) uses to mix shard cells and
        ordinary cells over one pool."""
        results: Dict[int, CellResult] = {}
        misses: List[CellTask] = []
        keys: Dict[int, str] = {}
        for task in tasks:
            key = keys[task.index] = task.key()
            rec = cache.get(key) if cache is not None else None
            if rec is not None:
                hit = CellResult.from_json(task.index, rec, cached=True)
                # The key hashes content (digest/config), not display
                # identity — restamp the current task's names so a
                # renamed trace or re-id'd detector never resurrects
                # the labels it was first cached under.
                hit.trace_name = task.trace.name
                hit.detector_name = task.detector.name
                hit.detector_id = task.detector.id
                results[task.index] = hit
                if progress is not None:
                    progress(hit)
            else:
                misses.append(task)
        hits = len(results)

        for res in self._run_tasks(misses, progress):
            results[res.index] = res
            if cache is not None and res.status in _CACHEABLE:
                cache.put(keys[res.index], res.to_json())

        return [results[t.index] for t in tasks], hits

    def _run_tasks(self, tasks: List[CellTask],
                   progress: Optional[Callable[[CellResult], None]]):
        raise NotImplementedError


class InlineRunner(_BaseRunner):
    """Serial in-process execution with identical result semantics.

    Timeouts use ``SIGALRM`` and therefore require the main thread of a
    Unix process; anywhere else the cell simply runs to completion
    (pass ``enforce_timeouts=False`` to make that explicit, e.g. for
    perf measurements where an alarm would perturb timings).
    """

    def __init__(self, enforce_timeouts: bool = True) -> None:
        self.enforce_timeouts = enforce_timeouts

    def _can_alarm(self) -> bool:
        return (self.enforce_timeouts
                and hasattr(signal, "SIGALRM")
                and threading.current_thread() is threading.main_thread())

    def _run_tasks(self, tasks, progress):
        out = []
        for task in tasks:
            # non-positive timeouts mean "no timeout" in BOTH runners
            # (campaign validation rejects them; this guards hand-built
            # CellTasks, where setitimer(0) would silently disarm here
            # while the pool runner would kill the worker immediately)
            if task.timeout is not None and task.timeout > 0 and self._can_alarm():
                def _on_alarm(signum, frame):
                    raise _CellTimeout()

                old = signal.signal(signal.SIGALRM, _on_alarm)
                signal.setitimer(signal.ITIMER_REAL, task.timeout)
                # The outer except catches an alarm that fires outside
                # run_cell's own handler — after it returned but before
                # the timer is disarmed, or while it was building an
                # error result.  The budget elapsed either way, so
                # "timeout" is the honest verdict.
                try:
                    try:
                        res = run_cell(task)
                    finally:
                        signal.setitimer(signal.ITIMER_REAL, 0.0)
                        signal.signal(signal.SIGALRM, old)
                except _CellTimeout:
                    res = _timeout_result(task)
            else:
                res = run_cell(task)
            if progress is not None:
                progress(res)
            out.append(res)
        return out


def _worker_main(task: CellTask, out_path: str) -> None:
    res = run_cell(task)
    tmp = out_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(res.to_json(), fh)
    os.replace(tmp, out_path)


class ProcessPoolRunner(_BaseRunner):
    """Fan cells across ``jobs`` worker processes (one process per
    cell: full crash isolation, enforceable wall-clock timeouts)."""

    #: scheduler poll cadence; cells are detector runs measured in
    #: (fractions of) seconds, so 20ms of slack is noise.
    poll_interval = 0.02

    def __init__(self, jobs: int = 2, start_method: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)

    def _run_tasks(self, tasks, progress):
        results: Dict[int, CellResult] = {}
        pending = list(tasks)
        running: Dict = {}   # proc -> (task, deadline, out_path)
        tmpdir = tempfile.mkdtemp(prefix="repro-exp-")
        try:
            while pending or running:
                while pending and len(running) < self.jobs:
                    task = pending.pop(0)
                    out_path = os.path.join(tmpdir, f"cell-{task.index}.json")
                    proc = self._ctx.Process(
                        target=_worker_main, args=(task, out_path), daemon=True
                    )
                    proc.start()
                    # mirror InlineRunner: non-positive = no timeout
                    deadline = (time.monotonic() + task.timeout
                                if task.timeout is not None and task.timeout > 0
                                else None)
                    running[proc] = (task, deadline, out_path)

                time.sleep(self.poll_interval)
                now = time.monotonic()
                finished = []
                for proc, (task, deadline, out_path) in list(running.items()):
                    if not proc.is_alive():
                        finished.append(proc)
                    elif deadline is not None and now >= deadline:
                        proc.terminate()
                        proc.join(1.0)
                        if proc.is_alive():
                            proc.kill()
                            proc.join()
                        running.pop(proc)
                        res = _timeout_result(task)
                        results[task.index] = res
                        if progress is not None:
                            progress(res)
                for proc in finished:
                    task, _, out_path = running.pop(proc)
                    proc.join()
                    res = self._collect(task, out_path, proc.exitcode)
                    results[task.index] = res
                    if progress is not None:
                        progress(res)
        finally:
            for proc in running:
                proc.kill()
                proc.join()
            shutil.rmtree(tmpdir, ignore_errors=True)
        return [results[t.index] for t in tasks]

    @staticmethod
    def _collect(task: CellTask, out_path: str,
                 exitcode: Optional[int]) -> CellResult:
        try:
            with open(out_path, "r", encoding="utf-8") as fh:
                rec = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return _crash_result(task, exitcode)
        if exitcode != 0:
            # result file exists but the worker still died (e.g. crash
            # during interpreter teardown) — trust the recorded result
            # only if it is complete.
            try:
                return CellResult.from_json(task.index, rec)
            except KeyError:
                return _crash_result(task, exitcode)
        return CellResult.from_json(task.index, rec)
