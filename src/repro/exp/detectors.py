"""The campaign detector registry.

Every detector the repo ships is exposed here under a stable name with
a uniform adapter signature ``adapter(trace, config) -> dict``.  The
returned dict is the cell's *output*: JSON-serializable, deterministic
for a fixed (trace, config) pair, and carrying a ``primary`` key — the
headline number a Table 2 cell displays (deadlocks for the deadlock
predictors, races for the race detectors, warnings for the unsound
screens).

Tool *failures by design* (SeqCheck on non-well-nested traces, Dirk
hitting its own budget) are part of the paper's evaluation — Table 1
prints them as ``F``/``TO`` — so adapters report them as data
(``failed: True`` / ``timed_out: True``) rather than raising; the
runner reserves ``status="error"`` for genuine crashes.

``_sleep`` and ``_crash`` are debug detectors used by the test suite
to exercise the runner's timeout and crash isolation; they are
excluded from :func:`detector_names`.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List

import repro.obs as obs

Adapter = Callable[[object, dict], dict]

#: name -> adapter; see :func:`register` / :func:`get_adapter`.
_REGISTRY: Dict[str, Adapter] = {}

#: name -> telemetry wrapper around the registered adapter (memoized so
#: repeated get_adapter calls hand back one stable callable).
_WRAPPED: Dict[str, Adapter] = {}


def register(name: str) -> Callable[[Adapter], Adapter]:
    """Decorator registering an adapter under a campaign-file name."""
    def deco(fn: Adapter) -> Adapter:
        _REGISTRY[name] = fn
        return fn
    return deco


def _instrumented(name: str, fn: Adapter) -> Adapter:
    """The one telemetry wrapper every detector entry point runs under:
    a ``detector`` span around the adapter call.  ``functools.wraps``
    keeps ``inspect.getsource`` (and with it the per-detector cache
    versioning of :mod:`repro.exp.cache`) resolving to the adapter
    itself."""
    @functools.wraps(fn)
    def adapter(trace, config: dict) -> dict:
        with obs.span("detector", cat="detector", detector=name):
            return fn(trace, config)
    return adapter


def get_adapter(name: str) -> Adapter:
    """Resolve a registry name; raises ``KeyError`` listing options."""
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; options: {', '.join(detector_names())}"
        ) from None
    wrapped = _WRAPPED.get(name)
    if wrapped is None or wrapped.__wrapped__ is not fn:
        wrapped = _WRAPPED[name] = _instrumented(name, fn)
    return wrapped


def detector_names() -> List[str]:
    """Public detector names (debug detectors hidden)."""
    return sorted(n for n in _REGISTRY if not n.startswith("_"))


def _bug_list(bug_ids) -> List[List[str]]:
    """Canonical JSON form of a set of location-tuple bug ids."""
    return sorted([list(b) for b in bug_ids])


# -- trace characteristics (Table 1) ------------------------------------


@register("stats")
def _stats(trace, config: dict) -> dict:
    from repro.trace.stats import compute_stats

    s = compute_stats(trace)
    out = s.as_dict()
    out["primary"] = s.num_events
    return out


# -- sync-preserving deadlock prediction (the paper's tools) ------------


def spd_offline_record(res) -> dict:
    """Canonical cell record of an ``SPDOfflineResult``.

    Shared by the serial ``spd_offline`` adapter and the sharded
    pipeline's rerouted cells (:mod:`repro.exp.shard`) — their records
    must stay field-for-field identical so a sharded and an unsharded
    ``bench run`` diff clean.
    """
    return {
        "primary": res.num_deadlocks,
        "deadlocks": res.num_deadlocks,
        "cycles": res.num_cycles,
        "abstract_patterns": res.num_abstract_patterns,
        "concrete_patterns": res.num_concrete_patterns,
        "bugs": _bug_list(res.unique_bugs()),
    }


@register("spd_offline")
def _spd_offline(trace, config: dict) -> dict:
    from repro.core.spd_offline import spd_offline

    res = spd_offline(
        trace,
        max_size=config.get("max_size"),
        max_cycles=config.get("max_cycles"),
    )
    return spd_offline_record(res)


@register("spd_online")
def _spd_online(trace, config: dict) -> dict:
    from repro.core.spd_online import spd_online

    res = spd_online(trace)
    bugs = res.unique_bugs()
    return {
        "primary": len(bugs),
        "deadlocks": len(bugs),
        "reports": res.num_reports,
        "bugs": _bug_list(bugs),
    }


@register("spd_online_k")
def _spd_online_k(trace, config: dict) -> dict:
    from repro.core.spd_online_k import spd_online_k

    det = spd_online_k(trace, max_size=config.get("max_size", 3))
    bugs = {r.bug_id for r in det.k_reports}
    return {
        "primary": len(bugs),
        "deadlocks": len(bugs),
        "reports": len(det.k_reports),
        "bugs": _bug_list(bugs),
    }


@register("windowed")
def _windowed(trace, config: dict) -> dict:
    from repro.core.windowed import spd_offline_windowed

    res = spd_offline_windowed(
        trace,
        window=config.get("window", 50_000),
        overlap=config.get("overlap", 0.5),
        max_size=config.get("max_size"),
    )
    return {
        "primary": res.num_deadlocks,
        "deadlocks": res.num_deadlocks,
        "windows": res.windows,
        "bugs": _bug_list(res.unique_bugs()),
    }


# -- baselines ----------------------------------------------------------


@register("goodlock")
def _goodlock(trace, config: dict) -> dict:
    from repro.baselines.goodlock import goodlock

    res = goodlock(trace)
    return {
        "primary": res.num_warnings,
        "warnings": res.num_warnings,
        "cycles": res.num_cycles,
    }


@register("undead")
def _undead(trace, config: dict) -> dict:
    from repro.baselines.undead import undead

    res = undead(trace)
    return {
        "primary": res.num_warnings,
        "warnings": res.num_warnings,
        "dependencies": res.num_dependencies,
    }


@register("naive")
def _naive(trace, config: dict) -> dict:
    from repro.baselines.naive import naive_sp_detector

    res = naive_sp_detector(trace)
    return {
        "primary": len(res.reports),
        "deadlocks": len(res.reports),
        "patterns_checked": res.patterns_checked,
        "bugs": _bug_list({r.bug_id for r in res.reports}),
    }


@register("seqcheck")
def _seqcheck(trace, config: dict) -> dict:
    from repro.baselines.seqcheck import SeqCheckFailure, seqcheck

    try:
        res = seqcheck(
            trace,
            first_hit_per_abstract=not config.get("all_instantiations", True),
        )
    except SeqCheckFailure as exc:
        return {"primary": None, "deadlocks": None, "failed": True,
                "failure": str(exc)}
    bugs = {r.bug_id for r in res.reports}
    return {
        "primary": len(bugs),
        "deadlocks": len(bugs),
        "patterns_checked": res.patterns_checked,
        "bugs": _bug_list(bugs),
    }


@register("dirk")
def _dirk(trace, config: dict) -> dict:
    from repro.baselines.dirk import dirk

    res = dirk(
        trace,
        window=config.get("window", 10_000),
        timeout=config.get("timeout", 30.0),
    )
    bugs = {r.bug_id for r in res.reports}
    return {
        "primary": len(bugs),
        "deadlocks": len(bugs),
        "windows": res.windows,
        "timed_out": res.timed_out,
        "bugs": _bug_list(bugs),
    }


# -- race detection -----------------------------------------------------


@register("fasttrack")
def _fasttrack(trace, config: dict) -> dict:
    from repro.hb.fasttrack import fasttrack_races

    res = fasttrack_races(trace)
    return {
        "primary": res.num_races,
        "races": res.num_races,
        "racy_variables": sorted(res.racy_variables()),
    }


@register("sp_races")
def _sp_races(trace, config: dict) -> dict:
    from repro.core.races import sp_races

    res = sp_races(
        trace,
        first_hit_per_pair=config.get("first_hit_per_pair", True),
    )
    return {
        "primary": res.num_races,
        "races": res.num_races,
        "pairs_considered": res.pairs_considered,
    }


# -- shard worker (repro.exp.shard; internal, hence the underscore) -----


@register("_spd_shard")
def _spd_shard(trace, config: dict) -> dict:
    """One lock-context cell of the shard-and-merge pipeline.

    ``trace`` is a :class:`repro.trace.shard.Spine` (the ``spine``
    trace-source kind); ``config`` carries the context's ALG subgraph.
    """
    from repro.exp.shard import run_shard

    return run_shard(trace, config)


# -- debug detectors (runner tests only) --------------------------------


@register("_sleep")
def _sleep(trace, config: dict) -> dict:
    time.sleep(float(config.get("seconds", 60.0)))
    return {"primary": 0, "slept": config.get("seconds", 60.0)}


@register("_crash")
def _crash(trace, config: dict) -> dict:
    mode = config.get("mode", "exit")
    if mode == "exit":                       # simulates a segfault/OOM kill
        import os
        import sys

        # last words on stderr: pins the pool's per-cell stderr capture
        sys.stderr.write("synthetic crash: about to _exit\n")
        sys.stderr.flush()
        os._exit(int(config.get("code", 139)))
    raise RuntimeError("synthetic detector crash")
