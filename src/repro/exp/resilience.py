"""Fault-tolerant campaign execution: run journal, resume, retry policy.

A killed ``bench run`` used to forfeit every in-flight cell; a flaky
worker crash looked exactly like a poison cell.  This module gives the
runners (:mod:`repro.exp.runner`) the three pieces that fix that:

- :class:`RunJournal` — a crash-safe JSONL journal beside the result
  cache.  Every completed cell (and every retry attempt) is appended
  with flush + fsync, so the journal is a prefix-correct record of the
  run no matter where the process dies; the loader tolerates a torn
  final line.  Distinct from the cache on purpose: journal records are
  keyed *without* the code version (:func:`journal_key`), so a run
  interrupted while debugging cache-key invalidation still resumes.
- **Resume** (:meth:`RunJournal.load`): ``bench run --resume`` replays
  cells whose final outcome is journaled (``ok`` / ``timeout`` /
  ``quarantined`` — crashes and injected faults re-run, mirroring the
  cache's "errors always re-run" rule) and re-executes only the rest.
- :class:`RetryPolicy` — declarative per-campaign/per-detector retry:
  max attempts, exponential backoff with *deterministic seeded jitter*
  (two runs of the same campaign back off identically), and a
  ``retry_on`` set over the failure classes ``crash`` / ``timeout`` /
  ``fault``.  Cells that exhaust retries are *quarantined*: reported
  as their own status with full diagnostics (attempt timeline, exit
  detail, captured stderr tail) instead of aborting or silently
  degrading the campaign.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.faults as faults
import repro.obs as obs

#: journal file name, always beside the cache under the run directory.
JOURNAL_NAME = "journal.jsonl"

JOURNAL_SCHEMA = 1

#: final outcomes resume may replay; crashes/faults always re-execute.
REPLAYABLE_STATUSES = ("ok", "timeout", "quarantined")

#: retry classes — what a failed attempt is classified as.
CLASS_CRASH = "crash"        # status "error": exception, signal, dead worker
CLASS_TIMEOUT = "timeout"    # status "timeout": wall-clock budget expired
CLASS_FAULT = "fault"        # status "fault": injected fault (repro.faults)

_STATUS_CLASS = {"error": CLASS_CRASH, "timeout": CLASS_TIMEOUT,
                 "fault": CLASS_FAULT}


def failure_class(status: str) -> Optional[str]:
    """The retry class of a cell status (None for non-failures)."""
    return _STATUS_CLASS.get(status)


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry/backoff/quarantine policy for campaign cells.

    ``delay_for`` is deterministic: the jitter is seeded by ``(seed,
    cell key, attempt)``, so a re-run of the same campaign schedules
    byte-identical backoffs — chaos tests can assert timelines.
    """

    max_attempts: int = 1
    backoff: float = 0.05           # base delay before attempt 2, seconds
    backoff_factor: float = 2.0     # exponential growth per attempt
    max_backoff: float = 30.0       # delay ceiling
    jitter: float = 0.1             # +/- fraction of the delay
    seed: int = 0                   # jitter seed (deterministic)
    retry_on: Tuple[str, ...] = (CLASS_CRASH, CLASS_TIMEOUT, CLASS_FAULT)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        bad = set(self.retry_on) - {CLASS_CRASH, CLASS_TIMEOUT, CLASS_FAULT}
        if bad:
            raise ValueError(
                f"unknown retry_on classes {sorted(bad)} "
                f"(options: crash, timeout, fault)"
            )

    def should_retry(self, status: str, attempt: int) -> bool:
        """Retry after ``attempt`` (1-based) ended with ``status``?"""
        cls = failure_class(status)
        return (cls is not None and cls in self.retry_on
                and attempt < self.max_attempts)

    def exhausted(self, status: str, attempt: int) -> bool:
        """Did ``attempt`` exhaust the retry budget for ``status``?

        True only when retries were actually in play (``max_attempts >
        1``) — a policy-less campaign keeps the plain ``error`` /
        ``timeout`` statuses instead of quarantining everything.
        """
        cls = failure_class(status)
        return (cls is not None and cls in self.retry_on
                and self.max_attempts > 1 and attempt >= self.max_attempts)

    def delay_for(self, key: str, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (deterministic)."""
        delay = min(self.backoff * (self.backoff_factor ** (attempt - 1)),
                    self.max_backoff)
        if self.jitter and delay:
            rng = random.Random(f"{self.seed}:{key}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def to_json(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff": self.backoff,
            "backoff_factor": self.backoff_factor,
            "max_backoff": self.max_backoff,
            "jitter": self.jitter,
            "seed": self.seed,
            "retry_on": list(self.retry_on),
        }

    @classmethod
    def from_json(cls, data: Optional[dict],
                  base: Optional["RetryPolicy"] = None) -> "RetryPolicy":
        """Build from a spec dict, layering over ``base`` (a detector's
        ``retry`` table overrides only the fields it sets)."""
        merged = base.to_json() if base is not None else {}
        merged.update(data or {})
        if "retry_on" in merged:
            merged["retry_on"] = tuple(merged["retry_on"])
        try:
            return cls(**merged)
        except TypeError as exc:
            raise ValueError(f"bad retry policy spec: {exc}") from None


#: the do-nothing default: one attempt, classic error/timeout statuses.
NO_RETRY = RetryPolicy()


def journal_key(task) -> str:
    """The journal identity of a cell: everything the cache key hashes
    *except the code version*.  A journal must survive the exact
    situation where the cache goes cold — code edits mid-debug —
    because resume answers "which cells did this run already finish",
    not "is this result still valid for the current code"."""
    from repro.exp.cache import cell_key

    return cell_key(task.trace_digest, task.detector.name,
                    task.detector.config, task.timeout, task.repeats,
                    version="journal")


@dataclass
class JournalState:
    """Parsed journal contents (the resume input)."""

    path: str
    meta: Dict = field(default_factory=dict)
    #: journal key -> final cell record (latest wins)
    cells: Dict[str, dict] = field(default_factory=dict)
    #: journal key -> number of executed attempts
    attempts: Dict[str, int] = field(default_factory=dict)
    finalized: bool = False
    torn_lines: int = 0

    def replayable(self, key: str) -> Optional[dict]:
        """The journaled record to replay for ``key``, if its final
        status is one resume trusts."""
        rec = self.cells.get(key)
        if rec is not None and rec.get("status") in REPLAYABLE_STATUSES:
            return rec
        return None


class RunJournal:
    """Append-only JSONL journal of one campaign run.

    Records (one JSON object per line):

    - ``{"kind": "meta", ...}`` — run header (campaign name, schema);
    - ``{"kind": "attempt", "key": k, "attempt": n, "status": s, ...}``
      — one executed attempt (including the final one);
    - ``{"kind": "cell", "key": k, "result": {...}}`` — a cell's final
      outcome (what resume replays);
    - ``{"kind": "end", ...}`` — written by :meth:`finalize`; its
      absence marks an interrupted/crashed run.

    Writes are line-buffered with flush + fsync per record: a crash
    can tear at most the final line, which :meth:`load` tolerates.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None

    # -- writing -----------------------------------------------------------

    def _append(self, record: dict) -> None:
        data = json.dumps(record, sort_keys=True, separators=(",", ":"))
        torn = faults.torn_spec_for("journal_write", record)
        if self._fh is None:
            os.makedirs(os.path.dirname(os.path.abspath(self.path)),
                        exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        if torn is not None:
            keep = int(torn.get("keep", max(1, len(data) // 2)))
            self._fh.write(data[:keep])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(int(torn.get("exit_code", 23)))
        faults.fire("journal_write", kind=record.get("kind"), **{
            k: v for k, v in record.items()
            if k in ("key", "attempt", "cells") and k != "kind"
        })
        self._fh.write(data + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        obs.count("journal.writes")
        obs.count(f"journal.{record.get('kind', 'unknown')}_records")

    def start(self, campaign_name: str, resumed: bool = False) -> None:
        self._append({"kind": "meta", "schema": JOURNAL_SCHEMA,
                      "campaign": campaign_name, "resumed": resumed})

    def record_attempt(self, key: str, attempt: int, status: str,
                       error: Optional[str] = None) -> None:
        rec = {"kind": "attempt", "key": key, "attempt": attempt,
               "status": status}
        if error:
            rec["error"] = error[-500:]
        self._append(rec)

    def record_cell(self, key: str, result_record: dict) -> None:
        self._append({"kind": "cell", "key": key, "result": result_record})

    def finalize(self, cells: int, interrupted: bool = False) -> None:
        self._append({"kind": "end", "cells": cells,
                      "interrupted": interrupted})
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> JournalState:
        """Parse a journal file into a :class:`JournalState`.

        Undecodable lines (a torn tail from a crash mid-append) are
        counted, not fatal: everything fsync'd before the tear is still
        trusted, which is the whole point of the journal.
        """
        state = JournalState(path=path)
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    state.torn_lines += 1
                    continue
                kind = rec.get("kind")
                if kind == "meta":
                    state.meta = rec
                elif kind == "attempt" and "key" in rec:
                    state.attempts[rec["key"]] = (
                        state.attempts.get(rec["key"], 0) + 1
                    )
                elif kind == "cell" and "key" in rec and "result" in rec:
                    state.cells[rec["key"]] = rec["result"]
                elif kind == "end":
                    state.finalized = True
        obs.event("journal.loaded", path=path, cells=len(state.cells),
                  torn=state.torn_lines, finalized=state.finalized)
        return state


def locate_journal(run: str) -> str:
    """Resolve a ``--resume`` argument to a journal path: accepts the
    journal file itself or a run output directory containing one."""
    if os.path.isdir(run):
        return os.path.join(run, JOURNAL_NAME)
    return run
