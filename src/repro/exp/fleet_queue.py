"""Filesystem work queue for the analysis fleet (:mod:`repro.exp.fleet`).

The fleet's wire protocol is a directory — any filesystem both sides
can see (a local path for loopback workers, NFS or a synced mount for
other machines) is the transport.  No daemon, no sockets, no library
dependencies; every primitive is a POSIX file operation whose crash
semantics are well understood:

- ``queue.json`` — run metadata the coordinator writes once at open
  (campaign name, result-cache root, schema version);
- ``tasks/t{index:06d}-a{attempt}.json`` — one file per dispatched
  cell attempt, written atomically (tmp + rename); the JSON payload is
  the picklable :class:`~repro.exp.runner.CellTask` minus its
  coordinator-only retry policy (retries are coordinator decisions —
  a worker executes exactly one attempt);
- ``leases/<task>.lease`` — claim markers.  A worker claims a task
  with ``O_CREAT | O_EXCL`` (atomic on POSIX — exactly one winner per
  task, no coordination), then *heartbeats* by bumping the lease's
  mtime while the cell runs.  The coordinator treats a lease whose
  mtime is older than the TTL as a dead worker: the attempt is folded
  into the retry path and the task is re-dispatched.  Late results
  from a worker that was merely slow are deduplicated by
  ``(index, attempt)``;
- ``results/<worker>.jsonl`` — per-worker append-only results
  channels, one record per line, flushed + fsync'd per append exactly
  like the run journal.  One file per writer means no cross-worker
  interleaving: a torn trailing line (worker died mid-append) damages
  only that worker's tail, and the reader only consumes
  ``\\n``-terminated lines, so a torn tail is invisible until the
  retransmit;
- ``stop`` — a marker file; workers exit their poll loop when it
  appears.

Fault points (:mod:`repro.faults`): workers fire ``queue_lease`` right
after claiming and route result appends through the writer-cooperative
``queue_result`` point, so chaos tests can kill a worker mid-lease,
tear a result record, or deliver one twice — deterministically.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

import repro.faults as faults
import repro.obs as obs

QUEUE_SCHEMA = 1

META_NAME = "queue.json"
TASKS_DIR = "tasks"
LEASES_DIR = "leases"
RESULTS_DIR = "results"
STOP_NAME = "stop"


class QueueError(RuntimeError):
    """The queue directory is missing or malformed."""


def task_name(index: int, attempt: int) -> str:
    """Canonical task id: sorts by cell index, unique per attempt."""
    return f"t{index:06d}-a{attempt}"


def task_to_json(task) -> dict:
    """The wire form of a :class:`~repro.exp.runner.CellTask`.

    The retry policy deliberately stays behind: the coordinator owns
    retry/backoff/quarantine decisions, a worker runs one attempt.
    """
    return {
        "schema": QUEUE_SCHEMA,
        "index": task.index,
        "attempt": task.attempt,
        "trace": task.trace.to_json(),
        "trace_digest": task.trace_digest,
        "detector": {"name": task.detector.name, "id": task.detector.id,
                     "config": task.detector.config},
        "timeout": task.timeout,
        "repeats": task.repeats,
    }


def task_from_json(data: dict):
    """Reconstruct a worker-side :class:`~repro.exp.runner.CellTask`."""
    from repro.exp.campaign import DetectorSpec, TraceSource
    from repro.exp.runner import CellTask

    t = data["trace"]
    det = data["detector"]
    return CellTask(
        index=data["index"],
        trace=TraceSource(kind=t["kind"], name=t["name"],
                          path=t.get("path"), benchmark=t.get("benchmark"),
                          params=t.get("params", {})),
        trace_digest=data["trace_digest"],
        detector=DetectorSpec(name=det["name"], id=det.get("id", ""),
                              config=det.get("config", {})),
        timeout=data["timeout"],
        repeats=data["repeats"],
        attempt=data["attempt"],
    )


def default_worker_id() -> str:
    """hostname-pid: unique per worker process across a shared mount."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _atomic_write(path: str, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class FleetQueue:
    """Coordinator- and worker-side handle on one queue directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.tasks_dir = os.path.join(root, TASKS_DIR)
        self.leases_dir = os.path.join(root, LEASES_DIR)
        self.results_dir = os.path.join(root, RESULTS_DIR)
        self.stop_path = os.path.join(root, STOP_NAME)
        self.meta_path = os.path.join(root, META_NAME)

    # -- lifecycle (coordinator) ------------------------------------------

    def init(self, meta: Optional[dict] = None) -> None:
        """Create the layout; clears a stale stop marker so a queue
        directory can host successive runs."""
        for d in (self.root, self.tasks_dir, self.leases_dir,
                  self.results_dir):
            os.makedirs(d, exist_ok=True)
        try:
            os.unlink(self.stop_path)
        except OSError:
            pass
        record = {"schema": QUEUE_SCHEMA}
        record.update(meta or {})
        _atomic_write(self.meta_path,
                      json.dumps(record, sort_keys=True).encode("utf-8"))

    def meta(self) -> dict:
        try:
            with open(self.meta_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            raise QueueError(f"{self.root}: not a fleet queue "
                             f"(missing {META_NAME})") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise QueueError(f"{self.root}: unreadable {META_NAME}: {exc}"
                             ) from None

    def post_stop(self) -> None:
        _atomic_write(self.stop_path, b"stop\n")

    def stopped(self) -> bool:
        return os.path.exists(self.stop_path)

    # -- tasks -------------------------------------------------------------

    def _task_path(self, name: str) -> str:
        return os.path.join(self.tasks_dir, f"{name}.json")

    def enqueue(self, task) -> str:
        name = task_name(task.index, task.attempt)
        _atomic_write(self._task_path(name),
                      json.dumps(task_to_json(task),
                                 sort_keys=True).encode("utf-8"))
        obs.count("fleet.tasks_enqueued")
        return name

    def remove_task(self, name: str) -> None:
        try:
            os.unlink(self._task_path(name))
        except OSError:
            pass

    def list_tasks(self) -> List[str]:
        """Posted task names in cell-index order."""
        try:
            entries = os.listdir(self.tasks_dir)
        except OSError:
            return []
        return sorted(e[:-len(".json")] for e in entries
                      if e.endswith(".json"))

    def load_task(self, name: str):
        """The task payload, or None if the file vanished (consumed or
        withdrawn by the coordinator) or is torn mid-rename."""
        try:
            with open(self._task_path(name), "r", encoding="utf-8") as fh:
                return task_from_json(json.load(fh))
        except (OSError, json.JSONDecodeError, KeyError):
            return None

    # -- leases ------------------------------------------------------------

    def _lease_path(self, name: str) -> str:
        return os.path.join(self.leases_dir, f"{name}.lease")

    def try_claim(self, name: str, worker_id: str) -> bool:
        """Atomically claim ``name``; exactly one caller wins."""
        payload = json.dumps({"worker": worker_id, "pid": os.getpid()},
                             sort_keys=True).encode("utf-8")
        try:
            fd = os.open(self._lease_path(name),
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        obs.count("fleet.leases_claimed")
        faults.fire("queue_lease", task=name, worker=worker_id)
        return True

    def heartbeat(self, name: str) -> None:
        try:
            os.utime(self._lease_path(name))
        except OSError:
            pass                # lease reaped by the coordinator

    def release_lease(self, name: str) -> None:
        try:
            os.unlink(self._lease_path(name))
        except OSError:
            pass

    def lease_age(self, name: str) -> Optional[float]:
        """Seconds since the lease's last heartbeat, or None."""
        import time

        try:
            return max(0.0, time.time()
                       - os.stat(self._lease_path(name)).st_mtime)
        except OSError:
            return None

    def lease_owner(self, name: str) -> Optional[dict]:
        try:
            with open(self._lease_path(name), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def list_leases(self) -> List[str]:
        try:
            entries = os.listdir(self.leases_dir)
        except OSError:
            return []
        return sorted(e[:-len(".lease")] for e in entries
                      if e.endswith(".lease"))


class ResultsWriter:
    """One worker's append-only results channel (JSONL, fsync'd).

    Mirrors :class:`~repro.exp.resilience.RunJournal` byte semantics:
    flush + fsync per record, so a crash tears at most the final line —
    which, having no ``\\n``, the reader never consumes.
    """

    def __init__(self, queue: FleetQueue, worker_id: str) -> None:
        self.path = os.path.join(queue.results_dir, f"{worker_id}.jsonl")
        self.worker_id = worker_id
        self._fh = None

    def append(self, name: str, index: int, attempt: int, record: dict,
               stderr_tail: str = "") -> None:
        rec = {"task": name, "index": index, "attempt": attempt,
               "worker": self.worker_id, "result": record}
        if stderr_tail:
            rec["stderr_tail"] = stderr_tail
        data = json.dumps(rec, sort_keys=True, separators=(",", ":"))
        ctx = {"index": index, "attempt": attempt, "worker": self.worker_id}
        torn = faults.spec_for("queue_result", "torn", ctx)
        dup = None if torn else faults.spec_for("queue_result", "dup", ctx)
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        if torn is not None:
            keep = int(torn.get("keep", max(1, len(data) // 2)))
            self._fh.write(data[:keep])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os._exit(int(torn.get("exit_code", 23)))
        faults.fire("queue_result", **ctx)
        copies = 2 if dup is not None else 1
        for _ in range(copies):
            self._fh.write(data + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        obs.count("fleet.results_written", copies)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ResultsReader:
    """Coordinator-side tail over every worker's results channel.

    Tracks a byte offset per file and hands back only records whose
    line arrived complete (``\\n``-terminated): a torn tail is simply
    not there yet, and stays invisible forever if the writer died —
    exactly the signal the lease TTL recovers from.  Unparsable
    complete lines are counted and skipped.
    """

    def __init__(self, queue: FleetQueue) -> None:
        self.dir = queue.results_dir
        self._offsets: Dict[str, int] = {}
        self.bad_lines = 0

    def poll(self) -> Iterator[Tuple[str, dict]]:
        try:
            files = sorted(f for f in os.listdir(self.dir)
                           if f.endswith(".jsonl"))
        except OSError:
            return
        for fn in files:
            path = os.path.join(self.dir, fn)
            offset = self._offsets.get(fn, 0)
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                continue
            if not chunk:
                continue
            # consume only complete lines; a torn tail stays pending
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[fn] = offset + end + 1
            for line in chunk[:end + 1].splitlines():
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self.bad_lines += 1
                    obs.count("fleet.bad_result_lines")
                    continue
                if not isinstance(rec, dict) or "index" not in rec:
                    self.bad_lines += 1
                    obs.count("fleet.bad_result_lines")
                    continue
                yield fn, rec
