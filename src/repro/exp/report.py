"""Campaign reports: paper-style tables, JSON records, run diffs.

- **Table 1** (trace characteristics): one row per trace from the
  implicit ``stats`` cells, columns shared with the CLI via
  :data:`repro.trace.stats.TABLE1_COLUMNS`.
- **Table 2** (per-detector outcomes): one row per trace, one column
  per detector showing the headline count and best time —
  ``F`` for a tool's own failure, ``TO``/``ERR`` for cells the runner
  timed out or that crashed, ``QUAR`` for cells quarantined after
  exhausting their retry budget, ``FLT`` for injected faults.
- **JSON record**: the full run (campaign spec + every cell) with
  stable key order; :func:`diff_runs` compares two of these cell by
  cell, ignoring timing, which makes it the regression tracker —
  "same code, same traces, did any verdict move?".
- **Profile table**: when telemetry was on (:mod:`repro.obs`), a
  per-cell wall/cpu/peak-RSS/cache breakdown next to Table 2.  The
  column set is identical however the run executed (inline or
  ``-j N``) because the rollups ride the per-cell result channel.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.analysis.comparison import exclusive_bugs
from repro.exp.cache import code_version
from repro.exp.runner import (
    STATUS_ERROR,
    STATUS_FAULT,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_TIMEOUT,
    RunResult,
)
from repro.trace.stats import TABLE1_COLUMNS

RUN_SCHEMA = 1


# -- JSON record --------------------------------------------------------


def run_to_json(run: RunResult) -> dict:
    """The persistent record of one campaign execution."""
    out = {
        "schema": RUN_SCHEMA,
        "campaign": run.campaign.to_json(),
        "code_version": code_version(),
        "created": _time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "elapsed": round(run.elapsed, 3),
        "cache_hits": run.cache_hits,
        "num_cells": run.num_cells,
        "status_counts": run.counts(),
        "cells": [r.to_json() for r in run.results],
    }
    if run.journal_replays:
        out["journal_replays"] = run.journal_replays
    if run.cache_backfills:
        out["cache_backfills"] = run.cache_backfills
    if run.interrupted:
        out["interrupted"] = True
    if obs.enabled():
        out["obs"] = {"counters": obs.snapshot()}
    return out


def _cells_by_trace(cells: List[dict]) -> "Dict[str, Dict[str, dict]]":
    """trace name -> detector id -> cell, preserving first-seen order."""
    out: Dict[str, Dict[str, dict]] = {}
    for cell in cells:
        out.setdefault(cell["trace"], {})[cell["detector"]] = cell
    return out


# -- Markdown tables ----------------------------------------------------


def _md_table(header: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def table1_markdown(cells: List[dict]) -> str:
    """Trace characteristics (needs the ``stats`` cells)."""
    rows = []
    for trace, by_det in _cells_by_trace(cells).items():
        stats = by_det.get("stats")
        if stats is None or stats["status"] != STATUS_OK:
            rows.append([trace] + ["?"] * len(TABLE1_COLUMNS))
            continue
        out = stats["output"]
        rows.append([trace] + [str(out.get(key, "?")) for _, key in TABLE1_COLUMNS])
    return _md_table(["Trace"] + [h for h, _ in TABLE1_COLUMNS], rows)


def _format_cell(cell: Optional[dict]) -> str:
    if cell is None:
        return "-"
    if cell["status"] == STATUS_TIMEOUT:
        return "TO"
    if cell["status"] == STATUS_ERROR:
        return "ERR"
    if cell["status"] == STATUS_QUARANTINED:
        return "QUAR"
    if cell["status"] == STATUS_FAULT:
        return "FLT"
    out = cell["output"] or {}
    if out.get("failed"):
        return "F"
    primary = out.get("primary")
    shown = "?" if primary is None else str(primary)
    if out.get("timed_out"):                     # Dirk's internal budget
        shown += " (TO)"
    elapsed = cell.get("elapsed")
    if elapsed is not None:
        shown += f" / {elapsed:.3f}s"
    return shown


def table2_markdown(cells: List[dict]) -> str:
    """Per-detector outcomes (count / best time), Table 2 style."""
    detector_ids: List[str] = []
    for cell in cells:
        d = cell["detector"]
        if d != "stats" and d not in detector_ids:
            detector_ids.append(d)
    rows = []
    for trace, by_det in _cells_by_trace(cells).items():
        rows.append([trace] + [_format_cell(by_det.get(d)) for d in detector_ids])
    return _md_table(["Trace"] + detector_ids, rows)


PROFILE_COLUMNS = ["Trace", "Detector", "wall (s)", "cpu (s)",
                   "peak RSS (MB)", "cache"]


def has_telemetry(cells: List[dict]) -> bool:
    """Did any cell carry a telemetry rollup or a cpu measurement?"""
    return any(c.get("obs") or c.get("cpu_elapsed") is not None
               for c in cells)


def profile_markdown(cells: List[dict]) -> str:
    """Per-cell telemetry: wall / cpu / peak RSS / cache provenance.

    The column *set* is execution-independent — an inline run and a
    ``-j N`` pool run of the same campaign produce identically-shaped
    tables (values differ only by measured time).
    """
    rows = []
    for cell in cells:
        rollup = cell.get("obs") or {}
        wall = cell.get("elapsed", rollup.get("wall"))
        cpu = cell.get("cpu_elapsed", rollup.get("cpu"))
        rss = rollup.get("max_rss_kb")
        if cell.get("replayed"):
            cache = "replay"
        elif cell.get("cached"):
            cache = "hit"
        else:
            cache = "miss"
        rows.append([
            cell["trace"],
            cell["detector"],
            f"{wall:.3f}" if wall is not None else "?",
            f"{cpu:.3f}" if cpu is not None else "?",
            f"{rss / 1024:.1f}" if rss is not None else "?",
            cache,
        ])
    return _md_table(PROFILE_COLUMNS, rows)


def disagreements_markdown(cells: List[dict]) -> str:
    """Traces where deadlock-reporting detectors disagree on bug sets."""
    lines: List[str] = []
    for trace, by_det in _cells_by_trace(cells).items():
        bug_sets = {}
        for det_id, cell in by_det.items():
            if det_id == "stats" or cell["status"] != STATUS_OK:
                continue
            out = cell["output"] or {}
            if out.get("failed"):
                bug_sets[det_id] = None
            elif "bugs" in out:
                bug_sets[det_id] = {tuple(b) for b in out["bugs"]}
        if len(bug_sets) < 2:
            continue
        for det_id, only in sorted(exclusive_bugs(bug_sets).items()):
            for bug in sorted(only):
                lines.append(f"- `{trace}`: only **{det_id}** reports "
                             f"{' / '.join(bug)}")
    if not lines:
        return "All deadlock detectors agree on every trace."
    return "\n".join(lines)


def render_markdown(record: dict) -> str:
    """Full Markdown report for one run record."""
    campaign = record["campaign"]
    cells = record["cells"]
    counts = record.get("status_counts", {})
    fresh = (record["num_cells"] - record.get("cache_hits", 0)
             - record.get("journal_replays", 0))
    status_line = (f"- status: {counts.get(STATUS_OK, 0)} ok, "
                   f"{counts.get(STATUS_TIMEOUT, 0)} timeout, "
                   f"{counts.get(STATUS_ERROR, 0)} error")
    if counts.get(STATUS_QUARANTINED):
        status_line += f", {counts[STATUS_QUARANTINED]} quarantined"
    if counts.get(STATUS_FAULT):
        status_line += f", {counts[STATUS_FAULT]} fault"
    cells_line = (f"- cells: {record['num_cells']} "
                  f"({record.get('cache_hits', 0)} cached, {fresh} executed)")
    if record.get("journal_replays"):
        cells_line += f", {record['journal_replays']} replayed from journal"
    head = [
        f"# Campaign `{campaign['name']}`",
        "",
        cells_line,
        status_line,
        f"- code version: `{record.get('code_version', '?')}`, "
        f"wall clock {record.get('elapsed', 0.0):.3f}s",
    ]
    if record.get("interrupted"):
        head.append("- **interrupted run** — partial results; resume with "
                    "`bench run --resume`")
    head += [
        "",
        "## Table 1 — trace characteristics",
        "",
        table1_markdown(cells),
        "",
        "## Table 2 — detector outcomes (count / best time)",
        "",
        "`F` = tool failure (by design), `TO` = timeout, `ERR` = crashed "
        "cell, `QUAR` = quarantined (retries exhausted), `FLT` = injected "
        "fault.",
        "",
        table2_markdown(cells),
    ]
    if has_telemetry(cells):
        head += [
            "",
            "## Profile — per-cell telemetry",
            "",
            "Cache `hit`/`replay` cells carry the timing recorded when "
            "they originally executed.",
            "",
            profile_markdown(cells),
        ]
    head += [
        "",
        "## Detector disagreements",
        "",
        disagreements_markdown(cells),
        "",
    ]
    return "\n".join(head)


# -- run-to-run diff ----------------------------------------------------


@dataclass
class CellDiff:
    trace: str
    detector: str
    kind: str                 # "added" | "removed" | "changed"
    before: Optional[dict] = None
    after: Optional[dict] = None

    def describe(self) -> str:
        if self.kind == "added":
            return f"{self.trace} × {self.detector}: new cell"
        if self.kind == "removed":
            return f"{self.trace} × {self.detector}: cell gone"
        b, a = self.before or {}, self.after or {}
        return (f"{self.trace} × {self.detector}: "
                f"{_format_cell(b)} -> {_format_cell(a)}")


@dataclass
class RunDiff:
    """Cell-level differences between two run records (timing ignored)."""

    changes: List[CellDiff] = field(default_factory=list)
    compared: int = 0

    @property
    def clean(self) -> bool:
        return not self.changes

    def markdown(self) -> str:
        if self.clean:
            return (f"No verdict changes across {self.compared} "
                    f"compared cell(s).")
        lines = [f"{len(self.changes)} change(s) across "
                 f"{self.compared} compared cell(s):", ""]
        for c in self.changes:
            lines.append(f"- {c.describe()}")
        return "\n".join(lines)


def _comparable(cell: dict) -> Tuple:
    return (cell["status"], cell.get("output"), cell.get("num_events"))


def diff_runs(old: dict, new: dict) -> RunDiff:
    """Compare two run records cell by cell.

    Matching is by (trace name, detector id); timing fields and cache
    provenance never participate, so an identical re-run — cached or
    not, serial or parallel — always diffs clean.
    """
    diff = RunDiff()
    a = {(c["trace"], c["detector"]): c for c in old["cells"]}
    b = {(c["trace"], c["detector"]): c for c in new["cells"]}
    for key in sorted(a.keys() | b.keys()):
        trace, det = key
        if key not in b:
            diff.changes.append(CellDiff(trace, det, "removed", before=a[key]))
        elif key not in a:
            diff.changes.append(CellDiff(trace, det, "added", after=b[key]))
        else:
            diff.compared += 1
            if _comparable(a[key]) != _comparable(b[key]):
                diff.changes.append(
                    CellDiff(trace, det, "changed", before=a[key], after=b[key])
                )
    return diff
