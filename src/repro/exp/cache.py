"""Content-addressed result cache for campaign cells.

A cell's key digests everything that can change its output:

- the *trace digest* (file bytes, or generator identity + knobs);
- the detector registry name and its canonical-JSON config;
- the cell policy that shapes results (timeout, repetition count);
- the *code version* — by default the digest of the **detector's
  module dependency closure** (:func:`detector_code_version`): the
  adapter function's source, every ``repro`` module it imports, and
  everything those import transitively, plus the shared trace/synth
  loading pipeline.  Editing a detector (or anything under it)
  invalidates exactly the cells that could change; cells of untouched
  detectors stay warm across commits.

Storage is pluggable: :class:`ResultCache` keeps the schema validation
and corruption handling and delegates the byte storage to a
:class:`CacheBackend`.  The default :class:`LocalDirBackend` keeps
records as JSON files under ``<root>/<key[:2]>/<key>.json``, written
atomically (tmp + rename) so a crashed run never leaves a torn record
for the next run to trust; pointing it at a shared filesystem turns it
into the fleet's blob store (:mod:`repro.exp.fleet`), where workers on
other machines warm-start exactly like local pool workers.  Only
``ok`` and ``timeout`` cells are cached; ``error`` cells (crashed
workers) always re-run.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from typing import Dict, Iterator, Optional, Set, Tuple

import repro.obs as obs

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package sources (memoized).

    The whole-package fallback: any source change invalidates every
    cell.  Prefer :func:`detector_code_version` where a detector name
    is known."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        h = hashlib.sha256()
        for name, digest in sorted(_module_digests().items()):
            h.update(name.encode())
            h.update(digest)
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


# -- per-detector dependency-closure versions ----------------------------

#: modules every cell depends on regardless of detector: trace sources
#: are parsed / generated / compiled through these before the adapter
#: ever runs, and the exp execution layer shapes the recorded result
#: (repetitions, timing, record fields), so a change to any of them can
#: alter any cell's output.  The registry module itself
#: (repro.exp.detectors, pulled in via repro.exp.runner) is hashed as
#: its *scaffold* — see :func:`_registry_scaffold_digest` — so one
#: adapter's edit still doesn't invalidate its siblings.
_PIPELINE_ROOTS = (
    "repro.trace.events",
    "repro.trace.parser",
    "repro.trace.compiled",
    "repro.trace.index",
    "repro.trace.trace",
    "repro.synth.suite",
    "repro.synth.random_traces",
    "repro.exp.runner",
    "repro.exp.campaign",
    "repro.exp.cache",
)

_MODULE_DIGESTS: Optional[Dict[str, bytes]] = None
_MODULE_IMPORTS: Optional[Dict[str, Set[str]]] = None
_DETECTOR_VERSIONS: Dict[str, str] = {}


def _package_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _walk_modules():
    """Yield ``(module name, path)`` for every ``repro`` source file."""
    root = _package_root()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()                 # fixes the traversal order
        for fn in sorted(filenames):
            if not fn.endswith(".py"):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root)
            parts = rel[:-3].split(os.sep)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            yield ".".join(["repro"] + parts), path


def _module_digests() -> Dict[str, bytes]:
    """module name -> sha256 of its source (memoized)."""
    global _MODULE_DIGESTS
    if _MODULE_DIGESTS is None:
        out: Dict[str, bytes] = {}
        for name, path in _walk_modules():
            with open(path, "rb") as fh:
                out[name] = hashlib.sha256(fh.read()).digest()
        _MODULE_DIGESTS = out
    return _MODULE_DIGESTS


def _repro_imports(tree: ast.AST, modules: Dict[str, bytes]) -> Set[str]:
    """Every ``repro`` module an AST imports, module- or function-level.

    ``from repro.core import spd_offline`` resolves the attribute to
    the submodule when one exists."""
    found: Set[str] = set()

    def note(name: str) -> None:
        if name in modules:
            found.add(name)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    note(alias.name)
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "repro" or mod.startswith("repro."):
                note(mod)
                for alias in node.names:
                    note(f"{mod}.{alias.name}")
    return found


def _module_import_graph() -> Dict[str, Set[str]]:
    """Intra-package import graph over ``repro`` modules (memoized)."""
    global _MODULE_IMPORTS
    if _MODULE_IMPORTS is None:
        modules = _module_digests()
        graph: Dict[str, Set[str]] = {}
        for name, path in _walk_modules():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    tree = ast.parse(fh.read())
            except SyntaxError:
                graph[name] = set(modules)      # be safe: depend on all
                continue
            graph[name] = _repro_imports(tree, modules)
        _MODULE_IMPORTS = graph
    return _MODULE_IMPORTS


def dependency_closure(roots) -> Tuple[str, ...]:
    """Transitive ``repro``-module closure of ``roots`` (sorted)."""
    graph = _module_import_graph()
    seen: Set[str] = set()
    work = [r for r in roots if r in graph]
    while work:
        mod = work.pop()
        if mod in seen:
            continue
        seen.add(mod)
        work.extend(graph.get(mod, ()))
    return tuple(sorted(seen))


def closure_with_shims(roots, modules: Dict[str, bytes],
                       graph: Dict[str, Set[str]]) -> Set[str]:
    """The module set a detector version digests: the transitive
    closure of ``roots`` plus ancestor packages and their re-exports.

    Ancestor packages' ``__init__`` modules run on import, so their
    digests are included — and because such modules are typically pure
    re-export *shims* (``from repro.x.impl import thing``), their
    **direct** imports are included too (one level, not transitively:
    following a top-level ``__init__`` transitively would drag the
    whole package into every closure).  Without that one level, moving
    an implementation behind an unchanged shim would leave stale cache
    entries live.
    """
    closure: Set[str] = set()
    work = [r for r in roots if r in graph]
    while work:
        mod = work.pop()
        if mod in closure:
            continue
        closure.add(mod)
        work.extend(graph.get(mod, ()))
    for mod in tuple(closure):
        while "." in mod:
            mod = mod.rpartition(".")[0]
            if mod in modules and mod not in closure:
                closure.add(mod)
                # one level of the shim's own re-export imports
                closure |= {d for d in graph.get(mod, ()) if d in modules}
    return closure


def _registry_scaffold_digest(module_name: str) -> bytes:
    """Digest of a registry module's *shared* code.

    The adapter functions themselves are hashed per-detector; what this
    covers is everything else in the module — shared helpers like
    ``_bug_list`` that shape many adapters' outputs — without letting
    an edit to one adapter invalidate every other detector's cells.
    Hashes the module source with every ``@register``-decorated
    top-level function body blanked out.
    """
    import importlib
    import inspect

    mod = importlib.import_module(module_name)
    source = inspect.getsource(mod)
    lines = source.split("\n")
    tree = ast.parse(source)
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(
            isinstance(d, ast.Call) and getattr(d.func, "id", None) == "register"
            for d in node.decorator_list
        ):
            continue
        start = min([node.lineno] + [d.lineno for d in node.decorator_list])
        for i in range(start - 1, node.end_lineno):
            lines[i] = ""
    return hashlib.sha256("\n".join(lines).encode()).digest()


def detector_code_version(detector_name: str) -> str:
    """Digest of everything that can change ``detector_name``'s output.

    Hashes the adapter function's own source, the registry module's
    shared scaffold (module-level helpers the adapters call), and the
    digests of the detector's module dependency closure (the modules
    the adapter imports, transitively, unioned with the shared
    trace/synth loading pipeline).  Cheaper invalidation than
    :func:`code_version`: a commit that only touches other detectors
    leaves this key — and the caches under it — intact.  Falls back to
    the whole-package digest when the adapter's source cannot be
    resolved.

    Kernel backends share keys deliberately: the digest covers the
    import closure (which pulls in the :mod:`repro.kernels` dispatch
    sites and the ``*_np`` modules they load), but the *selected*
    backend — ``REPRO_KERNELS``/:func:`repro.kernels.set_backend` — is
    not part of the key.  The kernels are proven bit-identical to the
    canonical python paths (``tests/test_kernels.py``), so a record
    computed under either backend is valid for both; editing any
    kernel module still invalidates, through the closure digest.
    """
    cached = _DETECTOR_VERSIONS.get(detector_name)
    if cached is not None:
        return cached
    try:
        import inspect
        import textwrap

        from repro.exp.detectors import get_adapter

        adapter = get_adapter(detector_name)
        source = textwrap.dedent(inspect.getsource(adapter))
        tree = ast.parse(source)
        modules = _module_digests()
        missing = [r for r in _PIPELINE_ROOTS if r not in modules]
        if missing:
            # A renamed/mistyped pipeline root must not silently stop
            # being tracked; the raise lands in the conservative
            # whole-package fallback below.
            raise ValueError(f"unknown pipeline root modules: {missing}")
        roots = _repro_imports(tree, modules) | set(_PIPELINE_ROOTS)
        scaffold = _registry_scaffold_digest(adapter.__module__)
        # Transitive closure of the roots, plus ancestor __init__
        # shims and — one level deep — the modules those shims
        # re-export (see closure_with_shims): moving an implementation
        # behind an unchanged shim must still invalidate.
        closure = closure_with_shims(roots, modules, _module_import_graph())
        h = hashlib.sha256()
        h.update(source.encode())
        h.update(scaffold)
        for mod in sorted(closure):
            h.update(mod.encode())
            # The registry module contributes its scaffold (shared
            # helpers only): its full digest would couple every
            # detector to every other adapter's source.
            h.update(scaffold if mod == adapter.__module__ else modules[mod])
        version = h.hexdigest()[:16]
    except Exception:
        version = code_version()
    _DETECTOR_VERSIONS[detector_name] = version
    return version


def cell_key(trace_digest: str, detector_name: str, config: dict,
             timeout: Optional[float], repeats: int,
             version: Optional[str] = None) -> str:
    """The cache key of one (trace, detector, config) cell."""
    payload = json.dumps(
        {
            "trace": trace_digest,
            "detector": detector_name,
            "config": config,
            "timeout": timeout,
            "repeats": repeats,
            "code": version if version is not None else code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: the contract a cached record must satisfy to be served: ``status``
#: is required; the rest are type-checked when present.  A record that
#: parses as JSON but fails this (truncated rewrite, foreign file,
#: flipped type) is corruption, not data.
_REQUIRED_FIELDS = {"status": str}
_OPTIONAL_FIELDS = {
    "trace": str,
    "trace_digest": str,
    "detector": str,
    "detector_name": str,
    "config": dict,
    "output": dict,
    "error": str,
    "times": list,
    "cpu_times": list,
    "num_events": int,
    "attempts": list,
    "obs": dict,
}


def validate_record(record) -> bool:
    """Is ``record`` a well-formed cached cell result?"""
    if not isinstance(record, dict):
        return False
    for name, types in _REQUIRED_FIELDS.items():
        if name not in record or not isinstance(record[name], types):
            return False
    for name, types in _OPTIONAL_FIELDS.items():
        value = record.get(name)
        if value is not None and not isinstance(value, types):
            return False
    return True


class CacheBackend:
    """The byte-storage protocol behind :class:`ResultCache`.

    A backend is a keyed blob store; everything *about* the blobs —
    JSON encoding, schema validation, corruption handling, telemetry —
    lives in :class:`ResultCache`, so every backend (local directory
    today, an object store or cache daemon tomorrow) serves exactly
    the same validated records.  Remote backends for the analysis
    fleet (:mod:`repro.exp.fleet`) implement this interface; workers
    on other machines then warm-start exactly like local pool workers.

    Contract: :meth:`load` returns ``None`` for a missing key and may
    raise ``OSError`` for an unreadable one (the cache maps both to a
    miss); :meth:`store` must be atomic — a concurrent reader sees the
    old bytes or the new bytes, never a torn write; :meth:`discard` is
    idempotent and ignores missing keys.
    """

    def load(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def store(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def discard(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class LocalDirBackend(CacheBackend):
    """The default backend: one file per key under a root directory.

    Records live at ``<root>/<key[:2]>/<key>.json`` and are written
    atomically (tmp + rename), so readers — including fleet workers
    sharing the directory over a network filesystem — never observe a
    torn record.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def load(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def store(self, key: str, data: bytes) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def discard(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass

    def keys(self) -> Iterator[str]:
        for dirpath, _, files in os.walk(self.root):
            for fn in sorted(files):
                if fn.endswith(".json"):
                    yield fn[: -len(".json")]

    def describe(self) -> str:
        return f"dir:{self.root}"


class ResultCache:
    """Schema-validated cell-result store over a :class:`CacheBackend`.

    ``ResultCache("path")`` keeps the historical local-directory form;
    pass any :class:`CacheBackend` to swap the storage (the fleet's
    shared blob store does).
    """

    def __init__(self, root) -> None:
        if isinstance(root, CacheBackend):
            self.backend = root
            self.root = getattr(root, "root", None)
        else:
            self.backend = LocalDirBackend(root)
            self.root = root

    def _path(self, key: str) -> str:
        """Filesystem location of ``key`` (local-dir backends only)."""
        return self.backend._path(key)

    def get(self, key: str) -> Optional[dict]:
        """The record under ``key``, or None.

        Corruption degrades to a miss: unreadable blobs, invalid JSON,
        and schema-invalid records (a torn write that still parses, a
        record from a future schema) all return None — and the bad
        entry is discarded so the re-computed result can replace it.
        """
        try:
            data = self.backend.load(key)
        except OSError:
            data = b"\xff"                      # unreadable == corrupt
        if data is None:
            obs.count("cache.miss")
            return None
        try:
            record = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            obs.count("cache.corrupt")
            self.backend.discard(key)
            return None
        if not validate_record(record):
            obs.count("cache.corrupt")
            self.backend.discard(key)
            return None
        obs.count("cache.hit")
        return record

    def verify(self, prune: bool = True) -> Dict[str, int]:
        """Scan every entry; optionally prune the corrupt ones.

        Returns ``{"scanned": n, "ok": n, "corrupt": n, "pruned": n}``
        (``repro bench cache --verify``).
        """
        obs.count("cache.verify_scans")
        stats = {"scanned": 0, "ok": 0, "corrupt": 0, "pruned": 0}
        for key in self.backend.keys():
            stats["scanned"] += 1
            try:
                data = self.backend.load(key)
                record = json.loads((data or b"").decode("utf-8"))
                good = validate_record(record)
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                good = False
            if good:
                stats["ok"] += 1
                continue
            stats["corrupt"] += 1
            if prune:
                self.backend.discard(key)
                stats["pruned"] += 1
        return stats

    def put(self, key: str, record: dict) -> None:
        obs.count("cache.put")
        self.backend.store(
            key, json.dumps(record, sort_keys=True).encode("utf-8"))

    def __len__(self) -> int:
        return sum(1 for _ in self.backend.keys())
