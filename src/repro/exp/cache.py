"""Content-addressed result cache for campaign cells.

A cell's key digests everything that can change its output:

- the *trace digest* (file bytes, or generator identity + knobs);
- the detector registry name and its canonical-JSON config;
- the cell policy that shapes results (timeout, repetition count);
- the *code version* — a digest over every ``repro`` source file, so
  editing any detector (or the trace pipeline under it) invalidates
  the whole cache rather than serving stale verdicts.

Records are JSON files under ``<root>/<key[:2]>/<key>.json``, written
atomically (tmp + rename) so a crashed run never leaves a torn record
for the next run to trust.  Only ``ok`` and ``timeout`` cells are
cached; ``error`` cells (crashed workers) always re-run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package sources (memoized)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()             # fixes the traversal order
            for fn in sorted(filenames):
                if not fn.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fn)
                h.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _CODE_VERSION = h.hexdigest()[:16]
    return _CODE_VERSION


def cell_key(trace_digest: str, detector_name: str, config: dict,
             timeout: Optional[float], repeats: int,
             version: Optional[str] = None) -> str:
    """The cache key of one (trace, detector, config) cell."""
    payload = json.dumps(
        {
            "trace": trace_digest,
            "detector": detector_name,
            "config": config,
            "timeout": timeout,
            "repeats": repeats,
            "code": version if version is not None else code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Filesystem-backed cell-result store."""

    def __init__(self, root: str) -> None:
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, record: dict) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for f in files if f.endswith(".json"))
        return count
