"""Vectorized :class:`~repro.trace.index.TraceIndex` derivation.

One ``extend()`` batch is absorbed with O(active-entities) numpy calls
instead of an O(N) python event loop:

- per-thread position/predecessor columns come from one contiguous
  grouping of the batch by thread id (rank within group + carry
  bases) — counting buckets for the usual dense small id ranges, a
  stable argsort otherwise;
- reads-from is a per-variable forward fill of write indices over the
  variable-sorted read/write subset (``np.maximum.accumulate`` with
  group-start carries from the incremental ``last_write`` state);
- held-lock ids are the same forward fill over the thread-sorted
  batch, seeded by each thread's carried held-set id, with the values
  *at* lock operations produced by a python scan over just the lock
  events — the only part of the pass that is inherently sequential
  (LIFO matching, non-well-nested stack edits, pool interning).

The scan runs on *copies* of the carry state and the batch is
committed only when it is anomaly-free; on any
:class:`~repro.trace.index.TraceError` condition the kernel declines
without side effects and the canonical python loop re-runs the same
events, raising the identical error with the identical partial-state
semantics.  Small batches are declined too — vectorization overhead
beats the python loop only past a few hundred events.  Either way the
resulting columns are bit-identical to the python pass (proven by
``tests/test_kernels.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import repro.kernels as kernels
from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_READ,
    OP_RELEASE,
    OP_REQUEST,
    OP_WRITE,
)

#: below this batch size the python loop wins
MIN_BATCH = 256


def _group(np, values):
    """Contiguous grouping of ``values`` by id.

    Returns ``(order, starts, counts, group_ids)``: ``order`` indexes
    ``values`` so equal ids are contiguous and ascending-position
    within each group; ``starts``/``counts`` delimit the groups;
    ``group_ids`` names them.  Ids here (threads, locks, variables)
    are dense and small, so one ``flatnonzero`` bucket per id beats an
    O(N log N) stable argsort; sparse/large ranges fall back to the
    sort.  Group *order* differs between the two strategies (id order
    vs first appearance) — callers must not rely on it, and first-seen
    derivation sorts on ``order[starts]`` instead.
    """
    n = len(values)
    if n == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, e, []
    m = int(values.max()) + 1
    if m > 64 and m * 4 > n:
        order = np.argsort(values, kind="stable")
        vs = values[order]
        start_mask = np.empty(n, dtype=bool)
        start_mask[0] = True
        start_mask[1:] = vs[1:] != vs[:-1]
        starts = np.flatnonzero(start_mask)
        counts = np.diff(np.append(starts, n))
        return order, starts, counts, vs[starts].tolist()
    parts = []
    group_ids = []
    for i in range(m):
        b = np.flatnonzero(values == i)
        if b.size:
            parts.append(b)
            group_ids.append(i)
    order = parts[0] if len(parts) == 1 else np.concatenate(parts)
    counts = np.fromiter((p.size for p in parts), dtype=np.int64,
                         count=len(parts))
    starts = np.concatenate(([0], np.cumsum(counts[:-1])))
    return order, starts, counts, group_ids


def _ffill_before(np, after, starts, carries, order_n, unset=-1):
    """Per-group shifted forward fill.

    ``after[k]`` is the value established *at* position ``k`` (or the
    ``unset`` sentinel), groups are contiguous with start positions
    ``starts`` carrying ``carries``; returns ``before[k]`` = last
    value established strictly before ``k`` within its group (group
    carry if none).  Real values and carries are > ``unset``, so every
    group start is set and accumulation never crosses a boundary.
    """
    shifted = np.empty(order_n, dtype=np.int64)
    shifted[1:] = after[:-1]
    shifted[starts] = carries
    set_at = np.where(shifted > unset, np.arange(order_n), 0)
    np.maximum.accumulate(set_at, out=set_at)
    return shifted[set_at]


def extend_batch(index, np) -> bool:
    """Absorb ``[index._pos, len(compiled))`` vectorized.

    Returns False (no side effects) to decline: batch too small, or a
    trace anomaly that must surface through the python loop's exact
    error path.
    """
    compiled = index.compiled
    ops_a, tids_a, targs_a = compiled.columns()
    lo, hi = index._pos, len(ops_a)
    n = hi - lo
    if n < MIN_BATCH:
        return False

    ops = np.frombuffer(ops_a, dtype=np.int8)[lo:hi]
    tids = np.frombuffer(tids_a, dtype=np.intc)[lo:hi]
    targs = np.frombuffer(targs_a, dtype=np.intc)[lo:hi]

    is_acq = ops == OP_ACQUIRE
    is_rel = ops == OP_RELEASE
    is_req = ops == OP_REQUEST
    lockop = np.flatnonzero(is_acq | is_rel | is_req)

    # -- python scan over just the lock ops, on copied carry state ----------
    # The held-set pool makes stack transitions memoizable: from a
    # given pool id, acquiring (or releasing) a given lock always
    # yields the same successor stack, so ``trans`` caches
    # ``(pool_id, ±lock)`` -> ``pool_id`` and the common case is one
    # dict hit instead of tuple construction + interning.  Misses
    # intern through ``_pool_ids`` in event order, so pool growth is
    # bit-identical to the python loop's.
    open_acq = {k: list(v) for k, v in index._open_acq.items()}
    held_stack = [list(s) for s in index._held_stack]
    cur = list(index._cur_held)
    trans = index._np_trans
    pool_ids = index._pool_ids
    held_pool = index.held_pool
    held_offsets = index.held_offsets
    held_lengths = index.held_lengths
    pool_len0 = len(held_offsets)       # rollback point on decline
    matches: List[Tuple[int, int]] = []
    after_ids: List[Tuple[int, int]] = []        # (rel pos, pool id)
    acq_by_lock: Dict[int, List[int]] = {}
    num_acquires = 0
    num_requests = 0
    nesting = index.lock_nesting_depth
    ops_l = ops[lockop].tolist()
    tids_l = tids[lockop].tolist()
    targs_l = targs[lockop].tolist()

    def _intern(stack: List[int]) -> int:
        key = tuple(stack)
        hid = pool_ids.get(key)
        if hid is None:
            hid = len(held_offsets)
            pool_ids[key] = hid
            held_offsets.append(len(held_pool))
            held_lengths.append(len(key))
            held_pool.extend(key)
        return hid

    def _rollback() -> bool:
        if len(held_offsets) > pool_len0:
            for key, hid in [(k, h) for k, h in pool_ids.items()
                             if h >= pool_len0]:
                del pool_ids[key]
            del held_pool[held_offsets[pool_len0]:]
            del held_offsets[pool_len0:]
            del held_lengths[pool_len0:]
            # Also drop transitions *from* rolled-back ids: a later
            # batch may reuse the numeric id for a different stack.
            stale = [k for k, v in trans.items()
                     if v >= pool_len0 or k[0] >= pool_len0]
            for k in stale:
                del trans[k]
        return False

    for p, op, t, lk in zip(lockop.tolist(), ops_l, tids_l, targs_l):
        if op == OP_ACQUIRE:
            num_acquires += 1
            open_acq.setdefault((t, lk), []).append(lo + p)
            acq_by_lock.setdefault(lk, []).append(lo + p)
            hs = held_stack[t]
            if len(hs) >= nesting:
                nesting = len(hs) + 1
            hs.append(lk)
            tkey = (cur[t], lk)
            hid = trans.get(tkey)
            if hid is None:
                hid = trans[tkey] = _intern(hs)
            cur[t] = hid
            after_ids.append((p, hid))
        elif op == OP_RELEASE:
            stack = open_acq.get((t, lk))
            if not stack:
                return _rollback()      # anomaly: python path raises
            matches.append((stack.pop(), lo + p))
            hs = held_stack[t]
            for j in range(len(hs) - 1, -1, -1):
                if hs[j] == lk:
                    del hs[j]
                    break
            else:
                return _rollback()      # anomaly: python path raises
            tkey = (cur[t], -1 - lk)
            hid = trans.get(tkey)
            if hid is None:
                hid = trans[tkey] = _intern(hs)
            cur[t] = hid
            after_ids.append((p, hid))
        else:
            num_requests += 1

    # -- anomaly-free: commit ------------------------------------------------

    # Thread grouping serves position, predecessor, per-thread event
    # lists, the held-id forward fill, and the first-appearance order.
    # Ids are dense and small, so counting buckets (one flatnonzero
    # per id) beat an O(N log N) argsort.
    order, starts, counts, group_tids = _group(np, tids)
    seen_thread = index._seen_thread
    for _, t in sorted((int(order[s]), t)
                       for s, t in zip(starts.tolist(), group_tids)
                       if not seen_thread[t]):
        seen_thread[t] = 1
        index.thread_order.append(t)
    lk_sub = targs[lockop]
    lorder, lstarts, _, lgroup = _group(np, lk_sub)
    seen_lock = index._seen_lock
    for _, lk in sorted((int(lorder[s]), lk)
                        for s, lk in zip(lstarts.tolist(), lgroup)
                        if not seen_lock[lk]):
        seen_lock[lk] = 1
        index.lock_order.append(lk)
    rw = np.flatnonzero((ops == OP_READ) | (ops == OP_WRITE))
    for p in np.flatnonzero(ops == OP_FORK).tolist():
        tgt = int(targs[p])
        if tgt not in index.fork_of:
            index.fork_of[tgt] = lo + p

    events_by_thread = index.events_by_thread
    abs_sorted = order.astype(np.int64) + lo

    bases = np.fromiter((len(events_by_thread[t]) for t in group_tids),
                        dtype=np.int64, count=len(group_tids))
    pos_sorted = np.arange(n, dtype=np.int64) - np.repeat(starts, counts) \
        + np.repeat(bases, counts)
    pred_sorted = np.empty(n, dtype=np.int64)
    pred_sorted[1:] = abs_sorted[:-1]
    prev_last = np.fromiter(
        ((events_by_thread[t][-1] if events_by_thread[t] else -1)
         for t in group_tids),
        dtype=np.int64, count=len(group_tids))
    pred_sorted[starts] = prev_last

    # Held ids: forward-fill the pool ids the scan established at each
    # lock op (events before a thread's first lock op carry its
    # pre-batch held id).
    after = np.full(n, -1, dtype=np.int64)
    for p, hid in after_ids:
        after[p] = hid
    cur_held = index._cur_held
    carries = np.fromiter((cur_held[t] for t in group_tids),
                          dtype=np.int64, count=len(group_tids))
    held_sorted = _ffill_before(np, after[order], starts, carries, n)

    # Reads-from: per-variable forward fill of write indices over the
    # read/write subset, carried in from last_write.
    rf_b = np.full(n, -1, dtype=np.int64)
    last_write = index._last_write
    if rw.size:
        vsub = targs[rw]
        vorder, vstarts, _, vgroup = _group(np, vsub)
        seen_var = index._seen_var
        for _, v in sorted((int(vorder[s]), v)
                           for s, v in zip(vstarts.tolist(), vgroup)
                           if not seen_var[v]):
            seen_var[v] = 1
            index.var_order.append(v)
        rw_sorted = rw[vorder]
        # Carries may legitimately be -1 (read of the initial value),
        # so the "no value here" sentinel is -2.
        w_after = np.where(ops[rw_sorted] == OP_WRITE,
                           rw_sorted.astype(np.int64) + lo, -2)
        vcarries = np.fromiter((last_write[v] for v in vgroup),
                               dtype=np.int64, count=len(vgroup))
        before_w = _ffill_before(np, w_after, vstarts, vcarries,
                                 len(rw), unset=-2)
        rf_b[rw_sorted] = np.where(ops[rw_sorted] == OP_READ, before_w, -1)
        # New last-write carry: last write index in each group (indices
        # ascend, so a running max is the latest), else the old carry.
        gmax = np.maximum.reduceat(w_after, vstarts)
        final = np.where(gmax >= 0, gmax, vcarries)
        for v, f in zip(vgroup, final.tolist()):
            last_write[v] = f

    # -- single bulk append per column ---------------------------------------
    pos_b = np.empty(n, dtype=np.int64)
    pos_b[order] = pos_sorted
    pred_b = np.empty(n, dtype=np.int64)
    pred_b[order] = pred_sorted
    held_b = np.empty(n, dtype=np.int64)
    held_b[order] = held_sorted
    match_b = np.full(n, -1, dtype=np.int64)
    for acq, rel in matches:
        if acq >= lo:
            match_b[acq - lo] = rel
        match_b[rel - lo] = acq

    index.thread_pos.frombytes(pos_b.astype(np.intc).tobytes())
    index.thread_pred.frombytes(pred_b.astype(np.intc).tobytes())
    index.held_id.frombytes(held_b.astype(np.intc).tobytes())
    index.rf.frombytes(rf_b.astype(np.intc).tobytes())
    index.match.frombytes(match_b.astype(np.intc).tobytes())
    match_col = index.match
    for acq, rel in matches:
        if acq < lo:                    # release matched a prior batch
            match_col[acq] = rel

    for s, e, t in zip(starts.tolist(), np.append(starts[1:], n).tolist(),
                       group_tids):
        events_by_thread[t].extend(abs_sorted[s:e].tolist())
    index._held_stack = held_stack
    index._cur_held = cur
    acquires_by_lock = index.acquires_by_lock
    for lk, evs in acq_by_lock.items():
        acquires_by_lock[lk].extend(evs)

    index._open_acq = open_acq
    index.num_acquires += num_acquires
    index.num_requests += num_requests
    index.lock_nesting_depth = nesting
    index._pos = hi
    kernels.record_dispatch("index_extend", "numpy", events=n)
    return True
