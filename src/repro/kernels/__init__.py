"""Optional vectorized (NumPy) kernels under the columnar core.

The PR-3/PR-5 refactors compiled every hot path down to interned int
columns — exactly the layout an array library consumes in bulk.  This
package holds NumPy ports of the inner loops, each behind the existing
API of the subsystem it accelerates:

- :mod:`repro.kernels.vc_np` — the 2-D ndarray clock pool over
  :class:`~repro.vc.timestamps.TRFTimestamps` plus bulk join/compare.
- :mod:`repro.kernels.index_np` — the ``TraceIndex`` O(N) derivation
  pass as column-at-a-time array passes (incremental ``extend()``
  included, so :class:`repro.stream.StreamSession` benefits too).
- :mod:`repro.kernels.offline_np` — Algorithm 2 (``CheckAbsDdlck``)
  batched across *all* abstract patterns in lockstep.
- :mod:`repro.kernels.online_np` — the per-context Algorithm 1 closure
  of SPDOnline over flat row arrays.
- :mod:`repro.kernels.fasttrack_np` — FastTrack stepping batched over
  runs of same-kind events.

Backend selection
-----------------

``REPRO_KERNELS`` picks the backend:

- ``python`` — the canonical pure-python paths only.
- ``numpy``  — require numpy; raise if it is not importable.
- ``auto``   — (default) numpy when importable, else python.

numpy is an *optional extra* (``pip install repro[numpy]``), never a
hard dependency: every dispatch site falls back to the canonical
python implementation, which remains the differential oracle — the
kernels are proven bit-identical against it corpus-wide and over
seeded random traces by ``tests/test_kernels.py``.  Because outputs
are bit-identical, experiment cache keys are *shared* across backends
(see :mod:`repro.exp.cache`).

:func:`set_backend` / :class:`use` override the environment for the
CLI ``--kernels`` flag and for tests.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = [
    "KernelsError",
    "backend",
    "counters",
    "numpy_or_none",
    "record_dispatch",
    "requested",
    "set_backend",
    "use",
]

_VALID = ("python", "numpy", "auto")

#: :func:`set_backend` override; ``None`` = follow ``REPRO_KERNELS``.
_FORCED: Optional[str] = None

# Memoized numpy import probe (the import itself, not the selection:
# REPRO_KERNELS may legitimately change between calls in tests).
_NUMPY = None
_NUMPY_CHECKED = False


class KernelsError(RuntimeError):
    """Invalid kernel-backend selection."""


def _import_numpy():
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy  # noqa: F401

            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
        _NUMPY_CHECKED = True
    return _NUMPY


def requested() -> str:
    """The *requested* backend (before numpy availability is consulted)."""
    if _FORCED is not None:
        return _FORCED
    value = os.environ.get("REPRO_KERNELS", "auto").strip().lower() or "auto"
    if value not in _VALID:
        raise KernelsError(
            f"REPRO_KERNELS={value!r}: expected one of {', '.join(_VALID)}"
        )
    return value


def backend() -> str:
    """The resolved backend: ``"python"`` or ``"numpy"``.

    ``auto`` resolves to numpy exactly when numpy is importable;
    an explicit ``numpy`` request without numpy installed is an error
    rather than a silent slowdown.
    """
    req = requested()
    if req == "python":
        return "python"
    if _import_numpy() is None:
        if req == "numpy":
            raise KernelsError(
                "REPRO_KERNELS=numpy but numpy is not importable; "
                "install the optional extra (pip install repro[numpy]) "
                "or select REPRO_KERNELS=python"
            )
        return "python"
    return "numpy"


def numpy_or_none():
    """The numpy module when the resolved backend is numpy, else None.

    The one-call dispatch test every integration site uses::

        np = kernels.numpy_or_none()
        if np is not None and <batch big enough>:
            ... vectorized path ...
    """
    return _import_numpy() if backend() == "numpy" else None


def set_backend(name: Optional[str]) -> None:
    """Force a backend (CLI ``--kernels`` / tests); ``None`` restores
    environment-driven selection."""
    global _FORCED
    if name is not None and name not in _VALID:
        raise KernelsError(
            f"unknown kernel backend {name!r}; expected one of {', '.join(_VALID)}"
        )
    _FORCED = name


class use:
    """``with kernels.use("python"): ...`` — scoped backend override."""

    def __init__(self, name: Optional[str]) -> None:
        self._name = name
        self._prev: Optional[str] = None

    def __enter__(self) -> "use":
        self._prev = _FORCED
        set_backend(self._name)
        return self

    def __exit__(self, *exc) -> bool:
        set_backend(self._prev)
        return False


# -- telemetry ---------------------------------------------------------------
#
# Dispatch decisions are per-batch / per-trace, not per-event, so plain
# always-on counters are cheap enough (unlike the patch-on-enable
# wrappers of repro.vc.clock).  The probe snapshot feeds `repro obs`.

_COUNTS: Dict[str, int] = {}


def record_dispatch(area: str, used: str, events: int = 0) -> None:
    """Count one dispatch decision of ``area`` to backend ``used``.

    ``events`` accumulates the batch size under
    ``kernels.<area>.events`` so the obs report shows both how often a
    kernel ran and how much work it vectorized.
    """
    c = _COUNTS
    key = f"kernels.{area}.{used}"
    c[key] = c.get(key, 0) + 1
    if events:
        key = f"kernels.{area}.events"
        c[key] = c.get(key, 0) + events


def counters() -> Dict[str, int]:
    """Snapshot of the dispatch/batch-size counters."""
    return dict(_COUNTS)


def _obs_register() -> None:
    import repro.obs as obs

    obs.register_probe("kernels", counters)


_obs_register()
