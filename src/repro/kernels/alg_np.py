"""Abstract-lock-graph edge construction as array passes.

The python builder (:func:`repro.core.alg._build_alg_edges`) loops over
every abstract acquire and, per candidate bucket, tests the edge
predicate ``t1 != t2 and l1 in held2 and held1 isdisjoint held2`` one
pair at a time.  This kernel evaluates the same relation as a join:

- candidate pairs ``(i, j)`` with ``lock_i in held_j`` come from one
  ``np.searchsorted`` of the node locks against the flattened
  ``(held lock, owner)`` pool sorted by ``(lock, owner)``;
- the thread filter is a vector compare;
- held-set disjointness is a bitwise AND over per-node multi-word
  uint64 lock masks, chunked to bound peak memory.

Candidate order is (i ascending, j ascending within i) — exactly the
order the python loop emits edges — and the bucket construction yields
each ``(i, j)`` at most once, so inserting the surviving pairs in order
reproduces the python-built :class:`DiGraph` bit-for-bit (node order is
pre-interned ``0..n-1`` by both paths).  Returns ``None`` to decline
(no numpy, or a graph too small to be worth the array setup); the
caller then runs the canonical python loop.
"""

from __future__ import annotations

from typing import Optional, Sequence

import repro.kernels as kernels
from repro.graph.digraph import DiGraph

#: below this node count the python loop wins on constant factors
MIN_NODES = 48

#: candidate pairs per disjointness chunk (bounds mask-gather memory)
_PAIR_CHUNK = 1 << 19


def build_alg_edges_np(acquires: Sequence) -> Optional[DiGraph]:
    """``ALG`` over node indices, or ``None`` to decline."""
    np = kernels.numpy_or_none()
    n = len(acquires)
    if np is None or n < MIN_NODES:
        return None
    threads = np.fromiter((a.thread for a in acquires), np.int64, count=n)
    locks = np.fromiter((a.lock for a in acquires), np.int64, count=n)
    held_lens = np.fromiter(
        (len(a.held) for a in acquires), np.int64, count=n)
    total = int(held_lens.sum())
    graph: DiGraph = DiGraph()
    for i in range(n):
        graph.add_node(i)
    if not total:
        kernels.record_dispatch("alg_edges", "numpy", events=n)
        return graph
    pool_owner = np.repeat(np.arange(n), held_lens)
    pool_lock = np.fromiter(
        (lk for a in acquires for lk in a.held), np.int64, count=total)

    # Per-node held-set bitmasks (multi-word: lock ids are dense).
    n_words = (int(max(int(pool_lock.max()), int(locks.max()))) >> 6) + 1
    masks = np.zeros((n, n_words), dtype=np.uint64)
    bits = np.uint64(1) << (pool_lock & 63).astype(np.uint64)
    np.bitwise_or.at(masks, (pool_owner, pool_lock >> 6), bits)

    # Candidate join: for each source i, the targets j with
    # lock_i ∈ held_j, ascending j (the python bucket order).
    order = np.lexsort((pool_owner, pool_lock))
    sorted_locks = pool_lock[order]
    sorted_owner = pool_owner[order]
    lo = np.searchsorted(sorted_locks, locks, side="left")
    hi = np.searchsorted(sorted_locks, locks, side="right")
    counts = hi - lo
    n_pairs = int(counts.sum())
    kernels.record_dispatch("alg_edges", "numpy", events=n_pairs)
    if not n_pairs:
        return graph
    src = np.repeat(np.arange(n), counts)
    starts = np.cumsum(counts) - counts
    gather = np.arange(n_pairs) - np.repeat(starts, counts) + np.repeat(
        lo, counts)
    dst = sorted_owner[gather]
    keep = threads[src] != threads[dst]
    src, dst = src[keep], dst[keep]
    if not src.size:
        return graph
    kept_src, kept_dst = [], []
    for base in range(0, src.size, _PAIR_CHUNK):
        s = src[base:base + _PAIR_CHUNK]
        d = dst[base:base + _PAIR_CHUNK]
        disjoint = ~(masks[s] & masks[d]).any(axis=1)
        kept_src.append(s[disjoint])
        kept_dst.append(d[disjoint])
    src = np.concatenate(kept_src)
    dst = np.concatenate(kept_dst)
    if not src.size:
        return graph
    # Group by source (pairs are (i, j)-sorted) and bulk-insert.
    bounds = np.flatnonzero(np.diff(src)) + 1
    group_src = src[np.concatenate(([0], bounds))].tolist()
    for i, js in zip(group_src, np.split(dst, bounds)):
        graph.add_successors_sorted(i, js.tolist())
    return graph
