"""SPDOnline's per-context Algorithm 1 closure over flat row arrays.

The python closure (:class:`repro.core.spd_online._OnlineClosure`)
keeps per-lock row lists and a dirty-lock worklist fed by seed-join
deltas and a history append log.  The numpy port replaces all of that
with one flat fixed-stride layout indexed by a global *queue id* (one
queue per (thread, lock) pair with critical sections):

- :class:`NpOnlineState` — write-through mirrors of the shared
  critical-section history.  Queue ``q`` owns slots ``[q*cap,
  (q+1)*cap)`` of the flat ``acq_val``/``acq_idx``/``rel_val``/
  ``rel_row`` columns (uniform capacity, relayout-doubled when any
  queue fills), plus one 2-D release-clock pool.  The encoded column
  ``enc[s] = acq_val[s] + q*stride`` is globally sorted (pad slots
  hold ``stride-1``), so *one* ``np.searchsorted`` advances every
  movable cursor of a closure round at once.  Maintained
  incrementally by the detector's event handlers; rebuilt wholesale
  from the canonical python records after a checkpoint restore.
- :class:`NpOnlineClosure` — a drop-in for ``_OnlineClosure`` (same
  ``join_seed``/``compute`` surface; ``compute`` returns an object
  answering ``component``).  The movable test is one vectorized
  comparison ``next_val <= clock[tid]`` across *all* queues, and the
  pad sentinel doubles as the exhausted-queue infinity, so cursor
  state needs no staleness repair: an append writes the next value
  straight into the slot the scan reads.

The hot path is dominated by computes that change nothing, so those
never touch numpy at all: the closure clock is mirrored as a python
list, seed joins are an 8-int python loop, and a compute whose seeds
grew nothing returns immediately.  That early exit is sound because a
*new* acquire can never be movable for a stale clock — its value is
the acquiring thread's freshly ticked component, strictly greater
than that thread's component in every timestamp published before it,
so new movability always arrives through a clock-growing seed (and a
bare release never changes the fix-point: a non-latest candidate was
already released when its successor's acquire entered the history).

The fix-point is unique (monotone rules), so sweeping queues in
lockstep rounds rather than the python worklist order yields
bit-identical closure clocks, and hence bit-identical reports; proven
by ``tests/test_kernels.py``.  Only the *exact* detector uses this
path — bounded-memory eviction trims queue prefixes, which would
invalidate the stateless cursor reconstruction, so eviction mode
stays python.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: per-queue value namespace; acq values are event counters << 2^41
_STRIDE = 1 << 41
#: pad sentinel: sorts after every real value, compares as infinity
_PAD = _STRIDE - 1

#: initial per-queue capacity / queue slots / pool rows (doubling)
_CAP0 = 8
_NQ0 = 16
_POOL0 = 64


class NpOnlineState:
    """Numpy mirrors of one detector's critical-section history."""

    def __init__(self, np) -> None:
        self.np = np
        self.qid_of: Dict[Tuple[int, int], int] = {}
        self.nq = 0
        self.cap = _CAP0
        self.maxq = _NQ0
        self.q_tid = np.zeros(_NQ0, dtype=np.int64)
        self.q_lid = np.zeros(_NQ0, dtype=np.int64)
        self.qoff = np.arange(_NQ0, dtype=np.int64) * self.cap
        self.q_len: List[int] = []
        size = _NQ0 * self.cap
        self.f_val = np.full(size, _PAD, dtype=np.int64)
        self.f_enc = np.zeros(size, dtype=np.int64)
        # Candidate columns, stacked so one fancy index gathers all
        # three: row 0 = acq_idx (pad -1), 1 = rel_val (pad 0),
        # 2 = pool row of the release clock (pad -1).
        self.f_cand = np.zeros((3, size), dtype=np.int64)
        self.f_cand[0] = -1
        self.f_cand[2] = -1
        # lid -> qids, plus the padded [n_lids, W] table the closure
        # rounds gather candidate sets through (pad -1).
        self._lock_queues: Dict[int, List[int]] = {}
        self.lq_table = np.full((1, 1), -1, dtype=np.int64)
        self._lq_stale = True
        # Release-clock pool: row r = zero-padded release timestamp.
        self.pool = np.zeros((_POOL0, 4), dtype=np.int64)
        self.pool_n = 0
        #: threads any queue indexes — the width closures must cover
        self.t_need = 1
        #: bumped on queue creation (closures grow their per-queue rows)
        self.generation = 0
        #: bumped on capacity relayout (closures rebase cached offsets)
        self.layout_gen = 0

    # -- write-through maintenance (called from the event handlers) ----------

    def on_acquire(self, tid: int, lid: int, val: int, acq_idx: int) -> None:
        np = self.np
        qid = self.qid_of.get((tid, lid))
        if qid is None:
            qid = self.nq
            self.qid_of[(tid, lid)] = qid
            if qid == self.maxq:
                self._grow_queues()
            self.q_tid[qid] = tid
            self.q_lid[qid] = lid
            base = qid * self.cap
            self.f_enc[base:base + self.cap] = qid * _STRIDE + _PAD
            self.q_len.append(0)
            self._lock_queues.setdefault(lid, []).append(qid)
            self._lq_stale = True
            self.nq += 1
            if tid >= self.t_need:
                self.t_need = tid + 1
            self.generation += 1
        n = self.q_len[qid]
        # Keep one pad slot per queue: the scan reads slot ``len`` as
        # the next value, so a full block would alias the neighbour.
        if n + 1 == self.cap:
            self._relayout(2 * self.cap)
        slot = qid * self.cap + n
        self.f_val[slot] = val
        # acq_idx mirrors _CSRecord.acq_idx (the latest-candidate
        # tiebreaker): the event counter at the acquire.
        self.f_cand[0, slot] = acq_idx
        self.f_enc[slot] = val + qid * _STRIDE
        self.q_len[qid] = n + 1

    def on_release(self, tid: int, lid: int, acq_val: int,
                   rel_val: int, rel_clock: List[int]) -> None:
        np = self.np
        qid = self.qid_of[(tid, lid)]
        base = qid * self.cap
        n = self.q_len[qid]
        # acq_val strictly increases within a queue (the thread ticks at
        # every event), so the released record's position is a bisect.
        pos = int(np.searchsorted(self.f_val[base:base + n], acq_val))
        slot = base + pos
        self.f_cand[1, slot] = rel_val
        self.f_cand[2, slot] = self._pool_append(rel_clock)

    def _grow_queues(self) -> None:
        np = self.np
        old = self.maxq
        self.maxq = 2 * old
        for name in ("q_tid", "q_lid"):
            arr = np.zeros(self.maxq, dtype=np.int64)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        self.qoff = np.arange(self.maxq, dtype=np.int64) * self.cap
        size = self.maxq * self.cap
        for name, fill in (("f_val", _PAD), ("f_enc", 0)):
            arr = np.full(size, fill, dtype=np.int64)
            arr[:old * self.cap] = getattr(self, name)
            setattr(self, name, arr)
        cand = np.zeros((3, size), dtype=np.int64)
        cand[0] = -1
        cand[2] = -1
        cand[:, :old * self.cap] = self.f_cand
        self.f_cand = cand

    def _relayout(self, cap: int) -> None:
        """Double the uniform per-queue capacity (rare: O(log N) times)."""
        np = self.np
        old = self.cap
        size = self.maxq * cap
        new_val = np.full(size, _PAD, dtype=np.int64)
        new_enc = np.zeros(size, dtype=np.int64)
        new_cand = np.zeros((3, size), dtype=np.int64)
        new_cand[0] = -1
        new_cand[2] = -1
        for q in range(self.nq):
            n = self.q_len[q]
            new_val[q * cap:q * cap + n] = self.f_val[q * old:q * old + n]
            new_enc[q * cap:q * cap + n] = self.f_enc[q * old:q * old + n]
            new_enc[q * cap + n:(q + 1) * cap] = q * _STRIDE + _PAD
            new_cand[:, q * cap:q * cap + n] = \
                self.f_cand[:, q * old:q * old + n]
        self.f_val, self.f_enc, self.f_cand = new_val, new_enc, new_cand
        self.cap = cap
        self.qoff = np.arange(self.maxq, dtype=np.int64) * cap
        self.layout_gen += 1

    def _pool_append(self, values) -> int:
        np = self.np
        n = self.pool_n
        w = len(values)
        rows, width = self.pool.shape
        if n == rows or w > width:
            new = np.zeros((max(2 * rows, n + 1), max(width, w)),
                           dtype=np.int64)
            new[:n, :width] = self.pool[:n]
            self.pool = new
        self.pool[n, :w] = values
        self.pool_n = n + 1
        return n

    def lock_table(self):
        if self._lq_stale:
            np = self.np
            lids = self._lock_queues
            n_lid = max(lids) + 1 if lids else 1
            width = max((len(v) for v in lids.values()), default=1)
            table = np.full((n_lid, width), -1, dtype=np.int64)
            for lid, qs in lids.items():
                table[lid, :len(qs)] = qs
            self.lq_table = table
            self._lq_stale = False
        return self.lq_table

    # -- restore path --------------------------------------------------------

    @classmethod
    def from_history(cls, np, cs_history) -> "NpOnlineState":
        """Full resync from the canonical ``SPDOnline.cs_history``
        (after checkpoint restore; queue ids follow insertion order,
        which is deterministic but need not match the original run —
        queue order never affects the fix-point)."""
        out = cls(np)
        for (tid, lid), records in cs_history.items():
            for rec in records:
                out.on_acquire(tid, lid, rec.acq_val, rec.acq_idx)
                if rec.rel_ts is not None:
                    out.on_release(tid, lid, rec.acq_val, rec.rel_val,
                                   rec.rel_ts._v)
        return out


class NpOnlineClosure:
    """Drop-in ``_OnlineClosure`` backed by :class:`NpOnlineState`."""

    __slots__ = ("_owner", "_cl", "_clock", "_dirty", "_cursor", "_pos",
                 "_nq", "_lgen")

    def __init__(self, owner) -> None:
        self._owner = owner
        st = owner._np
        #: python mirror of the closure clock — the hot path (seed
        #: joins, component reads, the no-growth early exit) never
        #: touches numpy.
        self._cl: List[int] = []
        self._clock = None
        self._dirty = False
        self._cursor = None
        self._pos = None
        self._nq = 0
        self._lgen = st.layout_gen

    # -- the _OnlineClosure surface -----------------------------------------

    def component(self, tid: int) -> int:
        cl = self._cl
        return cl[tid] if tid < len(cl) else 0

    def canonical_clock(self) -> List[int]:
        """Backend-agnostic checkpoint form (see SPDOnline.checkpoint)."""
        return list(self._cl)

    def seed_values(self, values) -> None:
        """Adopt restored clock components (rebuild-from-checkpoint)."""
        self._join(values)

    def _join(self, values) -> bool:
        cl = self._cl
        n = len(cl)
        if len(values) > n:
            cl.extend(0 for _ in range(len(values) - n))
        grew = False
        clock = self._clock
        nc = len(clock) if clock is not None else 0
        for i, v in enumerate(values):
            if v > cl[i]:
                cl[i] = v
                # Keep the ndarray clock in sync scalar-wise so dirty
                # computes skip the list->array copy (components past
                # its end are re-seeded when the array regrows).
                if i < nc:
                    clock[i] = v
                grew = True
        if grew:
            self._dirty = True
        return grew

    def join_seed(self, seed) -> None:
        self._join(seed._v)

    def compute(self, seed):
        self._join(seed._v)
        if not self._dirty:
            # At the fix-point and no seed grew the clock: nothing can
            # have become movable (see module docstring), so the
            # fix-point is unchanged.
            return self
        st = self._owner._np
        np = st.np
        nq = st.nq
        self._sync(np, st, nq)
        clock = self._clock
        cursor = self._cursor
        pos = self._pos
        q_tid = st.q_tid[:nq]
        q_lid = st.q_lid
        enc = st.f_enc[:nq * st.cap]
        while True:
            # One vectorized movable scan over every queue: slot
            # ``pos[q]`` holds the next unconsumed acquire value (or
            # the pad infinity — appends write it in place).
            moved = np.flatnonzero(st.f_val.take(pos) <= clock.take(q_tid))
            if not moved.size:
                break
            bound = clock.take(q_tid.take(moved))
            # One global searchsorted advances all moved cursors: the
            # encoded column is sorted, and queue q's entries own the
            # value range [q*stride, (q+1)*stride).
            nc = np.searchsorted(enc, bound + moved * _STRIDE, side="right")
            cursor[moved] = nc - st.qoff.take(moved)
            pos[moved] = nc
            # Candidate step for every lock a cursor moved on, batched
            # through the padded lock table: a consumed record
            # contributes its release clock when it is not the
            # lock-latest candidate (mutex => already released), has
            # its release recorded, and its release value is not yet
            # inside the closure.
            lids = q_lid.take(moved).tolist()
            lids = lids if len(lids) == 1 else sorted(set(lids))
            qs = st.lock_table()[lids]
            qsc = np.maximum(qs, 0)
            # Each queue's last consumed record sits at slot
            # ``cursor-1``; gather its candidate row *fresh* from the
            # shared columns — a record can be consumed while its
            # critical section is still open, and the release lands in
            # ``f_cand`` only afterwards, so any copy taken at
            # consumption time would miss it forever.
            cur = cursor.take(qsc)
            lv = st.f_cand[:, st.qoff.take(qsc) + np.maximum(cur - 1, 0)]
            ai = np.where((qs >= 0) & (cur > 0), lv[0], -1)
            valid = ai >= 0
            contrib = valid & (valid.sum(axis=1) >= 2)[:, None]
            contrib[np.arange(len(lids)), ai.argmax(axis=1)] = False
            rr = lv[2]
            contrib &= rr >= 0
            contrib &= lv[1] > clock.take(q_tid.take(qsc))
            rows = rr[contrib]
            if rows.size:
                self._owner._closure_iterations += len(lids)
                join = st.pool[rows].max(axis=0)
                w = join.size
                if w > len(clock):
                    clock = self._grow_clock(np, st, w)
                np.maximum(clock[:w], join, out=clock[:w])
        # Publish the grown clock back to the python mirror (full
        # width: joins can populate components past the mirror's end).
        self._cl[:] = clock.tolist()
        self._dirty = False
        return self

    # -- sizing --------------------------------------------------------------

    def _sync(self, np, st, nq: int) -> None:
        """Re-size per-queue rows and the clock; rebase cached slot
        offsets after a capacity relayout.  The ndarray clock tracks
        the python mirror scalar-wise (see ``_join``), so it only
        needs a bulk re-seed when (re)allocated."""
        width = max(st.t_need, len(self._cl), 1)
        clock = self._clock
        if clock is None or width > len(clock):
            clock = np.zeros(width, dtype=np.int64)
            n = len(self._cl)
            clock[:n] = self._cl
            self._clock = clock
        if nq > self._nq:
            cursor = np.zeros(nq, dtype=np.int64)
            if self._cursor is not None:
                cursor[:self._nq] = self._cursor[:self._nq]
            self._cursor = cursor
            self._nq = nq
            self._pos = st.qoff[:nq] + cursor
            self._lgen = st.layout_gen
        elif self._lgen != st.layout_gen:
            self._pos = st.qoff[:nq] + self._cursor
            self._lgen = st.layout_gen

    def _grow_clock(self, np, st, width: int):
        clock = np.zeros(width, dtype=np.int64)
        clock[:len(self._clock)] = self._clock
        self._clock = clock
        cl = self._cl
        if width > len(cl):
            cl.extend(0 for _ in range(width - len(cl)))
        return clock
