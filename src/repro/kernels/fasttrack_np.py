"""Run-batched FastTrack stepping.

FastTrack's per-event state machine is inherently sequential — every
access ticks the acting thread's clock — but real traces are full of
*runs*: maximal stretches of consecutive events with the same
(op, thread, variable) triple, produced by tight loops.  Inside a
read run or a write run the detector's trajectory is closed-form:

- the WW/WR/RW epoch checks compare against clock components the run
  never changes, so their outcome is decided by the first event (and
  race reports deduplicate per ``(variable, kind)`` anyway);
- after the first event the variable state is in the run's fixed
  point (exclusive read/write epoch of this thread, or SHARED with
  this thread's slot live), so the remaining ``k - 1`` events collapse
  to O(1) arithmetic: advance the clock by ``k - 1`` ticks and rewrite
  the epoch/slot to the final tick value.

The kernel finds run boundaries with a handful of whole-column numpy
comparisons, replays the first event of every run through the
canonical ``_step_coded`` machine, and applies the closed form for the
tail.  Telemetry counters (``epoch_ops``/``vector_ops``) are advanced
by exactly what the skipped events would have added, so results are
bit-identical to the python loop (proven by ``tests/test_kernels.py``).

Adaptive dispatch: on run-free traces (mean run length ~1) collapsing
buys nothing and the boundary scan is pure overhead, so the kernel
declines — cheaply, before touching any state — and the python loop
runs instead.
"""

from __future__ import annotations

import repro.kernels as kernels
from repro.trace.events import OP_READ, OP_WRITE
from repro.vc.clock import Epoch

#: below this batch size the boundary scan costs more than it saves
MIN_BATCH = 512

#: decline unless at least this fraction of events is collapsible
MIN_COLLAPSIBLE = 0.25


def feed_batch_runs(ft, compiled, lo: int, hi: int, base: int, np) -> bool:
    """Feed ``compiled[lo:hi]`` into detector ``ft`` run-batched.

    Returns False (no side effects) to decline: batch too small, trace
    not pre-interned, or not enough runs to pay for the scan.
    """
    n = hi - lo
    if n < MIN_BATCH or not ft._sync_tables(compiled):
        return False
    ops_a, tids_a, targs_a = compiled.columns()
    ops = np.frombuffer(ops_a, dtype=np.int8)[lo:hi]
    tids = np.frombuffer(tids_a, dtype=np.intc)[lo:hi]
    targs = np.frombuffer(targs_a, dtype=np.intc)[lo:hi]

    # Run boundaries: only read/write events may continue a run, so
    # every sync event is its own length-1 run and falls through to
    # the canonical per-event step.
    rw = (ops == OP_READ) | (ops == OP_WRITE)
    brk = np.empty(n, dtype=bool)
    brk[0] = True
    np.logical_or(ops[1:] != ops[:-1], tids[1:] != tids[:-1], out=brk[1:])
    brk[1:] |= targs[1:] != targs[:-1]
    brk[1:] |= ~rw[1:]
    starts = np.flatnonzero(brk)
    collapsed = n - len(starts)
    if collapsed < n * MIN_COLLAPSIBLE:
        return False

    starts_l = starts.tolist()
    ends_l = starts_l[1:] + [n]
    ops_l = ops[starts].tolist()
    tids_l = tids[starts].tolist()
    targs_l = targs[starts].tolist()
    step_coded = ft._step_coded
    clocks = ft._clocks
    materialized = ft._materialized
    variables = ft._vars
    res = ft.result
    for s, e, op, tid, target in zip(starts_l, ends_l, ops_l, tids_l,
                                     targs_l):
        idx = base + lo + s
        k = e - s
        if k == 1:
            step_coded(op, tid, target, idx)
            continue
        # The run's first event takes the canonical step; afterwards
        # the variable state is in the run's fixed point and each
        # remaining event is one tick plus an epoch rewrite.
        step_coded(op, tid, target, idx)
        last = idx + k - 1
        c = clocks[tid]
        materialized[tid] = True
        vs = variables[target]
        if op == OP_WRITE:
            # Tail writes: WW check hits the own-slot fast path, RW
            # check repeats the first event's (deduplicated) outcome.
            res.epoch_ops += 2 * (k - 1)
            c[tid] += k - 1
            vs.write = Epoch(c[tid] - 1, tid)
            vs.write_event = last
        elif vs.shared_reads is not None:
            # Tail reads in SHARED state: one slot update each.
            res.epoch_ops += k - 1
            c[tid] += k - 1
            sr = vs.shared_reads
            sr._ensure(tid + 1)
            sr[tid] = c[tid] - 1
            vs.shared_events[tid] = last
        else:
            # Tail reads stay exclusive: this thread owns the epoch.
            res.epoch_ops += 2 * (k - 1)
            c[tid] += k - 1
            vs.read = Epoch(c[tid] - 1, tid)
            vs.read_event = last
    kernels.record_dispatch("fasttrack_runs", "numpy", events=n)
    return True
