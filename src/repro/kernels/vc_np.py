"""2-D ndarray clock pool and bulk vector-clock operations.

The columnar engines store timestamps as canonical COW snapshots
(:class:`~repro.vc.clock.VectorClock`).  For the vectorized kernels the
same data is materialized once as a dense ``[n_events, n_threads]``
int64 matrix — row ``i`` is ``TS(e_i)`` zero-padded to the full thread
universe — so joins become row-wise ``np.maximum`` reductions and
``⊑`` tests become fancy-indexed comparisons.

This module never imports numpy at module level: callers hand in the
module object obtained from :func:`repro.kernels.numpy_or_none`.
"""

from __future__ import annotations

from itertools import chain
from typing import List, Sequence

#: cache attribute for :func:`timestamp_matrix` on TRFTimestamps
_MATRIX_ATTR = "_np_matrix"


def pack_rows(np, rows: Sequence[Sequence[int]], width: int):
    """Variable-length int rows -> zero-padded ``[len(rows), width]`` int64.

    One C-speed flattening pass (``np.fromiter`` over a chained
    iterator) plus a single scatter — no per-row ndarray construction.
    """
    n = len(rows)
    out = np.zeros((n, width), dtype=np.int64)
    if n == 0:
        return out
    lens = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
    total = int(lens.sum())
    if total == 0:
        return out
    flat = np.fromiter(chain.from_iterable(rows), dtype=np.int64, count=total)
    starts = np.cumsum(lens) - lens
    out[np.repeat(np.arange(n), lens),
        np.arange(total) - np.repeat(starts, lens)] = flat
    return out


def timestamp_matrix(np, timestamps):
    """The ``[n_events, n_threads]`` clock-pool matrix of a
    :class:`~repro.vc.timestamps.TRFTimestamps` (cached on the
    instance — timestamps are immutable once derived)."""
    cached = getattr(timestamps, _MATRIX_ATTR, None)
    if cached is not None:
        return cached
    matrix = pack_rows(
        np,
        [c._v for c in timestamps._ts],
        len(timestamps.universe),
    )
    setattr(timestamps, _MATRIX_ATTR, matrix)
    return matrix


def join_values(np, rows: Sequence[Sequence[int]]) -> List[int]:
    """Pointwise ``⨆`` of variable-length component lists."""
    return pack_rows(np, rows, max(len(r) for r in rows)).max(axis=0).tolist()
