"""Algorithm 2 (``CheckAbsDdlck``) batched across abstract patterns.

The python path (:func:`repro.core.spd_offline.check_pattern_sequences`)
checks one abstract pattern at a time: walk the acquire sequences with
one pointer each, grow a closure clock to the Algorithm 1 fix-point,
report when no current event landed inside, else skip swallowed
acquires (Corollary 4.5).  Checks of distinct patterns are completely
independent — each owns its pointers, its closure clock, and its
critical-section cursors — which makes the whole phase 2 a textbook
lockstep batch: this kernel advances *all* patterns through the same
pointer-walk rounds simultaneously over

- ``TS``   — the ``[n_events, n_threads]`` clock-pool matrix,
- flat per-(thread, lock) critical-section queues with per-pattern
  cursor/candidate state arrays of shape ``[n_patterns, n_queues]``,
- padded ``[n_patterns, k, max_seq]`` sequence tables.

Cursor advances use one global ``np.searchsorted`` over queue-encoded
acquire values (valid because per-queue values strictly increase and
closure clocks grow monotonically within a check — the same
Proposition 4.4 monotonicity the python cursors rely on), and release
joins scatter through ``np.maximum.at``.  The fix-point of Algorithm 1
is unique (its rules are monotone), so reaching it in a different
round order than the python worklist yields bit-identical clocks, and
hence bit-identical witnesses.

The kernel returns ``None`` to decline (no numpy, no acquires); the
caller then runs the canonical python path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import repro.kernels as kernels
import repro.obs as obs
from repro.kernels.vc_np import timestamp_matrix
from repro.trace.events import OP_ACQUIRE

#: pattern-state cells (patterns x queues) and sequence-table cells
#: (patterns x k x max_seq) per chunk — bounds peak memory to tens of MB
_MAX_STATE_CELLS = 4_000_000
_MAX_SEQ_CELLS = 8_000_000

_PREP_ATTR = "_np_offline_prep"


class _Prep:
    """Per-trace immutable arrays shared by every batch (cached on the
    TRFTimestamps instance, like the clock-pool matrix)."""

    def __init__(self, np, trace, timestamps) -> None:
        self.np = np
        compiled = trace.compiled
        index = trace.index
        ops, tids, targs = compiled.columns()
        ops = np.frombuffer(ops, dtype=np.int8)
        targs = np.frombuffer(targs, dtype=np.intc)
        self.slots = np.frombuffer(timestamps._slots, dtype=np.intc).astype(np.int64)
        self.vals = np.frombuffer(timestamps._vals, dtype=np.intc).astype(np.int64)
        self.pred = np.frombuffer(index.thread_pred, dtype=np.intc).astype(np.int64)
        match = np.frombuffer(index.match, dtype=np.intc).astype(np.int64)
        self.width = len(timestamps.universe)
        self.ts = timestamp_matrix(np, timestamps)
        self.n_locks = n_locks = max(len(compiled.locks_tab), 1)

        acq = np.flatnonzero(ops == OP_ACQUIRE)
        self.n_entries = acq.size
        if not acq.size:
            return
        # Group acquires into per-(thread slot, lock) queues; the stable
        # sort keeps trace order (and with it strictly increasing
        # acq_val) inside each queue.
        qkey = self.slots[acq] * n_locks + targs[acq]
        order = np.argsort(qkey, kind="stable")
        entries = acq[order].astype(np.int64)
        qk = qkey[order]
        bounds = np.flatnonzero(np.diff(qk)) + 1
        self.q_start = np.concatenate(
            ([0], bounds, [entries.size])).astype(np.int64)
        nq = self.q_start.size - 1
        self.n_queues = nq
        first_keys = qk[self.q_start[:-1]]
        self.q_slot = first_keys // n_locks
        self.q_lock = first_keys % n_locks
        q_len = np.diff(self.q_start)

        # Flat per-entry columns (queue-major).
        self.f_idx = entries
        self.f_val = self.vals[entries]
        rel = match[entries]
        self.f_rel = rel
        self.f_relval = np.where(rel >= 0, self.vals[np.maximum(rel, 0)], 0)
        # Encoded values: one sorted array answering "how many entries
        # of queue q have acq_val <= bound" with a single searchsorted.
        self.stride = int(self.f_val.max()) + 2
        qid_of_entry = np.repeat(np.arange(nq), q_len)
        self.enc = self.f_val + qid_of_entry * self.stride
        # Next-value lookup padded with one +inf sentinel per queue end,
        # so "value after cursor" is always a plain gather.
        self.inf = np.iinfo(np.int64).max // 2
        self.q_startp = self.q_start[:-1] + np.arange(nq)
        f_valp = np.full(entries.size + nq, self.inf, dtype=np.int64)
        f_valp[np.arange(entries.size) + qid_of_entry] = self.f_val
        self.f_valp = f_valp
        self.nv0 = self.f_val[self.q_start[:-1]]

        # lock -> its queue ids / slot -> its queue ids, padded with -1.
        self.lock_queues = self._grouped(np, self.q_lock, n_locks, nq)
        self.slot_queues = self._grouped(np, self.q_slot, self.width, nq)

    @staticmethod
    def _grouped(np, keys, n_keys, nq):
        counts = np.bincount(keys, minlength=n_keys)
        width = int(counts.max()) if nq else 0
        out = np.full((n_keys, max(width, 1)), -1, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        col = np.arange(nq) - starts[keys[order]]
        out[keys[order], col] = order
        return out


def _prep(np, trace, timestamps) -> _Prep:
    prep = getattr(timestamps, _PREP_ATTR, None)
    if prep is None:
        prep = _Prep(np, trace, timestamps)
        setattr(timestamps, _PREP_ATTR, prep)
    return prep


def check_patterns_batch(
    trace,
    patterns: Sequence[Tuple[Tuple[int, ...], ...]],
    timestamps,
) -> Optional[List[Optional[Tuple[int, ...]]]]:
    """Check every pattern; one witness tuple (or None) per pattern.

    Returns ``None`` when the kernel declines and the caller should run
    the python path instead.
    """
    np = kernels.numpy_or_none()
    if np is None or not patterns:
        return None
    prep = _prep(np, trace, timestamps)
    if not prep.n_entries:
        return None
    kernels.record_dispatch("offline_check", "numpy", len(patterns))
    # The same telemetry stream the python engine feeds: one closure
    # computation per pattern (a lower bound — the lockstep sweep
    # fuses the per-iteration recomputes the python loop would count).
    obs.count("closure.compute", len(patterns))

    results: List[Optional[Tuple[int, ...]]] = [None] * len(patterns)
    by_k = {}
    for i, seqs in enumerate(patterns):
        by_k.setdefault(len(seqs), []).append(i)
    for k, ids in by_k.items():
        longest = max(max((len(s) for s in patterns[i]), default=0)
                      for i in ids)
        chunk = max(1, min(
            _MAX_STATE_CELLS // max(prep.n_queues, 1),
            _MAX_SEQ_CELLS // max(k * max(longest, 1), 1),
        ))
        for lo in range(0, len(ids), chunk):
            part = ids[lo:lo + chunk]
            for pid, witness in zip(
                part, _check_chunk(np, prep, [patterns[i] for i in part], k)
            ):
                results[pid] = witness
    return results


def _gather_current(np, table, ptr):
    """``table[p, j, ptr[p, j]]`` for a ``[P, k, S]`` table."""
    return np.take_along_axis(table, ptr[:, :, None], axis=2)[:, :, 0]


def _check_chunk(np, prep, patterns, k):
    n = len(patterns)
    s_max = max(1, max(len(s) for p in patterns for s in p))
    rows = n * k
    seq_idx = np.full((rows, s_max), -1, dtype=np.int64)
    flat_rows = [s for p in patterns for s in p]
    lens = np.fromiter((len(s) for s in flat_rows), dtype=np.int64, count=rows)
    total = int(lens.sum())
    if total:
        flat = np.fromiter(
            (e for s in flat_rows for e in s), dtype=np.int64, count=total)
        starts = np.cumsum(lens) - lens
        seq_idx[np.repeat(np.arange(rows), lens),
                np.arange(total) - np.repeat(starts, lens)] = flat
    seq_idx = seq_idx.reshape(n, k, s_max)
    seq_len = lens.reshape(n, k)
    safe = np.maximum(seq_idx, 0)
    pad = seq_idx < 0
    seq_val = np.where(pad, prep.inf, prep.vals[safe])
    seq_slot = np.where(pad, 0, prep.slots[safe])
    seq_pred = np.where(pad, -1, prep.pred[safe])

    nq = prep.n_queues
    width = prep.width
    clock = np.zeros((n, width), dtype=np.int64)
    ptr = np.zeros((n, k), dtype=np.int64)
    nv = np.broadcast_to(prep.nv0, (n, nq)).copy()
    last_ai = np.full((n, nq), -1, dtype=np.int64)
    last_rr = np.full((n, nq), -1, dtype=np.int64)
    last_rv = np.zeros((n, nq), dtype=np.int64)
    witness = np.full((n, k), -1, dtype=np.int64)
    alive = (seq_len > 0).all(axis=1)

    active = np.flatnonzero(alive)
    while active.size:
        ptr_a = ptr[active]
        cur_idx = _gather_current(np, seq_idx[active], ptr_a)
        # Join thread-local predecessor timestamps of the current
        # instantiation into the (monotone) closure clocks.
        before = clock[active].copy()
        for j in range(k):
            pr = seq_pred[active, j, ptr_a[:, j]]
            valid = pr >= 0
            if valid.any():
                rows_v = active[valid]
                clock[rows_v] = np.maximum(clock[rows_v], prep.ts[pr[valid]])
        g_pat, g_slot = np.nonzero(clock[active] > before)
        _closure(np, prep, active[g_pat], g_slot,
                 clock, nv, last_ai, last_rr, last_rv)
        # Membership (the O(1) epoch test, batched): report when every
        # current event stayed outside the closure.
        cur_val = _gather_current(np, seq_val[active], ptr_a)
        cur_slot = _gather_current(np, seq_slot[active], ptr_a)
        inside = cur_val <= clock[active[:, None], cur_slot]
        hit = ~inside.any(axis=1)
        if hit.any():
            witness[active[hit]] = cur_idx[hit]
            alive[active[hit]] = False
        rest = active[~hit]
        if rest.size:
            # Corollary 4.5: advance each pointer to its first acquire
            # outside the closure (the +inf pads count as outside, so
            # an exhausted sequence parks its pointer at len(seq)).
            bound = clock[rest[:, None, None], seq_slot[rest]]
            outside = seq_val[rest] > bound
            cand = outside & (np.arange(s_max)[None, None, :]
                              >= ptr[rest][:, :, None])
            has = cand.any(axis=2)
            first = np.where(has, cand.argmax(axis=2), s_max)
            ptr[rest] = first
            dead = (first >= seq_len[rest]).any(axis=1)
            alive[rest[dead]] = False
        active = np.flatnonzero(alive)

    return [
        tuple(int(e) for e in witness[i]) if witness[i, 0] >= 0 else None
        for i in range(n)
    ]


def _closure(np, prep, pat, slot, clock, nv, last_ai, last_rr, last_rv):
    """Drive every pattern's Algorithm 1 fix-point, lockstep.

    ``(pat, slot)`` are the (pattern row, clock slot) pairs that grew;
    each round advances the cursors those slots can move, joins the
    resulting release contributions, and seeds the next round with the
    slots the joins grew.  Terminates because clocks and cursors grow
    monotonically toward finite maxima.
    """
    n_locks = prep.n_locks
    while pat.size:
        qcand = prep.slot_queues[slot]
        valid = qcand >= 0
        p2 = np.broadcast_to(pat[:, None], qcand.shape)[valid]
        q2 = qcand[valid]
        movable = nv[p2, q2] <= clock[p2, prep.q_slot[q2]]
        pm = p2[movable]
        qm = q2[movable]
        if not pm.size:
            return
        # Bulk cursor advance: cursor = #{acq_val <= bound} per queue,
        # answered by one searchsorted over the queue-encoded values.
        bound = clock[pm, prep.q_slot[qm]]
        nc = np.searchsorted(
            prep.enc, bound + qm * prep.stride, side="right") - prep.q_start[qm]
        fi = prep.q_start[qm] + nc - 1
        last_ai[pm, qm] = prep.f_idx[fi]
        last_rr[pm, qm] = prep.f_rel[fi]
        last_rv[pm, qm] = prep.f_relval[fi]
        nv[pm, qm] = prep.f_valp[prep.q_startp[qm] + nc]
        # Contributions, per affected (pattern, lock): of the per-thread
        # last candidates, all but the trace-latest contribute their
        # release clocks — skipping releases already inside the closure.
        ukey = np.unique(pm * n_locks + prep.q_lock[qm])
        up = ukey // n_locks
        qs = prep.lock_queues[ukey % n_locks]
        qvalid = qs >= 0
        qsafe = np.where(qvalid, qs, 0)
        ai = np.where(qvalid, last_ai[up[:, None], qsafe], -1)
        act = (ai >= 0).sum(axis=1) >= 2
        if not act.any():
            return
        up, qs, qvalid, qsafe, ai = (
            up[act], qs[act], qvalid[act], qsafe[act], ai[act])
        contrib = ai >= 0
        contrib[np.arange(up.size), ai.argmax(axis=1)] = False
        rr = np.where(qvalid, last_rr[up[:, None], qsafe], -1)
        rv = np.where(qvalid, last_rv[up[:, None], qsafe], 0)
        contrib &= rr >= 0
        contrib &= rv > clock[up[:, None], prep.q_slot[qsafe]]
        cu, cw = np.nonzero(contrib)
        if not cu.size:
            return
        affected = np.unique(up[cu])
        before = clock[affected].copy()
        np.maximum.at(clock, up[cu], prep.ts[rr[cu, cw]])
        g_pat, g_slot = np.nonzero(clock[affected] > before)
        pat = affected[g_pat]
        slot = g_slot
