"""Baseline-detector inner loops as array passes.

Goodlock's lock-order-graph construction is a per-event scan over the
held-lock pool — one python iteration per (held, acquired) pair.  The
kernel here expands the same pairs with ``np.repeat`` gathers, dedupes
edges with one sort, and rebuilds the exact :class:`DiGraph` the python
loop would have built: node interning follows first appearance in the
interleaved ``(held, target)`` stream, and the per-edge witness-event
lists stay in ascending event order (a stable sort of an already
event-ordered stream).  Returns ``None`` to decline (no numpy, or a
trace too small to amortize the array setup); the caller then runs the
canonical python loop.

The naive baseline needs no kernel of its own: a concrete deadlock
pattern is a batch of singleton event sequences, so it rides
:func:`repro.kernels.offline_np.check_patterns_batch` directly (see
``repro.baselines.naive``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import repro.kernels as kernels
from repro.graph.digraph import DiGraph
from repro.trace.events import OP_ACQUIRE
from repro.trace.trace import Trace

#: below this acquire count the python loop wins on constant factors
MIN_ACQUIRES = 64


def build_lock_graph_np(
    trace: Trace,
) -> Optional[Tuple[DiGraph, Dict[Tuple[int, int], List[int]]]]:
    """``(lock-order graph, edge -> witness acquires)``, or ``None``."""
    np = kernels.numpy_or_none()
    if np is None:
        return None
    ops, _, targs = trace.compiled.columns()
    ops = np.frombuffer(ops, dtype=np.int8)
    acq = np.flatnonzero(ops == OP_ACQUIRE)
    if acq.size < MIN_ACQUIRES:
        return None
    index = trace.index
    targs = np.frombuffer(targs, dtype=np.intc).astype(np.int64)
    held_id = np.frombuffer(index.held_id, dtype=np.intc).astype(np.int64)
    held_offsets = np.frombuffer(
        index.held_offsets, dtype=np.intc).astype(np.int64)
    held_lengths = np.frombuffer(
        index.held_lengths, dtype=np.intc).astype(np.int64)
    held_pool = np.frombuffer(index.held_pool, dtype=np.intc).astype(np.int64)

    # Expand each acquire into its (held, target, event) pair rows, in
    # event order with pool order within an event — the python scan's
    # exact emission order.
    hid = held_id[acq]
    lens = held_lengths[hid]
    total = int(lens.sum())
    kernels.record_dispatch("goodlock", "numpy", events=total)
    graph: DiGraph = DiGraph()
    edge_events: Dict[Tuple[int, int], List[int]] = {}
    if not total:
        return graph, edge_events
    starts = np.cumsum(lens) - lens
    gather = np.arange(total) - np.repeat(starts, lens) + np.repeat(
        held_offsets[hid], lens)
    src = held_pool[gather]
    dst = np.repeat(targs[acq], lens)
    evt = np.repeat(acq, lens)
    keep = src != dst
    src, dst, evt = src[keep], dst[keep], evt[keep]
    if not src.size:
        return graph, edge_events

    # Node interning order = first appearance in the interleaved
    # (src, dst) stream, exactly as repeated add_edge calls would see.
    inter = np.empty(2 * src.size, dtype=np.int64)
    inter[0::2] = src
    inter[1::2] = dst
    vals, first = np.unique(inter, return_index=True)
    by_first = np.argsort(first)
    for lock in vals[by_first].tolist():
        graph.add_node(lock)
    node_of_val = np.empty(vals.size, dtype=np.int64)
    node_of_val[by_first] = np.arange(vals.size)
    src_idx = node_of_val[np.searchsorted(vals, src)]
    dst_idx = node_of_val[np.searchsorted(vals, dst)]

    # One stable sort groups the witness lists: the stream is already
    # ascending in event id, so within each (src, dst) group the order
    # is preserved.
    n_nodes = vals.size
    enc = src_idx * n_nodes + dst_idx
    order = np.argsort(enc, kind="stable")
    enc_sorted = enc[order]
    evt_sorted = evt[order]
    bounds = np.flatnonzero(np.diff(enc_sorted)) + 1
    group_enc = enc_sorted[np.concatenate(([0], bounds))]
    usrc = (group_enc // n_nodes).tolist()
    udst = (group_enc % n_nodes).tolist()
    run_src: List[List] = []
    for i, j, evts in zip(usrc, udst, np.split(evt_sorted, bounds)):
        edge_events[(graph.node_at(i), graph.node_at(j))] = evts.tolist()
        if run_src and run_src[-1][0] == i:
            run_src[-1][1].append(j)
        else:
            run_src.append([i, [j]])
    for i, js in run_src:
        graph.add_successors_sorted(i, js)
    return graph, edge_events
