"""SPDOnlineK's per-context swallow sweep over flat columns.

The python sweep (:meth:`repro.core.spd_online_k.SPDOnlineK._check_context`)
walks each free coordinate's signature queue one entry at a time,
skipping acquires swallowed by the context closure (Corollary 4.5).
Within one signature queue every entry belongs to the same thread (the
signature fixes it) and carries a strictly increasing ``ts_val`` (the
thread ticks at every event), so the walk from cursor ``i`` under bound
``b = T[tid]`` stops exactly at ``max(i, bisect_right(vals, b))``.

This mirror keeps the queues as one flat fixed-stride encoded column —
``enc[slot] = ts_val + qid * stride``, pad slots ``qid * stride + pad``
— the layout of :mod:`repro.kernels.online_np`, globally sorted by
construction, so *one* ``np.searchsorted`` resolves every free
coordinate of a context check at once.  Maintained write-through from
the acquire handler; rebuilt wholesale from the canonical
``_sig_entries`` lists after a checkpoint restore (queue ids follow
insertion order — they are never serialized and never affect results).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.kernels.online_np import _CAP0, _NQ0, _PAD, _STRIDE


class NpSigState:
    """Numpy mirror of one detector's per-signature acquire queues."""

    def __init__(self, np) -> None:
        self.np = np
        self.qid_of: Dict[Tuple, int] = {}
        self.nq = 0
        self.cap = _CAP0
        self.maxq = _NQ0
        self.q_len: List[int] = []
        self.qoff = np.arange(_NQ0, dtype=np.int64) * self.cap
        self.f_enc = self._pad_layout(_NQ0, self.cap)

    def _pad_layout(self, maxq: int, cap: int):
        """A fresh all-pad encoded column: sorted for any fill state."""
        np = self.np
        return (np.arange(maxq * cap, dtype=np.int64) // cap) * _STRIDE + _PAD

    def append(self, sig, ts_val: int) -> None:
        qid = self.qid_of.get(sig)
        if qid is None:
            qid = self.nq
            self.qid_of[sig] = qid
            if qid == self.maxq:
                self._grow_queues()
            self.q_len.append(0)
            self.nq += 1
        n = self.q_len[qid]
        if n == self.cap:
            self._relayout(2 * self.cap)
        self.f_enc[qid * self.cap + n] = ts_val + qid * _STRIDE
        self.q_len[qid] = n + 1

    def _grow_queues(self) -> None:
        np = self.np
        old_size = self.maxq * self.cap
        self.maxq *= 2
        arr = self._pad_layout(self.maxq, self.cap)
        arr[:old_size] = self.f_enc
        self.f_enc = arr
        self.qoff = np.arange(self.maxq, dtype=np.int64) * self.cap

    def _relayout(self, cap: int) -> None:
        """Double the uniform per-queue capacity (rare: O(log N) times)."""
        np = self.np
        old = self.cap
        arr = self._pad_layout(self.maxq, cap)
        for q in range(self.nq):
            n = self.q_len[q]
            arr[q * cap:q * cap + n] = self.f_enc[q * old:q * old + n]
        self.f_enc = arr
        self.cap = cap
        self.qoff = np.arange(self.maxq, dtype=np.int64) * cap

    def sweep(self, sigs: Sequence, cursors: Sequence[int],
              bounds: Sequence[int]) -> List[int]:
        """Swallow positions for one context check, all coordinates at
        once: ``max(cursor, bisect_right(queue vals, bound))`` each."""
        np = self.np
        q = np.fromiter((self.qid_of[s] for s in sigs), np.int64,
                        count=len(sigs))
        enc = np.fromiter(bounds, np.int64, count=len(sigs)) + q * _STRIDE
        nc = np.searchsorted(self.f_enc, enc, side="right") - self.qoff.take(q)
        return np.maximum(
            np.fromiter(cursors, np.int64, count=len(sigs)), nc).tolist()

    @classmethod
    def from_entries(cls, np, sig_entries) -> "NpSigState":
        """Full resync from the canonical ``SPDOnlineK._sig_entries``
        (after checkpoint restore)."""
        out = cls(np)
        for sig, entries in sig_entries.items():
            for entry in entries:
                out.append(sig, entry.ts_val)
        return out
