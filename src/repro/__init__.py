"""repro — Sound Dynamic Deadlock Prediction in Linear Time.

A full Python reproduction of Tunç, Mathur, Pavlogiannis & Viswanathan,
PLDI 2023.  The package detects *sync-preserving deadlocks* in
execution traces of concurrent programs:

>>> from repro import parse_trace, spd_offline
>>> trace = parse_trace('''
... t1|acq(l1)
... t1|acq(l2)
... t1|rel(l2)
... t1|rel(l1)
... t2|acq(l2)
... t2|acq(l1)
... t2|rel(l1)
... t2|rel(l2)
... ''')
>>> result = spd_offline(trace)
>>> result.num_deadlocks
1

Main entry points: :func:`spd_offline` (Algorithm 3, all deadlock
sizes, two-phase) and :func:`spd_online` / :class:`SPDOnline`
(Algorithm 4, size-2, streaming).
"""

from repro.core import (
    AbstractDeadlockPattern,
    DeadlockPattern,
    DeadlockReport,
    SPDOnline,
    SPDOfflineResult,
    abstract_deadlock_patterns,
    build_abstract_lock_graph,
    find_concrete_patterns,
    is_deadlock_pattern,
    sp_closure_events,
    sp_races,
    is_sp_race,
    spd_offline,
    spd_online,
)
from repro.trace import (
    Event,
    Trace,
    TraceBuilder,
    check_well_formed,
    compute_stats,
    format_trace,
    parse_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractDeadlockPattern",
    "DeadlockPattern",
    "DeadlockReport",
    "SPDOnline",
    "SPDOfflineResult",
    "abstract_deadlock_patterns",
    "build_abstract_lock_graph",
    "find_concrete_patterns",
    "is_deadlock_pattern",
    "sp_closure_events",
    "sp_races",
    "is_sp_race",
    "spd_offline",
    "spd_online",
    "Event",
    "Trace",
    "TraceBuilder",
    "check_well_formed",
    "compute_stats",
    "format_trace",
    "parse_trace",
    "__version__",
]
