"""Per-trace statistics — the left half of Table 1.

Columns 2-6 of Table 1 report, for each benchmark trace: the number of
events N, threads T, variables V, locks L, and acquire+request events
A/R.  :func:`compute_stats` derives all of them plus the lock-nesting
depth in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (Table 1 columns 2-6)."""

    name: str
    num_events: int
    num_threads: int
    num_variables: int
    num_locks: int
    num_acquires: int
    num_requests: int
    lock_nesting_depth: int

    @property
    def acquires_and_requests(self) -> int:
        """The "A/R" column of Table 1."""
        return self.num_acquires + self.num_requests

    def row(self) -> tuple:
        return (
            self.name,
            self.num_events,
            self.num_threads,
            self.num_variables,
            self.num_locks,
            self.acquires_and_requests,
        )

    def as_dict(self) -> dict:
        """JSON-ready form (used by campaign cells and reports)."""
        return {
            "events": self.num_events,
            "threads": self.num_threads,
            "variables": self.num_variables,
            "locks": self.num_locks,
            "acquires": self.num_acquires,
            "requests": self.num_requests,
            "acquires_and_requests": self.acquires_and_requests,
            "nesting": self.lock_nesting_depth,
        }


#: Table 1 column order for the characteristics half, as (header, key)
#: pairs over :meth:`TraceStats.as_dict` — shared by the CLI and the
#: campaign report emitter so the two stay in sync.
TABLE1_COLUMNS = (
    ("N", "events"),
    ("T", "threads"),
    ("V", "variables"),
    ("L", "locks"),
    ("A/R", "acquires_and_requests"),
    ("Nest", "nesting"),
)


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``.

    Every number is already in the :class:`~repro.trace.index.TraceIndex`
    columns, so this is O(1) beyond the (shared, cached) index pass."""
    from repro.trace.trace import as_trace

    trace = as_trace(trace)
    index = trace.index
    return TraceStats(
        name=trace.name,
        num_events=len(trace),
        num_threads=len(index.thread_order),
        num_variables=len(index.var_order),
        num_locks=len(index.lock_order),
        num_acquires=index.num_acquires,
        num_requests=index.num_requests,
        lock_nesting_depth=index.lock_nesting_depth,
    )
