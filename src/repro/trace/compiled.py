"""Interned, columnar trace representation (the compiled event pipeline).

A :class:`CompiledTrace` stores a trace as three parallel integer
columns — op code, thread id, target id — plus string intern tables for
threads, locks, and variables and a sparse location map.  Compared to a
list of :class:`~repro.trace.events.Event` objects this:

- interns every thread/lock/variable name to a dense int **once, at
  parse time**, so detectors index lists instead of hashing strings;
- dispatches on int op codes (:data:`~repro.trace.events.OP_ACQUIRE`
  etc.) instead of string comparisons and property calls;
- holds events in ``array`` columns (a few bytes per event) instead of
  per-event Python objects, so hundred-million-event traces fit.

Target ids are per-kind: reads/writes index the variable table,
acquire/release/request the lock table, fork/join the thread table.

:func:`load_compiled_trace` reads the RAPID "STD" text format through a
chunked streaming reader (``.gz`` transparently inflated block by
block) — the whole file is never resident as one string.
"""

from __future__ import annotations

import time
from array import array
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

import repro.obs as obs
from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_JOIN,
    OP_RELEASE,
    OP_REQUEST,
    Event,
    Op,
)

if TYPE_CHECKING:  # import cycle: trace.py wraps CompiledTrace
    from repro.trace.trace import Trace

#: Op codes whose target is a lock.
_LOCK_OPS = (OP_ACQUIRE, OP_RELEASE, OP_REQUEST)
#: Op codes whose target is a thread.
_THREAD_OPS = (OP_FORK, OP_JOIN)


class InternTable:
    """Bidirectional name <-> dense-int interning."""

    __slots__ = ("_ids", "names")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._ids: Dict[str, int] = {}
        self.names: List[str] = []
        for n in names:
            self.intern(n)

    def intern(self, name: str) -> int:
        i = self._ids.get(name)
        if i is None:
            i = len(self.names)
            self._ids[name] = i
            self.names.append(name)
        return i

    def get(self, name: str) -> Optional[int]:
        return self._ids.get(name)

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids


class CompiledTrace:
    """A trace compiled to interned columnar form.

    Iterating yields :class:`Event` objects (materialized on demand) so
    the compiled form is a drop-in replacement anywhere a plain event
    sequence is accepted; the streaming detectors bypass the
    materialization entirely via :meth:`columns`.
    """

    __slots__ = ("name", "ops", "thread_ids", "target_ids", "locs",
                 "threads_tab", "locks_tab", "vars_tab")

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.ops = array("b")
        self.thread_ids = array("i")
        self.target_ids = array("i")
        #: sparse event-index -> source location
        self.locs: Dict[int, str] = {}
        self.threads_tab = InternTable()
        self.locks_tab = InternTable()
        self.vars_tab = InternTable()

    # -- construction -------------------------------------------------------

    def append(self, thread: str, op: str, target: str,
               loc: Optional[str] = None) -> int:
        """Intern and append one event; returns its index."""
        code = Op.CODE.get(op)
        if code is None:
            raise ValueError(f"unknown operation kind: {op!r}")
        return self.append_coded(
            code, self.threads_tab.intern(thread), self._intern_target(code, target),
            loc,
        )

    def _intern_target(self, code: int, target: str) -> int:
        if code in _LOCK_OPS:
            return self.locks_tab.intern(target)
        if code in _THREAD_OPS:
            return self.threads_tab.intern(target)
        return self.vars_tab.intern(target)

    def append_coded(self, code: int, thread_id: int, target_id: int,
                     loc: Optional[str] = None) -> int:
        """Append one already-interned event; returns its index."""
        idx = len(self.ops)
        self.ops.append(code)
        self.thread_ids.append(thread_id)
        self.target_ids.append(target_id)
        if loc is not None:
            self.locs[idx] = loc
        return idx

    @classmethod
    def from_events(cls, events: Iterable[Event], name: str = "trace") -> "CompiledTrace":
        out = cls(name)
        for ev in events:
            out.append(ev.thread, ev.op, ev.target, ev.loc)
        return out

    @classmethod
    def from_trace(cls, trace: "Trace") -> "CompiledTrace":
        compiled = getattr(trace, "compiled", None)
        if isinstance(compiled, CompiledTrace):
            return compiled
        return cls.from_events(trace, name=trace.name)

    # -- columnar access ----------------------------------------------------

    def columns(self) -> Tuple[array, array, array]:
        """The (ops, thread_ids, target_ids) parallel columns."""
        return self.ops, self.thread_ids, self.target_ids

    def target_name(self, idx: int) -> str:
        """The target string of the event at ``idx``."""
        code = self.ops[idx]
        tid = self.target_ids[idx]
        if code in _LOCK_OPS:
            return self.locks_tab.names[tid]
        if code in _THREAD_OPS:
            return self.threads_tab.names[tid]
        return self.vars_tab.names[tid]

    def location_of(self, idx: int) -> str:
        """Source location for bug deduplication (falls back to index)."""
        loc = self.locs.get(idx)
        return loc if loc is not None else f"@{idx}"

    # -- sequence protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def event(self, idx: int) -> Event:
        """Materialize the event at ``idx``."""
        return Event(
            idx,
            self.threads_tab.names[self.thread_ids[idx]],
            Op.NAMES[self.ops[idx]],
            self.target_name(idx),
            self.locs.get(idx),
        )

    def __getitem__(self, idx: int) -> Event:
        return self.event(idx)

    def __iter__(self) -> Iterator[Event]:
        thread_names = self.threads_tab.names
        op_names = Op.NAMES
        locs = self.locs
        for idx in range(len(self.ops)):
            yield Event(
                idx,
                thread_names[self.thread_ids[idx]],
                op_names[self.ops[idx]],
                self.target_name(idx),
                locs.get(idx),
            )

    def project(self, event_indices: Iterable[int],
                name: Optional[str] = None) -> "CompiledTrace":
        """The subsequence restricted to ``event_indices``, columnar.

        Events keep their relative order; indices are renumbered.  The
        intern tables are shared by reference (a projection never
        introduces new names), so the copy is just the three filtered
        int columns plus the remapped sparse location map — no
        ``Event`` objects.  Used by closure-set reorder/witness checks
        and windowed detectors on large closures.
        """
        wanted = sorted(set(event_indices))
        out = CompiledTrace.__new__(CompiledTrace)
        out.name = name or f"{self.name}|proj"
        out.ops = array("b", (self.ops[i] for i in wanted))
        out.thread_ids = array("i", (self.thread_ids[i] for i in wanted))
        out.target_ids = array("i", (self.target_ids[i] for i in wanted))
        out.threads_tab = self.threads_tab
        out.locks_tab = self.locks_tab
        out.vars_tab = self.vars_tab
        locs = self.locs
        if locs:
            out.locs = {
                new: locs[old] for new, old in enumerate(wanted) if old in locs
            }
        else:
            out.locs = {}
        return out

    def to_trace(self) -> "Trace":
        """Wrap in a :class:`Trace` view (O(1); nothing materializes)."""
        from repro.trace.trace import Trace

        return Trace(self, name=self.name)

    def __repr__(self) -> str:
        return (
            f"CompiledTrace({self.name!r}, {len(self.ops)} events, "
            f"{len(self.threads_tab)} threads, {len(self.locks_tab)} locks, "
            f"{len(self.vars_tab)} vars)"
        )


class InterningDetectorMixin:
    """Shared string-event front end for int-keyed streaming detectors.

    Keeps the op-kind → intern-table routing (reads/writes → variables,
    fork/join → threads, lock ops → locks) in one place, next to
    :meth:`CompiledTrace._intern_target` which encodes the same rule
    for parse-time interning.  Subclasses provide the intern dicts
    ``_tid`` / ``_vid`` / ``_lid``, the ``_add_thread`` / ``_add_var``
    / ``_add_lock`` allocators, and ``_fresh()`` (whether a compiled
    trace's tables may still be adopted wholesale).
    """

    def _intern_event(self, event: Event) -> Tuple[int, int, int]:
        """Intern one string event; returns (op code, tid, target id)."""
        op = Op.CODE[event.op]
        tid = self._tid.get(event.thread)
        if tid is None:
            tid = self._add_thread(event.thread)
        if op in _LOCK_OPS:
            table, add = self._lid, self._add_lock
        elif op in _THREAD_OPS:
            table, add = self._tid, self._add_thread
        else:
            table, add = self._vid, self._add_var
        target_id = table.get(event.target)
        if target_id is None:
            target_id = add(event.target)
        return op, tid, target_id

    def _fresh(self) -> bool:
        raise NotImplementedError

    # -- the session feed protocol (repro.stream) ---------------------------

    def _sync_tables(self, compiled: "CompiledTrace") -> bool:
        """Track a (possibly growing) compiled trace's intern tables.

        Returns True when the detector's interned ids are guaranteed to
        equal ``compiled``'s — either because the detector adopted this
        trace's tables while fresh, or because it has been synced with
        the *same table objects* before and only needs to absorb the
        names appended since.  A detector fed from any other source
        first gets False and must fall back to string interning.
        """
        tabs = (compiled.threads_tab, compiled.locks_tab, compiled.vars_tab)
        synced = getattr(self, "_synced_tabs", None)
        if synced is None:
            if not self._fresh():
                return False
            self._synced_tabs = tabs
        elif not (synced[0] is tabs[0] and synced[1] is tabs[1]
                  and synced[2] is tabs[2]):
            return False
        for name in tabs[0].names[len(self._tid):]:
            self._add_thread(name)
        for name in tabs[1].names[len(self._lid):]:
            self._add_lock(name)
        for name in tabs[2].names[len(self._vid):]:
            self._add_var(name)
        return True

    def feed_batch(self, compiled: "CompiledTrace", lo: int, hi: int,
                   base: int = 0) -> None:
        """Consume one session batch: events ``[lo, hi)`` of ``compiled``.

        This is the one feed API every streaming consumer implements
        (see :mod:`repro.stream`): ``lo``/``hi`` index ``compiled``'s
        columns directly, and ``base`` is the global index of the
        trace's first retained event (non-zero only for bounded
        sessions that evicted a consumed prefix).  The default
        implementation streams interned op codes through
        ``_step_coded(op, tid, target_id, loc)``; detectors with a
        different coded signature override it.
        """
        if self._sync_tables(compiled):
            step = self._step_coded
            ops, tids, targs = compiled.columns()
            locs = compiled.locs
            for i in range(lo, hi):
                step(ops[i], tids[i], targs[i], locs.get(i))
        else:
            step_event = self.step
            for i in range(lo, hi):
                ev = compiled.event(i)
                if base:
                    ev = Event(base + i, ev.thread, ev.op, ev.target, ev.loc)
                step_event(ev)


def ensure_trace(trace) -> "Trace":
    """Adapt ``trace`` to a :class:`Trace` view (alias of
    :func:`repro.trace.trace.as_trace`, kept for compatibility).

    Since ``Trace`` became a thin view over ``CompiledTrace +
    TraceIndex`` this is O(1): no events are materialized and the
    derived relations are computed lazily, once, as int columns.
    """
    from repro.trace.trace import as_trace

    return as_trace(trace)


def compile_trace(trace_or_events, name: Optional[str] = None) -> CompiledTrace:
    """Compile a :class:`Trace` (or any event iterable) to columnar form."""
    if isinstance(trace_or_events, CompiledTrace):
        return trace_or_events
    compiled = getattr(trace_or_events, "compiled", None)
    if isinstance(compiled, CompiledTrace):
        return compiled
    inferred = name or getattr(trace_or_events, "name", None) or "trace"
    return CompiledTrace.from_events(trace_or_events, name=inferred)


# -- chunked streaming STD reader -------------------------------------------

_CHUNK_SIZE = 1 << 20  # 1 MiB of decompressed text per read


class TraceReadError(Exception):
    """A ``.std`` / ``.std.gz`` file could not be read: truncated gzip
    stream, corrupt deflate data, undecodable bytes, or an IO error
    mid-read.  Typed and recoverable — carries the path, the
    (decompressed) byte offset reached, and how many events had
    already parsed, so campaign runners can report the cell precisely
    instead of crashing the run.
    """

    def __init__(self, path: str, detail: str,
                 byte_offset: Optional[int] = None,
                 events_parsed: Optional[int] = None) -> None:
        self.path = path
        self.detail = detail
        self.byte_offset = byte_offset
        self.events_parsed = events_parsed
        msg = f"{path}: unreadable trace: {detail}"
        if byte_offset is not None:
            msg += f" (at decompressed byte offset {byte_offset}"
            if events_parsed is not None:
                msg += f", after {events_parsed} parsed event(s)"
            msg += ")"
        super().__init__(msg)


def _iter_std_lines(path: str, chunk_size: int = _CHUNK_SIZE,
                    state: Optional[dict] = None) -> Iterator[str]:
    """Yield lines of a ``.std`` / ``.std.gz`` file, reading in chunks.

    Decompression and line splitting are incremental: memory stays
    bounded by ``chunk_size`` regardless of trace length.  When a
    ``state`` dict is passed, ``state["offset"]`` tracks the
    decompressed byte offset consumed so far (error diagnostics).
    """
    import repro.faults as faults

    if path.endswith(".gz"):
        import gzip

        fh = gzip.open(path, "rt", encoding="utf-8", newline="")
    else:
        fh = open(path, "r", encoding="utf-8", newline="")
    try:
        tail = ""
        while True:
            faults.fire("std_read", path=path)
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            obs.count("trace.chunks")
            obs.count("trace.chunk_chars", len(chunk))
            if state is not None:
                state["offset"] = state.get("offset", 0) + \
                    len(chunk.encode("utf-8", "surrogatepass"))
            chunk = tail + chunk
            lines = chunk.split("\n")
            tail = lines.pop()
            for line in lines:
                yield line
        if tail:
            yield tail
    finally:
        fh.close()


def parse_compiled(lines: Iterable[str], name: str = "trace") -> CompiledTrace:
    """Parse STD-format lines directly into a :class:`CompiledTrace`.

    Accepts the same dialect as :func:`repro.trace.parser.parse_trace`
    (comments, blank lines, optional location field) but interns names
    and op codes as it goes, without building ``Event`` objects.
    """
    out = CompiledTrace(name)
    parse_std_into(out, lines)
    return out


def parse_std_into(out: CompiledTrace, lines: Iterable[str],
                   start_lineno: int = 1) -> int:
    """Parse STD-format lines, *appending* to ``out``; returns the next
    line number.

    The incremental core of :func:`parse_compiled`: a streaming session
    can keep calling this with successive line batches of one file
    (passing the returned line number back in) and the appended columns
    are byte-identical to a one-shot parse.
    """
    from repro.trace.parser import ParseError

    _n0 = len(out) if obs.enabled() else 0
    op_codes = Op.CODE
    threads_tab = out.threads_tab
    append_coded = out.append_coded
    intern_target = out._intern_target
    lineno = start_lineno - 1
    for lineno, raw in enumerate(lines, start=start_lineno):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        # thread | op ( target ) [| loc] — target may contain '|' but
        # not ')' (mirrors the parse_trace regex exactly).
        head, bar, rest0 = line.partition("|")
        op, paren, rest = rest0.partition("(")
        code = op_codes.get(op)
        close = rest.find(")")
        if code is None or not head or not bar or not paren or close < 0:
            raise ParseError(lineno, line, "malformed event")
        after = rest[close + 1:]
        if after and not after.startswith("|"):
            raise ParseError(lineno, line, "malformed event")
        target = rest[:close].strip()
        if not target:
            raise ParseError(lineno, line, "empty target")
        loc = after[1:].strip() if len(after) > 1 else None
        append_coded(
            code, threads_tab.intern(head.strip()), intern_target(code, target), loc
        )
    if obs.enabled():
        obs.count("trace.events_parsed", len(out) - _n0)
    return lineno + 1


def load_compiled_trace(path: str, name: str = "") -> CompiledTrace:
    """Stream-parse a trace file into compiled columnar form.

    The fast path for big logged traces: one pass, chunked IO, interned
    names, no intermediate ``Event`` objects or whole-file string.

    A file that cannot be *read* — truncated or bit-flipped gzip
    stream, undecodable bytes, IO error mid-stream — raises
    :class:`TraceReadError` identifying the byte offset and the number
    of events already parsed.  A missing file stays a plain
    ``FileNotFoundError``, and a malformed event line stays a
    ``ParseError`` with its line number.
    """
    import zlib

    out = CompiledTrace(name or path)
    state = {"offset": 0}
    _t0 = time.monotonic_ns() if obs.enabled() else 0
    try:
        parse_std_into(out, _iter_std_lines(path, state=state))
    except FileNotFoundError:
        raise
    except (OSError, EOFError, zlib.error, UnicodeDecodeError) as exc:
        raise TraceReadError(path, str(exc), byte_offset=state["offset"],
                             events_parsed=len(out)) from exc
    if _t0:
        obs.record_span("trace.load_compiled", _t0, time.monotonic_ns(),
                        cat="trace", path=path, events=len(out))
    return out
