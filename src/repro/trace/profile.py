"""Per-trace profiling beyond the Table 1 headline statistics.

Dynamic analyses live and die by trace shape: which locks are hot,
how deeply threads nest, how much of the trace is synchronization vs
memory traffic.  :func:`profile_trace` computes the per-lock and
per-thread breakdowns a practitioner checks before pointing a
predictor at a multi-million-event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.trace.events import OP_ACQUIRE, OP_READ, OP_WRITE
from repro.trace.trace import Trace, as_trace


@dataclass(frozen=True)
class LockProfile:
    """One lock's usage summary."""

    lock: str
    acquisitions: int
    threads: int
    max_held_span: int        # longest critical section, in events
    guarded_acquires: int     # acquisitions performed while held > 0

    @property
    def is_shared(self) -> bool:
        return self.threads > 1


@dataclass(frozen=True)
class ThreadProfile:
    """One thread's event mix."""

    thread: str
    events: int
    accesses: int
    acquisitions: int
    max_nesting: int


@dataclass
class TraceProfile:
    """Full profile: per-lock and per-thread breakdowns + ratios."""

    locks: Dict[str, LockProfile] = field(default_factory=dict)
    threads: Dict[str, ThreadProfile] = field(default_factory=dict)
    num_events: int = 0

    @property
    def sync_ratio(self) -> float:
        """Fraction of events that are lock operations."""
        if self.num_events == 0:
            return 0.0
        sync = sum(2 * lp.acquisitions for lp in self.locks.values())
        return min(1.0, sync / self.num_events)

    def hottest_locks(self, n: int = 5) -> List[LockProfile]:
        return sorted(
            self.locks.values(), key=lambda lp: -lp.acquisitions
        )[:n]

    def shared_locks(self) -> List[str]:
        return sorted(lp.lock for lp in self.locks.values() if lp.is_shared)

    def deadlock_prone_locks(self) -> List[str]:
        """Shared locks with nested (guarded) acquisitions — the only
        locks that can participate in a deadlock pattern."""
        return sorted(
            lp.lock
            for lp in self.locks.values()
            if lp.is_shared and lp.guarded_acquires > 0
        )


def profile_trace(trace: Trace) -> TraceProfile:
    """One-pass profile over the interned int columns.

    Reads the :class:`~repro.trace.compiled.CompiledTrace` op/thread/
    target columns and the :class:`~repro.trace.index.TraceIndex`
    held-set and ``match`` columns directly — no per-event ``Event``
    materialization, no string-keyed held-lock tuples — and interns
    back to names only for the final per-lock/per-thread records.
    Critical-section spans come straight from ``match`` (acquire ->
    matching release), which pairs exactly like the legacy
    release-time bookkeeping did.
    """
    trace = as_trace(trace)
    compiled = trace.compiled
    index = trace.index
    ops, tids, targs = compiled.columns()
    held_id = index.held_id
    held_lengths = index.held_lengths
    match = index.match

    n_threads = len(compiled.threads_tab.names)
    n_locks = len(compiled.locks_tab.names)
    lock_acqs = [0] * n_locks
    lock_threads: List[set] = [set() for _ in range(n_locks)]
    lock_guarded = [0] * n_locks
    lock_span = [0] * n_locks
    thread_events = [0] * n_threads
    thread_accesses = [0] * n_threads
    thread_acqs = [0] * n_threads
    thread_nest = [0] * n_threads

    for i in range(len(ops)):
        op = ops[i]
        tid = tids[i]
        thread_events[tid] += 1
        if op == OP_READ or op == OP_WRITE:
            thread_accesses[tid] += 1
        elif op == OP_ACQUIRE:
            lk = targs[i]
            lock_acqs[lk] += 1
            lock_threads[lk].add(tid)
            held = held_lengths[held_id[i]]
            if held:
                lock_guarded[lk] += 1
            thread_acqs[tid] += 1
            if held + 1 > thread_nest[tid]:
                thread_nest[tid] = held + 1
            m = match[i]
            if m >= 0 and m - i > lock_span[lk]:
                lock_span[lk] = m - i

    profile = TraceProfile(num_events=len(ops))
    lock_names = compiled.locks_tab.names
    for lk in range(n_locks):
        if not lock_acqs[lk]:
            continue
        name = lock_names[lk]
        profile.locks[name] = LockProfile(
            lock=name,
            acquisitions=lock_acqs[lk],
            threads=len(lock_threads[lk]),
            max_held_span=lock_span[lk],
            guarded_acquires=lock_guarded[lk],
        )
    thread_names = compiled.threads_tab.names
    for t in range(n_threads):
        if not thread_events[t]:
            continue
        name = thread_names[t]
        profile.threads[name] = ThreadProfile(
            thread=name,
            events=thread_events[t],
            accesses=thread_accesses[t],
            acquisitions=thread_acqs[t],
            max_nesting=thread_nest[t],
        )
    return profile
