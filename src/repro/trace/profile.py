"""Per-trace profiling beyond the Table 1 headline statistics.

Dynamic analyses live and die by trace shape: which locks are hot,
how deeply threads nest, how much of the trace is synchronization vs
memory traffic.  :func:`profile_trace` computes the per-lock and
per-thread breakdowns a practitioner checks before pointing a
predictor at a multi-million-event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.trace.trace import Trace


@dataclass(frozen=True)
class LockProfile:
    """One lock's usage summary."""

    lock: str
    acquisitions: int
    threads: int
    max_held_span: int        # longest critical section, in events
    guarded_acquires: int     # acquisitions performed while held > 0

    @property
    def is_shared(self) -> bool:
        return self.threads > 1


@dataclass(frozen=True)
class ThreadProfile:
    """One thread's event mix."""

    thread: str
    events: int
    accesses: int
    acquisitions: int
    max_nesting: int


@dataclass
class TraceProfile:
    """Full profile: per-lock and per-thread breakdowns + ratios."""

    locks: Dict[str, LockProfile] = field(default_factory=dict)
    threads: Dict[str, ThreadProfile] = field(default_factory=dict)
    num_events: int = 0

    @property
    def sync_ratio(self) -> float:
        """Fraction of events that are lock operations."""
        if self.num_events == 0:
            return 0.0
        sync = sum(2 * lp.acquisitions for lp in self.locks.values())
        return min(1.0, sync / self.num_events)

    def hottest_locks(self, n: int = 5) -> List[LockProfile]:
        return sorted(
            self.locks.values(), key=lambda lp: -lp.acquisitions
        )[:n]

    def shared_locks(self) -> List[str]:
        return sorted(lp.lock for lp in self.locks.values() if lp.is_shared)

    def deadlock_prone_locks(self) -> List[str]:
        """Shared locks with nested (guarded) acquisitions — the only
        locks that can participate in a deadlock pattern."""
        return sorted(
            lp.lock
            for lp in self.locks.values()
            if lp.is_shared and lp.guarded_acquires > 0
        )


def profile_trace(trace: Trace) -> TraceProfile:
    """One-pass profile of ``trace``."""
    profile = TraceProfile(num_events=len(trace))
    lock_acqs: Dict[str, int] = {}
    lock_threads: Dict[str, set] = {}
    lock_guarded: Dict[str, int] = {}
    lock_span: Dict[str, int] = {}
    open_at: Dict[Tuple[str, str], int] = {}

    thread_events: Dict[str, int] = {}
    thread_accesses: Dict[str, int] = {}
    thread_acqs: Dict[str, int] = {}
    thread_nest: Dict[str, int] = {}

    for ev in trace:
        thread_events[ev.thread] = thread_events.get(ev.thread, 0) + 1
        if ev.is_access:
            thread_accesses[ev.thread] = thread_accesses.get(ev.thread, 0) + 1
        elif ev.is_acquire:
            lk = ev.target
            lock_acqs[lk] = lock_acqs.get(lk, 0) + 1
            lock_threads.setdefault(lk, set()).add(ev.thread)
            held = trace.held_locks(ev.idx)
            if held:
                lock_guarded[lk] = lock_guarded.get(lk, 0) + 1
            thread_acqs[ev.thread] = thread_acqs.get(ev.thread, 0) + 1
            thread_nest[ev.thread] = max(
                thread_nest.get(ev.thread, 0), len(held) + 1
            )
            open_at[(ev.thread, lk)] = ev.idx
        elif ev.is_release:
            key = (ev.thread, ev.target)
            start = open_at.pop(key, None)
            if start is not None:
                span = ev.idx - start
                lock_span[ev.target] = max(lock_span.get(ev.target, 0), span)

    for lk, count in lock_acqs.items():
        profile.locks[lk] = LockProfile(
            lock=lk,
            acquisitions=count,
            threads=len(lock_threads.get(lk, ())),
            max_held_span=lock_span.get(lk, 0),
            guarded_acquires=lock_guarded.get(lk, 0),
        )
    for t, count in thread_events.items():
        profile.threads[t] = ThreadProfile(
            thread=t,
            events=count,
            accesses=thread_accesses.get(t, 0),
            acquisitions=thread_acqs.get(t, 0),
            max_nesting=thread_nest.get(t, 0),
        )
    return profile
