"""Fluent construction of traces for tests, examples, and generators."""

from __future__ import annotations

from typing import List, Optional

from repro.trace.events import Event, Op
from repro.trace.trace import Trace


class TraceBuilder:
    """Accumulates events and produces a :class:`Trace`.

    Example::

        t = (TraceBuilder()
             .acq("t1", "l1").acq("t1", "l2").rel("t1", "l2").rel("t1", "l1")
             .build("example"))
    """

    def __init__(self) -> None:
        self._events: List[Event] = []

    def _add(self, thread: str, op: str, target: str, loc: Optional[str]) -> "TraceBuilder":
        self._events.append(Event(len(self._events), thread, op, target, loc))
        return self

    def read(self, thread: str, var: str, loc: Optional[str] = None) -> "TraceBuilder":
        return self._add(thread, Op.READ, var, loc)

    def write(self, thread: str, var: str, loc: Optional[str] = None) -> "TraceBuilder":
        return self._add(thread, Op.WRITE, var, loc)

    def acq(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        return self._add(thread, Op.ACQUIRE, lock, loc)

    def rel(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        return self._add(thread, Op.RELEASE, lock, loc)

    def req(self, thread: str, lock: str, loc: Optional[str] = None) -> "TraceBuilder":
        return self._add(thread, Op.REQUEST, lock, loc)

    def fork(self, thread: str, child: str, loc: Optional[str] = None) -> "TraceBuilder":
        return self._add(thread, Op.FORK, child, loc)

    def join(self, thread: str, child: str, loc: Optional[str] = None) -> "TraceBuilder":
        return self._add(thread, Op.JOIN, child, loc)

    def cs(self, thread: str, *locks: str) -> "TraceBuilder":
        """Nested critical sections: ``cs(t, l, l')`` emits
        ``acq(l) acq(l') rel(l') rel(l)`` — the paper's ``cs(l, l')``
        shortcut from Fig. 2."""
        for lk in locks:
            self.acq(thread, lk)
        for lk in reversed(locks):
            self.rel(thread, lk)
        return self

    def append_event(
        self, thread: str, op: str, target: str, loc: Optional[str] = None
    ) -> "TraceBuilder":
        """Append an arbitrary event (generic escape hatch)."""
        return self._add(thread, op, target, loc)

    def extend(self, other: "TraceBuilder") -> "TraceBuilder":
        for ev in other._events:
            self._add(ev.thread, ev.op, ev.target, ev.loc)
        return self

    def extend_trace(self, trace) -> "TraceBuilder":
        """Append every event of an existing trace."""
        for ev in trace:
            self._add(ev.thread, ev.op, ev.target, ev.loc)
        return self

    def __len__(self) -> int:
        return len(self._events)

    def build(self, name: str = "trace") -> Trace:
        return Trace(self._events, name=name)
