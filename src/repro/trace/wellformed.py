"""Well-formedness checks for traces (paper Section 2).

A trace is well-formed when it abides by shared-memory semantics:

1. Critical sections on the same lock do not overlap across threads:
   between two acquires of lock ``l`` by different threads there must
   be a release by the first owner.
2. A thread releases only locks it holds.
3. Reentrant acquisition is rejected (the paper's model has non-
   reentrant locks; loggers flatten reentrancy).
4. Fork precedes every event of the forked thread; join follows every
   event of the joined thread; a thread is forked at most once.

:func:`check_well_formed` raises :class:`WellFormednessError` on the
first violation and returns the trace otherwise, so it composes:
``check_well_formed(parse_trace(text))``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.trace.events import Event
from repro.trace.trace import Trace


class WellFormednessError(Exception):
    """A trace violates shared-memory semantics."""

    def __init__(self, event: Event, reason: str) -> None:
        super().__init__(f"{reason} at {event}")
        self.event = event
        self.reason = reason


def check_well_formed(trace: Trace, strict_fork_join: bool = True) -> Trace:
    """Validate ``trace``; raise :class:`WellFormednessError` on violation.

    Args:
        trace: the trace to validate.
        strict_fork_join: when True, also enforce fork/join ordering
            constraints (rule 4).  Traces logged from partial runs may
            legitimately lack fork events for the main thread; the main
            thread (first thread observed) is always exempt.
    """
    owner: Dict[str, str] = {}
    held: Dict[str, Set[str]] = {}
    first_thread: Optional[str] = None
    started: Set[str] = set()
    forked: Set[str] = set()
    joined: Set[str] = set()

    for ev in trace:
        t = ev.thread
        if first_thread is None:
            first_thread = t
        if t not in held:
            held[t] = set()
        started.add(t)

        if t in joined:
            raise WellFormednessError(ev, f"event in thread {t} after join({t})")

        if ev.is_acquire:
            lock = ev.target
            if lock in owner:
                raise WellFormednessError(
                    ev, f"lock {lock} acquired while held by {owner[lock]}"
                )
            owner[lock] = t
            held[t].add(lock)
        elif ev.is_release:
            lock = ev.target
            if owner.get(lock) != t:
                raise WellFormednessError(ev, f"release of lock {lock} not held")
            del owner[lock]
            held[t].discard(lock)
        elif ev.is_request:
            pass  # requests carry no semantics beyond signalling intent
        elif ev.is_fork and strict_fork_join:
            child = ev.target
            if child in forked:
                raise WellFormednessError(ev, f"thread {child} forked twice")
            if child in started:
                raise WellFormednessError(ev, f"fork of already-running thread {child}")
            forked.add(child)
        elif ev.is_join and strict_fork_join:
            child = ev.target
            joined.add(child)

    if strict_fork_join:
        for t in started:
            if t != first_thread and forked and t not in forked:
                # Only enforce when the trace uses forks at all; logged
                # fragments often omit them entirely.
                raise WellFormednessError(
                    trace[trace.events_of_thread(t)[0]],
                    f"thread {t} runs without a fork event",
                )
    return trace


def is_well_formed(trace: Trace, strict_fork_join: bool = True) -> bool:
    """Boolean wrapper around :func:`check_well_formed`."""
    try:
        check_well_formed(trace, strict_fork_join=strict_fork_join)
        return True
    except WellFormednessError:
        return False


def has_well_nested_locks(trace: Trace) -> bool:
    """Whether every thread releases locks in LIFO order.

    SeqCheck requires well-nested critical sections and fails on
    hsqldb, which is not well-nested (Table 1, "F"); our algorithms do
    not need this property, but the baseline checks it.  Runs over the
    compiled int columns (one pass, no Event objects).
    """
    from repro.trace.events import OP_ACQUIRE, OP_RELEASE
    from repro.trace.trace import as_trace

    ops, tids, targs = as_trace(trace).compiled.columns()
    stacks: Dict[int, List[int]] = {}
    for i in range(len(ops)):
        op = ops[i]
        if op == OP_ACQUIRE:
            stacks.setdefault(tids[i], []).append(targs[i])
        elif op == OP_RELEASE:
            stack = stacks.setdefault(tids[i], [])
            if not stack or stack[-1] != targs[i]:
                return False
            stack.pop()
    return True
