"""Columnar derived relations: the canonical analysis substrate.

A :class:`TraceIndex` computes every derived relation of paper
Section 2 — reads-from, matching acquire/release, per-thread position,
and held-lock sets — in one O(N) pass **directly over the int columns**
of a :class:`~repro.trace.compiled.CompiledTrace`.  No ``Event``
objects are materialized and no string is hashed: relations come out as
flat integer arrays keyed by event index and interned thread/lock/
variable ids.

Held-lock sets are stored as offsets into one shared pool rather than
per-event tuples: each distinct held *stack* (a short tuple of interned
lock ids) is appended to :attr:`TraceIndex.held_pool` exactly once, and
every event stores just the id of its stack.  Traces hold few distinct
lock combinations, so the pool stays tiny even for huge traces — the
same flat-columns-over-pointer-structures move PaC-trees use to make
collection analyses cache-friendly.

Layering (see README "Architecture"):

- :class:`CompiledTrace` — the raw interned event columns (parse-time);
- :class:`TraceIndex` — derived relations as int arrays (this module);
- :class:`~repro.trace.trace.Trace` — a thin string-keyed *view* over a
  ``CompiledTrace + TraceIndex`` pair, preserving the classic API.

Detectors consume the index columns directly; user-facing code and
tests keep the friendly string API of ``Trace``.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, List, Tuple

from repro.trace.compiled import CompiledTrace
from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_READ,
    OP_RELEASE,
    OP_REQUEST,
    OP_WRITE,
)


class TraceError(Exception):
    """Raised when a trace violates shared-memory semantics."""


class TraceIndex:
    """All derived relations of one compiled trace, as int columns.

    Event-indexed columns (length N, ``-1`` = absent):

    - :attr:`rf` — for reads, the index of the write observed
      (``-1`` = initial value); meaningless for non-reads.
    - :attr:`match` — matching release of an acquire and vice versa.
    - :attr:`thread_pos` — per-thread position of the event.
    - :attr:`thread_pred` — previous event of the same thread.
    - :attr:`held_id` — id of the event's held-lock stack; resolve
      through :attr:`held_offsets` / :attr:`held_lengths` into
      :attr:`held_pool` (or use :meth:`held_ids` /
      :meth:`held_frozen`).

    Entity tables (interned ids, order of first appearance — matching
    the classic ``Trace.threads`` / ``locks`` / ``variables`` order):

    - :attr:`thread_order` — thread ids in order of first *acting*
      appearance (fork/join targets that never act are excluded);
    - :attr:`lock_order` / :attr:`var_order` — likewise for locks
      (first lock op) and variables (first access);
    - :attr:`events_by_thread` / :attr:`acquires_by_lock` — per-id
      event lists, indexed by interned id;
    - :attr:`fork_of` — thread id -> index of the first fork event
      targeting it (the causality seed for a thread's first event).
    """

    __slots__ = (
        "compiled", "rf", "match", "thread_pos", "thread_pred",
        "held_id", "held_offsets", "held_lengths", "held_pool",
        "thread_order", "lock_order", "var_order",
        "events_by_thread", "acquires_by_lock", "fork_of",
        "num_acquires", "num_requests", "lock_nesting_depth",
        "_held_frozen",
    )

    def __init__(self, compiled: CompiledTrace) -> None:
        self.compiled = compiled
        ops, tids, targs = compiled.columns()
        n = len(ops)

        minus_one = array("i", [-1])
        rf = minus_one * n
        match = minus_one * n
        thread_pos = minus_one * n
        thread_pred = minus_one * n
        held_id = minus_one * n

        held_pool = array("i")
        held_offsets = array("i", [0])
        held_lengths = array("i", [0])
        pool_ids: Dict[Tuple[int, ...], int] = {(): 0}

        n_threads = len(compiled.threads_tab)
        n_locks = len(compiled.locks_tab)
        n_vars = len(compiled.vars_tab)
        events_by_thread: List[List[int]] = [[] for _ in range(n_threads)]
        acquires_by_lock: List[List[int]] = [[] for _ in range(n_locks)]
        thread_order: List[int] = []
        lock_order: List[int] = []
        var_order: List[int] = []
        seen_thread = bytearray(n_threads)
        seen_lock = bytearray(n_locks)
        seen_var = bytearray(n_vars)

        fork_of: Dict[int, int] = {}
        last_write = minus_one * n_vars
        open_acq: Dict[int, List[int]] = {}      # (tid * n_locks + lid) -> stack
        held_stack: List[List[int]] = [[] for _ in range(n_threads)]
        cur_held: List[int] = [0] * n_threads    # tid -> current held-set id
        num_acquires = 0
        num_requests = 0
        nesting = 0

        for i in range(n):
            op = ops[i]
            t = tids[i]
            if not seen_thread[t]:
                seen_thread[t] = 1
                thread_order.append(t)
            row = events_by_thread[t]
            pos = len(row)
            thread_pos[i] = pos
            if pos:
                thread_pred[i] = row[-1]
            row.append(i)
            held_id[i] = cur_held[t]

            if op == OP_READ:
                v = targs[i]
                if not seen_var[v]:
                    seen_var[v] = 1
                    var_order.append(v)
                rf[i] = last_write[v]
            elif op == OP_WRITE:
                v = targs[i]
                if not seen_var[v]:
                    seen_var[v] = 1
                    var_order.append(v)
                last_write[v] = i
            elif op == OP_ACQUIRE:
                lk = targs[i]
                if not seen_lock[lk]:
                    seen_lock[lk] = 1
                    lock_order.append(lk)
                num_acquires += 1
                open_acq.setdefault(t * n_locks + lk, []).append(i)
                acquires_by_lock[lk].append(i)
                hs = held_stack[t]
                if len(hs) >= nesting:
                    nesting = len(hs) + 1
                hs.append(lk)
                cur_held[t] = self._pool_id(
                    hs, pool_ids, held_pool, held_offsets, held_lengths
                )
            elif op == OP_RELEASE:
                lk = targs[i]
                if not seen_lock[lk]:
                    seen_lock[lk] = 1
                    lock_order.append(lk)
                stack = open_acq.get(t * n_locks + lk)
                if not stack:
                    raise TraceError(
                        f"release without matching acquire: {compiled.event(i)}"
                    )
                acq_idx = stack.pop()
                match[acq_idx] = i
                match[i] = acq_idx
                # Locks need not be released in LIFO order (hsqldb has
                # non-well-nested critical sections), so remove the last
                # occurrence rather than popping the top of the stack.
                hs = held_stack[t]
                for j in range(len(hs) - 1, -1, -1):
                    if hs[j] == lk:
                        del hs[j]
                        break
                else:
                    raise TraceError(
                        f"release of unheld lock: {compiled.event(i)}"
                    )
                cur_held[t] = self._pool_id(
                    hs, pool_ids, held_pool, held_offsets, held_lengths
                )
            elif op == OP_REQUEST:
                lk = targs[i]
                if not seen_lock[lk]:
                    seen_lock[lk] = 1
                    lock_order.append(lk)
                num_requests += 1
            elif op == OP_FORK:
                if targs[i] not in fork_of:
                    fork_of[targs[i]] = i

        self.rf = rf
        self.match = match
        self.thread_pos = thread_pos
        self.thread_pred = thread_pred
        self.held_id = held_id
        self.held_pool = held_pool
        self.held_offsets = held_offsets
        self.held_lengths = held_lengths
        self.thread_order = thread_order
        self.lock_order = lock_order
        self.var_order = var_order
        self.events_by_thread = events_by_thread
        self.acquires_by_lock = acquires_by_lock
        self.fork_of = fork_of
        self.num_acquires = num_acquires
        self.num_requests = num_requests
        self.lock_nesting_depth = nesting
        self._held_frozen: Dict[int, FrozenSet[int]] = {}

    @staticmethod
    def _pool_id(stack: List[int], pool_ids: Dict[Tuple[int, ...], int],
                 pool: array, offsets: array, lengths: array) -> int:
        key = tuple(stack)
        hid = pool_ids.get(key)
        if hid is None:
            hid = len(offsets)
            pool_ids[key] = hid
            offsets.append(len(pool))
            lengths.append(len(key))
            pool.extend(key)
        return hid

    # -- held-set accessors -------------------------------------------------

    def held_ids(self, idx: int) -> Tuple[int, ...]:
        """Lock ids held right before the event at ``idx``, stack order."""
        hid = self.held_id[idx]
        off = self.held_offsets[hid]
        return tuple(self.held_pool[off:off + self.held_lengths[hid]])

    def held_frozen(self, idx: int) -> FrozenSet[int]:
        """Held-lock set of the event at ``idx`` (cached per pool id)."""
        return self.held_set(self.held_id[idx])

    def held_set(self, hid: int) -> FrozenSet[int]:
        """The lock-id set of pool entry ``hid`` (cached)."""
        fs = self._held_frozen.get(hid)
        if fs is None:
            off = self.held_offsets[hid]
            fs = frozenset(self.held_pool[off:off + self.held_lengths[hid]])
            self._held_frozen[hid] = fs
        return fs

    def __len__(self) -> int:
        return len(self.rf)


def index_of(trace) -> TraceIndex:
    """The :class:`TraceIndex` of any trace form.

    ``Trace`` views carry a cached index; a raw :class:`CompiledTrace`
    gets a fresh one.
    """
    idx = getattr(trace, "index", None)
    if isinstance(idx, TraceIndex):
        return idx
    if isinstance(trace, CompiledTrace):
        return TraceIndex(trace)
    raise TypeError(f"cannot index {type(trace).__name__}")
