"""Columnar derived relations: the canonical analysis substrate.

A :class:`TraceIndex` computes every derived relation of paper
Section 2 — reads-from, matching acquire/release, per-thread position,
and held-lock sets — in one O(N) pass **directly over the int columns**
of a :class:`~repro.trace.compiled.CompiledTrace`.  No ``Event``
objects are materialized and no string is hashed: relations come out as
flat integer arrays keyed by event index and interned thread/lock/
variable ids.

The pass is *incremental*: the index keeps its carry state (open
critical sections, per-thread held stacks, last writes) between calls,
so :meth:`TraceIndex.extend` can absorb new events appended to a
growing ``CompiledTrace`` batch by batch — the streaming sessions of
:mod:`repro.stream` are built on this.  A one-shot construction is just
``extend()`` over the whole trace, so batch and streaming indexes are
bit-identical by construction.

Held-lock sets are stored as offsets into one shared pool rather than
per-event tuples: each distinct held *stack* (a short tuple of interned
lock ids) is appended to :attr:`TraceIndex.held_pool` exactly once, and
every event stores just the id of its stack.  Traces hold few distinct
lock combinations, so the pool stays tiny even for huge traces — the
same flat-columns-over-pointer-structures move PaC-trees use to make
collection analyses cache-friendly.

Layering (see README "Architecture"):

- :class:`CompiledTrace` — the raw interned event columns (parse-time);
- :class:`TraceIndex` — derived relations as int arrays (this module);
- :class:`~repro.trace.trace.Trace` — a thin string-keyed *view* over a
  ``CompiledTrace + TraceIndex`` pair, preserving the classic API.

Detectors consume the index columns directly; user-facing code and
tests keep the friendly string API of ``Trace``.
"""

from __future__ import annotations

import time
from array import array
from typing import Dict, FrozenSet, List, Tuple

import repro.kernels as kernels
import repro.obs as obs
from repro.trace.compiled import CompiledTrace
from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_READ,
    OP_RELEASE,
    OP_REQUEST,
    OP_WRITE,
)


class TraceError(Exception):
    """Raised when a trace violates shared-memory semantics."""


class TraceIndex:
    """All derived relations of one compiled trace, as int columns.

    Event-indexed columns (length N, ``-1`` = absent):

    - :attr:`rf` — for reads, the index of the write observed
      (``-1`` = initial value); meaningless for non-reads.
    - :attr:`match` — matching release of an acquire and vice versa.
    - :attr:`thread_pos` — per-thread position of the event.
    - :attr:`thread_pred` — previous event of the same thread.
    - :attr:`held_id` — id of the event's held-lock stack; resolve
      through :attr:`held_offsets` / :attr:`held_lengths` into
      :attr:`held_pool` (or use :meth:`held_ids` /
      :meth:`held_frozen`).

    Entity tables (interned ids, order of first appearance — matching
    the classic ``Trace.threads`` / ``locks`` / ``variables`` order):

    - :attr:`thread_order` — thread ids in order of first *acting*
      appearance (fork/join targets that never act are excluded);
    - :attr:`lock_order` / :attr:`var_order` — likewise for locks
      (first lock op) and variables (first access);
    - :attr:`events_by_thread` / :attr:`acquires_by_lock` — per-id
      event lists, indexed by interned id;
    - :attr:`fork_of` — thread id -> index of the first fork event
      targeting it (the causality seed for a thread's first event).

    A ``TraceIndex`` over a still-growing compiled trace stays valid:
    call :meth:`extend` after appending events and every column grows
    in place.  Consumers holding the index see the new rows without
    re-deriving anything.
    """

    __slots__ = (
        "compiled", "rf", "match", "thread_pos", "thread_pred",
        "held_id", "held_offsets", "held_lengths", "held_pool",
        "thread_order", "lock_order", "var_order",
        "events_by_thread", "acquires_by_lock", "fork_of",
        "num_acquires", "num_requests", "lock_nesting_depth",
        "_held_frozen", "_pos", "_pool_ids", "_last_write", "_open_acq",
        "_held_stack", "_cur_held", "_seen_thread", "_seen_lock",
        "_seen_var", "_np_trans",
    )

    def __init__(self, compiled: CompiledTrace) -> None:
        self.compiled = compiled
        self.rf = array("i")
        self.match = array("i")
        self.thread_pos = array("i")
        self.thread_pred = array("i")
        self.held_id = array("i")
        self.held_pool = array("i")
        self.held_offsets = array("i", [0])
        self.held_lengths = array("i", [0])
        self.thread_order: List[int] = []
        self.lock_order: List[int] = []
        self.var_order: List[int] = []
        self.events_by_thread: List[List[int]] = []
        self.acquires_by_lock: List[List[int]] = []
        self.fork_of: Dict[int, int] = {}
        self.num_acquires = 0
        self.num_requests = 0
        self.lock_nesting_depth = 0
        self._held_frozen: Dict[int, FrozenSet[int]] = {}
        # Carry state of the incremental pass.
        self._pos = 0
        self._pool_ids: Dict[Tuple[int, ...], int] = {(): 0}
        self._last_write: List[int] = []                 # vid -> write idx
        self._open_acq: Dict[Tuple[int, int], List[int]] = {}
        self._held_stack: List[List[int]] = []           # tid -> lock stack
        self._cur_held: List[int] = []                   # tid -> held-set id
        self._seen_thread = bytearray()
        self._seen_lock = bytearray()
        self._seen_var = bytearray()
        # Held-stack transition memo of the vectorized kernel
        # (repro.kernels.index_np): (pool id, ±lock) -> pool id.
        self._np_trans: Dict[Tuple[int, int], int] = {}
        self.extend()

    def extend(self) -> int:
        """Absorb events appended to :attr:`compiled` since the last call.

        Processes ``[len(self), len(compiled))`` and grows every column
        in place; returns the number of events absorbed.  The combined
        result of any extend() partition is bit-identical to a one-shot
        pass over the full trace.
        """
        compiled = self.compiled
        ops, tids, targs = compiled.columns()
        lo, hi = self._pos, len(ops)
        if lo >= hi:
            return 0
        # Telemetry is per-batch, never per-event: one timestamp pair
        # and three metric calls per extend(), zero cost when disabled.
        _t0 = time.monotonic_ns() if obs.enabled() else 0

        rf_append = self.rf.append
        match = self.match
        match_append = match.append
        pos_append = self.thread_pos.append
        pred_append = self.thread_pred.append
        held_append = self.held_id.append
        pool_ids = self._pool_ids
        held_pool = self.held_pool
        held_offsets = self.held_offsets
        held_lengths = self.held_lengths
        events_by_thread = self.events_by_thread
        acquires_by_lock = self.acquires_by_lock
        thread_order = self.thread_order
        lock_order = self.lock_order
        var_order = self.var_order
        seen_thread = self._seen_thread
        seen_lock = self._seen_lock
        seen_var = self._seen_var
        last_write = self._last_write
        open_acq = self._open_acq
        held_stack = self._held_stack
        cur_held = self._cur_held
        fork_of = self.fork_of
        nesting = self.lock_nesting_depth

        # Entity tables may have grown since the last batch.
        n_threads = len(compiled.threads_tab)
        if len(events_by_thread) < n_threads:
            grow = n_threads - len(events_by_thread)
            events_by_thread.extend([] for _ in range(grow))
            held_stack.extend([] for _ in range(grow))
            cur_held.extend([0] * grow)
            seen_thread.extend(b"\0" * grow)
        n_locks = len(compiled.locks_tab)
        if len(acquires_by_lock) < n_locks:
            grow = n_locks - len(acquires_by_lock)
            acquires_by_lock.extend([] for _ in range(grow))
            seen_lock.extend(b"\0" * grow)
        n_vars = len(compiled.vars_tab)
        if len(last_write) < n_vars:
            grow = n_vars - len(last_write)
            last_write.extend([-1] * grow)
            seen_var.extend(b"\0" * grow)

        # Vectorized derivation (repro.kernels): bit-identical columns,
        # one argsort-and-fill pass instead of the event loop.  The
        # kernel declines (False, no side effects) on small batches and
        # on trace anomalies, which must surface through this loop's
        # exact TraceError path.
        if kernels.backend() == "numpy":
            from repro.kernels.index_np import extend_batch

            if extend_batch(self, kernels.numpy_or_none()):
                if _t0:
                    obs.record_span("index.extend", _t0,
                                    time.monotonic_ns(),
                                    cat="trace", events=hi - lo)
                    obs.count("index.events", hi - lo)
                    obs.gauge("index.held_pool_stacks",
                              len(held_offsets) - 1)
                return hi - lo
            kernels.record_dispatch("index_extend", "python",
                                    events=hi - lo)

        for i in range(lo, hi):
            op = ops[i]
            t = tids[i]
            if not seen_thread[t]:
                seen_thread[t] = 1
                thread_order.append(t)
            row = events_by_thread[t]
            pos_append(len(row))
            pred_append(row[-1] if row else -1)
            row.append(i)
            held_append(cur_held[t])
            rf_append(-1)
            match_append(-1)

            if op == OP_READ:
                v = targs[i]
                if not seen_var[v]:
                    seen_var[v] = 1
                    var_order.append(v)
                self.rf[i] = last_write[v]
            elif op == OP_WRITE:
                v = targs[i]
                if not seen_var[v]:
                    seen_var[v] = 1
                    var_order.append(v)
                last_write[v] = i
            elif op == OP_ACQUIRE:
                lk = targs[i]
                if not seen_lock[lk]:
                    seen_lock[lk] = 1
                    lock_order.append(lk)
                self.num_acquires += 1
                open_acq.setdefault((t, lk), []).append(i)
                acquires_by_lock[lk].append(i)
                hs = held_stack[t]
                if len(hs) >= nesting:
                    nesting = len(hs) + 1
                hs.append(lk)
                cur_held[t] = self._pool_id(
                    hs, pool_ids, held_pool, held_offsets, held_lengths
                )
            elif op == OP_RELEASE:
                lk = targs[i]
                if not seen_lock[lk]:
                    seen_lock[lk] = 1
                    lock_order.append(lk)
                stack = open_acq.get((t, lk))
                if not stack:
                    raise TraceError(
                        f"release without matching acquire: {compiled.event(i)}"
                    )
                acq_idx = stack.pop()
                match[acq_idx] = i
                match[i] = acq_idx
                # Locks need not be released in LIFO order (hsqldb has
                # non-well-nested critical sections), so remove the last
                # occurrence rather than popping the top of the stack.
                hs = held_stack[t]
                for j in range(len(hs) - 1, -1, -1):
                    if hs[j] == lk:
                        del hs[j]
                        break
                else:
                    raise TraceError(
                        f"release of unheld lock: {compiled.event(i)}"
                    )
                cur_held[t] = self._pool_id(
                    hs, pool_ids, held_pool, held_offsets, held_lengths
                )
            elif op == OP_REQUEST:
                lk = targs[i]
                if not seen_lock[lk]:
                    seen_lock[lk] = 1
                    lock_order.append(lk)
                self.num_requests += 1
            elif op == OP_FORK:
                if targs[i] not in fork_of:
                    fork_of[targs[i]] = i

        self.lock_nesting_depth = nesting
        self._pos = hi
        if _t0:
            obs.record_span("index.extend", _t0, time.monotonic_ns(),
                            cat="trace", events=hi - lo)
            obs.count("index.events", hi - lo)
            obs.gauge("index.held_pool_stacks", len(held_offsets) - 1)
        return hi - lo

    @staticmethod
    def _pool_id(stack: List[int], pool_ids: Dict[Tuple[int, ...], int],
                 pool: array, offsets: array, lengths: array) -> int:
        key = tuple(stack)
        hid = pool_ids.get(key)
        if hid is None:
            hid = len(offsets)
            pool_ids[key] = hid
            offsets.append(len(pool))
            lengths.append(len(key))
            pool.extend(key)
        return hid

    # -- held-set accessors -------------------------------------------------

    def held_ids(self, idx: int) -> Tuple[int, ...]:
        """Lock ids held right before the event at ``idx``, stack order."""
        hid = self.held_id[idx]
        off = self.held_offsets[hid]
        return tuple(self.held_pool[off:off + self.held_lengths[hid]])

    def held_frozen(self, idx: int) -> FrozenSet[int]:
        """Held-lock set of the event at ``idx`` (cached per pool id)."""
        return self.held_set(self.held_id[idx])

    def held_set(self, hid: int) -> FrozenSet[int]:
        """The lock-id set of pool entry ``hid`` (cached)."""
        fs = self._held_frozen.get(hid)
        if fs is None:
            off = self.held_offsets[hid]
            fs = frozenset(self.held_pool[off:off + self.held_lengths[hid]])
            self._held_frozen[hid] = fs
        return fs

    def __len__(self) -> int:
        return len(self.rf)


def index_of(trace) -> TraceIndex:
    """The :class:`TraceIndex` of any trace form.

    ``Trace`` views carry a cached index; a raw :class:`CompiledTrace`
    gets a fresh one.
    """
    idx = getattr(trace, "index", None)
    if isinstance(idx, TraceIndex):
        return idx
    if isinstance(trace, CompiledTrace):
        return TraceIndex(trace)
    raise TypeError(f"cannot index {type(trace).__name__}")
