"""Text format for traces (RAPID "STD" style).

One event per line::

    t1|acq(l1)
    t1|w(x)|Main.java:12
    t2|r(x)
    t1|fork(t2)

Lines starting with ``#`` and blank lines are ignored.  The optional
third field is a source location used for bug deduplication.
"""

from __future__ import annotations

import re
import time
from typing import List

import repro.obs as obs
from repro.trace.events import Event
from repro.trace.trace import Trace

_LINE_RE = re.compile(
    r"^(?P<thread>[^|]+)\|(?P<op>r|w|acq|rel|req|fork|join)\((?P<target>[^)]*)\)"
    r"(?:\|(?P<loc>.*))?$"
)


class ParseError(Exception):
    """Raised on malformed trace text."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line


def parse_events(lines) -> List[Event]:
    """Parse an iterable of STD-format lines into events.

    Shared by :func:`parse_trace` (in-memory text) and
    :func:`load_trace` (streaming file handles): only one line is ever
    materialized beyond the accumulated events.
    """
    events: List[Event] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _LINE_RE.match(line)
        if m is None:
            raise ParseError(lineno, line, "malformed event")
        target = m.group("target").strip()
        if not target:
            raise ParseError(lineno, line, "empty target")
        loc = m.group("loc")
        events.append(
            Event(len(events), m.group("thread").strip(), m.group("op"), target,
                  loc.strip() if loc else None)
        )
    return events


def parse_trace(text: str, name: str = "trace") -> Trace:
    """Parse the STD text format into a :class:`Trace`."""
    return Trace(parse_events(text.splitlines()), name=name)


def format_trace(trace: Trace) -> str:
    """Inverse of :func:`parse_trace` (modulo comments/whitespace)."""
    lines = []
    for ev in trace:
        base = f"{ev.thread}|{ev.op}({ev.target})"
        if ev.loc is not None:
            base += f"|{ev.loc}"
        lines.append(base)
    return "\n".join(lines) + ("\n" if lines else "")


def load_trace(path: str, name: str = "") -> Trace:
    """Read a trace file from ``path`` (``.gz`` transparently inflated).

    Logged traces run to hundreds of millions of events; shipping them
    compressed is the norm, so the loader handles it natively, streaming
    line by line rather than inflating the whole file into one string.
    For the analysis fast path prefer
    :func:`repro.trace.compiled.load_compiled_trace`, which also interns
    names and op codes while streaming.
    """
    _t0 = time.monotonic_ns() if obs.enabled() else 0
    try:
        if path.endswith(".gz"):
            import gzip

            with gzip.open(path, "rt", encoding="utf-8") as fh:
                trace = Trace(parse_events(fh), name=name or path)
        else:
            with open(path, "r", encoding="utf-8") as fh:
                trace = Trace(parse_events(fh), name=name or path)
        if _t0:
            obs.record_span("trace.load", _t0, time.monotonic_ns(),
                            cat="trace", path=path, events=len(trace))
        return trace
    except (EOFError, UnicodeDecodeError) as exc:
        from repro.trace.compiled import TraceReadError

        raise TraceReadError(path, str(exc)) from exc
    except OSError as exc:
        # gzip raises BadGzipFile/OSError on corrupt streams; genuine
        # filesystem errors (missing file, permissions) have an errno
        # and must keep their type for the CLI's usage-error mapping
        if exc.errno is not None:
            raise
        from repro.trace.compiled import TraceReadError

        raise TraceReadError(path, str(exc)) from exc


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` (gzipped when it ends in ``.gz``)."""
    if path.endswith(".gz"):
        import gzip

        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(format_trace(trace))
        return
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(format_trace(trace))
