"""Trace splitting for the shard-and-merge pipeline: the causality spine.

The per-context SPD analyses (``repro.exp.shard``) fan out over worker
processes, and every worker needs enough of the trace to compute
sync-preserving closures *bit-identically* to the serial engine.  The
closure (Algorithm 1) is a global fix-point: it can pull in the
matching release of **any** lock acquired by two closure threads and
follow **any** reads-from edge, so a shard cannot restrict itself to
one lock context's events.  What every shard shares instead is the
**causality spine** — the provably sufficient projection of the trace:

- all fork/join events (the cross-thread spawn/join edges);
- all acquire/release events of *shared* locks (acquired by >= 2
  threads) — thread-local locks never contribute a closure join,
  because Algorithm 1's lock rule needs acquires from two distinct
  threads;
- every read that observes a write, together with the writes observed
  by at least one read (the reads-from edges).  Initial reads and
  never-observed writes add no cross-thread ordering.
- ``request`` events are dropped entirely (they only tick positions).

Every cross-thread TRF edge (rf, fork, join) has both endpoints in the
spine, and thread order survives projection, so ``<=TRF`` restricted to
spine events — and therefore every closure computation whose joined
timestamps and membership tests touch only spine events — is exactly
the full trace's.  Abstract deadlock-pattern events are acquires of
shared locks, so phase 2 runs entirely inside the spine.  The
differential suite (``tests/test_shard_differential.py``) pins this
equivalence on hundreds of randomized traces.

Intern tables are serialized whole, so thread/lock/variable **ids in a
reloaded spine are identical to the original trace's** — only event
indices are renumbered, and :attr:`Spine.to_orig` maps them back.

On real traces most events are memory accesses and thread-local lock
traffic, so the spine is typically a small fraction of the input — this
is what bounds per-worker memory on huge traces.
"""

from __future__ import annotations

import json
from array import array
from typing import Dict, List, Optional

from repro.trace.compiled import CompiledTrace
from repro.trace.events import (
    OP_ACQUIRE,
    OP_FORK,
    OP_JOIN,
    OP_READ,
    OP_RELEASE,
    OP_WRITE,
)
from repro.trace.index import TraceIndex


class Spine:
    """A causality-spine projection of one trace.

    Attributes:
        compiled: the projected events as a :class:`CompiledTrace`
            (intern tables shared with / identical to the original).
        to_orig: spine event index -> original event index (``array``).
        orig_len: event count of the original trace.
        path: where this spine was loaded from (None for in-memory
            spines) — sibling shard cells key shared engine
            checkpoints off it.
    """

    __slots__ = ("compiled", "to_orig", "orig_len", "_from_orig", "path")

    def __init__(self, compiled: CompiledTrace, to_orig: array,
                 orig_len: int, path: Optional[str] = None) -> None:
        self.compiled = compiled
        self.to_orig = to_orig
        self.orig_len = orig_len
        self.path = path
        self._from_orig: Optional[Dict[int, int]] = None

    def __len__(self) -> int:
        return len(self.compiled)

    @property
    def name(self) -> str:
        return self.compiled.name

    def from_orig(self) -> Dict[int, int]:
        """original event index -> spine event index (built lazily)."""
        if self._from_orig is None:
            self._from_orig = {o: s for s, o in enumerate(self.to_orig)}
        return self._from_orig


def shared_lock_ids(index: TraceIndex) -> List[int]:
    """Lock ids acquired by at least two distinct threads."""
    tids = index.compiled.thread_ids
    out: List[int] = []
    for lid, acquires in enumerate(index.acquires_by_lock):
        owner = -1
        for i in acquires:
            t = tids[i]
            if owner < 0:
                owner = t
            elif t != owner:
                out.append(lid)
                break
    return out


def spine_masks(index: TraceIndex):
    """``(shared lock mask, observed write mask)`` — the two marking
    passes behind the spine keep rules, computed once and shared by
    :func:`causality_components` / :func:`build_component_spines`."""
    compiled = index.compiled
    ops = compiled.ops
    rf = index.rf
    shared = bytearray(len(compiled.locks_tab))
    for lid in shared_lock_ids(index):
        shared[lid] = 1
    observed = bytearray(len(ops))
    for i in range(len(ops)):
        if ops[i] == OP_READ and rf[i] >= 0:
            observed[rf[i]] = 1
    return shared, observed


def build_spine(index: TraceIndex) -> Spine:
    """Project a trace onto its causality spine (see module docstring).

    The single-component case of :func:`build_component_spines` — one
    definition of the keep rules serves both.  Intern tables are
    shared by reference; ``locs`` are remapped for the kept events.
    """
    comp_of_thread = [0] * len(index.compiled.threads_tab)
    spine = build_component_spines(index, comp_of_thread, {0})[0]
    spine.compiled.name = f"{index.compiled.name}|spine"
    return spine


# -- causally independent components ------------------------------------------


def causality_components(index: TraceIndex,
                         shared: Optional[bytearray] = None) -> List[int]:
    """Thread id -> component label (the min thread id of the component).

    Two threads are causally connected when any cross-thread edge of
    the analysis can relate their events: they acquire a common shared
    lock (Algorithm 1's lock rule), a reads-from edge links them, or
    one forks/joins the other.  Closure computations provably never
    leave a component — a joined release belongs to a lock whose
    acquires are already inside the closure, and every TRF edge stays
    inside — so each component's shard can carry *only its own
    threads'* spine events and still reproduce the serial engine bit
    for bit.  This is what bounds per-worker memory: a worker holds one
    component's sub-spine, not the whole trace.
    """
    compiled = index.compiled
    ops, tids, targs = compiled.columns()
    rf = index.rf
    n_threads = len(compiled.threads_tab)
    parent = list(range(n_threads))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # Root at the smaller id so labels are deterministic.
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb

    shared_ids = ([lid for lid, s in enumerate(shared) if s]
                  if shared is not None else shared_lock_ids(index))
    for lid in shared_ids:
        acquires = index.acquires_by_lock[lid]
        first = tids[acquires[0]]
        for i in acquires[1:]:
            union(first, tids[i])
    for i in range(len(ops)):
        op = ops[i]
        if op == OP_READ:
            if rf[i] >= 0:
                union(tids[i], tids[rf[i]])
        elif op == OP_FORK or op == OP_JOIN:
            union(tids[i], targs[i])
    return [find(t) for t in range(n_threads)]


def build_component_spines(index: TraceIndex, thread_comp: List[int],
                           wanted, masks=None) -> Dict[int, Spine]:
    """Per-component causality spines (see :func:`causality_components`).

    Routes each spine-kept event to its thread's component bucket; only
    components in ``wanted`` (those owning at least one lock context)
    are materialized — the rest of the trace is irrelevant to every
    shard.  This is the one definition of the keep rules (the module
    docstring's spine invariant); :func:`build_spine` is the
    single-component special case.  Pass ``masks`` (from
    :func:`spine_masks`) to reuse already-computed marking passes.
    """
    compiled = index.compiled
    ops, tids, targs = compiled.columns()
    n = len(ops)
    rf = index.rf
    shared, observed = masks if masks is not None else spine_masks(index)
    wanted = set(wanted)
    out: Dict[int, Spine] = {}
    for comp in wanted:
        ct = CompiledTrace.__new__(CompiledTrace)
        ct.name = f"{compiled.name}|spine{comp}"
        ct.ops = array("b")
        ct.thread_ids = array("i")
        ct.target_ids = array("i")
        ct.locs = {}
        ct.threads_tab = compiled.threads_tab
        ct.locks_tab = compiled.locks_tab
        ct.vars_tab = compiled.vars_tab
        out[comp] = Spine(ct, array("i"), n)

    locs = compiled.locs
    for i in range(n):
        op = ops[i]
        if op == OP_READ:
            keep = rf[i] >= 0
        elif op == OP_WRITE:
            keep = bool(observed[i])
        elif op == OP_ACQUIRE or op == OP_RELEASE:
            keep = bool(shared[targs[i]])
        else:
            keep = op == OP_FORK or op == OP_JOIN
        if not keep:
            continue
        spine = out.get(thread_comp[tids[i]])
        if spine is None:
            continue
        ct = spine.compiled
        idx = len(ct.ops)
        ct.ops.append(op)
        ct.thread_ids.append(tids[i])
        ct.target_ids.append(targs[i])
        loc = locs.get(i)
        if loc is not None:
            ct.locs[idx] = loc
        spine.to_orig.append(i)
    return out


# -- spine (de)serialization --------------------------------------------------

#: format marker for :func:`save_spine` files.  v2 added payload
#: integrity (explicit byte length + sha256): a bit-flipped or
#: truncated spine file is a detected ``ValueError``, not silently
#: corrupt event columns.
_MAGIC = "repro-spine-v2"
_STALE_MAGIC = ("repro-spine-v1",)


def save_spine(spine: Spine, path: str) -> None:
    """Write a spine to ``path`` in a compact, deterministic binary form.

    Layout: one JSON header line (format marker, name, intern-table
    names, sparse locations, column byte lengths, payload length +
    sha256) followed by the raw bytes of the ops / thread-id /
    target-id / to-orig columns.  The encoding is canonical for a
    given spine, so the file's content digest is stable across runs —
    the shard result cache keys on it.
    """
    import hashlib

    compiled = spine.compiled
    ops_b = compiled.ops.tobytes()
    payload = b"".join((
        ops_b,
        compiled.thread_ids.tobytes(),
        compiled.target_ids.tobytes(),
        spine.to_orig.tobytes(),
    ))
    header = {
        "format": _MAGIC,
        "name": compiled.name,
        "num_events": len(compiled),
        "orig_len": spine.orig_len,
        "threads": compiled.threads_tab.names,
        "locks": compiled.locks_tab.names,
        "vars": compiled.vars_tab.names,
        "locs": {str(k): v for k, v in sorted(compiled.locs.items())},
        "ops_bytes": len(ops_b),
        "int_itemsize": array("i").itemsize,
        "payload_len": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    with open(path, "wb") as fh:
        fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
        fh.write(b"\n")
        fh.write(payload)


def load_spine(path: str) -> Spine:
    """Load a spine written by :func:`save_spine` (worker-side).

    Raises ``ValueError`` identifying the problem for stale format
    versions, platform mismatches, and corrupt payloads (length or
    checksum mismatch).
    """
    import hashlib

    with open(path, "rb") as fh:
        header_line = fh.readline()
        blob = fh.read()
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ValueError(f"{path}: corrupt spine header") from None
    fmt = header.get("format")
    if fmt in _STALE_MAGIC:
        raise ValueError(
            f"{path}: stale spine format {fmt!r} (current: {_MAGIC}); "
            f"regenerate the spine"
        )
    if fmt != _MAGIC:
        raise ValueError(f"{path}: not a {_MAGIC} file")
    if header["int_itemsize"] != array("i").itemsize:
        raise ValueError(
            f"{path}: written with int itemsize {header['int_itemsize']}, "
            f"this platform uses {array('i').itemsize}"
        )
    if header.get("payload_len") != len(blob):
        raise ValueError(
            f"{path}: spine payload is {len(blob)} bytes, header says "
            f"{header.get('payload_len')} (truncated?)"
        )
    if hashlib.sha256(blob).hexdigest() != header.get("payload_sha256"):
        raise ValueError(f"{path}: spine payload checksum mismatch "
                         f"(corrupt file)")
    n = header["num_events"]
    ops_len = header["ops_bytes"]
    int_len = n * header["int_itemsize"]

    compiled = CompiledTrace(header["name"])
    for name in header["threads"]:
        compiled.threads_tab.intern(name)
    for name in header["locks"]:
        compiled.locks_tab.intern(name)
    for name in header["vars"]:
        compiled.vars_tab.intern(name)
    compiled.ops.frombytes(blob[:ops_len])
    off = ops_len
    compiled.thread_ids.frombytes(blob[off:off + int_len])
    off += int_len
    compiled.target_ids.frombytes(blob[off:off + int_len])
    off += int_len
    to_orig = array("i")
    to_orig.frombytes(blob[off:off + int_len])
    compiled.locs = {int(k): v for k, v in header["locs"].items()}
    return Spine(compiled, to_orig, header["orig_len"], path=path)
