"""Trace preprocessing transforms.

Real logged traces need cleanup before analysis; these are the
transforms the paper's toolchain (RV-Predict / Wiretap / RAPID)
performs implicitly:

- :func:`flatten_reentrant_locks` — JVM monitors are reentrant; the
  analysis model is not.  Inner re-acquisitions and their releases are
  dropped, keeping each critical section's outermost extent.
- :func:`insert_requests` — emit a ``req`` event before each acquire
  (some loggers record lock *requests*; Table 1's A/R column counts
  both).
- :func:`rename` — α-rename threads/locks/variables (anonymization,
  trace merging without collisions).
- :func:`filter_threads` / :func:`filter_variables` — project onto a
  subset of threads, or drop access events of uninteresting variables
  (with the option to keep reads-from-relevant writes).
- :func:`concat` — sequential composition of traces (the hardness
  constructions and benchmark composition use this shape).
- :func:`truncate_well_formed` — cut a trace at ``n`` events and close
  the dangling critical sections so the prefix is a valid trace.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.trace.events import Event, Op
from repro.trace.trace import Trace


def _rebuild(events: Iterable[Event], name: str) -> Trace:
    return Trace(
        [Event(i, e.thread, e.op, e.target, e.loc) for i, e in enumerate(events)],
        name=name,
    )


def flatten_reentrant_locks(trace: Trace) -> Trace:
    """Drop nested re-acquisitions of an already-held lock.

    For each thread and lock, a depth counter tracks reentrancy; only
    depth 0→1 acquires and 1→0 releases survive.  Releases without a
    held lock are dropped too (truncated logs).
    """
    depth: Dict[tuple, int] = {}
    out: List[Event] = []
    for ev in trace:
        if ev.is_acquire:
            key = (ev.thread, ev.target)
            d = depth.get(key, 0)
            depth[key] = d + 1
            if d == 0:
                out.append(ev)
        elif ev.is_release:
            key = (ev.thread, ev.target)
            d = depth.get(key, 0)
            if d == 0:
                continue  # unmatched release: drop
            depth[key] = d - 1
            if d == 1:
                out.append(ev)
        else:
            out.append(ev)
    return _rebuild(out, f"{trace.name}|flat")


def insert_requests(trace: Trace) -> Trace:
    """Emit ``req(l)`` immediately before every ``acq(l)``."""
    out: List[Event] = []
    for ev in trace:
        if ev.is_acquire:
            out.append(Event(0, ev.thread, Op.REQUEST, ev.target, ev.loc))
        out.append(ev)
    return _rebuild(out, f"{trace.name}|req")


def rename(
    trace: Trace,
    thread_map: Optional[Callable[[str], str]] = None,
    lock_map: Optional[Callable[[str], str]] = None,
    var_map: Optional[Callable[[str], str]] = None,
) -> Trace:
    """α-rename identifiers; missing maps default to identity."""
    t_map = thread_map or (lambda s: s)
    l_map = lock_map or (lambda s: s)
    v_map = var_map or (lambda s: s)
    out: List[Event] = []
    for ev in trace:
        if ev.is_access:
            target = v_map(ev.target)
        elif ev.op in (Op.ACQUIRE, Op.RELEASE, Op.REQUEST):
            target = l_map(ev.target)
        else:  # fork/join target a thread
            target = t_map(ev.target)
        out.append(Event(0, t_map(ev.thread), ev.op, target, ev.loc))
    return _rebuild(out, f"{trace.name}|renamed")


def filter_threads(trace: Trace, keep: Set[str]) -> Trace:
    """Project onto the given threads (fork/join of dropped threads
    are removed as well)."""
    out = [
        ev
        for ev in trace
        if ev.thread in keep
        and not ((ev.is_fork or ev.is_join) and ev.target not in keep)
    ]
    return _rebuild(out, f"{trace.name}|threads")


def filter_variables(
    trace: Trace, drop: Set[str], keep_rf_writers: bool = True
) -> Trace:
    """Drop access events of the given variables.

    With ``keep_rf_writers`` the transform refuses to break reads-from
    edges: it only drops a variable wholesale (reads and writes
    together), which preserves analysis soundness for the remaining
    events.
    """
    del keep_rf_writers  # both modes drop wholesale; flag kept for API clarity
    out = [ev for ev in trace if not (ev.is_access and ev.target in drop)]
    return _rebuild(out, f"{trace.name}|vars")


def concat(traces: List[Trace], name: str = "concat") -> Trace:
    """Sequential composition (each input must be lock-balanced)."""
    out: List[Event] = []
    for t in traces:
        out.extend(t)
    return _rebuild(out, name)


def truncate_well_formed(trace: Trace, n: int) -> Trace:
    """First ``n`` events, plus closing releases for open criticals.

    The result is a well-formed prefix usable by every analysis (a
    monitoring session killed mid-run produces exactly this shape
    after cleanup).
    """
    prefix = list(trace.events[:n])
    held: Dict[str, List[str]] = {}
    for ev in prefix:
        if ev.is_acquire:
            held.setdefault(ev.thread, []).append(ev.target)
        elif ev.is_release:
            stack = held.get(ev.thread, [])
            if ev.target in stack:
                stack.remove(ev.target)
    out = list(prefix)
    for thread, locks in held.items():
        for lock in reversed(locks):
            out.append(Event(0, thread, Op.RELEASE, lock, None))
    return _rebuild(out, f"{trace.name}|trunc{n}")
