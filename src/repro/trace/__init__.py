"""Execution-trace model for dynamic concurrency analyses.

A trace is a linear sequence of events, each performed by a thread and
operating on a variable (read/write), a lock (acquire/release), or a
thread (fork/join).  This module provides:

- :class:`Event`, :class:`Op` — the event model (paper Section 2).
- :class:`Trace` — an immutable event sequence with derived relations
  (thread order, reads-from, matching acquire/release, held locks).
- :func:`parse_trace` / :func:`format_trace` — the STD text format used
  by the RAPID analysis framework the paper's artifact builds on.
- :class:`TraceStats` — the per-trace statistics reported in Table 1.
- :func:`check_well_formed` — well-formedness validation.
"""

from repro.trace.events import (
    ACQUIRE,
    FORK,
    JOIN,
    READ,
    RELEASE,
    REQUEST,
    WRITE,
    Event,
    Op,
)
from repro.trace.trace import Trace, TraceError, as_trace
from repro.trace.parser import ParseError, format_trace, parse_trace
from repro.trace.compiled import (
    CompiledTrace,
    InternTable,
    compile_trace,
    load_compiled_trace,
)
from repro.trace.index import TraceIndex
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.wellformed import WellFormednessError, check_well_formed
from repro.trace.builder import TraceBuilder

__all__ = [
    "ACQUIRE",
    "FORK",
    "JOIN",
    "READ",
    "RELEASE",
    "REQUEST",
    "WRITE",
    "Event",
    "Op",
    "Trace",
    "TraceError",
    "TraceIndex",
    "as_trace",
    "TraceBuilder",
    "ParseError",
    "parse_trace",
    "format_trace",
    "CompiledTrace",
    "InternTable",
    "compile_trace",
    "load_compiled_trace",
    "TraceStats",
    "compute_stats",
    "WellFormednessError",
    "check_well_formed",
]
