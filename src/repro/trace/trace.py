"""The :class:`Trace` container: a string-keyed view over columnar data.

A trace is canonically a :class:`~repro.trace.compiled.CompiledTrace`
(interned int columns) plus a :class:`~repro.trace.index.TraceIndex`
(derived relations as int arrays).  ``Trace`` wraps the pair behind the
classic string-keyed API of Section 2 of the paper:

- thread order ``<=TO`` (via per-thread positions),
- the reads-from function ``rf`` (last writer per variable),
- matching acquire/release pairs (``match``),
- held-lock sets ``HeldLks(e)`` for every event,
- lock nesting depth.

The view is thin: constructing a ``Trace`` from a compiled trace is
O(1), derived relations are answered from the index's int columns, and
``Event`` objects are materialized lazily — only when somebody actually
iterates or subscripts.  Detector hot paths read the index columns
directly and never pay for either.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.trace.compiled import CompiledTrace
from repro.trace.events import Event, Op
from repro.trace.index import TraceError, TraceIndex

__all__ = ["Trace", "TraceError", "as_trace"]


class Trace:
    """An immutable, analyzed execution trace.

    Args:
        events: the event sequence — a :class:`CompiledTrace` is
            adopted as-is (O(1)); any other event iterable is compiled.
            Indices always match positions: ``trace[i].idx == i``.
        name: optional label used in reports and benchmarks.
    """

    __slots__ = ("_compiled", "_index", "_events", "name",
                 "_threads", "_locks", "_vars", "_held_names")

    def __init__(self, events: Iterable[Event], name: str = "trace") -> None:
        if isinstance(events, CompiledTrace):
            self._compiled = events
        else:
            compiled = CompiledTrace(name)
            for ev in events:
                compiled.append(ev.thread, ev.op, ev.target, ev.loc)
            self._compiled = compiled
        self.name = name
        self._index: Optional[TraceIndex] = None
        self._events: Optional[List[Event]] = None
        self._threads: Optional[List[str]] = None
        self._locks: Optional[List[str]] = None
        self._vars: Optional[List[str]] = None
        self._held_names: dict = {}

    # -- columnar access ----------------------------------------------------

    @property
    def compiled(self) -> CompiledTrace:
        """The underlying interned columnar representation."""
        return self._compiled

    @property
    def index(self) -> TraceIndex:
        """Derived relations as int columns (computed once, cached)."""
        if self._index is None:
            self._index = TraceIndex(self._compiled)
        return self._index

    # -- basic sequence protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._compiled)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, idx: int) -> Event:
        return self.events[idx]

    @property
    def events(self) -> Sequence[Event]:
        """The materialized event list (built lazily, cached)."""
        if self._events is None:
            self._events = list(self._compiled)
        return self._events

    # -- derived relations ----------------------------------------------------

    @property
    def threads(self) -> List[str]:
        """Thread identifiers in order of first appearance."""
        if self._threads is None:
            names = self._compiled.threads_tab.names
            self._threads = [names[t] for t in self.index.thread_order]
        return self._threads

    @property
    def locks(self) -> List[str]:
        if self._locks is None:
            names = self._compiled.locks_tab.names
            self._locks = [names[lk] for lk in self.index.lock_order]
        return self._locks

    @property
    def variables(self) -> List[str]:
        if self._vars is None:
            names = self._compiled.vars_tab.names
            self._vars = [names[v] for v in self.index.var_order]
        return self._vars

    def events_of_thread(self, thread: str) -> List[int]:
        """Indices of the events of ``thread``, in trace order."""
        tid = self._compiled.threads_tab.get(thread)
        if tid is None or tid >= len(self.index.events_by_thread):
            return []
        return self.index.events_by_thread[tid]

    def acquires_of_lock(self, lock: str) -> List[int]:
        """Indices of all acquire events on ``lock``, in trace order."""
        lid = self._compiled.locks_tab.get(lock)
        if lid is None or lid >= len(self.index.acquires_by_lock):
            return []
        return self.index.acquires_by_lock[lid]

    def rf(self, read_idx: int) -> Optional[int]:
        """Index of the write the read at ``read_idx`` reads from.

        ``None`` means the read observes the initial value.  (The paper
        assumes every read has a preceding write; we tolerate initial
        reads, which then constrain nothing.)
        """
        index = self.index
        if self._compiled.ops[read_idx] != Op.CODE[Op.READ]:
            raise ValueError(f"rf of non-read event {self._compiled.event(read_idx)}")
        w = index.rf[read_idx]
        return w if w >= 0 else None

    def match(self, idx: int) -> Optional[int]:
        """Matching release of an acquire (or vice versa), if present."""
        m = self.index.match[idx]
        return m if m >= 0 else None

    def held_locks(self, idx: int) -> Tuple[str, ...]:
        """``HeldLks(e)``: locks held by ``thread(e)`` right before ``e``."""
        index = self.index
        hid = index.held_id[idx]
        names = self._held_names.get(hid)
        if names is None:
            lock_names = self._compiled.locks_tab.names
            off = index.held_offsets[hid]
            names = tuple(
                lock_names[lk]
                for lk in index.held_pool[off:off + index.held_lengths[hid]]
            )
            self._held_names[hid] = names
        return names

    def thread_order_leq(self, a: int, b: int) -> bool:
        """``a <=TO b``: same thread and ``a`` not after ``b``."""
        index = self.index
        tids = self._compiled.thread_ids
        return tids[a] == tids[b] and index.thread_pos[a] <= index.thread_pos[b]

    def thread_position(self, idx: int) -> Tuple[str, int]:
        """(thread, per-thread position) of the event at ``idx``."""
        pos = self.index.thread_pos[idx]
        return self._compiled.threads_tab.names[self._compiled.thread_ids[idx]], pos

    def thread_predecessor(self, idx: int) -> Optional[int]:
        """Index of the immediately preceding event in the same thread."""
        p = self.index.thread_pred[idx]
        return p if p >= 0 else None

    @property
    def lock_nesting_depth(self) -> int:
        """Max ``|HeldLks(e)| + 1`` over acquire events (paper Section 2)."""
        return self.index.lock_nesting_depth

    def num_acquires(self) -> int:
        return self.index.num_acquires

    # -- slicing / projection ---------------------------------------------

    def project(self, event_indices: Iterable[int], name: Optional[str] = None) -> "Trace":
        """The subsequence of this trace restricted to ``event_indices``.

        Events keep their relative order; indices are renumbered.  This
        is how closure sets are turned into candidate reorderings
        (Lemma 4.1 in the paper).  The projection happens on the
        compiled columns — no ``Event`` objects are materialized.
        """
        out_name = name or f"{self.name}|proj"
        return Trace(self._compiled.project(event_indices, name=out_name),
                     name=out_name)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self._compiled)} events)"


def as_trace(trace, name: Optional[str] = None) -> Trace:
    """Adapt any trace form to a :class:`Trace` view, cheaply.

    A ``Trace`` passes through; a :class:`CompiledTrace` is wrapped in
    O(1) (no event materialization, unlike the old
    ``CompiledTrace.to_trace`` round-trip); any other event iterable is
    compiled.  Every detector entry point funnels through here.
    """
    if isinstance(trace, Trace):
        return trace
    if isinstance(trace, CompiledTrace):
        return Trace(trace, name=name or trace.name)
    return Trace(trace, name=name or getattr(trace, "name", None) or "trace")
