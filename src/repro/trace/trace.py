"""The :class:`Trace` container and its derived relations.

A trace owns its event list and lazily computes the standard relations
of Section 2 of the paper:

- thread order ``<=TO`` (via per-thread positions),
- the reads-from function ``rf`` (last writer per variable),
- matching acquire/release pairs (``match``),
- held-lock sets ``HeldLks(e)`` for every event,
- lock nesting depth.

All derived maps are computed once, in a single O(N) pass, on first
access, and cached.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.trace.events import Event, Op


class TraceError(Exception):
    """Raised when a trace violates shared-memory semantics."""


class Trace:
    """An immutable, analyzed execution trace.

    Args:
        events: the event sequence.  Indices are re-assigned to match
            list positions so that ``trace[i].idx == i`` always holds.
        name: optional label used in reports and benchmarks.
    """

    def __init__(self, events: Iterable[Event], name: str = "trace") -> None:
        self._events: List[Event] = [
            ev if ev.idx == i else Event(i, ev.thread, ev.op, ev.target, ev.loc)
            for i, ev in enumerate(events)
        ]
        self.name = name
        self._analyzed = False
        # Derived maps, filled by _analyze().
        self._threads: List[str] = []
        self._locks: List[str] = []
        self._vars: List[str] = []
        self._rf: Dict[int, Optional[int]] = {}
        self._match: Dict[int, int] = {}
        self._held: List[Tuple[str, ...]] = []
        self._to_pos: Dict[int, Tuple[str, int]] = {}
        self._by_thread: Dict[str, List[int]] = {}
        self._acquires_of: Dict[str, List[int]] = {}

    # -- basic sequence protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> Event:
        return self._events[idx]

    @property
    def events(self) -> Sequence[Event]:
        return self._events

    # -- analysis -----------------------------------------------------------

    def _analyze(self) -> None:
        """Single forward pass computing all derived relations."""
        if self._analyzed:
            return
        threads: List[str] = []
        locks: List[str] = []
        variables: List[str] = []
        seen_threads: Set[str] = set()
        seen_locks: Set[str] = set()
        seen_vars: Set[str] = set()

        last_write: Dict[str, int] = {}
        open_acq: Dict[Tuple[str, str], List[int]] = {}
        held_stack: Dict[str, List[str]] = {}
        thread_len: Dict[str, int] = {}

        for ev in self._events:
            t = ev.thread
            if t not in seen_threads:
                seen_threads.add(t)
                threads.append(t)
                held_stack[t] = []
                thread_len[t] = 0
                self._by_thread[t] = []
            self._to_pos[ev.idx] = (t, thread_len[t])
            thread_len[t] += 1
            self._by_thread[t].append(ev.idx)
            self._held.append(tuple(held_stack[t]))

            if ev.is_access:
                if ev.target not in seen_vars:
                    seen_vars.add(ev.target)
                    variables.append(ev.target)
                if ev.is_read:
                    self._rf[ev.idx] = last_write.get(ev.target)
                else:
                    last_write[ev.target] = ev.idx
            elif ev.op in (Op.ACQUIRE, Op.RELEASE, Op.REQUEST):
                lk = ev.target
                if lk not in seen_locks:
                    seen_locks.add(lk)
                    locks.append(lk)
                if ev.is_acquire:
                    open_acq.setdefault((t, lk), []).append(ev.idx)
                    held_stack[t].append(lk)
                    self._acquires_of.setdefault(lk, []).append(ev.idx)
                elif ev.is_release:
                    stack = open_acq.get((t, lk))
                    if not stack:
                        raise TraceError(
                            f"release without matching acquire: {ev}"
                        )
                    acq_idx = stack.pop()
                    self._match[acq_idx] = ev.idx
                    self._match[ev.idx] = acq_idx
                    # Locks need not be released in LIFO order (hsqldb has
                    # non-well-nested critical sections), so remove the last
                    # occurrence rather than popping the top of the stack.
                    hs = held_stack[t]
                    for j in range(len(hs) - 1, -1, -1):
                        if hs[j] == lk:
                            del hs[j]
                            break
                    else:
                        raise TraceError(f"release of unheld lock: {ev}")

        self._threads = threads
        self._locks = locks
        self._vars = variables
        self._analyzed = True

    # -- derived relations ----------------------------------------------------

    @property
    def threads(self) -> List[str]:
        """Thread identifiers in order of first appearance."""
        self._analyze()
        return self._threads

    @property
    def locks(self) -> List[str]:
        self._analyze()
        return self._locks

    @property
    def variables(self) -> List[str]:
        self._analyze()
        return self._vars

    def events_of_thread(self, thread: str) -> List[int]:
        """Indices of the events of ``thread``, in trace order."""
        self._analyze()
        return self._by_thread.get(thread, [])

    def acquires_of_lock(self, lock: str) -> List[int]:
        """Indices of all acquire events on ``lock``, in trace order."""
        self._analyze()
        return self._acquires_of.get(lock, [])

    def rf(self, read_idx: int) -> Optional[int]:
        """Index of the write the read at ``read_idx`` reads from.

        ``None`` means the read observes the initial value.  (The paper
        assumes every read has a preceding write; we tolerate initial
        reads, which then constrain nothing.)
        """
        self._analyze()
        ev = self._events[read_idx]
        if not ev.is_read:
            raise ValueError(f"rf of non-read event {ev}")
        return self._rf[read_idx]

    def match(self, idx: int) -> Optional[int]:
        """Matching release of an acquire (or vice versa), if present."""
        self._analyze()
        return self._match.get(idx)

    def held_locks(self, idx: int) -> Tuple[str, ...]:
        """``HeldLks(e)``: locks held by ``thread(e)`` right before ``e``."""
        self._analyze()
        return self._held[idx]

    def thread_order_leq(self, a: int, b: int) -> bool:
        """``a <=TO b``: same thread and ``a`` not after ``b``."""
        self._analyze()
        ta, pa = self._to_pos[a]
        tb, pb = self._to_pos[b]
        return ta == tb and pa <= pb

    def thread_position(self, idx: int) -> Tuple[str, int]:
        """(thread, per-thread position) of the event at ``idx``."""
        self._analyze()
        return self._to_pos[idx]

    def thread_predecessor(self, idx: int) -> Optional[int]:
        """Index of the immediately preceding event in the same thread."""
        self._analyze()
        t, pos = self._to_pos[idx]
        if pos == 0:
            return None
        return self._by_thread[t][pos - 1]

    @property
    def lock_nesting_depth(self) -> int:
        """Max ``|HeldLks(e)| + 1`` over acquire events (paper Section 2)."""
        self._analyze()
        depth = 0
        for ev in self._events:
            if ev.is_acquire:
                depth = max(depth, len(self._held[ev.idx]) + 1)
        return depth

    def num_acquires(self) -> int:
        self._analyze()
        return sum(len(v) for v in self._acquires_of.values())

    # -- slicing / projection ---------------------------------------------

    def project(self, event_indices: Iterable[int], name: Optional[str] = None) -> "Trace":
        """The subsequence of this trace restricted to ``event_indices``.

        Events keep their relative order; indices are renumbered.  This
        is how closure sets are turned into candidate reorderings
        (Lemma 4.1 in the paper).
        """
        wanted = sorted(set(event_indices))
        evs = [self._events[i] for i in wanted]
        return Trace(evs, name=name or f"{self.name}|proj")

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self._events)} events)"
