"""Event model: the atoms of an execution trace.

An event is a tuple ``(idx, thread, op, target)`` following Section 2 of
the paper.  ``idx`` is the position in the trace (unique identifier),
``thread`` the performing thread, ``op`` one of the operation kinds
below, and ``target`` the variable, lock, or thread operated on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class Op:
    """Operation kinds an event can perform.

    ``READ``/``WRITE`` target a shared variable; ``ACQUIRE``/``RELEASE``
    (and ``REQUEST``, emitted by some loggers just before a blocking
    acquire) target a lock; ``FORK``/``JOIN`` target another thread.

    Each kind also has a dense integer *code* (``Op.CODE`` /
    ``Op.NAMES``): the compiled trace representation and the streaming
    detectors dispatch on these ints instead of comparing strings.
    """

    READ = "r"
    WRITE = "w"
    ACQUIRE = "acq"
    RELEASE = "rel"
    REQUEST = "req"
    FORK = "fork"
    JOIN = "join"

    ALL = (READ, WRITE, ACQUIRE, RELEASE, REQUEST, FORK, JOIN)

    #: op string -> dense int code (order matches ``ALL``).
    CODE = {op: i for i, op in enumerate(ALL)}
    #: int code -> op string (inverse of ``CODE``).
    NAMES = ALL


# Integer op codes, importable directly for hot loops.
OP_READ = Op.CODE[Op.READ]
OP_WRITE = Op.CODE[Op.WRITE]
OP_ACQUIRE = Op.CODE[Op.ACQUIRE]
OP_RELEASE = Op.CODE[Op.RELEASE]
OP_REQUEST = Op.CODE[Op.REQUEST]
OP_FORK = Op.CODE[Op.FORK]
OP_JOIN = Op.CODE[Op.JOIN]


READ = Op.READ
WRITE = Op.WRITE
ACQUIRE = Op.ACQUIRE
RELEASE = Op.RELEASE
REQUEST = Op.REQUEST
FORK = Op.FORK
JOIN = Op.JOIN


@dataclass(frozen=True)
class Event:
    """A single trace event.

    Attributes:
        idx: 0-based position of the event in its trace; unique id.
        thread: identifier of the performing thread (string).
        op: one of the :class:`Op` constants.
        target: the variable (for r/w), lock (for acq/rel/req), or
            thread (for fork/join) the operation acts on.
        loc: optional source-location tag.  Deadlock reports are
            deduplicated by location tuples ("unique bugs" in Table 2);
            when absent, the event index is used instead.
    """

    idx: int
    thread: str
    op: str
    target: str
    loc: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in Op.ALL:
            raise ValueError(f"unknown operation kind: {self.op!r}")

    # -- convenience predicates -------------------------------------------

    @property
    def op_code(self) -> int:
        """The dense integer code of :attr:`op` (see :attr:`Op.CODE`)."""
        return Op.CODE[self.op]

    @property
    def is_read(self) -> bool:
        return self.op == Op.READ

    @property
    def is_write(self) -> bool:
        return self.op == Op.WRITE

    @property
    def is_access(self) -> bool:
        return self.op in (Op.READ, Op.WRITE)

    @property
    def is_acquire(self) -> bool:
        return self.op == Op.ACQUIRE

    @property
    def is_release(self) -> bool:
        return self.op == Op.RELEASE

    @property
    def is_request(self) -> bool:
        return self.op == Op.REQUEST

    @property
    def is_fork(self) -> bool:
        return self.op == Op.FORK

    @property
    def is_join(self) -> bool:
        return self.op == Op.JOIN

    @property
    def location(self) -> str:
        """Source location for bug deduplication (falls back to index)."""
        return self.loc if self.loc is not None else f"@{self.idx}"

    def __str__(self) -> str:
        return f"e{self.idx}:{self.thread}:{self.op}({self.target})"
