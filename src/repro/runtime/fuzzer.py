"""DeadlockFuzzer-style controlled concurrency testing [Joshi et al. 2009].

The baseline of the online experiment (Section 6.2).  Two phases:

1. **Discovery**: execute the program under a random scheduler, build
   the lock-order graph of the observed trace, and extract deadlock
   patterns (Goodlock-style — unsound warnings).
2. **Confirmation**: for each warning, spawn ``confirm_runs`` fresh
   executions with a scheduler biased to pause threads right before the
   warned acquire locations, trying to steer the program into actually
   deadlocking.  Only *hit* deadlocks are reported (that is what makes
   the technique a sound-by-construction but low-yield proxy for
   prediction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.baselines.goodlock import goodlock
from repro.runtime.program import Program
from repro.runtime.scheduler import BiasedScheduler, RandomScheduler, run_program


@dataclass
class FuzzerCampaign:
    """Aggregated outcome of one DeadlockFuzzer campaign."""

    executions: int = 0
    warnings: int = 0
    confirmed_hits: List[Tuple[str, ...]] = field(default_factory=list)

    @property
    def num_hits(self) -> int:
        return len(self.confirmed_hits)

    @property
    def bug_ids(self) -> Set[Tuple[str, ...]]:
        return set(self.confirmed_hits)


class DeadlockFuzzer:
    """The two-phase random-testing deadlock detector.

    Args:
        confirm_runs: confirmation executions per warning (the paper
            and the calfuzzer default use 3).
        max_steps: per-execution step budget.
    """

    def __init__(self, confirm_runs: int = 3, max_steps: int = 100_000) -> None:
        self.confirm_runs = confirm_runs
        self.max_steps = max_steps

    def run_once(self, program: Program, seed: int) -> FuzzerCampaign:
        """One discovery run plus confirmations for each warning."""
        campaign = FuzzerCampaign()
        discovery = run_program(
            program, scheduler=RandomScheduler(seed), max_steps=self.max_steps
        )
        campaign.executions += 1
        if discovery.deadlocked:
            campaign.confirmed_hits.append(discovery.deadlock_bug_id)
            return campaign  # the run died; nothing more to confirm

        warnings = goodlock(discovery.trace, max_size=6).warnings
        campaign.warnings = len(warnings)
        for w_idx, warning in enumerate(warnings):
            pause_locs = {
                discovery.trace[e].location for e in warning.events
            }
            for r in range(self.confirm_runs):
                sched = BiasedScheduler(
                    seed=seed * 7919 + w_idx * 101 + r,
                    pause_prob=0.8,
                    pause_steps=6,
                    pause_acquires=pause_locs,
                )
                confirm = run_program(program, scheduler=sched, max_steps=self.max_steps)
                campaign.executions += 1
                if confirm.deadlocked:
                    campaign.confirmed_hits.append(confirm.deadlock_bug_id)
                    break  # confirmed; move to next warning
        return campaign

    def campaign(
        self, program: Program, trials: int, seed: int = 0
    ) -> FuzzerCampaign:
        """``trials`` independent discovery+confirmation rounds."""
        total = FuzzerCampaign()
        for i in range(trials):
            one = self.run_once(program, seed=seed + i)
            total.executions += one.executions
            total.warnings += one.warnings
            total.confirmed_hits.extend(one.confirmed_hits)
        return total
