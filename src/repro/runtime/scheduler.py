"""Cooperative execution of DSL programs under controllable schedulers.

Execution proceeds in steps: the scheduler picks a runnable thread,
that thread executes its next statement, and a trace event is emitted.
A thread blocks on acquiring a held lock; when every unfinished thread
is blocked, the run has hit an *actual* deadlock — the execution halts
and reports the cycle, mirroring how an instrumented JVM run dies.

Two schedulers:

- :class:`RandomScheduler` — uniformly random among runnable threads.
- :class:`BiasedScheduler` — the paper's simple bias (Section 6.2):
  when a thread is about to write a shared variable while holding a
  lock, randomly pause it for a few steps, shaking out racy orders;
  optionally also pause at chosen acquire locations (the
  DeadlockFuzzer confirmation strategy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.runtime.program import (
    Acquire,
    Branch,
    Program,
    Release,
    VarRead,
    VarWrite,
)
from repro.trace.events import Event, Op
from repro.trace.trace import Trace


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    trace: Trace
    deadlocked: bool
    deadlock_cycle: Tuple[str, ...] = ()
    deadlock_locations: Tuple[str, ...] = ()
    steps: int = 0

    @property
    def deadlock_bug_id(self) -> Tuple[str, ...]:
        return tuple(sorted(self.deadlock_locations))


class RandomScheduler:
    """Uniform random choice among runnable threads."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def pick(self, runnable: List[str], state: "_ExecState") -> str:
        return self.rng.choice(runnable)

    def step_hook(self, state: "_ExecState") -> None:  # pragma: no cover
        pass


class BiasedScheduler(RandomScheduler):
    """Random scheduling with write-under-lock pausing.

    Args:
        seed: PRNG seed.
        pause_prob: chance to pause a thread at a write-while-holding-
            a-lock site.
        pause_steps: how many scheduling rounds the pause lasts.
        pause_acquires: acquire source locations to pause *before*
            executing (DeadlockFuzzer's confirmation bias).
    """

    def __init__(
        self,
        seed: int = 0,
        pause_prob: float = 0.3,
        pause_steps: int = 4,
        pause_acquires: Optional[Set[str]] = None,
    ) -> None:
        super().__init__(seed)
        self.pause_prob = pause_prob
        self.pause_steps = pause_steps
        self.pause_acquires = pause_acquires or set()
        self._paused: Dict[str, int] = {}

    def pick(self, runnable: List[str], state: "_ExecState") -> str:
        # Decay running pauses.
        for t in list(self._paused):
            self._paused[t] -= 1
            if self._paused[t] <= 0:
                del self._paused[t]
        eligible = [t for t in runnable if t not in self._paused]
        if not eligible:
            eligible = runnable
        choice = self.rng.choice(eligible)
        nxt = state.peek(choice)
        if nxt is not None:
            is_locked_write = (
                isinstance(nxt, VarWrite) and state.held[choice]
            )
            is_target_acquire = (
                isinstance(nxt, Acquire)
                and nxt.loc is not None
                and nxt.loc in self.pause_acquires
            )
            if (is_locked_write or is_target_acquire) and (
                self.rng.random() < self.pause_prob
            ):
                others = [t for t in eligible if t != choice]
                if others:
                    self._paused[choice] = self.pause_steps
                    return self.rng.choice(others)
        return choice


class _ExecState:
    """Mutable machine state shared with schedulers."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.memory: Dict[str, Any] = dict(program.initial_memory)
        # Per-thread statement stack (supports Branch inlining).
        self.frames: Dict[str, List] = {
            tp.name: list(reversed(tp.body)) for tp in program.threads
        }
        self.held: Dict[str, List[str]] = {tp.name: [] for tp in program.threads}
        self.owner: Dict[str, str] = {}
        self.waiting_for: Dict[str, str] = {}

    def peek(self, thread: str):
        frame = self.frames[thread]
        return frame[-1] if frame else None

    def finished(self, thread: str) -> bool:
        return not self.frames[thread]

    def runnable_threads(self) -> List[str]:
        out = []
        for t, frame in self.frames.items():
            if not frame:
                continue
            nxt = frame[-1]
            if isinstance(nxt, Acquire) and self.owner.get(nxt.lock, t) != t:
                self.waiting_for[t] = nxt.lock
                continue
            self.waiting_for.pop(t, None)
            out.append(t)
        return out

    def deadlock_cycle(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Threads blocked in a cyclic wait, with the blocking locations."""
        cycle: List[str] = []
        locs: List[str] = []
        seen: Set[str] = set()
        # Find a cycle in the waits-for graph.
        for start in self.waiting_for:
            chain: List[str] = []
            t = start
            while t in self.waiting_for and t not in seen:
                seen.add(t)
                chain.append(t)
                lock = self.waiting_for[t]
                t = self.owner.get(lock, "")
                if t in chain:
                    k = chain.index(t)
                    cycle = chain[k:]
                    for ct in cycle:
                        stmt = self.peek(ct)
                        locs.append(getattr(stmt, "loc", None) or "?")
                    return tuple(cycle), tuple(locs)
        return (), ()


def run_program(
    program: Program,
    scheduler: Optional[RandomScheduler] = None,
    max_steps: int = 100_000,
    event_sink=None,
) -> ExecutionResult:
    """Execute ``program`` to completion, deadlock, or step budget.

    ``event_sink(event)`` — when given — receives each event as it is
    emitted (the hook the online monitor attaches to).
    """
    scheduler = scheduler or RandomScheduler()
    state = _ExecState(program)
    events: List[Event] = []
    steps = 0

    def emit(thread: str, op: str, target: str, loc: Optional[str]) -> None:
        ev = Event(len(events), thread, op, target, loc)
        events.append(ev)
        if event_sink is not None:
            event_sink(ev)

    while steps < max_steps:
        runnable = state.runnable_threads()
        if not runnable:
            unfinished = [t for t, fr in state.frames.items() if fr]
            if not unfinished:
                break  # normal termination
            cycle, locs = state.deadlock_cycle()
            # Emit the blocked requests so the trace records the stall.
            for t in cycle:
                stmt = state.peek(t)
                if isinstance(stmt, Acquire):
                    emit(t, Op.REQUEST, stmt.lock, stmt.loc)
            return ExecutionResult(
                trace=Trace(events, name=program.name),
                deadlocked=True,
                deadlock_cycle=cycle,
                deadlock_locations=locs,
                steps=steps,
            )
        t = scheduler.pick(sorted(runnable), state)
        stmt = state.frames[t].pop()
        steps += 1
        if isinstance(stmt, Acquire):
            if stmt.lock in state.owner:
                raise RuntimeError(
                    f"{program.name}: thread {t} re-acquires {stmt.lock} "
                    "(the model has non-reentrant locks)"
                )
            state.owner[stmt.lock] = t
            state.held[t].append(stmt.lock)
            emit(t, Op.ACQUIRE, stmt.lock, stmt.loc)
        elif isinstance(stmt, Release):
            if state.owner.get(stmt.lock) != t:
                raise RuntimeError(
                    f"{program.name}: thread {t} releases unheld lock {stmt.lock}"
                )
            del state.owner[stmt.lock]
            state.held[t].remove(stmt.lock)
            emit(t, Op.RELEASE, stmt.lock, stmt.loc)
        elif isinstance(stmt, VarWrite):
            state.memory[stmt.var] = stmt.value
            emit(t, Op.WRITE, stmt.var, stmt.loc)
        elif isinstance(stmt, VarRead):
            emit(t, Op.READ, stmt.var, stmt.loc)
        elif isinstance(stmt, Branch):
            emit(t, Op.READ, stmt.var, stmt.loc)
            taken = stmt.then if state.memory.get(stmt.var) == stmt.equals else stmt.orelse
            state.frames[t].extend(reversed(taken))
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {stmt!r}")

    return ExecutionResult(
        trace=Trace(events, name=program.name),
        deadlocked=False,
        steps=steps,
    )
