"""Online analysis substrate: a toy concurrent-program DSL, cooperative
schedulers, the SPDOnline runtime monitor, and a DeadlockFuzzer-style
controlled-concurrency-testing baseline (Section 6.2)."""

from repro.runtime.program import (
    Acquire,
    Branch,
    Program,
    Release,
    ThreadProc,
    VarRead,
    VarWrite,
)
from repro.runtime.scheduler import (
    BiasedScheduler,
    ExecutionResult,
    RandomScheduler,
    run_program,
)
from repro.runtime.monitor import MonitoredExecution, run_with_monitor
from repro.runtime.fuzzer import DeadlockFuzzer, FuzzerCampaign

__all__ = [
    "Acquire",
    "Release",
    "VarRead",
    "VarWrite",
    "Branch",
    "ThreadProc",
    "Program",
    "RandomScheduler",
    "BiasedScheduler",
    "ExecutionResult",
    "run_program",
    "MonitoredExecution",
    "run_with_monitor",
    "DeadlockFuzzer",
    "FuzzerCampaign",
]
