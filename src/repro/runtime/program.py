"""A tiny concurrent-program DSL.

Online deadlock prediction (Section 6.2) analyzes *executing programs*
whose interleavings — and therefore traces — vary run to run.  This
module models such programs: each thread is a list of statements over
shared variables and locks, with value-sensitive branching so that
Transfer-style control-flow-guarded deadlocks can be expressed.

Statements:

- :class:`Acquire` / :class:`Release` — lock operations (an acquire of
  a held lock blocks the thread until the owner releases).
- :class:`VarWrite` — write a value to a shared variable.
- :class:`VarRead` — read a shared variable (emits a read event).
- :class:`Branch` — conditional on the last-read/current value of a
  variable; executes one of two statement lists (flattened inline).

Programs are pure data; execution lives in
:mod:`repro.runtime.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class Acquire:
    lock: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Release:
    lock: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class VarWrite:
    var: str
    value: Any = None
    loc: Optional[str] = None


@dataclass(frozen=True)
class VarRead:
    var: str
    loc: Optional[str] = None


@dataclass(frozen=True)
class Branch:
    """Execute ``then`` if ``var``'s current value equals ``equals``,
    otherwise ``orelse``.  Reads the variable (emits a read event)."""

    var: str
    equals: Any
    then: Tuple["Stmt", ...] = ()
    orelse: Tuple["Stmt", ...] = ()
    loc: Optional[str] = None


Stmt = Union[Acquire, Release, VarWrite, VarRead, Branch]


@dataclass
class ThreadProc:
    """One thread: a name and its statement list."""

    name: str
    body: List[Stmt] = field(default_factory=list)

    # -- fluent construction ------------------------------------------------

    def acq(self, lock: str, loc: Optional[str] = None) -> "ThreadProc":
        self.body.append(Acquire(lock, loc))
        return self

    def rel(self, lock: str, loc: Optional[str] = None) -> "ThreadProc":
        self.body.append(Release(lock, loc))
        return self

    def write(self, var: str, value: Any = None, loc: Optional[str] = None) -> "ThreadProc":
        self.body.append(VarWrite(var, value, loc))
        return self

    def read(self, var: str, loc: Optional[str] = None) -> "ThreadProc":
        self.body.append(VarRead(var, loc))
        return self

    def branch(
        self,
        var: str,
        equals: Any,
        then: Sequence[Stmt] = (),
        orelse: Sequence[Stmt] = (),
        loc: Optional[str] = None,
    ) -> "ThreadProc":
        self.body.append(Branch(var, equals, tuple(then), tuple(orelse), loc))
        return self

    def cs(self, *locks: str, loc: Optional[str] = None) -> "ThreadProc":
        """Nested critical sections around nothing (lock-shape helper)."""
        for lk in locks:
            self.acq(lk, loc)
        for lk in reversed(locks):
            self.rel(lk, loc)
        return self


@dataclass
class Program:
    """A named set of thread procedures with initial memory."""

    name: str
    threads: List[ThreadProc] = field(default_factory=list)
    initial_memory: Dict[str, Any] = field(default_factory=dict)

    def thread(self, name: str) -> ThreadProc:
        proc = ThreadProc(name)
        self.threads.append(proc)
        return proc
