"""Witness replay: turn a predicted deadlock into an actual one.

The controlled-scheduling confirmation step of tools like
DeadlockFuzzer, but driven by a *sound* witness instead of luck: given
a program, an observed trace, and an offline witness schedule (Lemma
4.1), re-execute the program forcing exactly the witness interleaving.
If the prediction is right — and for sync-preserving deadlocks it
always is, provided the program behaves deterministically given the
same reads — the replay ends with every pattern thread blocked on its
pattern lock: a real deadlock, reproduced on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.runtime.program import Program
from repro.runtime.scheduler import ExecutionResult, RandomScheduler, run_program
from repro.trace.trace import Trace


class ScriptedScheduler(RandomScheduler):
    """Plays back a fixed thread sequence, then stops scheduling.

    Each entry names the thread to run for one step.  When the script
    is exhausted (or the scripted thread cannot run), scheduling falls
    back to ``tail_policy``: ``"halt"`` runs nothing further except
    threads needed to expose the deadlock, ``"random"`` continues
    randomly.
    """

    def __init__(self, script: Sequence[str], seed: int = 0,
                 tail_policy: str = "halt") -> None:
        super().__init__(seed)
        self.script: List[str] = list(script)
        self.tail_policy = tail_policy
        self._pos = 0
        self.diverged = False

    def pick(self, runnable: List[str], state) -> str:
        while self._pos < len(self.script):
            want = self.script[self._pos]
            self._pos += 1
            if want in runnable:
                return want
            # The program took a different path than the recorded
            # trace (value nondeterminism): note and fall through.
            self.diverged = True
        if self.tail_policy == "random":
            return self.rng.choice(runnable)
        # halt: schedule pattern threads last so their blocking
        # acquires fire; pick deterministically for reproducibility.
        return sorted(runnable)[0]


@dataclass
class ReplayResult:
    """Outcome of replaying a witness schedule."""

    execution: ExecutionResult
    diverged: bool

    @property
    def confirmed(self) -> bool:
        """Did the replay end in an actual deadlock?"""
        return self.execution.deadlocked


def schedule_to_script(trace: Trace, schedule: Sequence[int]) -> List[str]:
    """Thread sequence realizing an event-index witness schedule."""
    return [trace[idx].thread for idx in schedule]


def replay_witness(
    program: Program,
    trace: Trace,
    schedule: Sequence[int],
    pattern: Sequence[int],
    max_steps: int = 100_000,
) -> ReplayResult:
    """Re-execute ``program`` along ``schedule`` and push the pattern
    threads one step further into their blocking acquires.

    Args:
        program: the DSL program that produced ``trace``.
        trace: the observed trace.
        schedule: witness event indices (e.g. from
            :func:`repro.reorder.witness.witness_for_pattern`).
        pattern: the deadlock pattern's event indices; their threads
            are scheduled once more after the witness prefix so each
            issues its blocking acquire.
    """
    script = schedule_to_script(trace, schedule)
    script += [trace[e].thread for e in pattern]
    sched = ScriptedScheduler(script, tail_policy="halt")
    execution = run_program(program, scheduler=sched, max_steps=max_steps)
    return ReplayResult(execution=execution, diverged=sched.diverged)


def predict_and_replay(
    program: Program,
    seed: int = 0,
    max_steps: int = 100_000,
) -> Optional[ReplayResult]:
    """End-to-end: observe one run, predict, then confirm by replay.

    Returns ``None`` when the observed run admits no sync-preserving
    deadlock (nothing to confirm); otherwise the replay result for the
    first report.
    """
    from repro.core.spd_offline import spd_offline
    from repro.reorder.witness import witness_for_pattern

    observed = run_program(program, RandomScheduler(seed), max_steps=max_steps)
    if observed.deadlocked:
        return ReplayResult(execution=observed, diverged=False)
    result = spd_offline(observed.trace)
    if not result.reports:
        return None
    pattern = result.reports[0].pattern.events
    schedule, ok = witness_for_pattern(observed.trace, pattern)
    if not ok:  # cannot happen for sound reports; defensive
        return None
    return replay_witness(program, observed.trace, schedule, pattern,
                          max_steps=max_steps)
