"""Program families for the online experiment (Table 2).

Each factory builds a DSL :class:`~repro.runtime.program.Program` whose
schedule-dependent behavior mirrors one Table 2 benchmark family:
programs that deadlock outright, programs with rare interleaving-
dependent deadlocks, control-flow-guarded (Transfer-style) deadlocks,
and deadlock-free workloads.  ``TABLE2_PROGRAMS`` maps every Table 2
row to a factory plus the published hit counts for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.runtime.program import Acquire, Program, Release, VarWrite


def inverse_order_program(
    name: str, num_bugs: int = 1, spacing: int = 4, guarded: bool = False
) -> Program:
    """``num_bugs`` independent inverse-order lock pairs.

    ``spacing`` inserts variable accesses between the halves so random
    schedules sometimes separate the critical sections (predictable but
    not hit) and sometimes overlap them (actual deadlock).
    ``guarded`` wraps every pair in a common gate lock, making the
    cycles benign (zero deadlocks, the Account-like shape).
    """
    p = Program(name)
    for i in range(num_bugs):
        la, lb = f"{name}_a{i}", f"{name}_b{i}"
        t1 = p.thread(f"t{2 * i}")
        t2 = p.thread(f"t{2 * i + 1}")
        for t, first, second, tag in (
            (t1, la, lb, "fwd"),
            (t2, lb, la, "bwd"),
        ):
            for s in range(spacing):
                t.write(f"{name}_pad{i}_{s}", s)
            if guarded:
                t.acq(f"{name}_gate{i}", loc=f"{name}:{tag}{i}:gate")
            t.acq(first, loc=f"{name}:{tag}{i}:outer")
            t.write(f"{name}_shared{i}", tag)
            t.acq(second, loc=f"{name}:{tag}{i}:inner")
            t.write(f"{name}_shared{i}", tag + "2")
            t.rel(second)
            t.rel(first)
            if guarded:
                t.rel(f"{name}_gate{i}")
    return p


def transfer_program(name: str = "Transfer") -> Program:
    """Control-flow-guarded deadlock (the Transfer/Deadlock shape).

    t2 runs its inverse-order transfer only when it observes the flag
    value 1, which t1 publishes *before* its own transfer.  Whether the
    two critical sections can overlap — and hence whether the deadlock
    is predictable from the observed run — depends on the schedule, so
    random-scheduler navigation is what exposes the bug (Section 6.2's
    observation about Transfer and Deadlock).
    """
    p = Program(name, initial_memory={f"{name}_flag": 0})
    t1 = p.thread("t1")
    t1.write(f"{name}_flag", 1, loc=f"{name}:publish")
    t1.acq(f"{name}_acctA", loc=f"{name}:t1:outer")
    t1.write(f"{name}_balA", 10)
    t1.acq(f"{name}_acctB", loc=f"{name}:t1:inner")
    t1.write(f"{name}_balB", 20)
    t1.rel(f"{name}_acctB").rel(f"{name}_acctA")
    t2 = p.thread("t2")
    t2.branch(
        f"{name}_flag",
        1,
        then=(
            Acquire(f"{name}_acctB", loc=f"{name}:t2:outer"),
            VarWrite(f"{name}_balB", 5),
            Acquire(f"{name}_acctA", loc=f"{name}:t2:inner"),
            VarWrite(f"{name}_balA", 5),
            Release(f"{name}_acctA"),
            Release(f"{name}_acctB"),
        ),
        orelse=(VarWrite(f"{name}_skipped", 1),),
        loc=f"{name}:t2:check",
    )
    return p


def dining_program(name: str, n: int = 5) -> Program:
    """n philosophers, left-then-right forks — deadlocks readily."""
    p = Program(name)
    for i in range(n):
        t = p.thread(f"phil{i}")
        left, right = f"{name}_fork{i}", f"{name}_fork{(i + 1) % n}"
        t.write(f"{name}_think{i}", 0)
        t.acq(left, loc=f"{name}:left{i}")
        t.acq(right, loc=f"{name}:right{i}")
        t.write(f"{name}_eat{i}", 1)
        t.rel(right).rel(left)
    return p


def rare_pair_program(name: str, num_common: int = 1, num_rare: int = 1) -> Program:
    """Common bugs plus bugs hidden behind long prefixes.

    The rare pairs sit after enough unrelated work that random
    schedules rarely overlap them — DeadlockFuzzer's confirmation runs
    usually miss them, while prediction reports them from almost any
    interleaving (the Bensalem / Test-Dimmunix shape where DF scores 0
    or near-0 and SPD scores high).
    """
    p = Program(name)
    for i in range(num_common):
        la, lb = f"{name}_ca{i}", f"{name}_cb{i}"
        t1, t2 = p.thread(f"c{2 * i}"), p.thread(f"c{2 * i + 1}")
        t1.acq(la, loc=f"{name}:c{i}:1").acq(lb, loc=f"{name}:c{i}:2")
        t1.rel(lb).rel(la)
        t2.acq(lb, loc=f"{name}:c{i}:3").acq(la, loc=f"{name}:c{i}:4")
        t2.rel(la).rel(lb)
    for i in range(num_rare):
        la, lb = f"{name}_ra{i}", f"{name}_rb{i}"
        t1, t2 = p.thread(f"r{2 * i}"), p.thread(f"r{2 * i + 1}")
        t1.acq(la, loc=f"{name}:r{i}:1").acq(lb, loc=f"{name}:r{i}:2")
        t1.rel(lb).rel(la)
        # A long skew: by the time t2 reaches its inverse-order pair,
        # t1's critical sections are long gone, so the deadlock is
        # essentially unhittable — even for DeadlockFuzzer's pausing,
        # whose pause window is far shorter than the skew.  Prediction
        # does not care: both critical sections are in the trace.
        for s in range(140):
            t2.write(f"{name}_busy{i}", s)
        t2.acq(lb, loc=f"{name}:r{i}:3").acq(la, loc=f"{name}:r{i}:4")
        t2.rel(la).rel(lb)
    return p


def mixed_size_program(name: str, num_pairs: int = 2, cycle: int = 3) -> Program:
    """Size-2 pairs plus one size-``cycle`` dining cycle.

    The JDBCMySQL-1 shape: DeadlockFuzzer can confirm the multi-thread
    cycle by pausing, while SPDOnline — size-2 by design — cannot
    predict it, the one direction where DF out-scores SPD in Table 2.
    """
    p = inverse_order_program(name, num_bugs=num_pairs, spacing=2)
    for i in range(cycle):
        t = p.thread(f"cyc{i}")
        left, right = f"{name}_cfork{i}", f"{name}_cfork{(i + 1) % cycle}"
        t.acq(left, loc=f"{name}:cyc{i}:l")
        t.acq(right, loc=f"{name}:cyc{i}:r")
        t.write(f"{name}_bowl{i}", 1)
        t.rel(right).rel(left)
    return p


def parallel_compute_program(name: str, num_threads: int = 4, work: int = 12) -> Program:
    """Deadlock-free: disjoint locks, fixed acquisition order."""
    p = Program(name)
    for i in range(num_threads):
        t = p.thread(f"w{i}")
        for s in range(work):
            t.acq(f"{name}_m{i}", loc=f"{name}:w{i}")
            t.write(f"{name}_acc{i}", s)
            t.rel(f"{name}_m{i}")
            t.read(f"{name}_acc{(i + 1) % num_threads}")
    return p


def collection_program(name: str, num_bugs: int = 2, workers: int = 4) -> Program:
    """java.util-collections shape: worker threads hammer shared
    containers; ``num_bugs`` cross-container inverse-order pairs."""
    p = inverse_order_program(name, num_bugs=num_bugs, spacing=6)
    for i in range(workers):
        t = p.thread(f"bg{i}")
        for s in range(8):
            t.acq(f"{name}_coll{i % 2}", loc=f"{name}:bg{i}")
            t.write(f"{name}_elem{i}", s)
            t.rel(f"{name}_coll{i % 2}")
    return p


@dataclass(frozen=True)
class Table2Row:
    """One Table 2 row: program factory + published outcomes."""

    name: str
    factory: Callable[[], Program]
    paper_spd_hits: int
    paper_df_hits: int
    paper_spd_bugs: int
    paper_df_bugs: int
    paper_all_bugs: int
    #: bugs the replica's program actually contains (ground truth)
    replica_bugs: int = 1
    #: bugs SPDOnline can reach on the replica (size-2 restriction may
    #: exclude multi-thread cycles; equals replica_bugs by default)
    replica_spd_bugs: int = -1

    def __post_init__(self):
        if self.replica_spd_bugs < 0:
            object.__setattr__(self, "replica_spd_bugs", self.replica_bugs)


def _row(name, factory, spd_hits, df_hits, spd_b, df_b, all_b, replica_bugs,
         replica_spd_bugs=-1):
    return Table2Row(name, factory, spd_hits, df_hits, spd_b, df_b, all_b,
                     replica_bugs, replica_spd_bugs)


#: All 38 rows of Table 2, with factories shaping the replica programs.
TABLE2_PROGRAMS: List[Table2Row] = [
    _row("Deadlock", lambda: transfer_program("Deadlock"), 50, 50, 1, 1, 1, 1),
    _row("Picklock", lambda: rare_pair_program("Picklock", 1, 1), 227, 97, 2, 1, 2, 2),
    _row("Bensalem", lambda: rare_pair_program("Bensalem", 0, 2), 355, 32, 2, 1, 2, 2),
    _row("Transfer", lambda: transfer_program("Transfer"), 54, 50, 1, 1, 1, 1),
    _row("Test-Dimmunix", lambda: rare_pair_program("Dimmunix", 0, 2), 702, 0, 2, 0, 2, 2),
    _row("StringBuffer", lambda: inverse_order_program("StringBuffer", 2), 153, 131, 2, 2, 2, 2),
    _row("Test-Calfuzzer", lambda: inverse_order_program("Calfuzzer", 1), 177, 44, 1, 1, 1, 1),
    # SPDOnline covers size-2 deadlocks; the online replica uses the
    # two-philosopher instance (the offline Table 1 replica keeps n=5).
    _row("DiningPhil", lambda: dining_program("DiningPhil", 2), 162, 100, 1, 1, 1, 1),
    _row("HashTable", lambda: inverse_order_program("HashTable", 2), 169, 120, 2, 2, 2, 2),
    _row("Account", lambda: inverse_order_program("Account", 1, spacing=10), 19, 188, 1, 1, 1, 1),
    _row("Log4j2", lambda: rare_pair_program("Log4j2", 1, 1), 290, 100, 2, 1, 2, 2),
    _row("Dbcp1", lambda: rare_pair_program("Dbcp1", 1, 1), 265, 138, 2, 2, 2, 2),
    _row("Dbcp2", lambda: inverse_order_program("Dbcp2", 2), 129, 126, 2, 2, 2, 2),
    _row("RayTracer", lambda: parallel_compute_program("RayTracer"), 0, 0, 0, 0, 0, 0),
    _row("Tsp", lambda: parallel_compute_program("Tsp"), 0, 0, 0, 0, 0, 0),
    _row("jigsaw", lambda: rare_pair_program("jigsaw", 0, 1), 1189, 1, 1, 1, 2, 1),
    _row("elevator", lambda: parallel_compute_program("elevator"), 0, 0, 0, 0, 0, 0),
    # Paper: DF found 3 bugs here, SPD only 2 — replicated with a
    # size-3 cycle that the size-2 online analysis cannot see.
    _row("JDBCMySQL-1", lambda: mixed_size_program("JDBC1", 2, 3), 349, 117, 2, 3, 3, 3,
         replica_spd_bugs=2),
    _row("JDBCMySQL-2", lambda: inverse_order_program("JDBC2", 1), 559, 73, 1, 1, 1, 1),
    _row("JDBCMySQL-3", lambda: inverse_order_program("JDBC3", 1), 560, 224, 1, 1, 1, 1),
    _row("JDBCMySQL-4", lambda: rare_pair_program("JDBC4", 1, 2), 1717, 101, 3, 1, 3, 3),
    _row("hedc", lambda: parallel_compute_program("hedc"), 0, 0, 0, 0, 0, 0),
    _row("cache4j", lambda: parallel_compute_program("cache4j"), 0, 0, 0, 0, 0, 0),
    _row("lusearch", lambda: parallel_compute_program("lusearch"), 0, 0, 0, 0, 0, 0),
    _row("ArrayList", lambda: collection_program("ArrayList", 3), 47, 45, 3, 3, 3, 3),
    _row("Stack", lambda: collection_program("Stack", 3), 44, 27, 3, 3, 3, 3),
    _row("IdentityHashMap", lambda: collection_program("IdentityHashMap", 2), 68, 62, 2, 2, 2, 2),
    _row("LinkedList", lambda: collection_program("LinkedList", 3), 48, 26, 3, 2, 3, 3),
    _row("Swing", lambda: parallel_compute_program("Swing"), 0, 0, 0, 0, 0, 0),
    _row("Sor", lambda: parallel_compute_program("Sor"), 0, 0, 0, 0, 0, 0),
    _row("HashMap", lambda: collection_program("HashMap", 2), 46, 44, 2, 2, 2, 2),
    _row("Vector", lambda: inverse_order_program("Vector", 1), 126, 50, 1, 1, 1, 1),
    _row("LinkedHashMap", lambda: collection_program("LinkedHashMap", 2), 57, 43, 2, 2, 2, 2),
    _row("WeakHashMap", lambda: collection_program("WeakHashMap", 2), 29, 40, 2, 2, 2, 2),
    _row("montecarlo", lambda: parallel_compute_program("montecarlo"), 0, 0, 0, 0, 0, 0),
    _row("TreeMap", lambda: collection_program("TreeMap", 2), 42, 47, 2, 2, 2, 2),
    _row("eclipse", lambda: parallel_compute_program("eclipse"), 0, 0, 0, 0, 0, 0),
    _row("TestPerf", lambda: parallel_compute_program("TestPerf"), 0, 0, 0, 0, 0, 0),
]

TABLE2_BY_NAME: Dict[str, Table2Row] = {r.name: r for r in TABLE2_PROGRAMS}
