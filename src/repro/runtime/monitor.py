"""The SPDOnline runtime monitor: predict deadlocks while a program runs.

This is the paper's online deployment (Section 6.2): the analysis
consumes each event the instant it is emitted.  If the program *hits*
an actual deadlock the run halts (and that counts as a bug find too);
when a deadlock is merely *predictable* in an alternate interleaving,
the monitor reports it and the run continues — no confirmation
re-executions needed, because SPDOnline is sound.

Events flow through a :class:`repro.stream.StreamSession` (flushed per
event, preserving the instant-detection semantics): the detector is an
ordinary session consumer, the monitored run leaves behind a
first-class incrementally-indexed trace (:attr:`MonitoredExecution.session`),
and ``max_memory_events`` turns on bounded-memory eviction for
indefinitely-running programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.spd_online import OnlineReport, SPDOnline
from repro.runtime.program import Program
from repro.runtime.scheduler import (
    BiasedScheduler,
    ExecutionResult,
    RandomScheduler,
    run_program,
)
from repro.stream.session import StreamSession


@dataclass
class MonitoredExecution:
    """One monitored run: the execution outcome plus online predictions."""

    execution: ExecutionResult
    predictions: List[OnlineReport] = field(default_factory=list)
    #: size ≥ 3 predictions (populated when monitoring with SPDOnline-K)
    k_predictions: List = field(default_factory=list)
    #: the streaming session the run fed (trace views, checkpoints)
    session: Optional[StreamSession] = None

    @property
    def bug_ids(self) -> Set[Tuple[str, ...]]:
        """Unique bugs: predicted ones plus the hit deadlock, if any."""
        bugs = {r.bug_id for r in self.predictions}
        bugs.update(r.bug_id for r in self.k_predictions)
        if self.execution.deadlocked:
            bugs.add(self.execution.deadlock_bug_id)
        return bugs

    @property
    def num_hits(self) -> int:
        """Bug hits: one per prediction plus one per actual deadlock."""
        return (
            len(self.predictions)
            + len(self.k_predictions)
            + (1 if self.execution.deadlocked else 0)
        )


def run_with_monitor(
    program: Program,
    scheduler: Optional[RandomScheduler] = None,
    max_steps: int = 100_000,
    max_deadlock_size: int = 2,
    max_memory_events: Optional[int] = None,
) -> MonitoredExecution:
    """Execute ``program`` with SPDOnline attached to the event stream.

    ``max_deadlock_size > 2`` swaps in the SPDOnline-K extension, which
    also predicts multi-thread cycles (e.g. dining philosophers)
    online; size-2 reports flow through either way.
    ``max_memory_events`` bounds tracked detector (and session) state
    for long-running programs — sound, may miss (size 2 only).
    """
    if max_deadlock_size > 2:
        from repro.core.spd_online_k import SPDOnlineK

        detector = SPDOnlineK(max_size=max_deadlock_size)
    else:
        detector = SPDOnline(max_memory_events=max_memory_events)
    # Per-event flush: the detector sees each event the instant the
    # scheduler emits it, exactly as with a direct sink.
    session = StreamSession(
        name=getattr(program, "name", None) or "monitored-run",
        batch_size=1,
        max_memory_events=max_memory_events,
    )
    session.attach(detector)
    result = run_program(
        program,
        scheduler=scheduler,
        max_steps=max_steps,
        event_sink=session.append_event,
    )
    session.close()
    out = MonitoredExecution(execution=result,
                             predictions=list(detector.reports),
                             session=session)
    for rep in getattr(detector, "k_reports", ()):
        out.k_predictions.append(rep)
    return out


def monitored_campaign(
    program: Program,
    runs: int,
    seed: int = 0,
    biased: bool = True,
    max_steps: int = 100_000,
    max_deadlock_size: int = 2,
) -> List[MonitoredExecution]:
    """Repeatedly execute + monitor ``program`` with fresh schedules.

    This is the SPDOnline side of the Table 2 experiment: prediction
    piggybacks on ordinary (biased-random) testing runs.
    """
    out = []
    for i in range(runs):
        sched: RandomScheduler
        if biased:
            sched = BiasedScheduler(seed=seed + i)
        else:
            sched = RandomScheduler(seed=seed + i)
        out.append(
            run_with_monitor(
                program,
                scheduler=sched,
                max_steps=max_steps,
                max_deadlock_size=max_deadlock_size,
            )
        )
    return out
