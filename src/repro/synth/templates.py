"""Deadlock scenario templates mirroring the benchmark families.

Each function builds a trace with a known, documented deadlock
structure.  Locations (``loc``) tag the acquire sites so reports
deduplicate into "unique bugs" the way Table 2 counts them.
"""

from __future__ import annotations

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace


def simple_deadlock_trace(padding: int = 0) -> Trace:
    """The textbook two-thread inverse-order deadlock (one SP deadlock).

    ``padding`` interleaves unrelated accesses to inflate N without
    changing the verdict.
    """
    b = TraceBuilder()
    b.acq("t1", "la", loc="A.java:10").acq("t1", "lb", loc="A.java:11")
    b.rel("t1", "lb").rel("t1", "la")
    for i in range(padding):
        b.write("t1", f"pad{i % 7}")
    b.acq("t2", "lb", loc="A.java:20").acq("t2", "la", loc="A.java:21")
    b.rel("t2", "la").rel("t2", "lb")
    return b.build("simple_deadlock")


def guarded_cycle_trace() -> Trace:
    """Inverse-order acquisitions guarded by a common gate lock.

    A cyclic lock-order-graph cycle exists, but the held sets share
    ``gate``: *not* a deadlock pattern — Goodlock's classic false
    positive when the guard check is skipped.
    """
    b = TraceBuilder()
    b.acq("t1", "gate").acq("t1", "la").acq("t1", "lb")
    b.rel("t1", "lb").rel("t1", "la").rel("t1", "gate")
    b.acq("t2", "gate").acq("t2", "lb").acq("t2", "la")
    b.rel("t2", "la").rel("t2", "lb").rel("t2", "gate")
    return b.build("guarded_cycle")


def order_violation_trace() -> Trace:
    """Fig. 1a-style: a deadlock pattern killed by a reads-from edge."""
    b = TraceBuilder()
    b.acq("t1", "la", loc="B.java:5").acq("t1", "lb", loc="B.java:6")
    b.write("t1", "handoff")
    b.rel("t1", "lb").rel("t1", "la")
    b.acq("t2", "lb", loc="B.java:15")
    b.read("t2", "handoff")
    b.acq("t2", "la", loc="B.java:17")
    b.rel("t2", "la").rel("t2", "lb")
    return b.build("order_violation")


def dining_philosophers_trace(n: int = 5, rounds: int = 1) -> Trace:
    """The size-n dining-philosophers deadlock (the DiningPhil row).

    Philosopher i takes fork i then fork (i+1)%n — a single abstract
    deadlock pattern of size n (SeqCheck, limited to size 2, misses
    it; SPDOffline finds it).
    """
    b = TraceBuilder()
    for r in range(rounds):
        for i in range(n):
            t = f"phil{i}"
            left, right = f"fork{i}", f"fork{(i + 1) % n}"
            b.acq(t, left, loc=f"Phil.java:{10 + i}")
            b.acq(t, right, loc=f"Phil.java:{30 + i}")
            b.write(t, f"plate{i}")
            b.rel(t, right).rel(t, left)
    return b.build(f"dining_phil_{n}")


def picklock_trace() -> Trace:
    """Picklock family: two deadlock patterns, one realizable.

    Pattern A (la/lb inverse order) is a sync-preserving deadlock;
    pattern B is protected by an rf dependency and is a false pattern.
    """
    b = TraceBuilder()
    # realizable inverse-order pair
    b.acq("t1", "la", loc="P.java:1").acq("t1", "lb", loc="P.java:2")
    b.rel("t1", "lb").rel("t1", "la")
    b.acq("t2", "lb", loc="P.java:8").acq("t2", "la", loc="P.java:9")
    b.rel("t2", "la").rel("t2", "lb")
    # rf-killed pair on lc/ld
    b.acq("t1", "lc", loc="P.java:20").acq("t1", "ld", loc="P.java:21")
    b.write("t1", "v")
    b.rel("t1", "ld").rel("t1", "lc")
    b.acq("t3", "ld", loc="P.java:30")
    b.read("t3", "v")
    b.acq("t3", "lc", loc="P.java:31")
    b.rel("t3", "lc").rel("t3", "ld")
    return b.build("picklock")


def stringbuffer_trace() -> Trace:
    """StringBuffer family: two distinct realizable deadlocks over
    overlapping buffer monitors (two abstract patterns, 2 unique bugs)."""
    b = TraceBuilder()
    b.acq("t1", "sb1", loc="SB.java:append").acq("t1", "sb2", loc="SB.java:getChars")
    b.write("t1", "buf1")
    b.rel("t1", "sb2").rel("t1", "sb1")
    b.acq("t2", "sb2", loc="SB.java:insert").acq("t2", "sb1", loc="SB.java:length")
    b.write("t2", "buf2")
    b.rel("t2", "sb1").rel("t2", "sb2")
    b.acq("t3", "sb2", loc="SB.java:reverse").acq("t3", "sb3", loc="SB.java:setLength")
    b.rel("t3", "sb3").rel("t3", "sb2")
    b.acq("t1", "sb3", loc="SB.java:delete").acq("t1", "sb2", loc="SB.java:charAt")
    b.rel("t1", "sb2").rel("t1", "sb3")
    return b.build("stringbuffer")


def transfer_trace() -> Trace:
    """Transfer family: the deadlock needs value-relaxed reasoning.

    The observed run serializes the two transfers through a variable
    handshake; the inverse-order acquisitions form a pattern but no
    correct reordering witnesses it.  Dirk-style value relaxation
    reports it (Table 1's Transfer row: Dirk 1, sound tools 0).
    """
    b = TraceBuilder()
    b.write("t1", "flag")
    b.acq("t1", "acctA", loc="T.java:xferTo").acq("t1", "acctB", loc="T.java:add")
    b.write("t1", "balA")
    b.rel("t1", "acctB").rel("t1", "acctA")
    b.write("t1", "flag")
    b.read("t2", "flag")
    b.acq("t2", "acctB", loc="T.java:xferTo2").acq("t2", "acctA", loc="T.java:add2")
    b.write("t2", "balB")
    b.rel("t2", "acctA").rel("t2", "acctB")
    return b.build("transfer")


def account_trace() -> Trace:
    """Account family: lock-order cycles fully guarded by a gate lock —
    patterns exist in the lock-order graph but no deadlock pattern
    (held sets intersect), hence zero deadlocks everywhere."""
    b = TraceBuilder()
    for i, (t, first, second) in enumerate(
        [("t1", "acct1", "acct2"), ("t2", "acct2", "acct3"), ("t3", "acct3", "acct1")]
    ):
        b.acq(t, "bank", loc=f"Acc.java:{i}")
        b.acq(t, first).acq(t, second)
        b.write(t, f"bal{i}")
        b.rel(t, second).rel(t, first)
        b.rel(t, "bank")
    return b.build("account")


def nested_family_trace(
    num_threads: int, pairs_per_thread: int, deadlocking_pairs: int, name: str
) -> Trace:
    """Collection-style workload (ArrayList/HashMap/... rows): many
    threads, many guarded operations, a controlled number of
    inverse-order pairs that form real deadlocks."""
    b = TraceBuilder()
    for i in range(num_threads):
        t = f"t{i}"
        for p in range(pairs_per_thread):
            la, lb = f"m{p}", f"m{p}b"
            if i % 2 == 0 or p >= deadlocking_pairs:
                b.acq(t, la, loc=f"{name}:{p}a").acq(t, lb, loc=f"{name}:{p}b")
                b.write(t, f"st{p}")
                b.rel(t, lb).rel(t, la)
            else:
                b.acq(t, lb, loc=f"{name}:{p}c").acq(t, la, loc=f"{name}:{p}d")
                b.write(t, f"st{p}")
                b.rel(t, la).rel(t, lb)
    return b.build(name)


def non_well_nested_trace() -> Trace:
    """hsqldb-style hand-over-hand locking (not well-nested).

    SeqCheck refuses this trace; SPDOffline analyzes it fine.
    """
    b = TraceBuilder()
    b.acq("t1", "n1").acq("t1", "n2").rel("t1", "n1")   # release out of LIFO order
    b.acq("t1", "n3").rel("t1", "n2").rel("t1", "n3")
    b.write("t1", "x")
    b.acq("t2", "n2").read("t2", "x").rel("t2", "n2")
    return b.build("non_well_nested")


def post_join_trace() -> Trace:
    """A worker that stays active *after* being joined.

    Real logged traces never contain this (join follows every event of
    the joined thread), but lossy loggers can drop the late events'
    reordering and produce it — and it is the exact shape the FastTrack
    epoch-skip caveat in :mod:`repro.hb.fasttrack` is about: ``join``
    absorbs the worker's clock *at the join*, so the worker's post-join
    write at ``Worker.java:19`` races with main's write at
    ``Main.java:33`` under both FastTrack and the vector-clock HB
    reference, even though a join that truly covered the whole thread
    would order them.  ``tests/test_fasttrack.py`` pins this behavior.

    No deadlock structure at all: every lock-graph column is 0.
    """
    b = TraceBuilder()
    b.fork("main", "worker")
    b.acq("worker", "l", loc="Worker.java:11")
    b.write("worker", "y", loc="Worker.java:12")
    b.rel("worker", "l")
    b.join("main", "worker")
    b.acq("worker", "l", loc="Worker.java:18")   # post-join activity
    b.write("worker", "y", loc="Worker.java:19")
    b.rel("worker", "l")
    b.write("main", "y", loc="Main.java:33")
    return b.build("post_join")
