"""The literal example traces of the paper, 0-indexed.

Event numbering in docstrings follows the paper's 1-based figures;
``trace[i]`` is the paper's event ``e(i+1)``.
"""

from __future__ import annotations

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace


def sigma1() -> Trace:
    """Fig. 1a: a deadlock pattern ⟨e2, e8⟩ that is *not* predictable.

    The w(x)/r(x) dependency forces t1's critical sections to complete
    before t2's read, so no correct reordering enables both acquires.
    """
    return (
        TraceBuilder()
        .acq("t1", "l1")            # e1
        .acq("t1", "l2")            # e2  ← pattern
        .write("t1", "x")           # e3
        .rel("t1", "l2")            # e4
        .rel("t1", "l1")            # e5
        .acq("t2", "l2")            # e6
        .read("t2", "x")            # e7
        .acq("t2", "l1")            # e8  ← pattern
        .rel("t2", "l1")            # e9
        .rel("t2", "l2")            # e10
        .build("sigma1")
    )


def sigma2() -> Trace:
    """Fig. 1b: a sync-preserving deadlock ⟨e4, e18⟩.

    Witnessed by ρ3 = e1 e2 e3 e8 e9 e12..e15 e16 e17, stalling t2 on
    e4 and t3 on e18.  Threads: t1 = {e1,e2,e12..e15},
    t2 = {e3..e7}, t4 = {e8..e11}, t3 = {e16..e20}.
    """
    return (
        TraceBuilder()
        .acq("t1", "l1").rel("t1", "l1")                    # e1 e2
        .acq("t2", "l2")                                    # e3
        .acq("t2", "l3")                                    # e4  ← pattern
        .write("t2", "z").rel("t2", "l3").rel("t2", "l2")   # e5 e6 e7
        .acq("t4", "l1").write("t4", "y")                   # e8 e9
        .read("t4", "z").rel("t4", "l1")                    # e10 e11
        .acq("t1", "l3").write("t1", "x")                   # e12 e13
        .read("t1", "y").rel("t1", "l3")                    # e14 e15
        .acq("t3", "l3").read("t3", "x")                    # e16 e17
        .acq("t3", "l2")                                    # e18 ← pattern
        .rel("t3", "l2").rel("t3", "l3")                    # e19 e20
        .build("sigma2")
    )


def sigma3() -> Trace:
    """Fig. 3: one abstract deadlock pattern, six concrete ones.

    Abstract acquires: η1 = ⟨t1, l2, {l1}, [e2, e4, e29]⟩,
    η2 = ⟨t2, l1, {l4}, [e23]⟩, η3 = ⟨t3, l1, {l2}, [e16, e19]⟩,
    η4 = ⟨t3, l3, {l2}, [e13]⟩.  D_abs = ⟨η1, η3⟩; only D5 = ⟨e29, e16⟩
    and D6 = ⟨e29, e19⟩ are sync-preserving deadlocks.
    """
    b = TraceBuilder()
    b.acq("t1", "l1").acq("t1", "l2").rel("t1", "l2")               # e1-e3
    b.acq("t1", "l2").write("t1", "y").rel("t1", "l2").rel("t1", "l1")  # e4-e7
    b.acq("t2", "l3").write("t2", "x").read("t2", "y").rel("t2", "l3")  # e8-e11
    b.acq("t3", "l2").acq("t3", "l3").read("t3", "x").rel("t3", "l3")   # e12-e15
    b.acq("t3", "l1").write("t3", "v").rel("t3", "l1")              # e16-e18
    b.acq("t3", "l1").rel("t3", "l1").rel("t3", "l2")               # e19-e21
    b.acq("t2", "l4").acq("t2", "l1").write("t2", "z").read("t2", "v")  # e22-e25
    b.rel("t2", "l1").rel("t2", "l4")                               # e26 e27
    b.acq("t1", "l1").acq("t1", "l2").read("t1", "z")               # e28-e30
    b.rel("t1", "l2").rel("t1", "l1")                               # e31 e32
    return b.build("sigma3")


def fig5_trace() -> Trace:
    """Fig. 5 (Appendix C): SPDOffline finds ⟨e4, e14⟩; SeqCheck misses.

    The witness leaves the critical section on l1 (e8..e11) *open*
    after w(x); SeqCheck insists on closing it, which drags in r(y),
    its writer w(y), and thread-order prefix e3..e6 — un-enabling e4.
    Threads: tA = {e1,e2}, tB = {e3..e7}, tC = {e8..e11},
    tD = {e12..e16}.
    """
    return (
        TraceBuilder()
        .acq("tA", "l1").rel("tA", "l1")                    # e1 e2
        .acq("tB", "l2")                                    # e3
        .acq("tB", "l3")                                    # e4  ← pattern
        .rel("tB", "l3").rel("tB", "l2").write("tB", "y")   # e5 e6 e7
        .acq("tC", "l1").write("tC", "x")                   # e8 e9
        .read("tC", "y").rel("tC", "l1")                    # e10 e11
        .acq("tD", "l3").read("tD", "x")                    # e12 e13
        .acq("tD", "l2")                                    # e14 ← pattern
        .rel("tD", "l2").rel("tD", "l3")                    # e15 e16
        .build("fig5")
    )


def fig6_trace() -> Trace:
    """Fig. 6 (Appendix C): ⟨e2, e6⟩ is sync-preserving; ⟨e2, e8⟩ is a
    predictable deadlock that is *not* sync-preserving (witnessing it
    requires reversing the two critical sections on l1)."""
    return (
        TraceBuilder()
        .acq("t1", "l1")                    # e1
        .acq("t1", "l2")                    # e2  ← both patterns
        .rel("t1", "l2").rel("t1", "l1")    # e3 e4
        .acq("t2", "l2")                    # e5
        .acq("t2", "l1")                    # e6  ← pattern A
        .rel("t2", "l1")                    # e7
        .acq("t2", "l1")                    # e8  ← pattern B
        .rel("t2", "l1").rel("t2", "l2")    # e9 e10
        .build("fig6")
    )


def false_deadlock1_trace() -> Trace:
    """Appendix D, FalseDeadlock1 (Fig. 7), as an execution trace.

    T1 holds L1 across fork(T2)/join(T2); T2 and T3 acquire L2/L3
    cyclically, but T3's cycle half is guarded by L1, so no deadlock is
    predictable — yet the pattern ⟨T2:acq(L3), T3:acq(L2)⟩ exists and
    Dirk's encoding reports it.
    """
    return (
        TraceBuilder()
        .acq("t1", "L1")
        .fork("t1", "t2")
        .acq("t2", "L2").acq("t2", "L3")
        .write("t2", "x")
        .rel("t2", "L3").rel("t2", "L2")
        .join("t1", "t2")
        .rel("t1", "L1")
        .acq("t3", "L1").acq("t3", "L3").acq("t3", "L2")
        .write("t3", "y")
        .rel("t3", "L2").rel("t3", "L3").rel("t3", "L1")
        .build("false_deadlock1")
    )


def false_deadlock2_trace() -> Trace:
    """Appendix D, FalseDeadlock2 (Fig. 8), as an execution trace.

    ``transfer2`` runs only after reading the integer written by
    ``transfer1`` (the volatile ``data`` handshake), so the two
    ``transferTo`` critical sections can never overlap; the observed
    trace serializes them.  Value-relaxed reasoning that ignores the
    control dependency of the read falsely predicts the deadlock.

    Locks ``sa``/``sb`` are the two Store monitors; ``data`` is the
    volatile variable.
    """
    return (
        TraceBuilder()
        # Transfer1.run: uObject.data = "string2"; a.transferTo(b); data = 1
        .write("t1", "data")
        .acq("t1", "sa").acq("t1", "sb").rel("t1", "sb").rel("t1", "sa")
        .write("t1", "data")
        # Transfer2.run: (int) uObject.data — control-flow gate — then
        # b.transferTo(a)
        .read("t2", "data")
        .acq("t2", "sb").acq("t2", "sa").rel("t2", "sa").rel("t2", "sb")
        .build("false_deadlock2")
    )


ALL_PAPER_TRACES = {
    "sigma1": sigma1,
    "sigma2": sigma2,
    "sigma3": sigma3,
    "fig5": fig5_trace,
    "fig6": fig6_trace,
    "false_deadlock1": false_deadlock1_trace,
    "false_deadlock2": false_deadlock2_trace,
}
