"""The Table-1-shaped benchmark suite.

Each :class:`BenchmarkSpec` encodes one row of the paper's Table 1: the
published trace characteristics and per-tool deadlock counts, plus the
recipe for a *scaled synthetic replica* — a trace with the same
deadlock structure (how many sync-preserving bugs, how many
pattern-only false alarms, value-dependent bugs, non-sync-preserving
bugs, dining cycles, non-nested locking) embedded in neutral filler.

The replicas cannot reproduce absolute wall-clock numbers (the paper
ran Java traces of up to 241M events); they reproduce the *shape*:
which tool finds which bugs, where SeqCheck fails or Dirk times out,
and how running time scales with concrete vs abstract pattern counts.

Paper counts in the spec come straight from Table 1; ``None`` encodes
"F" (technical failure) and ``"TO"`` markers are carried in
``paper_dirk_status``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace

# Caps applied when synthesizing replicas (the structure is preserved;
# only bulk is reduced).  Override via environment to scale replicas
# toward paper sizes, e.g. REPRO_SUITE_MAX_EVENTS=200000.
import os

MAX_EVENTS = int(os.environ.get("REPRO_SUITE_MAX_EVENTS", 20_000))
MAX_THREADS = int(os.environ.get("REPRO_SUITE_MAX_THREADS", 48))
MAX_LOCKS = int(os.environ.get("REPRO_SUITE_MAX_LOCKS", 64))
MAX_VARS = int(os.environ.get("REPRO_SUITE_MAX_VARS", 256))


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 1 row: published numbers + replica recipe."""

    name: str
    # -- published trace characteristics (Table 1, columns 2-9) --
    paper_events: int
    paper_threads: int
    paper_vars: int
    paper_locks: int
    paper_acquires: int
    paper_cycles: int
    paper_abstract: int
    paper_concrete: int
    # -- published tool outcomes (columns 10-15) --
    paper_dirk: Optional[int]          # None = failure
    paper_dirk_status: str             # "ok" | "fail" | "timeout"
    paper_seqcheck: Optional[int]      # None = failure
    paper_spd: int
    # -- replica recipe --
    sp_bugs: int = 0                   # sync-preserving deadlocks
    nonsp_bugs: int = 0                # predictable but not SP (SeqCheck-only)
    value_bugs: int = 0                # beyond correct reorderings (Dirk-only)
    dead_patterns: int = 0             # abstract patterns killed by rf deps
    pseudo_cycles: int = 0             # ALG cycles that are not abstract patterns
    dining: Optional[int] = None       # size-k cyclic deadlock (k >= 3)
    rounds: int = 1                    # instantiation multiplicity (CP inflation)
    nonnested: bool = False            # hand-over-hand locking (SeqCheck fails)
    seed: int = 0

    @property
    def events(self) -> int:
        return min(self.paper_events, MAX_EVENTS)

    @property
    def threads(self) -> int:
        return min(self.paper_threads, MAX_THREADS)

    @property
    def locks(self) -> int:
        return min(self.paper_locks, MAX_LOCKS)

    @property
    def variables(self) -> int:
        return min(self.paper_vars, MAX_VARS)

    @property
    def expected_spd(self) -> int:
        """Deadlocks SPDOffline must find on the replica.

        Each Fig.6-style non-SP template still contributes one report:
        its abstract pattern contains a sync-preserving instantiation
        (the first inverse acquire), exactly as in the paper's jigsaw
        row.  The *second*, reversal-only instantiation is what only
        SeqCheck sees.
        """
        return self.sp_bugs + self.nonsp_bugs + (1 if self.dining else 0)

    @property
    def expected_predictable(self) -> int:
        """All predictable deadlock bugs in the replica (ground truth
        for precision comparisons): the non-SP templates carry one
        extra, reversal-only bug each."""
        return self.expected_spd + self.nonsp_bugs


class _WorkloadBuilder:
    """Composes bug templates with neutral filler into one trace."""

    def __init__(self, spec: BenchmarkSpec) -> None:
        self.spec = spec
        # zlib.crc32, not hash(): str hashing is salted per process and
        # replicas must be bit-identical across runs.
        self.rng = random.Random(spec.seed ^ (zlib.crc32(spec.name.encode()) & 0xFFFF))
        self.b = TraceBuilder()
        self.workers = [f"w{i}" for i in range(max(2, spec.threads))]
        self.filler_locks = [f"fl{i}" for i in range(max(1, spec.locks))]
        self.filler_vars = [f"fv{i}" for i in range(max(1, spec.variables))]
        self._held: dict = {t: [] for t in self.workers}

    # -- neutral filler ---------------------------------------------------

    def filler(self, n: int) -> None:
        """Emit ~n events that can never contribute a deadlock pattern.

        Locks are taken in strictly increasing index order (no cycles in
        the lock graph), mixed with reads/writes over the filler vars.
        """
        rng = self.rng
        emitted = 0
        while emitted < n:
            t = rng.choice(self.workers)
            held = self._held[t]
            roll = rng.random()
            if roll < 0.18 and len(held) < 2:
                floor = held[-1] + 1 if held else 0
                if floor < len(self.filler_locks):
                    j = rng.randrange(floor, len(self.filler_locks))
                    if not any(j in h for h in self._held.values()):
                        self.b.acq(t, self.filler_locks[j])
                        held.append(j)
                        emitted += 1
                        continue
            if roll < 0.36 and held:
                j = held.pop()
                self.b.rel(t, self.filler_locks[j])
                emitted += 1
                continue
            var = rng.choice(self.filler_vars)
            if rng.random() < 0.5:
                self.b.write(t, var)
            else:
                self.b.read(t, var)
            emitted += 1

    def drain(self) -> None:
        for t in self.workers:
            while self._held[t]:
                self.b.rel(t, self.filler_locks[self._held[t].pop()])

    # -- bug templates ------------------------------------------------------

    def sp_bug(self, i: int) -> None:
        """An inverse-order pair forming ``rounds``² concrete patterns."""
        name = self.spec.name
        ta, tb = f"dl{i}a", f"dl{i}b"
        la, lb = f"dla{i}", f"dlb{i}"
        for r in range(self.spec.rounds):
            self.b.acq(ta, la, loc=f"{name}.java:{100 + i}")
            self.b.acq(ta, lb, loc=f"{name}.java:{101 + i}")
            self.b.write(ta, f"dx{i}")
            self.b.rel(ta, lb).rel(ta, la)
        for r in range(self.spec.rounds):
            self.b.acq(tb, lb, loc=f"{name}.java:{200 + i}")
            self.b.acq(tb, la, loc=f"{name}.java:{201 + i}")
            self.b.write(tb, f"dy{i}")
            self.b.rel(tb, la).rel(tb, lb)

    def dead_pattern(self, i: int) -> None:
        """Inverse-order pair killed by a reads-from dependency
        (Fig. 1a shape): an abstract pattern, never a deadlock."""
        name = self.spec.name
        ta, tb = f"fp{i}a", f"fp{i}b"
        la, lb = f"fpa{i}", f"fpb{i}"
        self.b.acq(ta, la, loc=f"{name}.java:{300 + i}")
        self.b.acq(ta, lb, loc=f"{name}.java:{301 + i}")
        self.b.write(ta, f"gate{i}")
        self.b.rel(ta, lb).rel(ta, la)
        self.b.acq(tb, lb, loc=f"{name}.java:{310 + i}")
        self.b.read(tb, f"gate{i}", loc=f"ctrl:{name}.java:{312 + i}")
        self.b.acq(tb, la, loc=f"{name}.java:{311 + i}")
        self.b.rel(tb, la).rel(tb, lb)

    def value_bug(self, i: int) -> None:
        """Transfer-shaped: a flag handshake serializes the two halves;
        only value-relaxed reasoning (Dirk) reports it."""
        name = self.spec.name
        ta, tb = f"vb{i}a", f"vb{i}b"
        la, lb = f"vba{i}", f"vbb{i}"
        self.b.write(ta, f"flag{i}")
        self.b.acq(ta, la, loc=f"{name}.java:{400 + i}")
        self.b.acq(ta, lb, loc=f"{name}.java:{401 + i}")
        self.b.write(ta, f"vx{i}")
        self.b.rel(ta, lb).rel(ta, la)
        self.b.write(ta, f"flag{i}")
        self.b.read(tb, f"flag{i}")
        self.b.acq(tb, lb, loc=f"{name}.java:{410 + i}")
        self.b.acq(tb, la, loc=f"{name}.java:{411 + i}")
        self.b.write(tb, f"vy{i}")
        self.b.rel(tb, la).rel(tb, lb)

    def nonsp_bug(self, i: int) -> None:
        """Fig. 6 shape, sharpened: two abstract patterns, one
        sync-preserving, one predictable *only* by reversing same-lock
        critical sections (a guard lock gives the re-request a distinct
        held-set signature, so no SP instantiation hides inside it).
        SeqCheck finds two bugs here, SPDOffline one — and the audit
        classifies the second as the dataset's genuine non-SP miss,
        mirroring the paper's 1-of-53."""
        name = self.spec.name
        ta, tb = f"ns{i}a", f"ns{i}b"
        la, lb, g = f"nsa{i}", f"nsb{i}", f"nsg{i}"
        self.b.acq(ta, la, loc=f"{name}.java:{500 + i}")
        self.b.acq(ta, lb, loc=f"{name}.java:{501 + i}")
        self.b.rel(ta, lb).rel(ta, la)
        self.b.acq(tb, lb, loc=f"{name}.java:{510 + i}")
        self.b.acq(tb, la, loc=f"{name}.java:{511 + i}")
        self.b.rel(tb, la)
        self.b.acq(tb, g)
        self.b.acq(tb, la, loc=f"{name}.java:{512 + i}")
        self.b.rel(tb, la).rel(tb, g).rel(tb, lb)

    def dining_bug(self, k: int) -> None:
        """Size-k cyclic deadlock (DiningPhil)."""
        name = self.spec.name
        for r in range(self.spec.rounds):
            for i in range(k):
                t = f"phil{i}"
                left, right = f"fork{i}", f"fork{(i + 1) % k}"
                self.b.acq(t, left, loc=f"{name}.java:{600 + i}")
                self.b.acq(t, right, loc=f"{name}.java:{620 + i}")
                self.b.write(t, f"plate{i}")
                self.b.rel(t, right).rel(t, left)

    def pseudo_cycle(self, i: int) -> None:
        """A 4-cycle in ALG that repeats its two threads at distance 2:
        counted in |Cyc| but not an abstract deadlock pattern (threads
        not distinct), and — with only two threads over four locks — no
        concrete deadlock pattern of any size exists either."""
        tx, ty = f"pc{i}x", f"pc{i}y"
        a, b_, c, d = (f"pc{i}{x}" for x in "abcd")
        self.b.cs(tx, a, b_)
        self.b.cs(ty, b_, c)
        self.b.cs(tx, c, d)
        self.b.cs(ty, d, a)

    def nonnested_segment(self) -> None:
        """Hand-over-hand locking — breaks SeqCheck's well-nesting."""
        t = "hoh"
        self.b.acq(t, "nn1").acq(t, "nn2").rel(t, "nn1")
        self.b.acq(t, "nn3").rel(t, "nn2").rel(t, "nn3")


def build_benchmark(spec: BenchmarkSpec) -> Trace:
    """Synthesize the scaled replica trace for one Table 1 row."""
    w = _WorkloadBuilder(spec)
    segments: List = []
    for i in range(spec.sp_bugs):
        segments.append(lambda i=i: w.sp_bug(i))
    for i in range(spec.nonsp_bugs):
        segments.append(lambda i=i: w.nonsp_bug(i))
    for i in range(spec.value_bugs):
        segments.append(lambda i=i: w.value_bug(i))
    for i in range(spec.dead_patterns):
        segments.append(lambda i=i: w.dead_pattern(i))
    for i in range(spec.pseudo_cycles):
        segments.append(lambda i=i: w.pseudo_cycle(i))
    if spec.dining:
        segments.append(lambda: w.dining_bug(spec.dining))
    if spec.nonnested:
        segments.append(w.nonnested_segment)

    w.rng.shuffle(segments)
    n_gaps = len(segments) + 1
    per_gap = max(0, spec.events - _estimated_template_events(spec)) // n_gaps
    for seg in segments:
        w.filler(per_gap)
        seg()
    w.filler(per_gap)
    w.drain()
    return w.b.build(spec.name)


def _estimated_template_events(spec: BenchmarkSpec) -> int:
    per_round_pair = 10 * spec.rounds
    total = (spec.sp_bugs + spec.value_bugs) * per_round_pair
    total += spec.nonsp_bugs * 10 + spec.dead_patterns * 10
    total += spec.pseudo_cycles * 24
    if spec.dining:
        total += spec.dining * 6 * spec.rounds
    if spec.nonnested:
        total += 6
    return total


def _spec(
    name, n, t, v, l, ar, cyc, ap, cp, dirk, dirk_status, seq, spd, **recipe
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        paper_events=n, paper_threads=t, paper_vars=v, paper_locks=l,
        paper_acquires=ar, paper_cycles=cyc, paper_abstract=ap,
        paper_concrete=cp, paper_dirk=dirk, paper_dirk_status=dirk_status,
        paper_seqcheck=seq, paper_spd=spd, **recipe,
    )


K, M = 1_000, 1_000_000

#: All 48 rows of Table 1.  Recipes are chosen so that on the replica,
#: SPDOffline finds exactly ``paper_spd`` deadlocks, SeqCheck finds
#: ``paper_seqcheck`` (or fails), and Dirk's extra/missing finds match.
TABLE1_SUITE: List[BenchmarkSpec] = [
    _spec("Deadlock", 39, 3, 4, 3, 8, 1, 1, 1, 1, "ok", 0, 0, value_bugs=1),
    _spec("NotADeadlock", 60, 3, 4, 5, 16, 1, 1, 1, 0, "ok", 0, 0, dead_patterns=1),
    _spec("Picklock", 66, 3, 6, 6, 20, 2, 2, 2, 1, "ok", 1, 1, sp_bugs=1, dead_patterns=1),
    _spec("Bensalem", 68, 4, 5, 5, 22, 2, 2, 2, 1, "ok", 1, 1, sp_bugs=1, dead_patterns=1),
    _spec("Transfer", 72, 3, 11, 4, 12, 1, 1, 1, 1, "ok", 0, 0, value_bugs=1),
    _spec("Test-Dimmunix", 73, 3, 9, 7, 26, 2, 2, 2, 2, "ok", 2, 2, sp_bugs=2),
    _spec("StringBuffer", 74, 3, 14, 4, 16, 1, 3, 6, 2, "ok", 2, 2, sp_bugs=2),
    _spec("Test-Calfuzzer", 168, 5, 16, 6, 48, 2, 1, 1, 1, "ok", 1, 1, sp_bugs=1, pseudo_cycles=1),
    _spec("DiningPhil", 277, 6, 21, 6, 100, 1, 1, 3 * K, 1, "ok", 0, 1, dining=5, rounds=3),
    _spec("HashTable", 318, 3, 5, 3, 174, 1, 2, 43, 2, "ok", 2, 2, sp_bugs=2, rounds=3),
    _spec("Account", 706, 6, 47, 7, 134, 3, 1, 12, 0, "ok", 0, 0, dead_patterns=1, pseudo_cycles=2, rounds=2),
    _spec("Log4j2", 1 * K, 4, 334, 11, 43, 1, 1, 1, 1, "ok", 1, 1, sp_bugs=1),
    _spec("Dbcp1", 2 * K, 3, 768, 5, 56, 2, 2, 3, None, "fail", 2, 2, sp_bugs=2),
    _spec("Dbcp2", 2 * K, 3, 592, 10, 76, 1, 2, 4, None, "fail", 0, 0, dead_patterns=2),
    _spec("Derby2", 3 * K, 3, 1 * K, 4, 16, 1, 1, 1, 1, "ok", 1, 1, sp_bugs=1),
    _spec("RayTracer", 31 * K, 5, 5 * K, 15, 976, 0, 0, 0, None, "fail", 0, 0),
    _spec("jigsaw", 143 * K, 21, 8 * K, 2 * K, 67 * K, 172, 12, 70, None, "fail", 2, 1,
          nonsp_bugs=1, dead_patterns=10, pseudo_cycles=4),
    _spec("elevator", 246 * K, 5, 727, 52, 48 * K, 0, 0, 0, 0, "ok", 0, 0),
    _spec("hedc", 410 * K, 7, 109 * K, 8, 32, 0, 0, 0, 0, "ok", 0, 0),
    _spec("JDBCMySQL-1", 442 * K, 3, 73 * K, 11, 13 * K, 2, 4, 6, 2, "ok", 2, 2, sp_bugs=2, dead_patterns=2),
    _spec("JDBCMySQL-2", 442 * K, 3, 73 * K, 11, 13 * K, 4, 4, 9, 1, "ok", 1, 1, sp_bugs=1, dead_patterns=3, rounds=2),
    _spec("JDBCMySQL-3", 443 * K, 3, 73 * K, 13, 13 * K, 5, 8, 16, 1, "ok", 1, 1, sp_bugs=1, dead_patterns=7, rounds=2),
    _spec("JDBCMySQL-4", 443 * K, 3, 73 * K, 14, 13 * K, 5, 10, 18, 2, "ok", 2, 2, sp_bugs=2, dead_patterns=8),
    _spec("cache4j", 775 * K, 2, 46 * K, 20, 35 * K, 0, 0, 0, 0, "ok", 0, 0),
    _spec("ArrayList", 3 * M, 801, 121 * K, 802, 176 * K, 9, 3, 672, 3, "ok", 3, 3, sp_bugs=3, pseudo_cycles=2, rounds=4),
    _spec("IdentityHashMap", 3 * M, 801, 496 * K, 802, 162 * K, 1, 3, 4, 1, "ok", 1, 1, sp_bugs=1, dead_patterns=2),
    _spec("Stack", 3 * M, 801, 118 * K, 2 * K, 405 * K, 9, 3, 481, 1, "timeout", 3, 3, sp_bugs=3, pseudo_cycles=2, rounds=4),
    _spec("Sor", 3 * M, 301, 2 * K, 3, 719 * K, 0, 0, 0, 0, "ok", 0, 0),
    _spec("LinkedList", 3 * M, 801, 290 * K, 802, 176 * K, 9, 3, 10 * K, 3, "ok", 3, 3, sp_bugs=3, pseudo_cycles=2, rounds=8),
    # seed chosen so the value-dependent pair does not straddle a Dirk
    # window boundary (Dirk found 3 bugs here in the paper).
    _spec("HashMap", 3 * M, 801, 555 * K, 802, 169 * K, 1, 3, 10 * K, 3, "ok", 2, 2, sp_bugs=2, value_bugs=1, rounds=8, seed=1),
    _spec("WeakHashMap", 3 * M, 801, 540 * K, 802, 169 * K, 1, 3, 10 * K, None, "timeout", 2, 2, sp_bugs=2, rounds=8),
    _spec("Swing", 4 * M, 8, 31 * K, 739, 2 * M, 0, 0, 0, None, "fail", 0, 0),
    _spec("Vector", 4 * M, 3, 15, 4, 800 * K, 1, 1, 10 ** 9, None, "timeout", 1, 1, sp_bugs=1, rounds=32),
    _spec("LinkedHashMap", 4 * M, 801, 617 * K, 802, 169 * K, 1, 3, 10 * K, 2, "ok", 2, 2, sp_bugs=2, rounds=8),
    _spec("montecarlo", 8 * M, 3, 850 * K, 3, 26, 0, 0, 0, 0, "ok", 0, 0),
    _spec("TreeMap", 9 * M, 801, 493 * K, 802, 169 * K, 1, 3, 10 * K, 2, "ok", 2, 2, sp_bugs=2, rounds=8),
    _spec("hsqldb", 20 * M, 46, 945 * K, 403, 419 * K, 0, 0, 0, None, "fail", None, 0, nonnested=True),
    _spec("sunflow", 21 * M, 16, 2 * M, 12, 1 * K, 0, 0, 0, None, "fail", 0, 0),
    _spec("jspider", 22 * M, 11, 5 * M, 15, 10 * K, 0, 0, 0, None, "fail", 0, 0),
    _spec("tradesoap", 42 * M, 236, 3 * M, 6 * K, 245 * K, 2, 1, 4, None, "fail", 0, 0, dead_patterns=1, pseudo_cycles=1, rounds=2),
    _spec("tradebeans", 42 * M, 236, 3 * M, 6 * K, 245 * K, 2, 1, 4, None, "fail", 0, 0, dead_patterns=1, pseudo_cycles=1, rounds=2),
    _spec("eclipse", 64 * M, 15, 10 * M, 5 * K, 377 * K, 9, 5, 280, None, "fail", 0, 0, dead_patterns=5, pseudo_cycles=4, rounds=3),
    _spec("TestPerf", 80 * M, 50, 599, 9, 197 * K, 0, 0, 0, 0, "ok", 0, 0),
    _spec("Groovy2", 120 * M, 13, 13 * M, 10 * K, 69 * K, 0, 0, 0, 0, "ok", 0, 0),
    _spec("Tsp", 200 * M, 6, 24 * K, 3, 882, 0, 0, 0, 0, "ok", 0, 0),
    _spec("lusearch", 203 * M, 7, 3 * M, 98, 273 * K, 0, 0, 0, 0, "ok", 0, 0),
    _spec("biojava", 221 * M, 6, 121 * K, 79, 16 * K, 0, 0, 0, None, "fail", 0, 0),
    _spec("graphchi", 241 * M, 20, 25 * M, 61, 1 * K, 0, 0, 0, None, "fail", 0, 0),
]

SUITE_BY_NAME = {s.name: s for s in TABLE1_SUITE}


def small_suite() -> List[BenchmarkSpec]:
    """Rows with paper traces under 5K events (fast CI subset)."""
    return [s for s in TABLE1_SUITE if s.paper_events <= 5 * K]


def resolve_suite(tag: str) -> List[str]:
    """Expand a campaign-file suite tag into benchmark names.

    ``"small"`` is the fast CI subset (:func:`small_suite`), ``"all"``
    the full 48 rows; anything else raises ``KeyError`` listing the
    options.
    """
    if tag == "small":
        return [s.name for s in small_suite()]
    if tag == "all":
        return [s.name for s in TABLE1_SUITE]
    raise KeyError(f"unknown suite tag {tag!r}; options: 'small', 'all'")
