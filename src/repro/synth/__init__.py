"""Workload generation: paper traces, random traces, deadlock templates,
and the Table-1-shaped benchmark suite."""

from repro.synth.paper import (
    fig5_trace,
    fig6_trace,
    sigma1,
    sigma2,
    sigma3,
)
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.synth.templates import (
    account_trace,
    dining_philosophers_trace,
    guarded_cycle_trace,
    picklock_trace,
    simple_deadlock_trace,
    stringbuffer_trace,
    transfer_trace,
)
from repro.synth.suite import BenchmarkSpec, TABLE1_SUITE, build_benchmark

__all__ = [
    "sigma1",
    "sigma2",
    "sigma3",
    "fig5_trace",
    "fig6_trace",
    "RandomTraceConfig",
    "generate_random_trace",
    "simple_deadlock_trace",
    "guarded_cycle_trace",
    "dining_philosophers_trace",
    "picklock_trace",
    "stringbuffer_trace",
    "transfer_trace",
    "account_trace",
    "BenchmarkSpec",
    "TABLE1_SUITE",
    "build_benchmark",
]
