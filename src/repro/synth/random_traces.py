"""Random well-formed trace generation.

Simulates a set of threads executing random lock-structured programs
under a random scheduler.  Traces are well-formed by construction:
acquire steps only fire on free locks, releases follow the per-thread
LIFO discipline (configurably non-nested), and reads/writes touch a
shared variable pool.  Used by property-based tests (algorithms vs the
exhaustive oracle) and as filler workload in benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace


@dataclass
class RandomTraceConfig:
    """Knobs of the random-trace generator.

    Attributes:
        num_threads / num_locks / num_vars: universe sizes.
        num_events: approximate target length (the generator stops
            scheduling new work past this point and drains held locks).
        acquire_prob: chance a scheduled step tries to acquire a lock.
        release_prob: chance a step releases the most recent lock.
        write_prob: chance a memory step is a write rather than a read.
        max_nesting: cap on per-thread held-lock count.
        fork_join: emit fork events for non-main threads and join them
            from the main thread at the end.
        release_any_prob: chance a release step frees a *random* held
            lock instead of the most recently acquired one, producing
            non-well-nested critical sections (hsqldb-style).  ``0.0``
            (the default) keeps the classic LIFO discipline and the
            exact event stream older seeds produced.
        seed: PRNG seed (generation is fully deterministic).
    """

    num_threads: int = 3
    num_locks: int = 3
    num_vars: int = 3
    num_events: int = 40
    acquire_prob: float = 0.3
    release_prob: float = 0.3
    write_prob: float = 0.5
    max_nesting: int = 3
    fork_join: bool = False
    release_any_prob: float = 0.0
    seed: int = 0


def generate_random_trace(config: RandomTraceConfig) -> Trace:
    """Generate one well-formed trace from ``config``."""
    rng = random.Random(config.seed)
    threads = [f"t{i}" for i in range(config.num_threads)]
    locks = [f"l{i}" for i in range(config.num_locks)]
    variables = [f"x{i}" for i in range(config.num_vars)]

    b = TraceBuilder()
    held: dict = {t: [] for t in threads}
    lock_free = {lk: True for lk in locks}
    alive = {threads[0]} if config.fork_join else set(threads)

    if config.fork_join:
        for t in threads[1:]:
            b.fork(threads[0], t)
            alive.add(t)

    while len(b) < config.num_events:
        t = rng.choice(sorted(alive))
        roll = rng.random()
        if roll < config.acquire_prob and len(held[t]) < config.max_nesting:
            free = [lk for lk in locks if lock_free[lk]]
            if free:
                lk = rng.choice(free)
                b.acq(t, lk)
                lock_free[lk] = False
                held[t].append(lk)
                continue
        if roll < config.acquire_prob + config.release_prob and held[t]:
            # Guard the extra rng draw so release_any_prob == 0.0
            # replays older seeds' event streams byte-for-byte.
            if (config.release_any_prob > 0.0
                    and rng.random() < config.release_any_prob):
                lk = held[t].pop(rng.randrange(len(held[t])))
            else:
                lk = held[t].pop()
            b.rel(t, lk)
            lock_free[lk] = True
            continue
        var = rng.choice(variables)
        if rng.random() < config.write_prob:
            b.write(t, var)
        else:
            b.read(t, var)

    # Drain: release everything still held so the trace ends clean.
    for t in threads:
        while held[t]:
            b.rel(t, held[t].pop())
    if config.fork_join:
        for t in threads[1:]:
            b.join(threads[0], t)
    return b.build(f"random_seed{config.seed}")


def generate_trace_batch(
    base: RandomTraceConfig, count: int, start_seed: int = 0
) -> List[Trace]:
    """``count`` traces differing only in seed."""
    out = []
    for i in range(count):
        cfg = RandomTraceConfig(**{**base.__dict__, "seed": start_seed + i})
        out.append(generate_random_trace(cfg))
    return out
