"""Fine-grained hardness reduction: Orthogonal Vectors → size-2 deadlock
pattern detection (Theorem 3.2, Fig. 2b).

Given vector sets A, B ⊆ {0,1}^d with |A| = |B| = n, build a two-thread
trace with d + 2 locks such that a size-2 deadlock pattern exists iff
some a ∈ A, b ∈ B are orthogonal.  Thread tA encodes each A_i as a nest
of the dimension locks {l_j : A_i[j] = 1} around ``cs(m0, m1)``; thread
tB does the same with the inner pair inverted, ``cs(m1, m0)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace

Vector = Sequence[int]


def _encode(b: TraceBuilder, thread: str, vec: Vector, inner: tuple) -> None:
    wrapping = [f"l{j + 1}" for j, bit in enumerate(vec) if bit]
    # Fig. 2b nests dimension locks outermost-first in index order.
    for lk in wrapping:
        b.acq(thread, lk)
    b.cs(thread, *inner)
    for lk in reversed(wrapping):
        b.rel(thread, lk)


def orthogonal_vectors_to_trace(a_set: Sequence[Vector], b_set: Sequence[Vector]) -> Trace:
    """The Theorem 3.2 trace for the OV instance ``(A, B)``."""
    if not a_set or not b_set:
        raise ValueError("OV instance must be non-empty")
    d = len(a_set[0])
    for vec in list(a_set) + list(b_set):
        if len(vec) != d or any(bit not in (0, 1) for bit in vec):
            raise ValueError("vectors must be equal-length 0/1 sequences")
    b = TraceBuilder()
    for vec in a_set:
        _encode(b, "tA", vec, ("m0", "m1"))
    for vec in b_set:
        _encode(b, "tB", vec, ("m1", "m0"))
    return b.build(f"ov_n{len(a_set)}_d{d}")


def has_orthogonal_pair(a_set: Sequence[Vector], b_set: Sequence[Vector]) -> bool:
    """Brute-force OV decision (test oracle)."""
    return any(
        all(x * y == 0 for x, y in zip(a, b))
        for a in a_set
        for b in b_set
    )


def random_ov_instance(n: int, d: int, one_prob: float, seed: int):
    """Random OV instance for reduction tests."""
    import random

    rng = random.Random(seed)
    mk = lambda: [1 if rng.random() < one_prob else 0 for _ in range(d)]
    return [mk() for _ in range(n)], [mk() for _ in range(n)]
