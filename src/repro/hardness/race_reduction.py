"""Race→deadlock reduction (Theorem 3.3).

Predicting data races is W[1]-hard in the number of threads
[Mathur et al. 2020]; Theorem 3.3 transfers this to deadlock
prediction: replace the two acquires of a size-2 deadlock pattern with
writes to a fresh variable — a correct reordering witnesses the race
iff it witnesses the deadlock.  The reduction direction useful for
*testing* runs the other way: we convert a deadlock-pattern trace into
the corresponding race trace and check the witness equivalence.
"""

from __future__ import annotations

from typing import Tuple

from repro.trace.events import Event, Op
from repro.trace.trace import Trace


def deadlock_to_race_trace(
    trace: Trace, pattern: Tuple[int, int], fresh_var: str = "__race__"
) -> Trace:
    """Replace the two pattern acquires with writes to ``fresh_var``.

    The resulting trace σ' has a predictable race on the two writes iff
    σ has a predictable deadlock on ``pattern`` (Theorem 3.3 argument).
    """
    if fresh_var in trace.variables:
        raise ValueError(f"variable {fresh_var!r} not fresh")
    a, b = pattern
    for idx in (a, b):
        if not trace[idx].is_acquire:
            raise ValueError(f"pattern event {trace[idx]} is not an acquire")
    events = []
    dropped = set()
    # Dropping the acquires orphans their matching releases; drop those
    # too so the result is well-formed (they occur after the pattern
    # events and never matter for witnessing the race).
    for idx in (a, b):
        rel = trace.match(idx)
        if rel is not None:
            dropped.add(rel)
    for ev in trace:
        if ev.idx in (a, b):
            events.append(Event(len(events), ev.thread, Op.WRITE, fresh_var, ev.loc))
        elif ev.idx in dropped:
            continue
        else:
            events.append(Event(len(events), ev.thread, ev.op, ev.target, ev.loc))
    return Trace(events, name=f"{trace.name}|race")
