"""Hardness reductions of Section 3 (Theorems 3.1-3.3).

These constructions serve two purposes: they validate the paper's
complexity results empirically (tests check the iff-direction of each
reduction on small instances), and they generate adversarial workloads
for the complexity-scaling benchmarks.
"""

from repro.hardness.independent_set import (
    independent_set_to_trace,
    has_independent_set,
)
from repro.hardness.orthogonal_vectors import (
    orthogonal_vectors_to_trace,
    has_orthogonal_pair,
)
from repro.hardness.race_reduction import deadlock_to_race_trace

__all__ = [
    "independent_set_to_trace",
    "has_independent_set",
    "orthogonal_vectors_to_trace",
    "has_orthogonal_pair",
    "deadlock_to_race_trace",
]
