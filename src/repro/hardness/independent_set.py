"""W[1]-hardness reduction: INDEPENDENT-SET(c) → deadlock pattern of size c
(Theorem 3.1, Fig. 2a).

Given an undirected graph G and parameter c, build a trace σ over c
threads and |E| + c locks such that G has an independent set of size c
iff σ has a deadlock pattern of size c.  Thread t_i emits, per vertex
v_j, a nest of critical sections on the edge locks of v_j wrapped
around the two-lock core ``cs(l_{i%c}, l_{(i+1)%c})``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Set, Tuple

from repro.trace.builder import TraceBuilder
from repro.trace.trace import Trace

Edge = Tuple[int, int]


def _norm_edge(e: Edge) -> Edge:
    u, v = e
    if u == v:
        raise ValueError(f"self-loop {e} not allowed")
    return (u, v) if u < v else (v, u)


def independent_set_to_trace(
    num_vertices: int, edges: Iterable[Edge], c: int
) -> Trace:
    """The Theorem 3.1 trace for ``(G, c)``.

    Vertices are ``0..num_vertices-1``; ``c >= 2``.  The output has
    ``O(c · (|V| + |E|))`` events and lock-nesting depth at most
    ``2 + max-degree(G)``.
    """
    if c < 2:
        raise ValueError("deadlock patterns need size >= 2")
    edge_list = sorted({_norm_edge(e) for e in edges})
    adjacency: Dict[int, List[Edge]] = {v: [] for v in range(num_vertices)}
    for e in edge_list:
        u, v = e
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ValueError(f"edge {e} out of range")
        adjacency[u].append(e)
        adjacency[v].append(e)
    # The construction requires every vertex to have a neighbor:
    # otherwise several threads can instantiate the pattern from the
    # *same* isolated vertex's block, breaking the "distinct vertices"
    # direction of the proof.  This is without loss of generality —
    # isolated vertices always join a maximum independent set, so
    # IS(G, c) = IS(G - isolated, c - #isolated); callers preprocess.
    isolated = [v for v in range(num_vertices) if not adjacency[v]]
    if isolated and (edge_list or num_vertices < c):
        raise ValueError(
            f"vertices {isolated} are isolated; remove them and lower c "
            "by their count (they always join a maximum independent set)"
        )

    def edge_lock(e: Edge) -> str:
        return f"le_{e[0]}_{e[1]}"

    b = TraceBuilder()
    for i in range(1, c + 1):
        thread = f"t{i}"
        inner = (f"lc{i % c}", f"lc{(i + 1) % c}")
        for v in range(num_vertices):
            wrapping = [edge_lock(e) for e in adjacency[v]]
            for lk in wrapping:
                b.acq(thread, lk)
            b.cs(thread, *inner)
            for lk in reversed(wrapping):
                b.rel(thread, lk)
    return b.build(f"indepset_n{num_vertices}_c{c}")


def has_independent_set(
    num_vertices: int, edges: Iterable[Edge], c: int
) -> bool:
    """Brute-force INDEPENDENT-SET(c) decision (test oracle)."""
    edge_set: Set[Edge] = {_norm_edge(e) for e in edges}
    for combo in itertools.combinations(range(num_vertices), c):
        if all(
            _norm_edge((u, v)) not in edge_set
            for u, v in itertools.combinations(combo, 2)
        ):
            return True
    return False


def random_graph(num_vertices: int, density: float, seed: int) -> List[Edge]:
    """Erdős–Rényi edge list for reduction tests."""
    import random

    rng = random.Random(seed)
    edges = []
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < density:
                edges.append((u, v))
    return edges
