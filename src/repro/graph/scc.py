"""Tarjan strongly-connected components (iterative, recursion-free).

Johnson's cycle enumeration repeatedly asks for the SCCs of shrinking
subgraphs, so the routine works directly on adjacency lists restricted
to an allowed node set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set


def strongly_connected_components(
    adjacency: Sequence[Set[int]],
    allowed: Optional[Set[int]] = None,
) -> List[List[int]]:
    """SCCs of the subgraph induced by ``allowed`` (all nodes if None).

    Returns components as lists of node indices, each in DFS discovery
    order.  Iterative Tarjan: safe on graphs deeper than the Python
    recursion limit (hardness-construction graphs can be long chains).
    """
    n = len(adjacency)
    if allowed is None:
        allowed = set(range(n))

    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in sorted(allowed):
        if root in index_of:
            continue
        # Each frame: (node, iterator over successors)
        work = [(root, iter(sorted(adjacency[root] & allowed)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency[succ] & allowed))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                comp: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                comp.reverse()
                components.append(comp)
    return components
