"""DOT (Graphviz) export for the analysis graphs.

Debugging aid: render the abstract lock graph of a trace, or the
classic lock-order graph, to inspect why a cycle does or does not form
an abstract deadlock pattern.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.core.alg import build_abstract_lock_graph
from repro.trace.trace import Trace


def _quote(s: str) -> str:
    return '"' + s.replace('"', '\\"') + '"'


def alg_to_dot(trace: Trace, highlight_cycles: bool = True) -> str:
    """The abstract lock graph of ``trace`` in DOT syntax.

    Nodes show the ⟨thread, lock, held, |F|⟩ signature; with
    ``highlight_cycles``, nodes on some simple cycle are drawn filled.
    """
    from repro.graph.johnson import simple_cycles

    graph = build_abstract_lock_graph(trace)
    on_cycle: Set[int] = set()
    if highlight_cycles:
        for cycle in simple_cycles(graph, max_cycles=10_000):
            on_cycle.update(cycle)

    lines = [f"digraph {_quote('ALG_' + trace.name)} {{", "  rankdir=LR;"]
    for i, eta in enumerate(graph.nodes()):
        held = "{" + ",".join(sorted(eta.held)) + "}"
        label = f"{eta.thread}: acq({eta.lock})\\nheld {held}\\n|F|={len(eta.events)}"
        style = ' style=filled fillcolor="#ffd0d0"' if i in on_cycle else ""
        lines.append(f"  n{i} [label={_quote(label)} shape=box{style}];")
    index = {eta: i for i, eta in enumerate(graph.nodes())}
    for src, dst in graph.edges():
        lines.append(f"  n{index[src]} -> n{index[dst]};")
    lines.append("}")
    return "\n".join(lines)


def lock_order_to_dot(trace: Trace) -> str:
    """The classic lock-order graph (Goodlock's view) in DOT syntax."""
    edges: Dict[Tuple[str, str], int] = {}
    for ev in trace:
        if not ev.is_acquire:
            continue
        for held in trace.held_locks(ev.idx):
            if held != ev.target:
                key = (held, ev.target)
                edges[key] = edges.get(key, 0) + 1
    lines = [f"digraph {_quote('locks_' + trace.name)} {{"]
    for lock in trace.locks:
        lines.append(f"  {_quote(lock)};")
    for (src, dst), count in sorted(edges.items()):
        label = f" [label={count}]" if count > 1 else ""
        lines.append(f"  {_quote(src)} -> {_quote(dst)}{label};")
    lines.append("}")
    return "\n".join(lines)
