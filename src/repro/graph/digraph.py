"""A minimal directed graph over integer-indexable nodes.

Built for the abstract lock graph (Section 4.5): nodes are added once,
edges are deduplicated, and the structure supports subgraph views used
by Johnson's algorithm.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, List, Set, Tuple, TypeVar

N = TypeVar("N", bound=Hashable)


class DiGraph(Generic[N]):
    """Directed graph with hashable nodes and deduplicated edges."""

    def __init__(self) -> None:
        self._nodes: List[N] = []
        self._index: Dict[N, int] = {}
        self._succ: List[Set[int]] = []

    def add_node(self, node: N) -> int:
        """Insert ``node`` if absent; return its dense index."""
        idx = self._index.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._index[node] = idx
            self._nodes.append(node)
            self._succ.append(set())
        return idx

    def add_edge(self, src: N, dst: N) -> None:
        i = self.add_node(src)
        j = self.add_node(dst)
        self._succ[i].add(j)

    def has_edge(self, src: N, dst: N) -> bool:
        i = self._index.get(src)
        j = self._index.get(dst)
        return i is not None and j is not None and j in self._succ[i]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ)

    def nodes(self) -> List[N]:
        return list(self._nodes)

    def node_at(self, idx: int) -> N:
        return self._nodes[idx]

    def successors_idx(self, idx: int) -> Set[int]:
        return self._succ[idx]

    def successors(self, node: N) -> List[N]:
        return [self._nodes[j] for j in self._succ[self._index[node]]]

    def adjacency(self) -> List[Set[int]]:
        """Successor sets by node index (shared, do not mutate)."""
        return self._succ

    def edges(self) -> Iterable[Tuple[N, N]]:
        for i, succ in enumerate(self._succ):
            for j in succ:
                yield (self._nodes[i], self._nodes[j])
