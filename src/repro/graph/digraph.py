"""A minimal directed graph over integer-indexable nodes.

Built for the abstract lock graph (Section 4.5): nodes are added once,
edges are deduplicated, and the structure supports subgraph views used
by Johnson's algorithm.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, List, Set, Tuple, TypeVar

N = TypeVar("N", bound=Hashable)


class DiGraph(Generic[N]):
    """Directed graph with hashable nodes and deduplicated edges."""

    def __init__(self) -> None:
        self._nodes: List[N] = []
        self._index: Dict[N, int] = {}
        self._succ: List[Set[int]] = []
        self._sorted: List[List[int]] = []
        self._sorted_valid = True

    def add_node(self, node: N) -> int:
        """Insert ``node`` if absent; return its dense index."""
        idx = self._index.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._index[node] = idx
            self._nodes.append(node)
            self._succ.append(set())
            self._sorted_valid = False
        return idx

    def add_edge(self, src: N, dst: N) -> None:
        i = self.add_node(src)
        j = self.add_node(dst)
        if j not in self._succ[i]:
            self._succ[i].add(j)
            self._sorted_valid = False

    def add_successors_sorted(self, src_idx: int, dst_idxs: Iterable[int]) -> None:
        """Bulk form of repeated ``add_edge`` over already-interned nodes.

        ``dst_idxs`` must be ascending node indices; inserting them in
        one ``set.update`` reproduces the insertion history (and hence
        iteration order) of the equivalent ``add_edge`` sequence.  Used
        by the numpy graph-construction kernels.
        """
        self._succ[src_idx].update(dst_idxs)
        self._sorted_valid = False

    def has_edge(self, src: N, dst: N) -> bool:
        i = self._index.get(src)
        j = self._index.get(dst)
        return i is not None and j is not None and j in self._succ[i]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ)

    def nodes(self) -> List[N]:
        return list(self._nodes)

    def node_at(self, idx: int) -> N:
        return self._nodes[idx]

    def successors_idx(self, idx: int) -> Set[int]:
        return self._succ[idx]

    def successors(self, node: N) -> List[N]:
        return [self._nodes[j] for j in self._succ[self._index[node]]]

    def adjacency(self) -> List[Set[int]]:
        """Successor sets by node index (shared, do not mutate)."""
        return self._succ

    def sorted_adjacency(self) -> List[List[int]]:
        """Successor lists in ascending order (shared, do not mutate).

        Interned once and invalidated on mutation: cycle enumeration
        (:mod:`repro.graph.johnson`) walks successors in sorted order
        at every search frame, and re-sorting the same sets there
        dominated deep searches.
        """
        if not self._sorted_valid:
            self._sorted = [sorted(s) for s in self._succ]
            self._sorted_valid = True
        return self._sorted

    def edges(self) -> Iterable[Tuple[N, N]]:
        for i, succ in enumerate(self._succ):
            for j in succ:
                yield (self._nodes[i], self._nodes[j])
