"""Directed-graph utilities: SCCs and simple-cycle enumeration."""

from repro.graph.digraph import DiGraph
from repro.graph.johnson import simple_cycles
from repro.graph.scc import strongly_connected_components

__all__ = ["DiGraph", "simple_cycles", "strongly_connected_components"]
