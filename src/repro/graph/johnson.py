"""Johnson's algorithm for enumerating elementary cycles.

SPDOffline (Algorithm 3) enumerates every simple cycle of the abstract
lock graph and filters those that form abstract deadlock patterns.
Johnson [1975] lists all elementary circuits in
``O((V + E) · (#cycles + 1))`` time; the implementation below is
iterative to survive deep hardness-construction graphs, and supports an
optional cycle-length cap (SPDOnline effectively caps at 2) and a
cycle-count cap as a safety valve against the exponential worst case
that Theorem 3.1 makes unavoidable.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro import kernels
from repro.graph.digraph import DiGraph
from repro.graph.scc import strongly_connected_components


def simple_cycles(
    graph: DiGraph,
    max_length: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> Iterator[List[int]]:
    """Yield every elementary cycle of ``graph`` as a list of node indices.

    Each cycle starts at its minimum-index node, so the output is
    canonical and duplicate-free.

    Args:
        graph: the directed graph.
        max_length: if given, cycles longer than this are pruned during
            the search (sound for deadlock patterns of bounded size).
        max_cycles: if given, stop after yielding this many cycles.
    """
    adjacency: Sequence[Set[int]] = graph.adjacency()
    succ_sorted = graph.sorted_adjacency()
    n = graph.num_nodes
    emitted = 0
    if max_cycles is not None and max_cycles <= 0:
        return
    if max_length is not None and max_length <= 2:
        # Bounded-length fast path: cycles of length <= 2 are exactly
        # the self-loops and mutual edge pairs, so the repeated SCC
        # computations of the general search are pure overhead.  Yields
        # in the identical canonical order (min-node first, successors
        # in sorted order) — this is the SPDOffline ``max_size=2`` hot
        # path, where phase-1 enumeration used to dominate end-to-end
        # runtime.
        yield from _short_cycles(adjacency, succ_sorted, n, max_length,
                                 max_cycles)
        return
    # Incremental SCC maintenance across start-node deletions.  One full
    # Tarjan pass seeds a min-keyed heap of cycle-bearing components;
    # after the cycles through a component's minimum node are emitted,
    # only that component (minus its start) is re-decomposed.  Deleting
    # a node can never merge or grow another SCC — any remaining-graph
    # path between two of its members that detoured through an outside
    # node would have placed that node in the same original component —
    # so the candidate set, and the min-of-min processing order the
    # canonical output depends on, match the per-start full
    # recomputation exactly.
    heap: List[Tuple[int, List[int]]] = []
    scc_nodes_scanned = n
    for comp in strongly_connected_components(adjacency):
        if len(comp) > 1 or comp[0] in adjacency[comp[0]]:
            heap.append((min(comp), comp))
    heapq.heapify(heap)
    try:
        while heap:
            start, comp = heapq.heappop(heap)
            comp_set = set(comp)

            for cycle in _cycles_from(start, succ_sorted, comp_set, max_length):
                yield cycle
                emitted += 1
                if max_cycles is not None and emitted >= max_cycles:
                    return
            comp_set.discard(start)
            if len(comp_set) > 1:
                scc_nodes_scanned += len(comp_set)
                for sub in strongly_connected_components(adjacency, comp_set):
                    if len(sub) > 1 or sub[0] in adjacency[sub[0]]:
                        heapq.heappush(heap, (min(sub), sub))
            elif comp_set:
                (v,) = comp_set
                if v in adjacency[v]:
                    heapq.heappush(heap, (v, [v]))
    finally:
        kernels.record_dispatch("johnson_scc", "incremental",
                                events=scc_nodes_scanned)


def _short_cycles(
    adjacency: Sequence[Set[int]],
    succ_sorted: Sequence[Sequence[int]],
    n: int,
    max_length: int,
    max_cycles: Optional[int],
) -> Iterator[List[int]]:
    """All elementary cycles of length <= ``max_length`` (<= 2).

    Matches the general search's output order exactly: starts ascend,
    and within a start the successors are visited in sorted order, the
    self-loop (if any) falling at the start node's own sorted position.
    A 2-cycle ``[s, v]`` is emitted at its minimum node ``s``, so only
    partners ``v > s`` qualify — mirroring Johnson's removal of earlier
    start nodes from the remaining graph.
    """
    if max_length < 1:
        return
    emitted = 0
    pairs = max_length >= 2
    for s in range(n):
        for v in succ_sorted[s]:
            if v == s:
                yield [s]
            elif pairs and v > s and s in adjacency[v]:
                yield [s, v]
            else:
                continue
            emitted += 1
            if max_cycles is not None and emitted >= max_cycles:
                return


def _cycles_from(
    start: int,
    succ_sorted: Sequence[Sequence[int]],
    allowed: Set[int],
    max_length: Optional[int],
) -> Iterator[List[int]]:
    """All elementary cycles through ``start`` within ``allowed``.

    Iterative version of Johnson's CIRCUIT procedure with the blocked
    set / B-list unblocking machinery.  Successor order comes from the
    graph's interned sorted arrays, restricted to the component once
    up front — the textbook per-frame ``sorted(adjacency[v] & allowed)``
    re-sorted the same sets at every visit.
    """
    succ = {v: [w for w in succ_sorted[v] if w in allowed]
            for v in allowed}
    blocked: Set[int] = set()
    b_lists: dict = {v: set() for v in allowed}
    path: List[int] = [start]
    blocked.add(start)
    succ_iters = [iter(succ[start])]
    found_flags = [False]

    def unblock(v: int) -> None:
        work = [v]
        while work:
            u = work.pop()
            if u in blocked:
                blocked.discard(u)
                pending = b_lists[u]
                b_lists[u] = set()
                work.extend(pending)

    while succ_iters:
        it = succ_iters[-1]
        advanced = False
        for nxt in it:
            if nxt == start:
                if max_length is None or len(path) <= max_length:
                    yield list(path)
                    found_flags[-1] = True
            elif nxt not in blocked:
                if max_length is not None and len(path) >= max_length:
                    # Path already at cap; extending cannot close a
                    # cycle within the bound.  Conservatively treat as
                    # "found" so unblocking keeps the search exact for
                    # shorter cycles through other routes.
                    found_flags[-1] = True
                    continue
                path.append(nxt)
                blocked.add(nxt)
                succ_iters.append(iter(succ[nxt]))
                found_flags.append(False)
                advanced = True
                break
        if advanced:
            continue
        # Exhausted successors of the top node: pop the frame.
        node = path.pop()
        found = found_flags.pop()
        succ_iters.pop()
        if found:
            unblock(node)
            if found_flags:
                found_flags[-1] = True
        else:
            for w in succ[node]:
                b_lists[w].add(node)
    return
