"""Deterministic fault injection for the resilience test harness.

Every recovery path in the execution layer (:mod:`repro.exp`) is
proven by injecting the fault it recovers from and asserting the run's
final output is bit-identical to an undisturbed run.  That proof needs
faults that are *deterministic* (seeded, matched on exact cell
coordinates — never "random 1% of the time") and that *reach forked
workers* (the process-pool runner re-executes cells in child
processes, so an injector configured only in the parent's memory would
never fire where the crash matters).

Activation is therefore environment-driven: :data:`ENV_VAR` holds a
JSON list of fault specs, which forked/spawned workers inherit for
free.  Production code calls :func:`fire` at a handful of named
points; with no specs active (the normal case) that is one cached dict
lookup and a ``None`` check.

Fire points currently instrumented:

- ``cell`` — entry of :func:`repro.exp.runner.run_cell`, context
  ``index`` / ``attempt`` / ``detector`` / ``trace``;
- ``std_read`` — per line-chunk of the streaming STD reader, context
  ``path``;
- ``journal_write`` — before a :class:`repro.exp.resilience.RunJournal`
  record is appended, context ``kind`` (and ``cells`` for final
  records);
- ``pool_tick`` — each scheduler pass of the process-pool runner *and*
  the fleet coordinator, context ``done`` (completed cell count);
- ``queue_lease`` — right after a fleet worker claims a task lease
  (:mod:`repro.exp.fleet`), context ``task`` / ``worker`` — a ``crash``
  here is a worker dying mid-lease, recovered by lease expiry;
- ``queue_result`` — before a fleet worker appends a record to its
  results channel, context ``index`` / ``attempt`` / ``worker`` —
  supports the writer-cooperative ``torn`` and ``dup`` actions.

Actions:

- ``raise`` — raise :class:`InjectedFault` (a typed, retryable error:
  the runner maps it to ``status="fault"``);
- ``crash`` — ``os._exit(spec["exit_code"])``, simulating a
  segfault/OOM kill (default exit code 139);
- ``stall`` — sleep ``spec["delay"]`` seconds (default 3600), long
  enough to trip any configured wall-clock timeout;
- ``sigint`` / ``sigterm`` — deliver the signal to the current
  process, exercising the drain-and-finalize path;
- ``torn`` — used by the journal and the fleet results channel: write
  only ``spec["keep"]`` bytes (default half) of the record, then
  ``os._exit`` — a torn tail the loader must tolerate;
- ``dup`` — used by the fleet results channel: append the record
  *twice* (byte-identical), simulating at-least-once delivery after a
  worker retransmit — the consumer must deduplicate.

A spec fires when its ``point`` matches and every key of its ``when``
dict equals the corresponding :func:`fire` context value, at most
``count`` times (default 1) per process — so "crash attempt 1 of cell
3" fires exactly once and the retry proceeds undisturbed.
"""

from __future__ import annotations

import json
import os
import random
from typing import Dict, List, Optional, Tuple

ENV_VAR = "REPRO_FAULTS"


class InjectedFault(Exception):
    """A deterministic injected failure (``status="fault"`` in cells)."""


class FaultSpecError(ValueError):
    """Malformed :data:`ENV_VAR` contents."""


#: actions a writer must cooperate with (the fault needs the record
#: bytes); :func:`spec_for` serves them, :func:`fire` rejects them.
_WRITER_ACTIONS = ("torn", "dup")

_VALID_ACTIONS = ("raise", "crash", "stall", "sigint", "sigterm") \
    + _WRITER_ACTIONS

#: parsed spec cache: (env string) -> spec list; fire counts ride along
#: so a changed env (tests monkeypatching) resets both.
_parsed: Optional[Tuple[str, List[dict], List[int]]] = None


def parse_specs(raw: str) -> List[dict]:
    """Parse and validate a JSON fault-spec list (raises on nonsense —
    a mistyped chaos-test spec must fail loudly, not silently never
    fire)."""
    try:
        specs = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise FaultSpecError(f"{ENV_VAR}: invalid JSON: {exc}") from None
    if not isinstance(specs, list):
        raise FaultSpecError(f"{ENV_VAR}: expected a JSON list of specs")
    for spec in specs:
        if not isinstance(spec, dict) or "point" not in spec:
            raise FaultSpecError(f"{ENV_VAR}: spec needs a 'point': {spec!r}")
        action = spec.get("action", "raise")
        if action not in _VALID_ACTIONS:
            raise FaultSpecError(
                f"{ENV_VAR}: unknown action {action!r} "
                f"(options: {', '.join(_VALID_ACTIONS)})"
            )
        if not isinstance(spec.get("when", {}), dict):
            raise FaultSpecError(f"{ENV_VAR}: 'when' must be a dict: {spec!r}")
    return specs


def _active() -> Optional[Tuple[List[dict], List[int]]]:
    global _parsed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        if _parsed is not None:
            _parsed = None
        return None
    if _parsed is None or _parsed[0] != raw:
        specs = parse_specs(raw)
        _parsed = (raw, specs, [0] * len(specs))
    return _parsed[1], _parsed[2]


def install(specs: List[dict]) -> None:
    """Activate ``specs`` for this process *and its future children*
    (writes :data:`ENV_VAR`; call :func:`clear` to deactivate)."""
    os.environ[ENV_VAR] = json.dumps(parse_specs(json.dumps(specs)))


def clear() -> None:
    """Deactivate injection (removes :data:`ENV_VAR`)."""
    os.environ.pop(ENV_VAR, None)


def _matches(spec: dict, ctx: Dict) -> bool:
    for key, want in spec.get("when", {}).items():
        if key not in ctx or ctx[key] != want:
            return False
    return True


def fire(point: str, **ctx) -> None:
    """Trigger any active fault spec matching ``point`` + ``ctx``.

    No-op (one env lookup) when injection is inactive.  May raise
    :class:`InjectedFault`, sleep, signal, or exit the process,
    depending on the matched spec's action.
    """
    active = _active()
    if active is None:
        return
    specs, fired = active
    for i, spec in enumerate(specs):
        if spec.get("point") != point:
            continue
        if fired[i] >= spec.get("count", 1):
            continue
        if not _matches(spec, ctx):
            continue
        fired[i] += 1
        _act(spec, point, ctx)


def _act(spec: dict, point: str, ctx: Dict) -> None:
    action = spec.get("action", "raise")
    if action == "raise":
        raise InjectedFault(
            f"injected fault at {point} ({json.dumps(ctx, sort_keys=True, default=str)})"
        )
    if action == "crash":
        os._exit(int(spec.get("exit_code", 139)))
    if action == "stall":
        import time

        time.sleep(float(spec.get("delay", 3600.0)))
        return
    if action in ("sigint", "sigterm"):
        import signal

        sig = signal.SIGINT if action == "sigint" else signal.SIGTERM
        os.kill(os.getpid(), sig)
        return
    if action in _WRITER_ACTIONS:
        # handled by a cooperating writer (it needs the record bytes);
        # reaching here means the spec matched a point that cannot
        # tear/duplicate — a plain injected fault so the test notices.
        raise InjectedFault(
            f"writer-cooperative {action!r} fault matched "
            f"non-writer point {point}")


def spec_for(point: str, action: str, ctx: Dict) -> Optional[dict]:
    """The matching spec with ``action`` for a write about to happen,
    if any (consumes a fire).  Writers that support writer-cooperative
    actions (``torn``, ``dup``) call this instead of :func:`fire` so
    they can emit the partial/duplicated bytes themselves."""
    active = _active()
    if active is None:
        return None
    specs, fired = active
    for i, spec in enumerate(specs):
        if (spec.get("point") == point and spec.get("action") == action
                and fired[i] < spec.get("count", 1) and _matches(spec, ctx)):
            fired[i] += 1
            return spec
    return None


def torn_spec_for(point: str, ctx: Dict) -> Optional[dict]:
    """The matching ``torn`` spec for a write about to happen, if any
    (consumes a fire)."""
    return spec_for(point, "torn", ctx)


# -- deterministic file corruption helpers (chaos tests) ----------------------


def flip_byte(path: str, seed: int = 0, offset: Optional[int] = None) -> int:
    """XOR one byte of ``path`` with 0xFF in place; returns the offset.

    The offset is drawn from ``random.Random(seed)`` over the file
    length, so a given (file, seed) pair always corrupts the same byte
    — chaos runs are replayable.
    """
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if not data:
        raise ValueError(f"{path}: cannot corrupt an empty file")
    if offset is None:
        offset = random.Random(seed).randrange(len(data))
    data[offset] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    return offset


def truncate_file(path: str, seed: int = 0, keep: Optional[int] = None) -> int:
    """Truncate ``path`` to a seed-chosen prefix; returns the new size.

    Keeps at least one byte and strictly fewer than all, so the result
    is always a *proper* truncation.
    """
    size = os.path.getsize(path)
    if size < 2:
        raise ValueError(f"{path}: too small to truncate meaningfully")
    if keep is None:
        keep = 1 + random.Random(seed).randrange(size - 1)
    keep = max(1, min(keep, size - 1))
    with open(path, "rb+") as fh:
        fh.truncate(keep)
    return keep
