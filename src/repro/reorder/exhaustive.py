"""Exhaustive (exponential) deadlock prediction for small traces.

This is the semantic oracle the fast algorithms are tested against.
It performs a memoized state-space search over all correct reorderings
(optionally restricted to sync-preserving ones) to decide whether a
deadlock pattern is a predictable deadlock (Section 2) or a
sync-preserving deadlock (Definition 2).

The search state is the per-thread progress vector plus the identity of
the last writer per variable (lock ownership is determined by the
progress vector, and in sync-preserving mode so is the last acquire per
lock).  Worst-case exponential — Theorem 3.3 says this is unavoidable —
so intended for traces of a few dozen events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.patterns import DeadlockPattern, find_concrete_patterns
from repro.trace.trace import Trace


class ExhaustivePredictor:
    """Ground-truth predictable-deadlock decision procedure.

    Args:
        trace: the trace to analyze.
        sync_preserving: restrict the witness search to sync-preserving
            reorderings (decides Definition 2 instead of the general
            predictable-deadlock notion).
        max_states: search-state budget; exceeded ⇒ :class:`SearchBudget`
            is raised rather than returning a wrong answer.
    """

    def __init__(
        self,
        trace: Trace,
        sync_preserving: bool = False,
        max_states: int = 2_000_000,
    ) -> None:
        self.trace = trace
        self.sync_preserving = sync_preserving
        self.max_states = max_states
        self._threads = list(trace.threads)
        self._events_by_thread = [trace.events_of_thread(t) for t in self._threads]
        self._fork_of: Dict[str, int] = {}
        for ev in trace:
            if ev.is_fork and ev.target not in self._fork_of:
                self._fork_of[ev.target] = ev.idx

    # -- public API -----------------------------------------------------------

    def is_predictable_deadlock(self, pattern: Sequence[int]) -> bool:
        """Can ``pattern`` be witnessed by a correct reordering?"""
        target = self._target_positions(pattern)
        if target is None:
            return False
        return self._search(target)

    def all_predictable_deadlocks(self, max_size: int = 3) -> List[DeadlockPattern]:
        """Every deadlock pattern up to ``max_size`` that is predictable."""
        out = []
        for size in range(2, max_size + 1):
            for pat in find_concrete_patterns(self.trace, size):
                if self.is_predictable_deadlock(pat.events):
                    out.append(pat)
        return out

    # -- internals --------------------------------------------------------------

    def _target_positions(self, pattern: Sequence[int]) -> Optional[Dict[int, int]]:
        """Per-thread-slot exact stop position required by the pattern.

        Thread of pattern event ``e`` must stop exactly at ``pos(e)``
        (all predecessors in, ``e`` itself out ⇒ ``e`` enabled).
        """
        target: Dict[int, int] = {}
        for e in pattern:
            t, pos = self.trace.thread_position(e)
            slot = self._threads.index(t)
            if slot in target:
                return None  # two pattern events in one thread
            target[slot] = pos
        return target

    def _search(self, target: Dict[int, int]) -> bool:
        trace = self.trace
        n_threads = len(self._threads)
        positions = [0] * n_threads
        lock_owner: Dict[str, int] = {}
        last_write: Dict[str, Optional[int]] = {}
        last_acq: Dict[str, int] = {}
        finished_threads: Set[str] = set()
        visited: Set[Tuple] = set()
        states = 0

        thread_slot = {t: i for i, t in enumerate(self._threads)}

        def goal() -> bool:
            return all(positions[s] == p for s, p in target.items())

        def key() -> Tuple:
            return (tuple(positions), tuple(sorted(last_write.items())))

        def appendable(slot: int) -> Optional[int]:
            """Event index appendable for thread ``slot``, else None."""
            pos = positions[slot]
            events = self._events_by_thread[slot]
            if pos >= len(events):
                return None
            if slot in target and pos >= target[slot]:
                return None  # never step past the required stop point
            idx = events[pos]
            ev = trace[idx]
            # Fork causality: first event requires the fork to have run.
            if pos == 0:
                f = self._fork_of.get(ev.thread)
                if f is not None:
                    ft, fpos = trace.thread_position(f)
                    if positions[thread_slot[ft]] <= fpos:
                        return None
            if ev.is_acquire:
                if ev.target in lock_owner:
                    return None
                if self.sync_preserving and last_acq.get(ev.target, -1) > idx:
                    return None
            elif ev.is_release:
                if lock_owner.get(ev.target) != slot:
                    return None
            elif ev.is_read:
                want = trace.rf(idx)
                if last_write.get(ev.target) != want:
                    return None
            elif ev.is_join:
                child_events = trace.events_of_thread(ev.target)
                cslot = thread_slot.get(ev.target)
                if cslot is not None and positions[cslot] < len(child_events):
                    return None
            return idx

        def dfs() -> bool:
            nonlocal states
            if goal():
                return True
            k = key()
            if k in visited:
                return False
            visited.add(k)
            states += 1
            if states > self.max_states:
                raise SearchBudget(states)
            for slot in range(n_threads):
                idx = appendable(slot)
                if idx is None:
                    continue
                ev = trace[idx]
                # -- apply
                positions[slot] += 1
                undo: List = []
                if ev.is_acquire:
                    lock_owner[ev.target] = slot
                    undo.append(("lock", ev.target, None))
                    if self.sync_preserving:
                        undo.append(("acq", ev.target, last_acq.get(ev.target)))
                        last_acq[ev.target] = idx
                elif ev.is_release:
                    undo.append(("lock", ev.target, slot))
                    del lock_owner[ev.target]
                elif ev.is_write:
                    undo.append(("write", ev.target, last_write.get(ev.target, "absent")))
                    last_write[ev.target] = idx
                found = dfs()
                # -- revert
                positions[slot] -= 1
                for kind, tgt, old in reversed(undo):
                    if kind == "lock":
                        if old is None:
                            del lock_owner[tgt]
                        else:
                            lock_owner[tgt] = old
                    elif kind == "acq":
                        if old is None:
                            last_acq.pop(tgt, None)
                        else:
                            last_acq[tgt] = old
                    elif kind == "write":
                        if old == "absent":
                            last_write.pop(tgt, None)
                        else:
                            last_write[tgt] = old
                if found:
                    return True
            return False

        return dfs()


class SearchBudget(Exception):
    """The exhaustive search exceeded its state budget."""

    def __init__(self, states: int) -> None:
        super().__init__(f"exhaustive search exceeded {states} states")
        self.states = states
