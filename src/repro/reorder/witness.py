"""Witness construction from a sync-preserving closure (Lemma 4.1).

The constructive half of Lemma 4.1: projecting σ onto the closure set
``SPClosure(S)`` yields a sync-preserving correct reordering whose
events are exactly the closure.  This lets every deadlock report ship
with an actual replayable witness schedule.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core.closure import sp_closure_events
from repro.reorder.check import (
    enabled_events,
    is_correct_reordering,
    is_sync_preserving,
)
from repro.trace.trace import Trace


def witness_from_closure(trace: Trace, seed: Iterable[int]) -> List[int]:
    """The σ-order projection of ``SPClosure(seed)``.

    By Lemma 4.1 this is a sync-preserving correct reordering (the
    smallest one containing ``seed``).
    """
    closure = sp_closure_events(trace, seed)
    return sorted(closure)


def witness_for_pattern(trace: Trace, pattern: Sequence[int]) -> Tuple[List[int], bool]:
    """Witness schedule for a deadlock pattern, plus validity.

    Computes the closure of the pattern's thread-local predecessors and
    projects.  Returns ``(schedule, ok)`` where ``ok`` says the schedule
    is a sync-preserving correct reordering with every pattern event
    σ-enabled at its end — i.e., the pattern is confirmed as a
    sync-preserving deadlock with this very schedule as evidence.
    """
    preds = [
        p
        for p in (trace.thread_predecessor(e) for e in pattern)
        if p is not None
    ]
    schedule = witness_from_closure(trace, preds)
    ok = (
        is_correct_reordering(trace, schedule)
        and is_sync_preserving(trace, schedule)
        and all(e in enabled_events(trace, schedule) for e in pattern)
    )
    return schedule, ok
