"""Validation of correct reorderings (paper Section 2, Definition 1).

A sequence ρ of events of σ is a *correct reordering* when

1. ρ is itself a well-formed trace (locks mutually exclusive),
2. ρ's event set is downward closed under σ's thread order, and events
   of the same thread keep their σ order,
3. every read in ρ has the same reads-from writer as in σ (and that
   writer is in ρ); reads of the initial value must stay initial, and
4. fork/join causality of σ is respected (a thread's events appear only
   after its σ-fork, and a join appears only after the joined thread's
   σ-events that ρ contains... joins require the full child).

ρ is additionally *sync-preserving* when acquires on each lock appear
in ρ in the same relative order as in σ.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.trace.trace import Trace


def _as_indices(trace: Trace, reordering: Sequence[int]) -> List[int]:
    out = list(reordering)
    n = len(trace)
    for idx in out:
        if not 0 <= idx < n:
            raise IndexError(f"event index {idx} out of range for {trace!r}")
    if len(set(out)) != len(out):
        raise ValueError("reordering repeats events")
    return out


def is_correct_reordering(
    trace: Trace, reordering: Sequence[int], require_all_reads: bool = True
) -> bool:
    """Is the index sequence ``reordering`` a correct reordering of ``trace``?"""
    rho = _as_indices(trace, reordering)
    chosen: Set[int] = set(rho)

    # (2) thread-order downward closure and per-thread order preservation.
    last_pos: Dict[str, int] = {}
    for idx in rho:
        t, pos = trace.thread_position(idx)
        expected = last_pos.get(t, -1) + 1
        if pos != expected:
            return False
        last_pos[t] = pos

    # (1) well-formedness: lock mutual exclusion along rho.
    owner: Dict[str, str] = {}
    for idx in rho:
        ev = trace[idx]
        if ev.is_acquire:
            if ev.target in owner:
                return False
            owner[ev.target] = ev.thread
        elif ev.is_release:
            if owner.get(ev.target) != ev.thread:
                return False
            del owner[ev.target]

    # (3) reads-from preservation.
    if require_all_reads:
        last_write: Dict[str, int] = {}
        for idx in rho:
            ev = trace[idx]
            if ev.is_write:
                last_write[ev.target] = idx
            elif ev.is_read:
                want = trace.rf(idx)
                got = last_write.get(ev.target)
                if want is None:
                    if got is not None:
                        return False
                else:
                    if got != want:
                        return False

    # (4) fork/join causality.
    forked: Set[str] = set()
    fork_of: Dict[str, int] = {}
    for ev in trace:
        if ev.is_fork and ev.target not in fork_of:
            fork_of[ev.target] = ev.idx
    seen: Set[int] = set()
    for idx in rho:
        ev = trace[idx]
        t = ev.thread
        f = fork_of.get(t)
        if f is not None and f in chosen and f not in seen:
            return False  # thread ran before its fork executed in rho
        if ev.is_fork:
            forked.add(ev.target)
        if ev.is_join:
            # join returns only once the child has fully terminated: every
            # σ-event of the child must already be in the reordering.
            if any(c not in seen for c in trace.events_of_thread(ev.target)):
                return False
        seen.add(idx)
    # A forked thread whose fork is absent from rho cannot run.
    for idx in rho:
        t = trace[idx].thread
        f = fork_of.get(t)
        if f is not None and f not in chosen:
            return False
    return True


def is_sync_preserving(trace: Trace, reordering: Sequence[int]) -> bool:
    """Do same-lock acquires keep their σ order along ``reordering``?"""
    rho = _as_indices(trace, reordering)
    last_acq: Dict[str, int] = {}
    for idx in rho:
        ev = trace[idx]
        if not ev.is_acquire:
            continue
        prev = last_acq.get(ev.target)
        if prev is not None and prev > idx:
            return False
        last_acq[ev.target] = idx
    return True


def enabled_events(trace: Trace, reordering: Sequence[int]) -> Set[int]:
    """Events of σ that are σ-enabled at the end of ``reordering``.

    ``e`` is enabled when it is not in ρ but every thread-order
    predecessor of it is (paper Section 2).
    """
    chosen = set(_as_indices(trace, reordering))
    out: Set[int] = set()
    for thread in trace.threads:
        events = trace.events_of_thread(thread)
        for idx in events:
            if idx in chosen:
                continue
            out.add(idx)
            break  # only the first non-included event per thread
    return out


def witnesses_deadlock(
    trace: Trace, reordering: Sequence[int], pattern: Iterable[int]
) -> bool:
    """Does ``reordering`` witness ``pattern`` as a deadlock?

    All pattern events must be σ-enabled at the end of the reordering,
    and the reordering must be a correct reordering.
    """
    if not is_correct_reordering(trace, reordering):
        return False
    enabled = enabled_events(trace, reordering)
    return all(e in enabled for e in pattern)
