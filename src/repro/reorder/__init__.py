"""Correct reorderings: validation, witnesses, and exhaustive search.

This package is the semantic ground truth behind the fast algorithms:

- :func:`is_correct_reordering` — Definition of Section 2.
- :func:`is_sync_preserving` — Definition 1.
- :func:`witness_from_closure` — Lemma 4.1 constructive direction.
- :class:`ExhaustivePredictor` — exponential search for predictable /
  sync-preserving deadlocks on small traces (used to verify soundness
  and completeness of SPDOffline/SPDOnline in tests).
"""

from repro.reorder.check import (
    enabled_events,
    is_correct_reordering,
    is_sync_preserving,
)
from repro.reorder.witness import witness_from_closure
from repro.reorder.exhaustive import ExhaustivePredictor

__all__ = [
    "enabled_events",
    "is_correct_reordering",
    "is_sync_preserving",
    "witness_from_closure",
    "ExhaustivePredictor",
]
