"""SPDOnline-specific behavior: streaming, incrementality, fork/join."""


from repro.core.spd_online import SPDOnline, spd_online
from repro.core.spd_offline import spd_offline
from repro.synth.paper import sigma2, sigma3
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.builder import TraceBuilder


class TestStreaming:
    def test_step_returns_new_reports(self):
        t = (
            TraceBuilder()
            .acq("t1", "a").acq("t1", "b").rel("t1", "b").rel("t1", "a")
            .acq("t2", "b").acq("t2", "a")
            .build()
        )
        det = SPDOnline()
        per_step = [det.step(ev) for ev in t]
        # The report fires exactly when the closing acquire arrives.
        assert [len(r) for r in per_step] == [0, 0, 0, 0, 0, 1]

    def test_report_identifies_the_acquire_pair(self):
        t = (
            TraceBuilder()
            .acq("t1", "a").acq("t1", "b", loc="X").rel("t1", "b").rel("t1", "a")
            .acq("t2", "b").acq("t2", "a", loc="Y")
            .build()
        )
        res = spd_online(t)
        assert res.num_reports == 1
        rep = res.reports[0]
        assert rep.first_event == 1 and rep.second_event == 5
        assert set(rep.locations) == {"X", "Y"}
        assert rep.bug_id == ("X", "Y")

    def test_incomplete_trace_still_reports(self):
        """Online must not need the trace to finish (no lookahead)."""
        t = sigma2()
        det = SPDOnline()
        fired_at = None
        for ev in t:
            if det.step(ev) and fired_at is None:
                fired_at = ev.idx
        assert fired_at == 17  # fires at e18, the second pattern acquire

    def test_threads_appearing_late_are_covered(self):
        """A deadlock against a thread created after the first acquire."""
        t = (
            TraceBuilder()
            .acq("t1", "a").acq("t1", "b").rel("t1", "b").rel("t1", "a")
            .write("t1", "spawn")
            .acq("tLate", "b").acq("tLate", "a")
            .build()
        )
        assert spd_online(t).num_reports == 1


class TestSemantics:
    def test_common_held_lock_suppressed(self):
        """Guarded cycles are rejected by the closure even though the
        online pattern scan tracks single held locks."""
        t = (
            TraceBuilder()
            .acq("t1", "g").acq("t1", "a").acq("t1", "b")
            .rel("t1", "b").rel("t1", "a").rel("t1", "g")
            .acq("t2", "g").acq("t2", "b").acq("t2", "a")
            .rel("t2", "a").rel("t2", "b").rel("t2", "g")
            .build()
        )
        assert spd_online(t).num_reports == 0

    def test_rf_dependency_suppresses(self):
        from repro.synth.paper import sigma1

        assert spd_online(sigma1()).num_reports == 0

    def test_fork_join_ordering_respected(self):
        """Inverse-order CSes serialized by join cannot deadlock."""
        t = (
            TraceBuilder()
            .fork("main", "t1")
            .acq("t1", "a").acq("t1", "b").rel("t1", "b").rel("t1", "a")
            .join("main", "t1")
            .fork("main", "t2")
            .acq("t2", "b").acq("t2", "a").rel("t2", "a").rel("t2", "b")
            .join("main", "t2")
            .build()
        )
        assert spd_online(t).num_reports == 0

    def test_fork_join_through_main_memory(self):
        """Same shape but threads overlap: deadlock reported."""
        t = (
            TraceBuilder()
            .fork("main", "t1").fork("main", "t2")
            .acq("t1", "a").acq("t1", "b").rel("t1", "b").rel("t1", "a")
            .acq("t2", "b").acq("t2", "a").rel("t2", "a").rel("t2", "b")
            .join("main", "t1").join("main", "t2")
            .build()
        )
        assert spd_online(t).num_reports == 1

    def test_sigma3_reports_d5_context(self):
        res = spd_online(sigma3())
        assert res.deadlock_pairs() == {(15, 28)}


class TestScalability:
    def test_linear_on_long_clean_trace(self):
        """No quadratic blowup on pattern-free traces."""
        cfg = RandomTraceConfig(seed=0, num_events=5000, num_threads=4,
                                num_locks=4, max_nesting=1)
        t = generate_random_trace(cfg)
        res = spd_online(t)
        assert res.num_reports == 0
        assert res.elapsed < 10.0

    def test_matches_offline_on_batch(self):
        for seed in range(30):
            t = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=60, acquire_prob=0.4,
                                  max_nesting=3, num_threads=4)
            )
            assert (spd_online(t).num_reports > 0) == (
                spd_offline(t, max_size=2).num_deadlocks > 0
            ), t.name
