"""Verdict explanations: provenance chains behind closures."""


from repro.analysis.explain import explain_pattern, _provenance_closure
from repro.core.closure import sp_closure_events
from repro.synth.paper import sigma1, sigma2, sigma3
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.core.patterns import find_concrete_patterns
from repro.core.spd_offline import spd_offline


class TestProvenanceClosure:
    def test_same_set_as_fast_closure(self):
        """The provenance closure computes exactly SPClosure."""
        for seed in range(25):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=40, acquire_prob=0.45,
                                  max_nesting=3)
            )
            if len(trace) < 6:
                continue
            seeds = [3, len(trace) // 2, len(trace) - 2]
            prov = _provenance_closure(trace, seeds)
            assert set(prov) == sp_closure_events(trace, seeds), trace.name

    def test_every_step_has_valid_parent(self):
        trace = sigma3()
        prov = _provenance_closure(trace, [0, 14])
        for idx, step in prov.items():
            assert step.event == idx
            if step.rule == "SEED":
                assert step.parent is None
            else:
                assert step.parent in prov


class TestExplanations:
    def test_sigma1_blames_the_read(self):
        """σ1's pattern dies on the w(x)/r(x) edge; the chain says so."""
        exp = explain_pattern(sigma1(), (1, 7))
        assert not exp.is_deadlock
        rules = [s.rule for s in exp.chain]
        assert "RF" in rules
        text = exp.render(sigma1())
        assert "NOT a sync-preserving deadlock" in text
        assert "reads the value written by" in text

    def test_sigma2_gets_a_witness(self):
        exp = explain_pattern(sigma2(), (3, 17))
        assert exp.is_deadlock
        assert sorted(i + 1 for i in exp.witness) == [1, 2, 3, 8, 9, 12, 13, 14, 15, 16, 17]
        assert "IS a sync-preserving deadlock" in exp.render(sigma2())

    def test_sigma3_d1_chain_mentions_lock_rule(self):
        """D1 = ⟨e2, e16⟩ dies through the l2 lock rule + rf chain."""
        exp = explain_pattern(sigma3(), (1, 15))
        assert not exp.is_deadlock
        rules = {s.rule for s in exp.chain}
        assert rules & {"LOCK", "RF"}
        assert exp.blocked_event == 1  # e2 forced into the closure

    def test_explanations_agree_with_detector(self):
        for seed in range(25):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=36, acquire_prob=0.45,
                                  max_nesting=3)
            )
            reported = set()
            for r in spd_offline(trace, max_size=2).reports:
                if r.abstract:
                    for inst in r.abstract.instantiations():
                        # only the confirmed instantiation is guaranteed
                        pass
                reported.add(tuple(sorted(r.pattern.events)))
            for p in find_concrete_patterns(trace, 2)[:4]:
                exp = explain_pattern(trace, p.events)
                if tuple(sorted(p.events)) in reported:
                    assert exp.is_deadlock, (trace.name, p.events)

    def test_render_is_humane(self):
        exp = explain_pattern(sigma1(), (1, 7))
        text = exp.render(sigma1())
        # Complete sentences, one reason per line, a conclusion.
        assert text.count("\n") >= 2
        assert "forced into every candidate reordering" in text
