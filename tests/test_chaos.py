"""Chaos suite: every recovery path, proven bit-identical.

For each fault class the resilience layer claims to survive — worker
crash mid-cell, stalled cell past its timeout, corrupt cache entry,
corrupt/stale engine checkpoint, unreadable trace chunk, SIGINT
mid-run — a deterministic seeded injection (:mod:`repro.faults`) is
fired into a campaign and the final results are asserted **equal to an
undisturbed baseline run** via :meth:`CellResult.comparable`.  The
SIGINT + ``--resume`` path runs the real CLI in subprocesses and
asserts, via journal attempt counts, that resume re-executes only the
cells the interrupt dropped.
"""

import gzip
import json
import os
import subprocess
import sys

import pytest

import repro.faults as faults
from repro.exp.cache import ResultCache
from repro.exp.campaign import Campaign, DetectorSpec, TraceSource
from repro.exp.fleet import RemoteRunner
from repro.exp.resilience import JOURNAL_NAME, RunJournal
from repro.exp.runner import InlineRunner, ProcessPoolRunner
from repro.trace.parser import load_trace
from repro.trace.trace import as_trace
from repro.vc.timestamps import TRFTimestamps, compute_trf_timestamps

CORPUS = os.path.join(os.path.dirname(__file__), "..", "corpus")
SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def corpus_source(name: str) -> TraceSource:
    return TraceSource(kind="file", name=name,
                       path=os.path.join(CORPUS, f"{name}.std"))


def campaign(detectors, traces=("sigma2", "non_well_nested"), **kwargs):
    return Campaign(
        name="chaos",
        traces=[corpus_source(n) for n in traces],
        detectors=detectors,
        include_stats=kwargs.pop("include_stats", False),
        **kwargs,
    )


def comparable(run):
    return [r.comparable() for r in run.results]


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    # plain os.environ pops, NOT monkeypatch: a monkeypatch.delenv here
    # would record any leaked value and faithfully restore the leak on
    # teardown, re-arming stale fault specs for unrelated later tests
    os.environ.pop(faults.ENV_VAR, None)
    yield
    os.environ.pop(faults.ENV_VAR, None)


RETRY = {"max_attempts": 2, "backoff": 0.01, "jitter": 0.0}


class TestChaosBitIdentity:
    """One seeded injection per fault class; recovery must reproduce
    the undisturbed run bit for bit."""

    def test_worker_crash_mid_cell(self, monkeypatch):
        def build():
            return campaign([DetectorSpec(name="spd_offline")], retry=RETRY)

        baseline = ProcessPoolRunner(jobs=2).run(build())
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "cell", "action": "crash",
              "when": {"index": 1, "attempt": 1}}]))
        injected = ProcessPoolRunner(jobs=2).run(build())
        assert comparable(injected) == comparable(baseline)
        hit = injected.results[1]
        assert [a["status"] for a in hit.attempts] == ["error", "ok"]
        assert "exit code 139" in hit.attempts[0]["error"]

    def test_stall_past_timeout_inline(self, monkeypatch):
        def build():
            return campaign(
                [DetectorSpec(name="spd_offline", timeout=0.5)],
                retry=dict(RETRY, retry_on=["timeout"]),
            )

        baseline = InlineRunner().run(build())
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "cell", "action": "stall", "delay": 30.0,
              "when": {"index": 0, "attempt": 1}}]))
        injected = InlineRunner().run(build())
        assert comparable(injected) == comparable(baseline)
        assert ([a["status"] for a in injected.results[0].attempts]
                == ["timeout", "ok"])

    def test_stall_past_timeout_pool(self, monkeypatch):
        def build():
            return campaign(
                [DetectorSpec(name="spd_offline", timeout=0.3)],
                traces=("sigma2",),
                retry=dict(RETRY, retry_on=["timeout"]),
            )

        baseline = ProcessPoolRunner(jobs=2).run(build())
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "cell", "action": "stall", "delay": 30.0,
              "when": {"index": 0, "attempt": 1}}]))
        injected = ProcessPoolRunner(jobs=2).run(build())
        assert comparable(injected) == comparable(baseline)
        assert ([a["status"] for a in injected.results[0].attempts]
                == ["timeout", "ok"])

    def test_corrupt_cache_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        det = [DetectorSpec(name="spd_offline")]
        baseline = InlineRunner().run(campaign(det), cache=cache)
        entries = sorted(
            os.path.join(d, f)
            for d, _, fs in os.walk(cache.root) for f in fs
            if f.endswith(".json")
        )
        assert len(entries) == 2
        faults.truncate_file(entries[0], seed=7)
        second = InlineRunner().run(campaign(det), cache=cache)
        assert comparable(second) == comparable(baseline)
        assert second.cache_hits == 1            # the corrupt one recomputed
        # the recomputed result replaced the bad entry
        assert cache.verify() == {"scanned": 2, "ok": 2, "corrupt": 0,
                                  "pruned": 0}

    def test_corrupt_and_stale_trf_checkpoint(self):
        trace = as_trace(load_trace(os.path.join(CORPUS, "sigma2.std")))
        blob = compute_trf_timestamps(trace).checkpoint()
        TRFTimestamps.restore(trace, blob)       # the good blob loads

        header_end = blob.index(b"\n")
        flipped = bytearray(blob)
        flipped[header_end + 3] ^= 0xFF
        with pytest.raises(ValueError, match="checksum mismatch"):
            TRFTimestamps.restore(trace, bytes(flipped))
        with pytest.raises(ValueError, match="truncated|header says"):
            TRFTimestamps.restore(trace, blob[: len(blob) // 2])
        stale = b'{"format": "repro-trf-v1"}\n' + b"x"
        with pytest.raises(ValueError, match="stale TRF checkpoint"):
            TRFTimestamps.restore(trace, stale)
        # the recovery path — a fresh derivation — is bit-identical
        assert compute_trf_timestamps(trace).checkpoint() == blob

    def test_transient_trace_read_fault(self, tmp_path, monkeypatch):
        src = os.path.join(CORPUS, "sigma2.std")
        dst = str(tmp_path / "sigma2.std.gz")
        with open(src, "rb") as fh, gzip.open(dst, "wb") as out:
            out.write(fh.read())

        def build():
            return Campaign(
                name="chaos",
                traces=[TraceSource(kind="file", name="gzt", path=dst)],
                detectors=[DetectorSpec(name="spd_offline")],
                include_stats=False,
                retry=dict(RETRY, retry_on=["fault", "crash"]),
            )

        baseline = InlineRunner().run(build())
        assert baseline.results[0].status == "ok"
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "std_read", "action": "raise",
              "when": {"path": dst}, "count": 1}]))
        injected = InlineRunner().run(build())
        assert comparable(injected) == comparable(baseline)
        assert ([a["status"] for a in injected.results[0].attempts]
                == ["fault", "ok"])

    def test_sigint_drain_and_resume_inline(self, tmp_path, monkeypatch):
        """SIGINT at cell 1: the run drains with only cell 0 journaled;
        resume replays it and executes the remaining three exactly once
        each (journal attempt counts prove it)."""
        def build():
            return campaign([DetectorSpec(name="spd_offline"),
                             DetectorSpec(name="spd_online")])

        baseline = InlineRunner().run(build())
        path = str(tmp_path / JOURNAL_NAME)
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "cell", "action": "sigint",
              "when": {"index": 1, "attempt": 1}}]))
        with RunJournal(path) as j:
            j.start("chaos")
            first = InlineRunner().run(build(), journal=j)
            j.finalize(cells=first.num_cells, interrupted=first.interrupted)
        assert first.interrupted
        assert first.num_cells == 1              # only cell 0 completed
        monkeypatch.delenv(faults.ENV_VAR)

        state = RunJournal.load(path)
        assert len(state.cells) == 1
        with RunJournal(path) as j:              # append to the same journal
            j.start("chaos", resumed=True)
            second = InlineRunner().run(build(), journal=j, resume=state)
            j.finalize(cells=second.num_cells)
        assert not second.interrupted
        assert second.journal_replays == 1
        assert second.num_cells == 4
        assert comparable(second) == comparable(baseline)
        final = RunJournal.load(path)
        assert sum(final.attempts.values()) == 4
        assert all(n == 1 for n in final.attempts.values())


    def test_worker_crash_with_telemetry_enabled(self, tmp_path,
                                                 monkeypatch):
        """Telemetry must not perturb recovery: an obs-enabled fault run
        stays bit-identical to the undisturbed baseline, and the span
        log stays well-formed — the crashed attempt loses only its own
        telemetry (crash isolation), never corrupting the parent log."""
        from repro import obs
        from repro.obs.export import load_records

        def build():
            return campaign([DetectorSpec(name="spd_offline")], retry=RETRY)

        baseline = ProcessPoolRunner(jobs=2).run(build())
        obs_dir = str(tmp_path / "obs")
        monkeypatch.setenv(obs.ENV_VAR, obs_dir)
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "cell", "action": "crash",
              "when": {"index": 1, "attempt": 1}}]))
        obs.maybe_enable_from_env()
        try:
            injected = ProcessPoolRunner(jobs=2).run(build())
            obs.finish()
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
            os.environ.pop(obs.ENV_VAR, None)

        assert comparable(injected) == comparable(baseline)
        hit = injected.results[1]
        assert [a["status"] for a in hit.attempts] == ["error", "ok"]
        assert counters["pool.worker_crashes"] == 1
        assert counters["runner.retries"] == 1

        records = load_records(obs_dir)
        spans = [r for r in records if r.get("k") == "span"]
        assert spans, "obs-enabled run produced no spans"
        for s in spans:
            assert s["dur"] >= 0 and s["ts"] > 0
            assert s["path"].split("/")[-1] == s["name"]
        # the surviving attempts' cell spans all made it; the crashed
        # attempt contributes nothing (its worker died holding them)
        cells = [s for s in spans if s["name"] == "cell"]
        assert len(cells) == len(baseline.results)
        # queue-wait/exec bookkeeping covers every attempt that ran to
        # completion, crash included via its error-status exec span
        execs = [s for s in spans if s["name"] == "pool.exec"]
        assert len(execs) == 3                   # ok, crash, retry-ok

    @pytest.mark.fuzz
    def test_fuzz_seeded_fault_sweep(self, monkeypatch):
        """Nightly-style sweep: REPRO_FUZZ_ITERS seeded injections
        rotating through the fault classes (injected raise, worker
        crash, stall-past-timeout), every recovery bit-identical."""
        raw = os.environ.get("REPRO_FUZZ_ITERS", "0")
        iters = int(raw) if raw.isdigit() else 0
        if iters <= 0:
            pytest.skip("set REPRO_FUZZ_ITERS to a positive integer "
                        "to run the seeded fault sweep")
        for seed in range(iters):
            params = dict(
                num_threads=2 + seed % 4,
                num_locks=2 + (seed * 7) % 5,
                num_vars=1 + seed % 3,
                num_events=40 + (seed * 13) % 120,
                max_nesting=1 + seed % 3,
                seed=seed,
            )
            action = ("raise", "crash", "stall")[seed % 3]

            def build():
                return Campaign(
                    name="fuzz",
                    traces=[TraceSource(kind="random", name=f"r{seed}",
                                        params=dict(params))],
                    detectors=[DetectorSpec(
                        name="spd_offline",
                        timeout=0.5 if action == "stall" else 30.0)],
                    include_stats=False,
                    retry={"max_attempts": 2, "backoff": 0.0, "jitter": 0.0},
                )

            runner = (ProcessPoolRunner(jobs=2) if action == "crash"
                      else InlineRunner())
            monkeypatch.delenv(faults.ENV_VAR, raising=False)
            baseline = runner.run(build())
            spec = {"point": "cell", "action": action,
                    "when": {"index": 0, "attempt": 1}}
            if action == "stall":
                spec["delay"] = 30.0
            monkeypatch.setenv(faults.ENV_VAR, json.dumps([spec]))
            injected = runner.run(build())
            assert comparable(injected) == comparable(baseline), (
                f"seed={seed} action={action}")
            assert len(injected.results[0].attempts) == 2, (
                f"seed={seed} action={action}: fault never fired")


class TestFleetChaos:
    """Fleet transport fault classes (repro.exp.fleet), each proven
    bit-identical to an undisturbed baseline: the queue is allowed to
    lose workers, deliver twice, and tear records — never to change a
    verdict."""

    def _baseline(self, c):
        return comparable(InlineRunner().run(c))

    def test_worker_killed_mid_lease(self, monkeypatch):
        """A worker that dies right after claiming a cell: the lease
        stops heartbeating, the coordinator reaps it, and the retry
        path re-dispatches the attempt."""
        c = campaign([DetectorSpec(name="spd_offline")], retry=RETRY)
        base = self._baseline(c)
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "queue_lease", "action": "crash",
              "when": {"task": "t000000-a1"}}]))
        fleet = RemoteRunner(workers=1, lease_ttl=0.5).run(c)
        assert not fleet.interrupted
        assert comparable(fleet) == base
        assert ([a["status"] for a in fleet.results[0].attempts]
                == ["error", "ok"])

    def test_expired_lease_redispatch(self, monkeypatch):
        """A worker that is alive but silent (stalled mid-claim, no
        heartbeats): the TTL expires the lease and another worker runs
        the re-dispatched attempt; the stalled worker's late wakeup
        finds its task withdrawn and moves on."""
        c = campaign([DetectorSpec(name="spd_offline")], retry=RETRY)
        base = self._baseline(c)
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "queue_lease", "action": "stall", "delay": 2.0,
              "when": {"task": "t000000-a1"}}]))
        fleet = RemoteRunner(workers=2, lease_ttl=0.4).run(c)
        assert not fleet.interrupted
        assert comparable(fleet) == base
        assert ([a["status"] for a in fleet.results[0].attempts]
                == ["error", "ok"])
        assert "lease expired" in fleet.results[0].attempts[0]["error"]

    def test_duplicate_result_delivery(self, tmp_path, monkeypatch):
        """At-least-once delivery: a retransmitted (byte-identical)
        result record is consumed once and folded once."""
        qdir = str(tmp_path / "queue")
        c = campaign([DetectorSpec(name="spd_offline")])
        base = self._baseline(c)
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "queue_result", "action": "dup",
              "when": {"index": 0, "attempt": 1}}]))
        fleet = RemoteRunner(queue_dir=qdir, workers=1).run(c)
        assert not fleet.interrupted
        assert comparable(fleet) == base
        assert fleet.results[0].attempts == []   # no retry was needed
        # the duplicate really was on the wire: 2 cells, 3 records
        lines = 0
        for fn in os.listdir(os.path.join(qdir, "results")):
            with open(os.path.join(qdir, "results", fn), "rb") as fh:
                lines += sum(1 for ln in fh if ln.endswith(b"\n"))
        assert lines == 3

    def test_torn_queue_record(self, tmp_path, monkeypatch):
        """A worker that dies mid-append leaves a torn, newline-less
        tail in its results channel.  The reader never consumes it;
        the dead worker's lease expires and the retry re-executes."""
        qdir = str(tmp_path / "queue")
        c = campaign([DetectorSpec(name="spd_offline")], retry=RETRY)
        base = self._baseline(c)
        monkeypatch.setenv(faults.ENV_VAR, json.dumps(
            [{"point": "queue_result", "action": "torn",
              "when": {"index": 0, "attempt": 1}}]))
        fleet = RemoteRunner(queue_dir=qdir, workers=1,
                             lease_ttl=0.5).run(c)
        assert not fleet.interrupted
        assert comparable(fleet) == base
        assert ([a["status"] for a in fleet.results[0].attempts]
                == ["error", "ok"])
        # the first worker's channel ends in the torn (un-terminated)
        # record — present on disk, invisible to the reader
        torn = os.path.join(qdir, "results", "w0.jsonl")
        with open(torn, "rb") as fh:
            data = fh.read()
        assert data and not data.endswith(b"\n")

    @pytest.mark.fuzz
    def test_fuzz_seeded_fleet_sweep(self, monkeypatch):
        """Nightly rotation over the fleet transport fault classes
        (killed worker, expired lease, duplicate delivery, torn
        record) on seeded random traces, every recovery bit-identical.
        Bounded at 24 iterations: transport faults don't vary with
        trace shape the way detector faults do, and each iteration
        costs real worker subprocesses."""
        raw = os.environ.get("REPRO_FUZZ_ITERS", "0")
        iters = min(int(raw) if raw.isdigit() else 0, 24)
        if iters <= 0:
            pytest.skip("set REPRO_FUZZ_ITERS to a positive integer "
                        "to run the seeded fleet sweep")
        cases = [
            {"point": "queue_lease", "action": "crash",
             "when": {"task": "t000000-a1"}},
            {"point": "queue_lease", "action": "stall", "delay": 2.0,
             "when": {"task": "t000000-a1"}},
            {"point": "queue_result", "action": "dup",
             "when": {"index": 0, "attempt": 1}},
            {"point": "queue_result", "action": "torn",
             "when": {"index": 0, "attempt": 1}},
        ]
        for seed in range(iters):
            spec = cases[seed % len(cases)]
            params = dict(num_threads=2 + seed % 3, num_locks=2 + seed % 4,
                          num_vars=1 + seed % 2,
                          num_events=40 + (seed * 11) % 100, seed=seed)

            def build():
                return Campaign(
                    name="fleet-fuzz",
                    traces=[TraceSource(kind="random", name=f"r{seed}",
                                        params=dict(params))],
                    detectors=[DetectorSpec(name="spd_offline")],
                    include_stats=False,
                    retry=RETRY,
                )

            monkeypatch.delenv(faults.ENV_VAR, raising=False)
            base = comparable(InlineRunner().run(build()))
            monkeypatch.setenv(faults.ENV_VAR, json.dumps([spec]))
            workers = 2 if spec["action"] == "stall" else 1
            fleet = RemoteRunner(workers=workers, lease_ttl=0.5).run(build())
            assert comparable(fleet) == base, f"seed={seed} spec={spec}"


# -- SIGINT mid-run + --resume through the real CLI ---------------------


def _repro(args, env_extra=None, timeout=180):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop(faults.ENV_VAR, None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=env,
                          timeout=timeout)


CAMPAIGN_TOML = """\
name = "chaos-cli"
include_stats = false

[[traces]]
kind = "synth"
benchmark = "Account"

[[traces]]
kind = "synth"
benchmark = "Bensalem"

[[traces]]
kind = "synth"
benchmark = "Deadlock"

[[traces]]
kind = "synth"
benchmark = "DiningPhil"

[[detectors]]
name = "spd_offline"
"""


class TestSigintResumeCLI:
    def test_interrupt_then_resume_matches_baseline(self, tmp_path):
        camp = tmp_path / "c.toml"
        camp.write_text(CAMPAIGN_TOML)
        out_base = str(tmp_path / "base")
        out_int = str(tmp_path / "int")

        base = _repro(["bench", "run", "--campaign", str(camp),
                       "--out", out_base, "--no-cache", "--quiet", "-j", "2"])
        assert base.returncode == 0, base.stderr

        # SIGINT the parent the moment the first finished cell hits the
        # journal (~50% of a 4-cell run with 2 workers in flight)
        spec = json.dumps([{"point": "journal_write", "action": "sigint",
                            "when": {"kind": "cell"}, "count": 1}])
        first = _repro(["bench", "run", "--campaign", str(camp),
                        "--out", out_int, "--no-cache", "--quiet",
                        "-j", "2"],
                       env_extra={faults.ENV_VAR: spec})
        assert first.returncode == 3, first.stderr
        assert "resume" in first.stderr
        state = RunJournal.load(os.path.join(out_int, JOURNAL_NAME))
        done = len(state.cells)
        assert 1 <= done < 4                    # genuinely interrupted
        assert sum(state.attempts.values()) == done

        second = _repro(["bench", "run", "--campaign", str(camp),
                         "--out", out_int, "--resume", out_int,
                         "--no-cache", "--quiet", "-j", "2"])
        assert second.returncode == 0, second.stderr

        # every cell was executed exactly once across the two runs
        final = RunJournal.load(os.path.join(out_int, JOURNAL_NAME))
        assert len(final.attempts) == 4
        assert all(n == 1 for n in final.attempts.values())

        with open(os.path.join(out_int, "run.json")) as fh:
            resumed = json.load(fh)
        with open(os.path.join(out_base, "run.json")) as fh:
            baseline = json.load(fh)
        assert resumed["journal_replays"] == done
        assert resumed["num_cells"] == 4

        def key(rec):
            return {(c["trace"], c["detector"]):
                    (c["status"], json.dumps(c["output"], sort_keys=True),
                     c.get("num_events"))
                    for c in rec["cells"]}

        assert key(resumed) == key(baseline)    # bit-identical verdicts


class TestFleetCLI:
    """The acceptance path: a loopback --fleet run through the real
    CLI, bit-identical (``bench diff`` clean) to the local runners —
    with a worker killed mid-run, and across SIGINT + --resume."""

    def test_killed_worker_diffs_clean_vs_inline(self, tmp_path):
        camp = tmp_path / "c.toml"
        camp.write_text(CAMPAIGN_TOML)
        out_base = str(tmp_path / "base")
        out_fleet = str(tmp_path / "fleet")

        base = _repro(["bench", "run", "--campaign", str(camp),
                       "--out", out_base, "--no-cache", "--quiet"])
        assert base.returncode == 0, base.stderr

        # kill whichever worker claims cell 0's first attempt; the
        # lease expires (dead pid) and the retry finishes the campaign
        spec = json.dumps([{"point": "queue_lease", "action": "crash",
                            "when": {"task": "t000000-a1"}}])
        fleet = _repro(["bench", "run", "--campaign", str(camp),
                        "--out", out_fleet, "--no-cache", "--quiet",
                        "--fleet", "-j", "2", "--retries", "2"],
                       env_extra={faults.ENV_VAR: spec})
        assert fleet.returncode == 0, fleet.stderr

        diff = _repro(["bench", "diff",
                       os.path.join(out_base, "run.json"),
                       os.path.join(out_fleet, "run.json")])
        assert diff.returncode == 0, diff.stdout
        with open(os.path.join(out_fleet, "run.json")) as fh:
            rec = json.load(fh)
        hit = [c for c in rec["cells"] if c.get("attempts")]
        assert len(hit) == 1                     # the kill really landed
        assert ([a["status"] for a in hit[0]["attempts"]]
                == ["error", "ok"])

    def test_sigint_then_resume_matches_baseline(self, tmp_path):
        camp = tmp_path / "c.toml"
        camp.write_text(CAMPAIGN_TOML)
        out_base = str(tmp_path / "base")
        out_int = str(tmp_path / "int")

        base = _repro(["bench", "run", "--campaign", str(camp),
                       "--out", out_base, "--no-cache", "--quiet",
                       "-j", "2"])
        assert base.returncode == 0, base.stderr

        # SIGINT the coordinator once the first finished cell hits the
        # journal; the fleet drains (leased cells finish, unleased
        # cells are withdrawn behind the stop marker) and exits with
        # the resume hint.  Cells are staggered with stalls so the
        # interrupt genuinely lands mid-run: cell 0 is quick, the rest
        # are still in flight or unclaimed when the drain starts.
        spec = json.dumps(
            [{"point": "journal_write", "action": "sigint",
              "when": {"kind": "cell"}, "count": 1},
             {"point": "cell", "action": "stall", "delay": 0.2,
              "when": {"index": 0}}] +
            [{"point": "cell", "action": "stall", "delay": 0.8,
              "when": {"index": i}} for i in (1, 2, 3)])
        first = _repro(["bench", "run", "--campaign", str(camp),
                        "--out", out_int, "--no-cache", "--quiet",
                        "--fleet", "-j", "2"],
                       env_extra={faults.ENV_VAR: spec})
        assert first.returncode == 3, first.stderr
        assert "resume" in first.stderr
        state = RunJournal.load(os.path.join(out_int, JOURNAL_NAME))
        done = len(state.cells)
        assert 1 <= done < 4                     # genuinely interrupted

        second = _repro(["bench", "run", "--campaign", str(camp),
                         "--out", out_int, "--resume", out_int,
                         "--no-cache", "--quiet", "--fleet", "-j", "2"])
        assert second.returncode == 0, second.stderr

        final = RunJournal.load(os.path.join(out_int, JOURNAL_NAME))
        assert len(final.attempts) == 4
        assert all(n == 1 for n in final.attempts.values())
        diff = _repro(["bench", "diff",
                       os.path.join(out_base, "run.json"),
                       os.path.join(out_int, "run.json")])
        assert diff.returncode == 0, diff.stdout
