"""Parser/formatter round-trip and error handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.parser import ParseError, format_trace, parse_trace


class TestParsing:
    def test_basic(self):
        t = parse_trace("t1|acq(l1)\nt1|w(x)\nt1|rel(l1)\n")
        assert len(t) == 3
        assert t[0].is_acquire and t[0].target == "l1"
        assert t[1].is_write and t[1].target == "x"

    def test_comments_and_blank_lines_skipped(self):
        t = parse_trace("# header\n\nt1|r(x)\n  \n# tail\n")
        assert len(t) == 1

    def test_location_field(self):
        t = parse_trace("t1|acq(l1)|Main.java:42\n")
        assert t[0].loc == "Main.java:42"

    def test_whitespace_tolerated(self):
        t = parse_trace("  t1|fork(t2)  \n")
        assert t[0].is_fork and t[0].target == "t2"

    def test_all_ops(self):
        text = "\n".join(
            f"t|{op}(tgt)" for op in ["r", "w", "acq", "rel", "req", "fork", "join"]
        )
        assert len(parse_trace(text)) == 7

    def test_malformed_line_raises_with_lineno(self):
        with pytest.raises(ParseError) as exc:
            parse_trace("t1|acq(l1)\nbogus line\n")
        assert exc.value.lineno == 2

    def test_empty_target_rejected(self):
        with pytest.raises(ParseError):
            parse_trace("t1|acq()\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(ParseError):
            parse_trace("t1|lock(l1)\n")


class TestRoundTrip:
    def test_format_then_parse(self):
        text = "t1|acq(l1)|A.java:1\nt1|w(x)\nt2|r(x)\nt1|rel(l1)\n"
        t = parse_trace(text)
        assert format_trace(t) == text

    def test_empty_trace(self):
        assert format_trace(parse_trace("")) == ""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_traces_round_trip(self, seed):
        trace = generate_random_trace(RandomTraceConfig(seed=seed, num_events=60))
        reparsed = parse_trace(format_trace(trace))
        assert len(reparsed) == len(trace)
        for a, b in zip(trace, reparsed):
            assert (a.thread, a.op, a.target, a.loc) == (b.thread, b.op, b.target, b.loc)
