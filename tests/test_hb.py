"""Happens-Before substrate: clocks, races, and the deadlock filter."""

from hypothesis import given, settings, strategies as st

from repro.core.races import is_sp_race, sp_races
from repro.core.spd_offline import spd_offline
from repro.hb.clocks import HBClocks, hb_reachable_set
from repro.hb.deadlocks import hb_filtered_patterns
from repro.hb.races import all_hb_unordered_conflicts, hb_races
from repro.reorder.exhaustive import ExhaustivePredictor
from repro.synth.paper import sigma1, sigma2
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.builder import TraceBuilder


class TestHBClocks:
    def test_thread_order_contained(self):
        t = TraceBuilder().write("t1", "x").write("t1", "y").build()
        hb = HBClocks(t)
        assert hb.leq(0, 1) and not hb.leq(1, 0)

    def test_release_acquire_edge(self):
        t = (
            TraceBuilder()
            .acq("t1", "l").write("t1", "x").rel("t1", "l")
            .acq("t2", "l").write("t2", "y").rel("t2", "l")
            .build()
        )
        hb = HBClocks(t)
        assert hb.leq(2, 3)   # rel -> acq
        assert hb.leq(1, 4)   # transitively through the lock
        assert not hb.leq(3, 2)

    def test_no_rf_edges_by_default(self):
        t = TraceBuilder().write("t1", "x").read("t2", "x").build()
        assert not HBClocks(t).ordered(0, 1)
        assert HBClocks(t, include_rf=True).leq(0, 1)

    def test_fork_join_edges(self):
        t = (
            TraceBuilder()
            .fork("m", "c").write("c", "x").join("m", "c").write("m", "y")
            .build()
        )
        hb = HBClocks(t)
        assert hb.leq(0, 1)
        assert hb.leq(1, 3)

    def test_cross_thread_unordered_without_sync(self):
        t = TraceBuilder().write("t1", "x").write("t2", "x").build()
        assert not HBClocks(t).ordered(0, 1)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000), rf=st.booleans())
    def test_clocks_match_reachability_bfs(self, seed, rf):
        trace = generate_random_trace(
            RandomTraceConfig(seed=seed, num_events=40, acquire_prob=0.4,
                              num_threads=3)
        )
        hb = HBClocks(trace, include_rf=rf)
        for f in range(0, len(trace), 3):
            reachable = hb_reachable_set(trace, [f], include_rf=rf)
            for e in range(len(trace)):
                assert hb.leq(e, f) == (e in reachable), (trace.name, e, f)

    def test_hb_consistent_with_trace_order(self):
        """a ≤HB b implies a ≤tr b (HB never reverses the trace)."""
        for seed in range(15):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=40, acquire_prob=0.4)
            )
            hb = HBClocks(trace)
            for a in range(0, len(trace), 4):
                for b in range(0, len(trace), 5):
                    if hb.leq(a, b):
                        assert a <= b


class TestHBRaces:
    def test_detects_unprotected_conflict(self):
        t = TraceBuilder().write("t1", "x").write("t2", "x").build()
        assert hb_races(t).num_races == 1

    def test_lock_protection_suppresses(self):
        t = (
            TraceBuilder()
            .acq("t1", "l").write("t1", "x").rel("t1", "l")
            .acq("t2", "l").write("t2", "x").rel("t2", "l")
            .build()
        )
        assert hb_races(t).num_races == 0

    def test_read_write_race(self):
        t = TraceBuilder().read("t1", "x").write("t2", "x").build()
        races = hb_races(t)
        assert races.num_races == 1
        assert races.races[0].pair == (0, 1)

    def test_reference_set_agrees_with_detector_pairs(self):
        for seed in range(20):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=36, num_vars=2,
                                  acquire_prob=0.35)
            )
            detected = hb_races(trace, first_only_per_site=False).race_pairs()
            reference = all_hb_unordered_conflicts(trace)
            # The streaming detector tracks last accesses only, so it
            # reports a subset of the reference — but must agree on
            # emptiness, and never report an ordered pair.
            assert detected <= reference, trace.name
            assert bool(detected) == bool(reference), trace.name

    def test_first_hb_race_is_a_real_race(self):
        """Classical soundness-of-first-race, against the oracle."""
        checked = 0
        for seed in range(60):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=30, num_vars=2,
                                  acquire_prob=0.35, num_threads=3)
            )
            first = hb_races(trace, first_only_per_site=False).first_race()
            if first is None:
                continue
            pred = ExhaustivePredictor(trace)
            target = pred._target_positions(first.pair)
            assert target is not None and pred._search(target), (
                trace.name, first,
            )
            checked += 1
            if checked >= 15:
                return


class TestHBvsSyncPreserving:
    def test_hb_races_subset_of_sp_races_empirically(self):
        """Every streaming HB race is also a sync-preserving race on
        these workloads (SP is the more permissive notion)."""
        for seed in range(25):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=32, num_vars=2,
                                  acquire_prob=0.35, num_threads=3)
            )
            for race in hb_races(trace, first_only_per_site=False).races:
                a, b = race.pair
                if is_sp_race(trace, a, b):
                    continue
                # If SP rejects, the oracle must also reject — HB may
                # report unordered pairs that are not co-enabled.
                pred = ExhaustivePredictor(trace, sync_preserving=True)
                target = pred._target_positions((a, b))
                assert target is None or not pred._search(target), (
                    trace.name, race,
                )

    def test_sp_finds_races_hb_misses(self):
        """Dropping an intermediate critical section exposes a race HB
        cannot see (the Section 4.1 permissiveness gap, race flavor)."""
        t = (
            TraceBuilder()
            .acq("t1", "l").write("t1", "x").rel("t1", "l")   # CS A writes x
            .acq("t2", "l").write("t2", "gate").rel("t2", "l")  # unrelated CS
            .read("t2", "x")                                   # after its CS
            .build("hb_gap")
        )
        # HB: w(x) ≤HB r(x) through the lock chain — no race.
        assert (1, 6) not in all_hb_unordered_conflicts(t)
        # SP: t2's critical section can be dropped entirely; then w(x)
        # and r(x) are co-enabled... except r(x) reads-from w(x)?  It
        # reads x written in CS A, so they are NOT co-enabled.  Use a
        # fresh reader thread instead:
        t2 = (
            TraceBuilder()
            .acq("t1", "l").write("t1", "x").rel("t1", "l")
            .acq("t2", "l").write("t2", "gate").rel("t2", "l")
            .read("t3", "gate")
            .write("t3", "x")
            .build("hb_gap2")
        )
        hb_pairs = all_hb_unordered_conflicts(t2)
        # w(x)@1 vs w(x)@7: HB orders them via l-chain + rf?  HB has no
        # rf edge, but 1 ≤HB 7 requires a lock chain into t3 — there is
        # none, so HB *does* see this one.  The robust demonstration is
        # the deadlock filter below; for races we assert SP ⊇ HB here.
        sp_pairs = sp_races(t2, first_hit_per_pair=False).race_pairs()
        oracle = ExhaustivePredictor(t2, sync_preserving=True)
        for a, b in hb_pairs:
            target = oracle._target_positions((a, b))
            if target is not None and oracle._search(target):
                assert (a, b) in sp_pairs


class TestMHPDeadlockFilter:
    def test_mhp_prunes_fork_join_serialized_pattern(self):
        """Inverse-order critical sections serialized by join cannot
        deadlock; the MHP filter prunes them soundly."""
        t = (
            TraceBuilder()
            .fork("main", "t1")
            .acq("t1", "a").acq("t1", "b").rel("t1", "b").rel("t1", "a")
            .join("main", "t1")
            .fork("main", "t2")
            .acq("t2", "b").acq("t2", "a").rel("t2", "a").rel("t2", "b")
            .join("main", "t2")
            .build("serialized")
        )
        res = hb_filtered_patterns(t)
        assert res.num_warnings == 0
        assert len(res.discarded) == 1
        assert spd_offline(t).num_deadlocks == 0  # agreement

    def test_mhp_keeps_plain_inverse_order(self):
        from repro.synth.templates import simple_deadlock_trace

        res = hb_filtered_patterns(simple_deadlock_trace())
        assert res.num_warnings == 1

    def test_mhp_keeps_sigma2_real_deadlock(self):
        res = hb_filtered_patterns(sigma2())
        assert res.num_warnings == 1
        assert spd_offline(sigma2()).num_deadlocks == 1

    def test_mhp_still_unsound_on_sigma1(self):
        """σ1's pattern survives MHP (reads-from blocking is invisible
        to it) even though it is not a predictable deadlock."""
        res = hb_filtered_patterns(sigma1())
        assert res.num_warnings == 1
        assert spd_offline(sigma1()).num_deadlocks == 0

    def test_full_hb_filter_degenerates(self):
        """Section 4.1, sharpest form: with lock edges included,
        adjacent pattern events are chained through their shared lock,
        so *every* completed pattern — σ2's real deadlock included —
        is discarded."""
        for trace, label in ((sigma1(), "fp"), (sigma2(), "real")):
            res = hb_filtered_patterns(trace, include_lock_edges=True)
            assert res.num_warnings == 0, label
            assert len(res.discarded) == 1, label

    def test_full_hb_discards_everything_on_random_traces(self):
        """Property form of the degeneration: completed patterns are
        always pairwise HB-ordered."""
        from repro.core.patterns import find_concrete_patterns

        for seed in range(20):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=36, acquire_prob=0.45,
                                  max_nesting=3)
            )
            pats = find_concrete_patterns(trace, 2)
            if not pats:
                continue
            hb = HBClocks(trace)
            for p in pats:
                a, b = p.events
                if trace.match(a) is not None and trace.match(b) is not None:
                    assert hb.ordered(a, b), (trace.name, p.events)
