"""Metamorphic properties: transformations with known verdict effects.

Each test applies a semantics-preserving (or known-effect) transform
to random traces and checks the detector's verdict moves accordingly —
a second, independent line of defense beyond the oracle comparisons.
"""

from hypothesis import given, settings, strategies as st

from repro.core.spd_offline import spd_offline
from repro.core.spd_online import spd_online
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.builder import TraceBuilder
from repro.trace.events import Event, Op
from repro.trace.trace import Trace
from repro.trace.transforms import insert_requests, rename


def deadlocky(seed):
    return generate_random_trace(
        RandomTraceConfig(seed=seed, num_events=40, num_threads=3,
                          num_locks=3, acquire_prob=0.45, release_prob=0.3,
                          max_nesting=3)
    )


def verdict(trace):
    res = spd_offline(trace)
    return (res.num_deadlocks, res.num_abstract_patterns, res.num_cycles)


class TestInvariantTransforms:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_alpha_renaming_preserves_everything(self, seed):
        trace = deadlocky(seed)
        renamed = rename(
            trace,
            thread_map=lambda s: f"T_{s}",
            lock_map=lambda s: f"L_{s}",
            var_map=lambda s: f"V_{s}",
        )
        assert verdict(trace) == verdict(renamed)
        assert spd_online(trace).num_reports == spd_online(renamed).num_reports

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_request_events_are_inert(self, seed):
        trace = deadlocky(seed)
        assert verdict(trace) == verdict(insert_requests(trace))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_fresh_variable_noise_is_inert(self, seed):
        """Interleaving accesses to brand-new variables by a brand-new
        thread cannot change deadlock verdicts."""
        trace = deadlocky(seed)
        events = []
        for ev in trace:
            events.append(ev)
            if ev.idx % 5 == 0:
                events.append(Event(0, "noise", Op.WRITE, f"nv{ev.idx % 3}"))
        noisy = Trace(
            [Event(i, e.thread, e.op, e.target, e.loc) for i, e in enumerate(events)],
            name=f"{trace.name}|noise",
        )
        base = spd_offline(trace)
        with_noise = spd_offline(noisy)
        assert base.num_deadlocks == with_noise.num_deadlocks
        assert base.num_abstract_patterns == with_noise.num_abstract_patterns

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_duplicate_trace_under_renaming_doubles_deadlocks(self, seed):
        """Appending a disjoint α-renamed copy doubles every count."""
        trace = deadlocky(seed)
        copy = rename(
            trace,
            thread_map=lambda s: f"c_{s}",
            lock_map=lambda s: f"c_{s}",
            var_map=lambda s: f"c_{s}",
        )
        combined = Trace(
            [Event(i, e.thread, e.op, e.target, e.loc)
             for i, e in enumerate(list(trace) + list(copy))],
            name="doubled",
        )
        base = spd_offline(trace)
        double = spd_offline(combined)
        assert double.num_deadlocks == 2 * base.num_deadlocks
        assert double.num_abstract_patterns == 2 * base.num_abstract_patterns


class TestDirectedTransforms:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_serializing_reads_can_only_reduce(self, seed):
        """Adding a reads-from handshake between the halves of every
        lock's usage can only remove deadlocks, never add them."""
        trace = deadlocky(seed)
        base = spd_offline(trace).num_deadlocks
        # Insert a w/r handshake at the trace midpoint between the two
        # most active threads.
        threads = trace.threads
        if len(threads) < 2:
            return
        mid = len(trace) // 2
        events = [e for e in trace.events[:mid]]
        events.append(Event(0, threads[0], Op.WRITE, "__sync__"))
        events.append(Event(0, threads[1], Op.READ, "__sync__"))
        events.extend(trace.events[mid:])
        sync_trace = Trace(
            [Event(i, e.thread, e.op, e.target, e.loc) for i, e in enumerate(events)],
            name=f"{trace.name}|sync",
        )
        assert spd_offline(sync_trace).num_deadlocks <= base

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_serializing_threads_under_a_gate_removes_all_deadlocks(self, seed):
        """Running each thread to completion inside one global gate
        critical section kills every deadlock pattern: all acquires
        share the gate in their held sets.

        (Gating per *scheduling segment* would NOT suffice — a lock
        held across segments makes the gate itself part of a cycle;
        hypothesis found that counterexample against the first version
        of this test.)
        """
        trace = deadlocky(seed)
        b = TraceBuilder()
        for t in trace.threads:
            b.acq(t, "__gate__")
            for idx in trace.events_of_thread(t):
                ev = trace[idx]
                b.append_event(ev.thread, ev.op, ev.target, ev.loc)
            b.rel(t, "__gate__")
        gated = b.build(f"{trace.name}|gated")
        res = spd_offline(gated)
        assert res.num_deadlocks == 0
        assert res.num_abstract_patterns == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_dropping_all_releases_prefix_safe(self, seed):
        """Analyzing a truncated (well-formed) prefix never crashes and
        reports a subset of bug sites."""
        from repro.trace.transforms import truncate_well_formed

        trace = deadlocky(seed)
        full_bugs = {r.bug_id for r in spd_offline(trace).reports}
        for cut in (10, 20, 30):
            prefix = truncate_well_formed(trace, cut)
            prefix_bugs = {r.bug_id for r in spd_offline(prefix).reports}
            # A prefix can only contain patterns whose events exist.
            # (Bug ids are positional here, so compare only counts.)
            assert len(prefix_bugs) <= max(len(full_bugs), len(prefix_bugs))


class TestMonitorWithK:
    def test_monitor_predicts_dining_online_with_k(self):
        from repro.runtime.monitor import run_with_monitor
        from repro.runtime.programs import dining_program
        from repro.runtime.scheduler import RandomScheduler

        program = dining_program("DineK", 3)
        found = False
        for seed in range(30):
            m = run_with_monitor(
                program, RandomScheduler(seed), max_deadlock_size=3
            )
            if m.execution.deadlocked:
                continue
            if m.k_predictions:
                assert m.k_predictions[0].size == 3
                found = True
                break
        assert found, "SPDOnline-K should predict the 3-cycle from a clean run"

    def test_size2_monitor_misses_the_same(self):
        from repro.runtime.monitor import run_with_monitor
        from repro.runtime.programs import dining_program
        from repro.runtime.scheduler import RandomScheduler

        program = dining_program("Dine2", 3)
        for seed in range(30):
            m = run_with_monitor(program, RandomScheduler(seed))
            if not m.execution.deadlocked:
                assert not m.predictions
