"""SPDOnline-K: streaming any-size deadlock detection (extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.spd_offline import spd_offline
from repro.core.spd_online_k import SPDOnlineK, spd_online_k
from repro.synth.paper import sigma2, sigma3
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.synth.templates import dining_philosophers_trace
from repro.trace.builder import TraceBuilder


class TestSizeTwoUnchanged:
    def test_sigma2_still_reported_by_inherited_path(self):
        det = spd_online_k(sigma2(), max_size=3)
        assert det.reports  # size-2 machinery intact
        assert not det.k_reports

    def test_sigma3_matches_size2(self):
        det = spd_online_k(sigma3(), max_size=4)
        assert len(det.reports) == 1
        assert not det.k_reports

    def test_max_size_validation(self):
        with pytest.raises(ValueError):
            SPDOnlineK(max_size=1)


class TestLargerCycles:
    def test_dining_three_found_online(self):
        det = spd_online_k(dining_philosophers_trace(3), max_size=3)
        assert len(det.k_reports) == 1
        rep = det.k_reports[0]
        assert rep.size == 3
        threads = {s[0] for s in rep.signatures}
        assert threads == {"phil0", "phil1", "phil2"}

    def test_dining_five_needs_max_size_five(self):
        t = dining_philosophers_trace(5)
        assert not spd_online_k(t, max_size=4).k_reports
        det = spd_online_k(t, max_size=5)
        assert len(det.k_reports) == 1
        assert det.k_reports[0].size == 5

    def test_report_fires_at_last_acquire(self):
        """Streaming: the size-3 report fires the moment the closing
        acquire of the cycle arrives, not at end of trace."""
        t = dining_philosophers_trace(3)
        det = SPDOnlineK(max_size=3)
        fired_at = None
        for ev in t:
            det.step(ev)
            if det.k_reports and fired_at is None:
                fired_at = ev.idx
        # The cycle completes when phil2 acquires fork0 (its right
        # fork); that acquire is the last pattern event in trace order.
        assert fired_at == max(det.k_reports[0].events)

    def test_rounds_report_once_per_context(self):
        t = dining_philosophers_trace(3, rounds=4)
        det = spd_online_k(t, max_size=3)
        assert len(det.k_reports) == 1

    def test_guarded_three_cycle_rejected(self):
        """A size-3 cyclic acquisition under a common gate lock never
        becomes a context (held sets intersect)."""
        b = TraceBuilder()
        for i, (first, second) in enumerate([("a", "b"), ("b", "c"), ("c", "a")]):
            b.acq(f"t{i}", "gate").acq(f"t{i}", first).acq(f"t{i}", second)
            b.rel(f"t{i}", second).rel(f"t{i}", first).rel(f"t{i}", "gate")
        det = spd_online_k(b.build(), max_size=3)
        assert not det.k_reports

    def test_rf_blocked_three_cycle_rejected(self):
        """Cyclic acquisition serialized by data flow is not reported."""
        b = TraceBuilder()
        b.acq("t0", "a").acq("t0", "b").write("t0", "h0")
        b.rel("t0", "b").rel("t0", "a")
        b.read("t1", "h0")
        b.acq("t1", "b").acq("t1", "c").write("t1", "h1")
        b.rel("t1", "c").rel("t1", "b")
        b.read("t2", "h1")
        b.acq("t2", "c").acq("t2", "a")
        b.rel("t2", "a").rel("t2", "c")
        det = spd_online_k(b.build(), max_size=3)
        assert not det.k_reports
        assert spd_offline(b.build()).num_deadlocks == 0


class TestAgainstOffline:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 200_000))
    def test_same_verdict_as_offline_capped(self, seed):
        trace = generate_random_trace(
            RandomTraceConfig(seed=seed, num_threads=4, num_locks=4,
                              num_events=40, acquire_prob=0.5,
                              release_prob=0.25, max_nesting=3)
        )
        offline = spd_offline(trace, max_size=3)
        det = spd_online_k(trace, max_size=3)
        online_total = len(det.reports) + len(det.k_reports)
        assert (online_total > 0) == (offline.num_deadlocks > 0), trace.name

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 200_000))
    def test_k_reports_are_sound(self, seed):
        from repro.reorder.exhaustive import ExhaustivePredictor

        trace = generate_random_trace(
            RandomTraceConfig(seed=seed, num_threads=4, num_locks=4,
                              num_events=36, acquire_prob=0.5,
                              release_prob=0.25, max_nesting=3)
        )
        det = spd_online_k(trace, max_size=3)
        oracle = ExhaustivePredictor(trace, sync_preserving=True)
        for rep in det.k_reports:
            assert oracle.is_predictable_deadlock(rep.events), (
                trace.name, rep.events,
            )
