"""API quality gates: docstrings on every public item, stable exports.

A library is adoptable when its public surface is documented; this
meta-test enforces it mechanically so regressions fail CI.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestDocumentation:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_items_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = [
            name
            for name, obj in public_members(module)
            if not (obj.__doc__ and obj.__doc__.strip())
        ]
        assert not undocumented, f"{module_name}: {undocumented}"


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        for pkg_name in ("repro.core", "repro.trace", "repro.hb",
                         "repro.analysis", "repro.baselines",
                         "repro.runtime", "repro.synth", "repro.hardness",
                         "repro.reorder", "repro.graph", "repro.vc"):
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.{name}"

    def test_version_present(self):
        assert repro.__version__
