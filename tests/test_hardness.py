"""The Section 3 reductions, validated in both directions."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.patterns import find_concrete_patterns
from repro.hardness.independent_set import (
    has_independent_set,
    independent_set_to_trace,
    random_graph,
)
from repro.hardness.orthogonal_vectors import (
    has_orthogonal_pair,
    orthogonal_vectors_to_trace,
    random_ov_instance,
)
from repro.hardness.race_reduction import deadlock_to_race_trace
from repro.trace.wellformed import is_well_formed


def has_pattern_of_size(trace, k):
    return bool(find_concrete_patterns(trace, k))


class TestIndependentSetReduction:
    def test_triangle_has_no_is3(self):
        """K3 has no independent set of size 3 ⇒ no size-3 pattern."""
        edges = [(0, 1), (1, 2), (0, 2)]
        trace = independent_set_to_trace(3, edges, 3)
        assert is_well_formed(trace)
        assert not has_independent_set(3, edges, 3)
        assert not has_pattern_of_size(trace, 3)

    def test_empty_graph_has_is(self):
        trace = independent_set_to_trace(3, [], 3)
        assert has_independent_set(3, [], 3)
        assert has_pattern_of_size(trace, 3)

    def test_path_graph(self):
        edges = [(0, 1), (1, 2)]  # independent set {0, 2} of size 2
        trace = independent_set_to_trace(3, edges, 2)
        assert has_independent_set(3, edges, 2)
        assert has_pattern_of_size(trace, 2)

    def test_fig2a_shape(self):
        """The Fig. 2a example: 3 vertices, parameter c = 3."""
        edges = [(0, 1), (0, 2)]
        trace = independent_set_to_trace(3, edges, 3)
        assert len(trace.threads) == 3
        # |E| + c locks
        assert len(trace.locks) == len(edges) + 3
        # {1, 2} is not independent? (1,2) not an edge -> {1,2} plus none...
        # G has edges a-b, a-c: independent sets of size 3 need all of
        # {a,b,c} pairwise non-adjacent — false.
        assert not has_independent_set(3, edges, 3)
        assert not has_pattern_of_size(trace, 3)

    def test_nesting_depth_bound(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        trace = independent_set_to_trace(3, edges, 2)
        max_degree = 2
        assert trace.lock_nesting_depth <= 2 + max_degree

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            independent_set_to_trace(2, [(0, 0)], 2)

    def test_c_below_2_rejected(self):
        with pytest.raises(ValueError):
            independent_set_to_trace(2, [], 1)

    def test_isolated_vertices_rejected(self):
        """The construction needs neighbor-free vertices preprocessed
        away (they always join a maximum independent set); with an
        isolated vertex, several threads could instantiate the pattern
        from the same vertex block."""
        with pytest.raises(ValueError):
            independent_set_to_trace(3, [(1, 2)], 3)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 5),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
        c=st.integers(2, 3),
    )
    def test_reduction_iff_random(self, n, density, seed, c):
        """G has an independent set of size c iff the trace has a
        deadlock pattern of size c (after the WLOG isolated-vertex
        preprocessing)."""
        if c > n:
            return
        edges = random_graph(n, density, seed)
        # Preprocess: isolated vertices always join a maximum
        # independent set — remove them and lower the target.
        touched = sorted({v for e in edges for v in e})
        remap = {v: i for i, v in enumerate(touched)}
        kept_edges = [(remap[u], remap[v]) for u, v in edges]
        c_eff = c - (n - len(touched))
        if c_eff < 2 or c_eff > len(touched):
            # trivially decided by the isolated vertices alone
            assert has_independent_set(n, edges, c) == (c_eff <= len(touched))
            return
        trace = independent_set_to_trace(len(touched), kept_edges, c_eff)
        assert is_well_formed(trace)
        assert has_independent_set(n, edges, c) == has_pattern_of_size(trace, c_eff)


class TestOVReduction:
    def test_orthogonal_instance(self):
        a = [[1, 0]]
        b = [[0, 1]]
        trace = orthogonal_vectors_to_trace(a, b)
        assert is_well_formed(trace)
        assert has_orthogonal_pair(a, b)
        assert has_pattern_of_size(trace, 2)

    def test_non_orthogonal_instance(self):
        a = [[1, 1]]
        b = [[1, 0]]
        assert not has_orthogonal_pair(a, b)
        assert not has_pattern_of_size(orthogonal_vectors_to_trace(a, b), 2)

    def test_fig2b_instance(self):
        """Fig. 2b: A = {[1,1],[1,0]}, B = {[1,0],[0,1]} — positive
        ([1,0]·[0,1] = 0)."""
        a = [[1, 1], [1, 0]]
        b = [[1, 0], [0, 1]]
        assert has_orthogonal_pair(a, b)
        assert has_pattern_of_size(orthogonal_vectors_to_trace(a, b), 2)

    def test_two_threads_d_plus_2_locks(self):
        a, b = [[1, 0, 1]], [[0, 1, 0]]
        trace = orthogonal_vectors_to_trace(a, b)
        assert len(trace.threads) == 2
        assert len(trace.locks) <= 3 + 2

    def test_bad_vectors_rejected(self):
        with pytest.raises(ValueError):
            orthogonal_vectors_to_trace([[1, 2]], [[0, 1]])
        with pytest.raises(ValueError):
            orthogonal_vectors_to_trace([], [[0]])
        with pytest.raises(ValueError):
            orthogonal_vectors_to_trace([[1]], [[0, 1]])

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 4),
        d=st.integers(1, 4),
        p=st.floats(0.2, 0.9),
        seed=st.integers(0, 1000),
    )
    def test_reduction_iff_random(self, n, d, p, seed):
        a, b = random_ov_instance(n, d, p, seed)
        trace = orthogonal_vectors_to_trace(a, b)
        assert is_well_formed(trace)
        assert has_orthogonal_pair(a, b) == has_pattern_of_size(trace, 2)


class TestRaceReduction:
    def test_witness_equivalence(self):
        """Theorem 3.3 direction: the race trace has a predictable race
        on the fresh writes iff the deadlock was predictable."""
        from repro.synth.paper import sigma1, sigma2

        # sigma2's deadlock is predictable -> writes co-enabled.
        t = sigma2()
        race = deadlock_to_race_trace(t, (3, 17))
        assert is_well_formed(race, strict_fork_join=False)
        writes = [ev.idx for ev in race if ev.is_write and ev.target == "__race__"]
        assert len(writes) == 2

        # sigma1's pattern is NOT predictable -> neither is the race.
        t1 = sigma1()
        race1 = deadlock_to_race_trace(t1, (1, 7))
        w1 = [ev.idx for ev in race1 if ev.is_write and ev.target == "__race__"]
        assert len(w1) == 2

    def test_rejects_non_acquires(self):
        from repro.synth.paper import sigma1

        with pytest.raises(ValueError):
            deadlock_to_race_trace(sigma1(), (2, 7))

    def test_rejects_non_fresh_variable(self):
        from repro.synth.paper import sigma1

        with pytest.raises(ValueError):
            deadlock_to_race_trace(sigma1(), (1, 7), fresh_var="x")
