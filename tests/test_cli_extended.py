"""The extended CLI subcommands: races, compare, audit, graph."""

import pytest

from repro.cli import main
from repro.synth.paper import sigma1, sigma2, sigma3
from repro.trace.parser import save_trace


@pytest.fixture
def sigma2_file(tmp_path):
    path = tmp_path / "sigma2.std"
    save_trace(sigma2(), str(path))
    return str(path)


@pytest.fixture
def sigma1_file(tmp_path):
    path = tmp_path / "sigma1.std"
    save_trace(sigma1(), str(path))
    return str(path)


class TestRacesCommand:
    def test_racy_trace(self, tmp_path, capsys):
        path = tmp_path / "r.std"
        path.write_text("t1|w(x)\nt2|w(x)\n")
        assert main(["races", str(path)]) == 1
        assert "1 sync-preserving race" in capsys.readouterr().out

    def test_clean_trace(self, tmp_path, capsys):
        path = tmp_path / "c.std"
        path.write_text("t1|acq(l)\nt1|w(x)\nt1|rel(l)\nt2|acq(l)\nt2|w(x)\nt2|rel(l)\n")
        assert main(["races", str(path)]) == 0

    def test_all_flag(self, tmp_path, capsys):
        path = tmp_path / "r.std"
        path.write_text("t1|w(x)\nt1|w(x)\nt2|w(x)\n")
        assert main(["races", "--all", str(path)]) == 1


class TestCompareCommand:
    def test_compare_sigma2(self, sigma2_file, capsys):
        assert main(["compare", "--no-dirk", sigma2_file]) == 0
        out = capsys.readouterr().out
        assert "spd-offline=1" in out
        assert "only SPDOffline" in out  # sigma2 is a Fig.5-style case

    def test_compare_with_dirk(self, sigma1_file, capsys):
        assert main(["compare", sigma1_file]) == 0
        out = capsys.readouterr().out
        assert "dirk=" in out


class TestAuditCommand:
    def test_audit_sigma1(self, sigma1_file, capsys):
        assert main(["audit", sigma1_file]) == 0
        out = capsys.readouterr().out
        assert "TRF ideal" in out

    def test_audit_sigma2(self, sigma2_file, capsys):
        assert main(["audit", sigma2_file]) == 0
        out = capsys.readouterr().out
        assert "sync-preserving deadlock" in out
        assert "witness" in out


class TestGraphCommand:
    def test_alg_dot(self, tmp_path, capsys):
        path = tmp_path / "s3.std"
        save_trace(sigma3(), str(path))
        assert main(["graph", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "acq(l2)" in out

    def test_lock_order_dot(self, sigma2_file, capsys):
        assert main(["graph", "--lock-order", sigma2_file]) == 0
        out = capsys.readouterr().out
        assert '"l2" -> "l3"' in out


class TestJsonOutput:
    def test_analyze_json(self, sigma2_file, capsys):
        import json

        assert main(["analyze", "--json", sigma2_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "offline"
        assert payload["deadlocks"][0]["events"] == [3, 17]
        assert payload["abstract_patterns"] == 1

    def test_analyze_json_online(self, sigma2_file, capsys):
        import json

        assert main(["analyze", "--json", "--online", sigma2_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "online"
        assert sorted(payload["deadlocks"][0]["events"]) == [3, 17]


class TestAnalyzeWindowed:
    """The bounded-memory mode behind ``analyze --window N``."""

    def test_window_finds_local_deadlock(self, sigma2_file, capsys):
        assert main(["analyze", "--window", "1000", sigma2_file]) == 1
        out = capsys.readouterr().out
        assert "windowed" in out
        assert "1 sync-preserving deadlock(s)" in out

    def test_window_json(self, sigma2_file, capsys):
        import json

        assert main(["analyze", "--window", "1000", "--json", sigma2_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "windowed"
        assert payload["windows"] == 1
        assert payload["deadlocks"][0]["events"] == [3, 17]

    def test_small_window_documented_miss(self, sigma2_file, capsys):
        """A window smaller than the pattern span loses the deadlock —
        the documented windowing imprecision, visible from the CLI."""
        assert main(["analyze", "--window", "4", "--overlap", "0.0",
                     sigma2_file]) == 0
        assert "0 sync-preserving deadlock(s)" in capsys.readouterr().out

    def test_nonpositive_window_rejected(self, sigma2_file, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--window", "0", sigma2_file])
        assert "window must be >= 1" in capsys.readouterr().err

    def test_window_excludes_online(self, sigma2_file, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--window", "1000", "--online", sigma2_file])
        assert "not allowed with" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_output(self, sigma2_file, capsys):
        assert main(["profile", sigma2_file]) == 0
        out = capsys.readouterr().out
        assert "deadlock-prone locks (2): l2, l3" in out
        assert "hottest locks:" in out


class TestExplainCommand:
    def test_explain_deadlock(self, sigma2_file, capsys):
        assert main(["explain", sigma2_file, "3", "17"]) == 0
        assert "IS a sync-preserving deadlock" in capsys.readouterr().out

    def test_explain_non_deadlock(self, sigma1_file, capsys):
        assert main(["explain", sigma1_file, "1", "7"]) == 1
        out = capsys.readouterr().out
        assert "NOT a sync-preserving deadlock" in out


class TestKernelsBackendExitCodes:
    """``--kernels numpy`` without numpy is a *usage* error (exit 2,
    one line) raised at startup — not a KernelsError surfacing as an
    internal error (exit 3) halfway through a long run.  Subprocess
    tests: the numpy availability probe is import-level state."""

    @staticmethod
    def _run(tmp_path, sigma2_file, backend):
        import os
        import subprocess
        import sys

        import repro

        fake = tmp_path / "fakenp"
        fake.mkdir(exist_ok=True)
        (fake / "numpy.py").write_text(
            "raise ImportError('numpy is mocked away')\n")
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(fake), src])
        env.pop("REPRO_KERNELS", None)
        env.pop("REPRO_DEBUG", None)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli",
             "--kernels", backend, "analyze", sigma2_file],
            capture_output=True, text=True, env=env, timeout=120)

    def test_numpy_request_without_numpy_is_usage_error(
            self, tmp_path, sigma2_file):
        proc = self._run(tmp_path, sigma2_file, "numpy")
        assert proc.returncode == 2, (proc.stdout, proc.stderr)
        lines = [l for l in proc.stderr.splitlines() if l.strip()]
        assert len(lines) == 1, proc.stderr
        assert lines[0].startswith("repro-deadlock: error:")
        assert "numpy is not importable" in lines[0]
        # fails at startup: no analysis output was produced
        assert "deadlock" not in proc.stdout

    def test_python_backend_unaffected(self, tmp_path, sigma2_file):
        proc = self._run(tmp_path, sigma2_file, "python")
        assert proc.returncode == 1, (proc.stdout, proc.stderr)  # findings
        assert "sync-preserving deadlock" in proc.stdout
