"""Stateful property testing: the streaming detector as a state machine.

Hypothesis drives SPDOnline one event at a time through randomly built
well-formed traces, checking after every step that the streaming
verdict equals the batch verdict on the prefix consumed so far —
SPDOnline must never need lookahead, never retract a report, and never
miss one the offline analysis of the same prefix finds.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.spd_offline import spd_offline
from repro.core.spd_online import SPDOnline
from repro.trace.events import Event, Op
from repro.trace.trace import Trace

THREADS = ["t0", "t1", "t2"]
LOCKS = ["la", "lb", "lc"]
VARS = ["x", "y"]


class OnlineDetectorMachine(RuleBasedStateMachine):
    """Builds a well-formed trace incrementally, mirroring it into the
    streaming detector."""

    @initialize()
    def setup(self) -> None:
        self.events = []
        self.detector = SPDOnline()
        self.held = {t: [] for t in THREADS}
        self.owner = {}
        self.report_count = 0

    def _emit(self, thread: str, op: str, target: str) -> None:
        ev = Event(len(self.events), thread, op, target)
        self.events.append(ev)
        self.detector.step(ev)

    @rule(t=st.sampled_from(THREADS), lk=st.sampled_from(LOCKS))
    def acquire(self, t: str, lk: str) -> None:
        if lk in self.owner or len(self.held[t]) >= 2:
            return  # keep the trace well-formed
        self.owner[lk] = t
        self.held[t].append(lk)
        self._emit(t, Op.ACQUIRE, lk)

    @rule(t=st.sampled_from(THREADS))
    def release(self, t: str) -> None:
        if not self.held[t]:
            return
        lk = self.held[t].pop()
        del self.owner[lk]
        self._emit(t, Op.RELEASE, lk)

    @rule(t=st.sampled_from(THREADS), v=st.sampled_from(VARS), w=st.booleans())
    def access(self, t: str, v: str, w: bool) -> None:
        self._emit(t, Op.WRITE if w else Op.READ, v)

    @invariant()
    def reports_never_retract(self) -> None:
        assert len(self.detector.reports) >= self.report_count
        self.report_count = len(self.detector.reports)

    @invariant()
    def prefix_verdict_matches_offline(self) -> None:
        # Cheap guard: only compare when the prefix is small enough to
        # re-analyze from scratch on every step.
        if len(self.events) > 60 or len(self.events) % 7 != 0:
            return
        prefix = Trace(list(self.events), name="prefix")
        offline = spd_offline(prefix, max_size=2)
        online_found = bool(self.detector.reports)
        offline_found = offline.num_deadlocks > 0
        assert online_found == offline_found, (
            len(self.events),
            [str(e) for e in self.events],
        )


TestOnlineDetectorMachine = OnlineDetectorMachine.TestCase
TestOnlineDetectorMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
