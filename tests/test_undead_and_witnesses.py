"""UNDEAD baseline and witness attachment."""


from repro.baselines.undead import undead
from repro.core.spd_offline import spd_offline
from repro.reorder.check import (
    enabled_events,
    is_correct_reordering,
    is_sync_preserving,
)
from repro.synth.paper import sigma1, sigma2, sigma3
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.synth.suite import SUITE_BY_NAME, build_benchmark


class TestUndead:
    def test_reports_unverified_pattern(self):
        """σ1's pattern warns under UNDEAD (unsound) and not under SPD."""
        res = undead(sigma1())
        assert res.num_warnings == 1
        assert spd_offline(sigma1()).num_deadlocks == 0

    def test_warning_count_equals_abstract_patterns(self):
        for trace in (sigma1(), sigma2(), sigma3()):
            assert (
                undead(trace).num_warnings
                == spd_offline(trace).num_abstract_patterns
            )

    def test_dependency_dedup(self):
        """σ3's η1 has three concrete acquires but one dependency."""
        res = undead(sigma3())
        assert res.num_dependencies == 4  # η1..η4

    def test_ladder_position_on_suite_row(self):
        """Goodlock ≥ UNDEAD ≥ SPD on an instantiation-heavy replica."""
        from repro.baselines.goodlock import goodlock

        trace = build_benchmark(SUITE_BY_NAME["JDBCMySQL-4"])
        gl = goodlock(trace, max_size=2, max_warnings_per_cycle=100).num_warnings
        ud = undead(trace).num_warnings
        spd = spd_offline(trace).num_deadlocks
        assert gl >= ud >= spd
        assert ud == 10 and spd == 2  # paper row: 10 APs, 2 deadlocks


class TestWitnessAttachment:
    def test_sigma2_witness_is_rho3(self):
        result = spd_offline(sigma2(), with_witnesses=True)
        schedule = result.witnesses[(3, 17)]
        assert sorted(i + 1 for i in schedule) == [1, 2, 3, 8, 9, 12, 13, 14, 15, 16, 17]

    def test_witnesses_valid_on_random_traces(self):
        for seed in range(20):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=40, acquire_prob=0.45,
                                  max_nesting=3)
            )
            result = spd_offline(trace, with_witnesses=True)
            assert len(result.witnesses) == result.num_deadlocks
            for pattern, schedule in result.witnesses.items():
                assert is_correct_reordering(trace, schedule)
                assert is_sync_preserving(trace, schedule)
                enabled = enabled_events(trace, schedule)
                assert all(e in enabled for e in pattern)

    def test_default_off(self):
        assert spd_offline(sigma2()).witnesses == {}
