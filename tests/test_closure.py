"""Sync-preserving closure: Definition 3 laws and Algorithm 1 behavior."""

from hypothesis import given, settings, strategies as st

from repro.core.closure import SPClosureEngine, sp_closure_events
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.builder import TraceBuilder
from repro.vc.timestamps import TRFTimestamps, trf_reachable_set


def reference_closure(trace, seed):
    """Direct fix-point over event sets (the Definition 3 statement)."""
    current = set(trf_reachable_set(trace, list(seed)))
    changed = True
    while changed:
        changed = False
        for lock in trace.locks:
            acqs = [i for i in trace.acquires_of_lock(lock) if i in current]
            if len(acqs) < 2:
                continue
            latest = max(acqs)
            for a in acqs:
                if a == latest:
                    continue
                rel = trace.match(a)
                if rel is not None and rel not in current:
                    current |= trf_reachable_set(trace, [rel])
                    changed = True
    return current


traces = st.builds(
    lambda seed, t, l: generate_random_trace(
        RandomTraceConfig(seed=seed, num_threads=t, num_locks=l, num_events=50)
    ),
    seed=st.integers(0, 100_000),
    t=st.integers(2, 4),
    l=st.integers(1, 4),
)


class TestAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(trace=traces, data=st.data())
    def test_matches_setwise_fixpoint(self, trace, data):
        if len(trace) == 0:
            return
        k = data.draw(st.integers(1, min(4, len(trace))))
        seed = data.draw(
            st.lists(
                st.integers(0, len(trace) - 1), min_size=k, max_size=k, unique=True
            )
        )
        assert sp_closure_events(trace, seed) == reference_closure(trace, seed)


class TestClosureOperatorLaws:
    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_extensive(self, trace, data):
        if len(trace) == 0:
            return
        seed = data.draw(st.sets(st.integers(0, len(trace) - 1), min_size=1, max_size=4))
        assert seed <= sp_closure_events(trace, seed)

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_idempotent(self, trace, data):
        if len(trace) == 0:
            return
        seed = data.draw(st.sets(st.integers(0, len(trace) - 1), min_size=1, max_size=4))
        once = sp_closure_events(trace, seed)
        assert sp_closure_events(trace, once) == once

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_monotone_proposition_4_4(self, trace, data):
        """S ⊆ S' (up to TO-domination) ⇒ closure(S) ⊆ closure(S')."""
        if len(trace) == 0:
            return
        small = data.draw(st.sets(st.integers(0, len(trace) - 1), min_size=1, max_size=3))
        extra = data.draw(st.sets(st.integers(0, len(trace) - 1), min_size=0, max_size=3))
        assert sp_closure_events(trace, small) <= sp_closure_events(trace, small | extra)

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_closed_under_to_and_rf(self, trace, data):
        if len(trace) == 0:
            return
        seed = data.draw(st.sets(st.integers(0, len(trace) - 1), min_size=1, max_size=4))
        closure = sp_closure_events(trace, seed)
        for idx in closure:
            pred = trace.thread_predecessor(idx)
            if pred is not None:
                assert pred in closure
            if trace[idx].is_read and trace.rf(idx) is not None:
                assert trace.rf(idx) in closure

    @settings(max_examples=25, deadline=None)
    @given(trace=traces, data=st.data())
    def test_lock_rule(self, trace, data):
        """Definition 3(c): earlier of two same-lock acquires closes."""
        if len(trace) == 0:
            return
        seed = data.draw(st.sets(st.integers(0, len(trace) - 1), min_size=1, max_size=4))
        closure = sp_closure_events(trace, seed)
        for lock in trace.locks:
            acqs = [i for i in trace.acquires_of_lock(lock) if i in closure]
            for a in acqs[:-1]:  # all but the trace-latest in the closure
                rel = trace.match(a)
                assert rel is None or rel in closure


class TestEngineIncrementalReuse:
    def test_growing_timestamps_reuse_cursors(self):
        """Computing closure(S1) then closure(S1 ∪ S2) with one engine
        equals computing closure(S1 ∪ S2) fresh (Proposition 4.4)."""
        trace = generate_random_trace(RandomTraceConfig(seed=7, num_events=60))
        engine = SPClosureEngine(trace)
        t1 = engine.compute(engine.timestamp_of_events([5, 10]))
        t2 = engine.compute(t1.join(engine.timestamp_of_events([20, 40])))
        fresh = SPClosureEngine(trace)
        expected = fresh.compute(fresh.timestamp_of_events([5, 10, 20, 40]))
        assert engine.members(t2) == fresh.members(expected)

    def test_reset_restores_fresh_state(self):
        trace = generate_random_trace(RandomTraceConfig(seed=9, num_events=60))
        engine = SPClosureEngine(trace)
        big = engine.compute(engine.timestamp_of_events(range(0, 50, 7)))
        engine.reset()
        small = engine.compute(engine.timestamp_of_events([3]))
        fresh = SPClosureEngine(trace)
        assert engine.members(small) == fresh.members(
            fresh.compute(fresh.timestamp_of_events([3]))
        )

    def test_members_denotes_timestamp(self):
        trace = generate_random_trace(RandomTraceConfig(seed=3, num_events=50))
        engine = SPClosureEngine(trace)
        ts = TRFTimestamps(trace)
        t_clock = engine.compute(engine.timestamp_of_events([10, 30]))
        members = engine.members(t_clock)
        for e in range(len(trace)):
            assert (e in members) == ts.of(e).leq(t_clock)


class TestEdgeCases:
    def test_empty_seed(self):
        trace = TraceBuilder().acq("t1", "l").rel("t1", "l").build()
        assert sp_closure_events(trace, []) == set()

    def test_seed_with_open_critical_section(self):
        # Only one acquire on the lock: no release forced.
        trace = TraceBuilder().acq("t1", "l").write("t1", "x").build()
        assert sp_closure_events(trace, [1]) == {0, 1}

    def test_two_open_critical_sections_force_earlier_release(self):
        trace = (
            TraceBuilder()
            .acq("t1", "l").write("t1", "x").rel("t1", "l")
            .acq("t2", "l").write("t2", "y")
            .build()
        )
        # Seeding both acquires: earlier CS (t1's) must close.
        assert sp_closure_events(trace, [0, 3]) == {0, 1, 2, 3}
