"""Round-2 kernel differential suite (`kernels/spdk_np.py`,
`kernels/baselines_np.py`, `kernels/alg_np.py`, incremental SCC,
online micro-batching).

Same contract as :mod:`tests.test_kernels`: the pure-python paths are
the canonical semantics and every numpy kernel must be *bit-identical*
to them — same reports, same counts, same checkpoint round-trips, same
pinned cycle order.  Proven corpus-wide, over 200+ seeded random
traces, and with numpy mocked away.

The long fuzz loop is opt-in: ``REPRO_FUZZ_ITERS=2000 pytest -m fuzz
tests/test_kernels_round2.py``.
"""

import os
import random

import pytest

import repro.kernels as kernels
from repro.baselines.goodlock import goodlock
from repro.baselines.naive import naive_sp_detector
from repro.baselines.undead import undead
from repro.core.spd_online import SPDOnline
from repro.core.spd_online_k import SPDOnlineK
from repro.graph.digraph import DiGraph
from repro.graph.johnson import _cycles_from, simple_cycles
from repro.graph.scc import strongly_connected_components
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.parser import load_trace
from repro.trace.trace import as_trace

from tests.test_kernels import both_backends, needs_numpy

CORPUS = os.path.join(os.path.dirname(__file__), os.pardir, "corpus")
CORPUS_TRACES = sorted(f for f in os.listdir(CORPUS) if f.endswith(".std"))


# -- signatures: everything observable about a run ---------------------------


def k_sig(trace, max_size):
    det = SPDOnlineK(max_size=max_size)
    det.run(as_trace(trace).compiled)
    return (
        [(r.events, r.locations, r.signatures) for r in det.k_reports],
        [(r.first_event, r.second_event, r.context, r.locations)
         for r in det.reports],
        det.stats(),
    )


def goodlock_sig(trace, **kw):
    res = goodlock(trace, **kw)
    return ([w.events for w in res.warnings], res.num_cycles)


def naive_sig(trace, **kw):
    res = naive_sp_detector(trace, **kw)
    return ([(r.pattern.events, r.locations) for r in res.reports],
            res.patterns_checked)


def undead_sig(trace, **kw):
    res = undead(trace, **kw)
    return (
        [tuple((a.thread, a.lock, tuple(sorted(a.held)), a.events)
               for a in w.acquires) for w in res.warnings],
        res.num_dependencies,
    )


def k_config(seed):
    """A deterministic, varied generator config for one fuzz iteration."""
    return RandomTraceConfig(
        num_threads=4 + seed % 5,
        num_locks=3 + seed % 4,
        num_events=400 + (seed % 5) * 50,
        max_nesting=2 + seed % 3,
        acquire_prob=0.25 + (seed % 3) * 0.05,
        release_prob=0.3,
        seed=seed,
    )


def check_seed(seed):
    trace = as_trace(generate_random_trace(k_config(seed)))
    max_size = 3 + seed % 2
    checks = [
        (k_sig, (trace, max_size), {}),
        (goodlock_sig, (trace,), {"max_cycles": 300}),
        (undead_sig, (trace,), {"max_size": 3, "max_cycles": 300}),
        (naive_sig, (trace,),
         {"max_size": 3, "max_patterns": 60,
          "first_hit_per_abstract": seed % 2 == 0}),
    ]
    for fn, args, kw in checks:
        ref, got = both_backends(fn, *args, **kw)
        assert ref == got, (
            f"seed {seed}: {fn.__name__} {kw} differs between backends")
    if seed % 10 == 0:
        check_k_checkpoint(trace, max_size, seed)


def check_k_checkpoint(trace, max_size, seed):
    """Save under either backend, restore under either: all four
    combinations equal the uninterrupted python run."""
    comp = trace.compiled
    n = len(comp)
    cut = n // 2
    with kernels.use("python"):
        ref = k_sig(trace, max_size)
    for b_save in ("python", "numpy"):
        with kernels.use(b_save):
            det = SPDOnlineK(max_size=max_size)
            det.feed_batch(comp, 0, cut)
            blob = det.checkpoint()
        for b_load in ("python", "numpy"):
            with kernels.use(b_load):
                out = SPDOnlineK.restore(blob)
                out.feed_batch(comp, cut, n)
                got = (
                    [(r.events, r.locations, r.signatures)
                     for r in out.k_reports],
                    [(r.first_event, r.second_event, r.context, r.locations)
                     for r in out.reports],
                    out.stats(),
                )
            assert got == ref, (
                f"seed {seed}: save={b_save} load={b_load} diverges")


# -- corpus-wide bit-identity ------------------------------------------------


@needs_numpy
class TestCorpusDifferential:
    @pytest.mark.parametrize("name", CORPUS_TRACES)
    def test_spd_online_k(self, name):
        trace = load_trace(os.path.join(CORPUS, name))
        for max_size in (3, 4):
            ref, got = both_backends(k_sig, trace, max_size)
            assert ref == got, f"{name} max_size={max_size}"

    @pytest.mark.parametrize("name", CORPUS_TRACES)
    def test_baselines(self, name):
        trace = load_trace(os.path.join(CORPUS, name))
        for fn, kw in (
            (goodlock_sig, {"max_cycles": 500}),
            (undead_sig, {"max_size": 3}),
            (naive_sig, {"max_size": 3, "max_patterns": 200}),
        ):
            ref, got = both_backends(fn, trace, **kw)
            assert ref == got, f"{name}: {fn.__name__}"


# -- seeded random-trace differential (200 base cases) -----------------------


@needs_numpy
class TestRandomDifferential:
    @pytest.mark.parametrize("chunk", range(20))
    def test_seeded_configs(self, chunk):
        for seed in range(chunk * 10, chunk * 10 + 10):
            check_seed(seed)

    @pytest.mark.fuzz
    def test_fuzz_long_loop(self):
        """Nightly-style loop: REPRO_FUZZ_ITERS=N pytest -m fuzz ..."""
        iters = int(os.environ.get("REPRO_FUZZ_ITERS", "0"))
        if iters <= 0:
            pytest.skip("set REPRO_FUZZ_ITERS to run the long fuzz loop")
        for seed in range(200, 200 + iters):
            check_seed(seed)


# -- incremental SCC vs the per-start recomputation --------------------------


def reference_simple_cycles(graph, max_length=None, max_cycles=None):
    """The pre-round-2 Johnson sweep: full SCC recomputation after
    every start-node deletion.  Defines the pinned canonical order the
    incremental path must reproduce exactly."""
    adjacency = graph.adjacency()
    succ_sorted = graph.sorted_adjacency()
    n = graph.num_nodes
    emitted = 0
    if max_cycles is not None and max_cycles <= 0:
        return
    remaining = set(range(n))
    while remaining:
        sccs = [c for c in strongly_connected_components(adjacency, remaining)
                if c]
        candidates = []
        for comp in sccs:
            if len(comp) > 1:
                candidates.append(comp)
            elif comp[0] in adjacency[comp[0]]:
                candidates.append(comp)
        if not candidates:
            break
        comp = min(candidates, key=min)
        start = min(comp)
        for cycle in _cycles_from(start, succ_sorted, set(comp), max_length):
            yield cycle
            emitted += 1
            if max_cycles is not None and emitted >= max_cycles:
                return
        remaining.discard(start)


def random_digraph(rng, n, p):
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestIncrementalSCC:
    def test_matches_reference_order(self):
        """Exact sequence equality (not just set equality) against the
        per-start recomputation, across sparse and dense graphs."""
        rng = random.Random(29)
        shapes = [(60, 0.03), (40, 0.05), (12, 0.25), (8, 0.4), (25, 0.08)]
        for trial in range(30):
            n, p = shapes[trial % len(shapes)]
            g = random_digraph(rng, n, p)
            assert (list(simple_cycles(g, max_length=6, max_cycles=3000))
                    == list(reference_simple_cycles(g, 6, 3000))), \
                f"trial {trial}"

    def test_unbounded_and_caps(self):
        rng = random.Random(7)
        for trial in range(15):
            g = random_digraph(rng, 14, 0.18)
            ref = list(reference_simple_cycles(g))
            assert list(simple_cycles(g)) == ref, f"trial {trial}"
            for cap in (0, 1, 3, len(ref)):
                assert (list(simple_cycles(g, max_cycles=cap))
                        == ref[:cap]), f"trial {trial} cap={cap}"
            assert (list(simple_cycles(g, max_length=3))
                    == list(reference_simple_cycles(g, max_length=3)))

    def test_disconnected_components(self):
        """Deleting a start never disturbs sibling SCCs: two disjoint
        cycle clusters enumerate exactly as the reference does."""
        g = DiGraph()
        for i in range(8):
            g.add_node(i)
        for a, b in ((0, 1), (1, 2), (2, 0), (4, 5), (5, 4),
                     (6, 7), (7, 6), (2, 4)):
            g.add_edge(a, b)
        assert list(simple_cycles(g)) == list(reference_simple_cycles(g))


# -- online micro-batching ----------------------------------------------------


@needs_numpy
class TestMicroBatch:
    def _sig(self, det):
        return ([(r.first_event, r.second_event, r.context, r.locations)
                 for r in det.reports], det.stats())

    def test_step_equals_feed_batch_equals_python(self):
        """Per-event stepping (flush per step) ≡ batched feeding
        (flush at the 64-deep cap and batch end) ≡ canonical python."""
        for seed in (2, 9, 21):
            cfg = RandomTraceConfig(num_threads=6, num_locks=6,
                                    num_events=1500, max_nesting=3,
                                    acquire_prob=0.35, release_prob=0.3,
                                    seed=seed)
            comp = as_trace(generate_random_trace(cfg)).compiled
            with kernels.use("python"):
                ref = SPDOnline()
                ref.run(comp)
            with kernels.use("numpy"):
                stepped = SPDOnline()
                for i in range(len(comp)):
                    stepped.step(comp.event(i))
                batched = SPDOnline()
                batched.run(comp)
            assert self._sig(stepped) == self._sig(ref), f"seed {seed}"
            assert self._sig(batched) == self._sig(ref), f"seed {seed}"

    def test_microbatch_dispatch_recorded(self):
        cfg = RandomTraceConfig(num_threads=6, num_locks=6, num_events=1500,
                                max_nesting=3, acquire_prob=0.35,
                                release_prob=0.3, seed=2)
        comp = as_trace(generate_random_trace(cfg)).compiled
        before = kernels.counters().get("kernels.online_microbatch.numpy", 0)
        with kernels.use("numpy"):
            SPDOnline().run(comp)
        after = kernels.counters().get("kernels.online_microbatch.numpy", 0)
        assert after > before


# -- dispatch accounting ------------------------------------------------------


@needs_numpy
class TestDispatchAccounting:
    """Bit-identity alone could pass with kernels that never engage;
    pin that the round-2 numpy paths actually run."""

    def test_round2_areas_dispatch(self):
        cfg = RandomTraceConfig(num_threads=6, num_locks=5, num_events=900,
                                max_nesting=3, acquire_prob=0.3,
                                release_prob=0.3, seed=11)
        trace = as_trace(generate_random_trace(cfg))
        before = kernels.counters()
        with kernels.use("numpy"):
            det = SPDOnlineK(max_size=4)
            det.run(trace.compiled)
            goodlock(trace, max_cycles=300)
            naive_sp_detector(trace, max_size=3, max_patterns=60)
        after = kernels.counters()

        def grew(key):
            return after.get(key, 0) > before.get(key, 0)

        assert grew("kernels.spdk.numpy")
        assert grew("kernels.goodlock.numpy")
        assert grew("kernels.naive.numpy")
        assert grew("kernels.online_microbatch.numpy")
        assert grew("kernels.johnson_scc.incremental")

    def test_python_backend_counts_python(self):
        trace = as_trace(generate_random_trace(k_config(5)))
        before = kernels.counters()
        with kernels.use("python"):
            det = SPDOnlineK(max_size=3)
            det.run(trace.compiled)
            goodlock(trace, max_cycles=200)
        after = kernels.counters()
        assert (after.get("kernels.spdk.python", 0)
                > before.get("kernels.spdk.python", 0))
        assert (after.get("kernels.goodlock.python", 0)
                > before.get("kernels.goodlock.python", 0))
        assert after.get("kernels.spdk.numpy", 0) == \
            before.get("kernels.spdk.numpy", 0)


# -- forced fallback: numpy absent -------------------------------------------


class TestNumpyAbsentRound2:
    """The round-2 integration sites must run cleanly with numpy
    mocked away (auto resolves to python)."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        import builtins

        real_import = builtins.__import__

        def blocked(name, *args, **kw):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("numpy is mocked away")
            return real_import(name, *args, **kw)

        monkeypatch.setattr(builtins, "__import__", blocked)
        monkeypatch.setattr(kernels, "_NUMPY", None)
        monkeypatch.setattr(kernels, "_NUMPY_CHECKED", False)
        yield
        kernels._NUMPY_CHECKED = False
        kernels._NUMPY = None

    def test_round2_paths_run_without_numpy(self, no_numpy):
        trace = load_trace(os.path.join(CORPUS, "sigma2.std"))
        with kernels.use("auto"):
            assert kernels.backend() == "python"
            k_sig(trace, 3)
            goodlock_sig(trace)
            undead_sig(trace, max_size=3)
            naive_sig(trace, max_size=3, max_patterns=50)
