"""The paper's worked examples as executable assertions.

Every number here comes straight from the text: Fig. 1/3 traces,
Example 1-4 relations and closures, Fig. 4 abstract lock graphs, and
the Appendix C incomparability examples (Fig. 5/6).
Event numbering is 0-based (paper's e(i+1) is trace[i]).
"""


from repro.core.alg import abstract_deadlock_patterns, build_abstract_lock_graph
from repro.core.closure import sp_closure_events
from repro.core.patterns import find_concrete_patterns
from repro.core.spd_offline import spd_offline
from repro.core.spd_online import spd_online
from repro.baselines.seqcheck import seqcheck
from repro.synth.paper import fig5_trace, fig6_trace, sigma1, sigma2, sigma3


def one_based(indices):
    return sorted(i + 1 for i in indices)


class TestSigma1:
    """Fig. 1a: a deadlock pattern that is not a predictable deadlock."""

    def test_has_exactly_one_pattern(self):
        pats = find_concrete_patterns(sigma1(), size=2)
        assert [set(p.events) for p in pats] == [{1, 7}]  # e2, e8

    def test_spd_offline_reports_nothing(self):
        assert spd_offline(sigma1()).num_deadlocks == 0

    def test_spd_online_reports_nothing(self):
        assert spd_online(sigma1()).num_reports == 0

    def test_not_predictable_by_exhaustive_search(self):
        from repro.reorder.exhaustive import ExhaustivePredictor

        assert not ExhaustivePredictor(sigma1()).is_predictable_deadlock((1, 7))

    def test_alg_has_one_cycle_one_abstract_pattern(self):
        n_cycles, aps = abstract_deadlock_patterns(sigma1())
        assert n_cycles == 1 and len(aps) == 1 and aps[0].num_concrete == 1


class TestSigma2:
    """Fig. 1b / Examples 1-3: the sync-preserving deadlock ⟨e4, e18⟩."""

    def test_trace_shape(self):
        t = sigma2()
        assert len(t) == 20
        assert sorted(t.threads) == ["t1", "t2", "t3", "t4"]
        assert sorted(t.locks) == ["l1", "l2", "l3"]
        assert sorted(t.variables) == ["x", "y", "z"]

    def test_example1_reads_from(self):
        t = sigma2()
        assert t.rf(9) == 4     # rf(e10) = e5
        assert t.rf(13) == 8    # rf(e14) = e9
        assert t.rf(16) == 12   # rf(e17) = e13

    def test_example1_nesting_depth(self):
        assert sigma2().lock_nesting_depth == 2

    def test_example1_deadlock_pattern(self):
        pats = find_concrete_patterns(sigma2(), size=2)
        assert [set(p.events) for p in pats] == [{3, 17}]  # e4, e18

    def test_example3_closure(self):
        # SPClosure(pred({e4, e18})) = {e1,e2,e3, e8,e9, e12..e17}
        closure = sp_closure_events(sigma2(), [2, 16])
        assert one_based(closure) == [1, 2, 3, 8, 9, 12, 13, 14, 15, 16, 17]

    def test_spd_offline_finds_the_deadlock(self):
        result = spd_offline(sigma2())
        assert result.num_deadlocks == 1
        assert set(result.reports[0].pattern.events) == {3, 17}

    def test_spd_online_finds_the_deadlock(self):
        result = spd_online(sigma2())
        assert result.deadlock_pairs() == {(3, 17)}

    def test_witness_is_rho3(self):
        """The constructed witness is exactly ρ3 = e1 e2 e3 e8 e9 e12..e17."""
        from repro.reorder.witness import witness_for_pattern

        schedule, ok = witness_for_pattern(sigma2(), (3, 17))
        assert ok
        assert one_based(schedule) == [1, 2, 3, 8, 9, 12, 13, 14, 15, 16, 17]


class TestSigma3:
    """Fig. 3 / Examples 2-4: abstract patterns and their instantiations."""

    def test_abstract_acquires_match_figure(self):
        from repro.locks.abstract import collect_abstract_acquires

        etas = {
            (a.thread, a.lock, tuple(sorted(a.held))): one_based(a.events)
            for a in collect_abstract_acquires(sigma3())
        }
        assert etas[("t1", "l2", ("l1",))] == [2, 4, 29]      # η1
        assert etas[("t2", "l1", ("l4",))] == [23]            # η2
        assert etas[("t3", "l1", ("l2",))] == [16, 19]        # η3
        assert etas[("t3", "l3", ("l2",))] == [13]            # η4

    def test_six_concrete_patterns(self):
        pats = find_concrete_patterns(sigma3(), size=2)
        got = {tuple(sorted(one_based(p.events))) for p in pats}
        assert got == {(2, 16), (2, 19), (4, 16), (4, 19), (16, 29), (19, 29)}

    def test_unique_abstract_pattern_with_six_instantiations(self):
        n_cycles, aps = abstract_deadlock_patterns(sigma3())
        assert n_cycles == 1
        assert len(aps) == 1
        assert aps[0].num_concrete == 6

    def test_example3_closures(self):
        t = sigma3()
        # SPClosure(pred(D1 = ⟨e2,e16⟩)) = {e1..e6, e8..e15}
        assert one_based(sp_closure_events(t, [0, 14])) == (
            [1, 2, 3, 4, 5, 6] + list(range(8, 16))
        )
        # SPClosure(pred(D5 = ⟨e29,e16⟩)) = {e1..e15, e28}
        assert one_based(sp_closure_events(t, [27, 14])) == (
            list(range(1, 16)) + [28]
        )
        # SPClosure(pred(D6 = ⟨e29,e19⟩)) = {e1..e18, e28}
        assert one_based(sp_closure_events(t, [27, 17])) == (
            list(range(1, 19)) + [28]
        )

    def test_spd_offline_reports_d5(self):
        """Example 4: the incremental check lands on D5 = ⟨e29, e16⟩."""
        result = spd_offline(sigma3())
        assert result.num_deadlocks == 1
        assert set(one_based(result.reports[0].pattern.events)) == {16, 29}

    def test_d5_d6_sync_preserving_d1_to_d4_not(self):
        from repro.reorder.exhaustive import ExhaustivePredictor

        sp = ExhaustivePredictor(sigma3(), sync_preserving=True)
        assert sp.is_predictable_deadlock((28, 15))   # D5
        assert sp.is_predictable_deadlock((28, 18))   # D6
        for d in [(1, 15), (1, 18), (3, 15), (3, 18)]:  # D1-D4
            assert not sp.is_predictable_deadlock(d)

    def test_d1_to_d4_not_predictable_at_all(self):
        """Example 2: D1-D4 are not predictable deadlocks (any witness)."""
        from repro.reorder.exhaustive import ExhaustivePredictor

        pred = ExhaustivePredictor(sigma3())
        for d in [(1, 15), (1, 18), (3, 15), (3, 18)]:
            assert not pred.is_predictable_deadlock(d)


class TestFig4AbstractLockGraphs:
    def test_sigma1_graph(self):
        g = build_abstract_lock_graph(sigma1())
        assert g.num_nodes == 2
        sigs = {(n.thread, n.lock, tuple(sorted(n.held))) for n in g.nodes()}
        assert sigs == {("t1", "l2", ("l1",)), ("t2", "l1", ("l2",))}

    def test_sigma2_graph(self):
        g = build_abstract_lock_graph(sigma2())
        sigs = {(n.thread, n.lock, tuple(sorted(n.held))) for n in g.nodes()}
        assert sigs == {("t2", "l3", ("l2",)), ("t3", "l2", ("l3",))}

    def test_sigma3_graph_nodes_and_unique_cycle(self):
        g = build_abstract_lock_graph(sigma3())
        assert g.num_nodes == 4
        from repro.graph.johnson import simple_cycles

        cycles = list(simple_cycles(g))
        assert len(cycles) == 1
        nodes = {g.node_at(i).signature[:2] for i in cycles[0]}
        assert nodes == {("t1", "l2"), ("t3", "l1")}


class TestAppendixC:
    """Fig. 5 / Fig. 6: SPDOffline and SeqCheck are incomparable."""

    def test_fig5_spd_finds_seqcheck_misses(self):
        t = fig5_trace()
        spd = spd_offline(t)
        assert spd.num_deadlocks == 1
        assert set(one_based(spd.reports[0].pattern.events)) == {4, 14}
        sq = seqcheck(t)
        assert sq.num_deadlocks == 0

    def test_fig5_deadlock_is_predictable(self):
        from repro.reorder.exhaustive import ExhaustivePredictor

        assert ExhaustivePredictor(fig5_trace()).is_predictable_deadlock((3, 13))

    def test_fig6_seqcheck_finds_both_spd_one(self):
        t = fig6_trace()
        sq = seqcheck(t, first_hit_per_abstract=False)
        found = {tuple(sorted(one_based(r.pattern.events))) for r in sq.reports}
        assert found == {(2, 6), (2, 8)}
        spd = spd_offline(t)
        assert spd.num_deadlocks == 1  # one abstract pattern, first hit e6

    def test_fig6_e2_e8_predictable_but_not_sync_preserving(self):
        from repro.reorder.exhaustive import ExhaustivePredictor

        t = fig6_trace()
        assert ExhaustivePredictor(t).is_predictable_deadlock((1, 7))
        assert not ExhaustivePredictor(
            t, sync_preserving=True
        ).is_predictable_deadlock((1, 7))
