"""Actual-deadlock detection from request events."""

import pytest

from repro.analysis.detection import detect_actual_deadlock
from repro.runtime.programs import dining_program, inverse_order_program
from repro.runtime.scheduler import RandomScheduler, run_program
from repro.trace.builder import TraceBuilder


class TestFromTraces:
    def test_two_thread_cycle(self):
        t = (
            TraceBuilder()
            .acq("t1", "a").acq("t2", "b")
            .req("t1", "b").req("t2", "a")
            .build()
        )
        dl = detect_actual_deadlock(t)
        assert dl is not None and dl.size == 2
        assert set(dl.threads) == {"t1", "t2"}
        assert set(dl.locks) == {"a", "b"}

    def test_clean_trace(self):
        t = TraceBuilder().cs("t1", "a", "b").cs("t2", "b", "a").build()
        assert detect_actual_deadlock(t) is None

    def test_granted_request_is_not_blocking(self):
        t = (
            TraceBuilder()
            .req("t1", "a").acq("t1", "a").rel("t1", "a")
            .build()
        )
        assert detect_actual_deadlock(t) is None

    def test_waiting_without_cycle(self):
        """A thread blocked on a lock whose owner runs free: no cycle."""
        t = (
            TraceBuilder()
            .acq("t1", "a").req("t2", "a").write("t1", "x")
            .build()
        )
        assert detect_actual_deadlock(t) is None

    def test_request_not_last_event_is_stale(self):
        t = (
            TraceBuilder()
            .acq("t1", "a").acq("t2", "b")
            .req("t1", "b")
            .write("t1", "x")   # t1 moved on: logger noise, not blocked
            .req("t2", "a")
            .build()
        )
        assert detect_actual_deadlock(t) is None

    def test_three_cycle(self):
        t = (
            TraceBuilder()
            .acq("t0", "a").acq("t1", "b").acq("t2", "c")
            .req("t0", "b").req("t1", "c").req("t2", "a")
            .build()
        )
        dl = detect_actual_deadlock(t)
        assert dl is not None and dl.size == 3


class TestFromExecutions:
    def test_recovers_cycle_from_deadlocked_run(self):
        program = dining_program("DetectDine", 3)
        for seed in range(60):
            res = run_program(program, RandomScheduler(seed))
            if not res.deadlocked:
                continue
            dl = detect_actual_deadlock(res.trace)
            assert dl is not None
            assert set(dl.threads) == set(res.deadlock_cycle)
            assert dl.bug_id(res.trace) == res.deadlock_bug_id
            return
        pytest.fail("no deadlocked run in 60 seeds")

    def test_inverse_pair_detection_matches_scheduler(self):
        program = inverse_order_program("DetectPair", 1)
        checked = 0
        for seed in range(40):
            res = run_program(program, RandomScheduler(seed))
            dl = detect_actual_deadlock(res.trace)
            assert (dl is not None) == res.deadlocked, seed
            if res.deadlocked:
                assert dl.size == 2
                checked += 1
        assert checked > 0
