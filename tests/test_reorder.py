"""Correct-reordering validation, witnesses, and the exhaustive oracle."""

import pytest

from repro.reorder.check import (
    enabled_events,
    is_correct_reordering,
    is_sync_preserving,
    witnesses_deadlock,
)
from repro.reorder.exhaustive import ExhaustivePredictor, SearchBudget
from repro.reorder.witness import witness_from_closure, witness_for_pattern
from repro.synth.paper import sigma2, sigma3
from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.builder import TraceBuilder


class TestIsCorrectReordering:
    def test_empty_is_correct(self):
        assert is_correct_reordering(sigma2(), [])

    def test_full_trace_is_correct(self):
        t = sigma2()
        assert is_correct_reordering(t, range(len(t)))

    def test_rho3_from_paper(self):
        # ρ3 = e1 e2 e3 e8 e9 e12..e15 e16 e17 (1-based)
        rho3 = [0, 1, 2, 7, 8, 11, 12, 13, 14, 15, 16]
        assert is_correct_reordering(sigma2(), rho3)
        assert is_sync_preserving(sigma2(), rho3)

    def test_rho4_from_example1(self):
        """ρ4 reorders l1's critical sections: correct but not SP."""
        t = sigma2()
        rho4 = [2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 1, 11, 12, 13, 14, 15, 16]
        assert is_correct_reordering(t, rho4)
        assert not is_sync_preserving(t, rho4)

    def test_thread_order_violation_rejected(self):
        t = TraceBuilder().write("t1", "x").write("t1", "y").build()
        assert not is_correct_reordering(t, [1])      # gap
        assert not is_correct_reordering(t, [1, 0])   # swapped

    def test_rf_violation_rejected(self):
        t = (
            TraceBuilder()
            .write("t1", "x").write("t2", "x").read("t1", "x")
            .build()
        )
        # e2 reads from e1 (t2's write); dropping t2 breaks it.
        assert not is_correct_reordering(t, [0, 2])
        assert is_correct_reordering(t, [0, 1, 2])

    def test_initial_read_must_stay_initial(self):
        t = TraceBuilder().read("t1", "x").write("t2", "x").build()
        assert is_correct_reordering(t, [0, 1])
        assert not is_correct_reordering(t, [1, 0])

    def test_lock_exclusion_enforced(self):
        t = (
            TraceBuilder()
            .acq("t1", "l").rel("t1", "l").acq("t2", "l").rel("t2", "l")
            .build()
        )
        assert not is_correct_reordering(t, [0, 2])  # both CS open
        assert is_correct_reordering(t, [2, 3, 0, 1])  # reversed but exclusive

    def test_duplicate_events_raise(self):
        t = TraceBuilder().write("t1", "x").build()
        with pytest.raises(ValueError):
            is_correct_reordering(t, [0, 0])

    def test_fork_required_before_child(self):
        t = TraceBuilder().fork("t1", "t2").write("t2", "x").build()
        assert not is_correct_reordering(t, [1])
        assert is_correct_reordering(t, [0, 1])

    def test_join_requires_full_child(self):
        t = (
            TraceBuilder()
            .fork("t1", "t2").write("t2", "x").write("t2", "y").join("t1", "t2")
            .build()
        )
        assert not is_correct_reordering(t, [0, 1, 3])
        assert is_correct_reordering(t, [0, 1, 2, 3])


class TestEnabledEvents:
    def test_empty_prefix_enables_first_events(self):
        t = sigma2()
        enabled = enabled_events(t, [])
        assert enabled == {0, 2, 7, 15}  # first event of each thread

    def test_full_trace_enables_nothing(self):
        t = sigma2()
        assert enabled_events(t, range(len(t))) == set()

    def test_witnesses_deadlock_on_paper_example(self):
        rho3 = [0, 1, 2, 7, 8, 11, 12, 13, 14, 15, 16]
        assert witnesses_deadlock(sigma2(), rho3, [3, 17])


class TestWitnessConstruction:
    def test_lemma_4_1_projection_is_sp_correct(self):
        """Random seeds: the closure projection is always a
        sync-preserving correct reordering."""
        for seed in range(40):
            trace = generate_random_trace(
                RandomTraceConfig(seed=seed, num_events=40, acquire_prob=0.4)
            )
            schedule = witness_from_closure(trace, [len(trace) // 2])
            assert is_correct_reordering(trace, schedule), trace.name
            assert is_sync_preserving(trace, schedule), trace.name

    def test_witness_for_non_deadlock_reports_not_ok(self):
        from repro.synth.paper import sigma1

        _, ok = witness_for_pattern(sigma1(), (1, 7))
        assert not ok


class TestExhaustivePredictor:
    def test_budget_raises(self):
        trace = generate_random_trace(
            RandomTraceConfig(seed=0, num_events=60, num_threads=5)
        )
        pred = ExhaustivePredictor(trace, max_states=5)
        from repro.core.patterns import find_concrete_patterns

        pats = find_concrete_patterns(trace, 2)
        if pats:
            with pytest.raises(SearchBudget):
                pred.is_predictable_deadlock(pats[0].events)

    def test_two_pattern_events_in_one_thread_rejected(self):
        t = sigma3()
        pred = ExhaustivePredictor(t)
        # e2 and e4 are both t1 acquires — cannot both stall t1.
        assert not pred.is_predictable_deadlock((1, 3))

    def test_all_predictable_deadlocks_on_sigma3(self):
        pred = ExhaustivePredictor(sigma3())
        found = {tuple(sorted(p.events)) for p in pred.all_predictable_deadlocks(2)}
        assert found == {(15, 28), (18, 28)}  # D5, D6 (0-based)

    def test_sp_subset_of_predictable(self):
        for seed in range(30):
            trace = generate_random_trace(
                RandomTraceConfig(
                    seed=seed, num_events=32, acquire_prob=0.45, max_nesting=3
                )
            )
            sp = ExhaustivePredictor(trace, sync_preserving=True)
            general = ExhaustivePredictor(trace)
            from repro.core.patterns import find_concrete_patterns

            for p in find_concrete_patterns(trace, 2):
                if sp.is_predictable_deadlock(p.events):
                    assert general.is_predictable_deadlock(p.events)
