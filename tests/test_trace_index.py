"""TraceIndex ≡ the legacy ``Trace._analyze`` derived relations.

The multi-layer refactor made :class:`repro.trace.index.TraceIndex`
(one O(N) pass over the compiled int columns) the canonical source of
reads-from, acquire/release match, per-thread positions, and held-lock
sets; :class:`~repro.trace.trace.Trace` is now a thin string-keyed view
over it.  These tests pit the index against a verbatim copy of the
pre-refactor string-keyed ``_analyze`` pass on random synthetic traces
(fork/join on and off), plus handcrafted non-LIFO release orders and
initial reads, and check that every detector the registry ships is
bit-identical across the string-event and compiled input paths on the
whole committed corpus.
"""

import glob
import os
from typing import Dict, List, Optional, Set, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth.random_traces import RandomTraceConfig, generate_random_trace
from repro.trace.builder import TraceBuilder
from repro.trace.events import Event, Op
from repro.trace.trace import Trace, TraceError

CORPUS = os.path.join(os.path.dirname(__file__), "..", "corpus")


class LegacyRelations:
    """The seed repo's ``Trace._analyze``, verbatim, as a reference.

    Computes every derived relation with string-keyed dicts over
    ``Event`` objects — the exact code the columnar ``TraceIndex``
    replaced (including error behavior on ill-formed release orders).
    """

    def __init__(self, events: List[Event]) -> None:
        self.threads: List[str] = []
        self.locks: List[str] = []
        self.vars: List[str] = []
        self.rf: Dict[int, Optional[int]] = {}
        self.match: Dict[int, int] = {}
        self.held: List[Tuple[str, ...]] = []
        self.to_pos: Dict[int, Tuple[str, int]] = {}
        self.by_thread: Dict[str, List[int]] = {}
        self.acquires_of: Dict[str, List[int]] = {}

        seen_threads: Set[str] = set()
        seen_locks: Set[str] = set()
        seen_vars: Set[str] = set()
        last_write: Dict[str, int] = {}
        open_acq: Dict[Tuple[str, str], List[int]] = {}
        held_stack: Dict[str, List[str]] = {}
        thread_len: Dict[str, int] = {}

        for ev in events:
            t = ev.thread
            if t not in seen_threads:
                seen_threads.add(t)
                self.threads.append(t)
                held_stack[t] = []
                thread_len[t] = 0
                self.by_thread[t] = []
            self.to_pos[ev.idx] = (t, thread_len[t])
            thread_len[t] += 1
            self.by_thread[t].append(ev.idx)
            self.held.append(tuple(held_stack[t]))

            if ev.is_access:
                if ev.target not in seen_vars:
                    seen_vars.add(ev.target)
                    self.vars.append(ev.target)
                if ev.is_read:
                    self.rf[ev.idx] = last_write.get(ev.target)
                else:
                    last_write[ev.target] = ev.idx
            elif ev.op in (Op.ACQUIRE, Op.RELEASE, Op.REQUEST):
                lk = ev.target
                if lk not in seen_locks:
                    seen_locks.add(lk)
                    self.locks.append(lk)
                if ev.is_acquire:
                    open_acq.setdefault((t, lk), []).append(ev.idx)
                    held_stack[t].append(lk)
                    self.acquires_of.setdefault(lk, []).append(ev.idx)
                elif ev.is_release:
                    stack = open_acq.get((t, lk))
                    if not stack:
                        raise TraceError(
                            f"release without matching acquire: {ev}"
                        )
                    acq_idx = stack.pop()
                    self.match[acq_idx] = ev.idx
                    self.match[ev.idx] = acq_idx
                    hs = held_stack[t]
                    for j in range(len(hs) - 1, -1, -1):
                        if hs[j] == lk:
                            del hs[j]
                            break
                    else:
                        raise TraceError(f"release of unheld lock: {ev}")

    @property
    def lock_nesting_depth(self) -> int:
        return max(
            (len(self.held[a]) + 1 for acqs in self.acquires_of.values()
             for a in acqs),
            default=0,
        )


def assert_relations_match(trace: Trace) -> None:
    """Every derived relation of the view equals the legacy pass."""
    ref = LegacyRelations(list(trace))
    assert trace.threads == ref.threads
    assert trace.locks == ref.locks
    assert trace.variables == ref.vars
    assert trace.lock_nesting_depth == ref.lock_nesting_depth
    assert trace.num_acquires() == sum(
        len(v) for v in ref.acquires_of.values()
    )
    for t in ref.threads:
        assert trace.events_of_thread(t) == ref.by_thread[t]
    for lk in ref.locks:
        assert trace.acquires_of_lock(lk) == ref.acquires_of.get(lk, [])
    for i, ev in enumerate(trace):
        assert trace.held_locks(i) == ref.held[i]
        assert trace.match(i) == ref.match.get(i)
        thread, pos = ref.to_pos[i]
        assert trace.thread_position(i) == (thread, pos)
        expected_pred = ref.by_thread[thread][pos - 1] if pos else None
        assert trace.thread_predecessor(i) == expected_pred
        if ev.is_read:
            assert trace.rf(i) == ref.rf[i]


def _random_trace(seed: int, fork_join: bool, num_events: int = 140) -> Trace:
    return generate_random_trace(
        RandomTraceConfig(seed=seed, num_events=num_events, num_threads=4,
                          num_locks=4, num_vars=3, max_nesting=3,
                          acquire_prob=0.4, release_prob=0.3,
                          fork_join=fork_join)
    )


class TestIndexMatchesLegacyAnalyze:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000), fork_join=st.booleans())
    def test_random_traces(self, seed, fork_join):
        assert_relations_match(_random_trace(seed, fork_join))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), data=st.data())
    def test_non_lifo_release_orders(self, seed, data):
        """Hand-over-hand and arbitrary release orders: the generator
        releases LIFO, so shuffle the release choice explicitly."""
        import random

        rng = random.Random(seed)
        b = TraceBuilder()
        held = {t: [] for t in ("t1", "t2", "t3")}
        lock_free = {lk: True for lk in ("a", "b", "c", "d")}
        for _ in range(100):
            t = rng.choice(("t1", "t2", "t3"))
            roll = rng.random()
            if roll < 0.4:
                free = [lk for lk in lock_free if lock_free[lk]]
                if free and len(held[t]) < 3:
                    lk = rng.choice(free)
                    b.acq(t, lk)
                    lock_free[lk] = False
                    held[t].append(lk)
                    continue
            if roll < 0.7 and held[t]:
                # Release a *random* held lock — non-LIFO on purpose.
                lk = held[t].pop(rng.randrange(len(held[t])))
                b.rel(t, lk)
                lock_free[lk] = True
                continue
            b.write(t, "x") if rng.random() < 0.5 else b.read(t, "x")
        for t, hs in held.items():
            while hs:
                lk = hs.pop(rng.randrange(len(hs)))
                b.rel(t, lk)
                lock_free[lk] = True
        assert_relations_match(b.build(f"nonlifo{seed}"))

    def test_initial_reads(self):
        t = (TraceBuilder()
             .read("t1", "x")                 # initial read
             .write("t2", "x")
             .read("t1", "x")
             .read("t3", "y")                 # var never written
             .build("initial_reads"))
        assert_relations_match(t)
        assert t.rf(0) is None
        assert t.rf(2) == 1
        assert t.rf(3) is None

    def test_release_without_acquire_raises_same_error(self):
        t = TraceBuilder().rel("t1", "l").build()
        with pytest.raises(TraceError, match="release without matching acquire"):
            t.threads  # force analysis
        with pytest.raises(TraceError, match="release without matching acquire"):
            LegacyRelations(list(t))

    def test_held_pool_is_shared(self):
        """Identical held stacks share one pool entry."""
        b = TraceBuilder()
        for _ in range(10):
            b.acq("t1", "a").acq("t1", "b").rel("t1", "b").rel("t1", "a")
        t = b.build()
        index = t.index
        # Distinct stacks: (), (a,), (a, b) — regardless of repetition.
        assert len(index.held_offsets) == 3
        assert len({index.held_id[i] for i in range(len(t))}) == 3


def _detector_outputs(trace) -> dict:
    from repro.exp.detectors import detector_names, get_adapter

    configs = {"dirk": {"window": 200}}
    out = {}
    for det in detector_names():
        try:
            out[det] = get_adapter(det)(trace, configs.get(det, {}))
        except Exception as exc:                      # failure-as-data
            out[det] = {"exception": f"{type(exc).__name__}: {exc}"}
    return out


class TestDetectorsBitIdenticalCorpusWide:
    """Every shipped detector must produce identical reports whether it
    is fed string events (``Trace`` built from parsed ``Event`` lists)
    or the compiled columnar form — across the whole corpus."""

    @pytest.mark.parametrize(
        "path", sorted(glob.glob(os.path.join(CORPUS, "*.std"))),
        ids=lambda p: os.path.basename(p)[:-4],
    )
    def test_corpus_trace(self, path):
        from repro.trace.compiled import load_compiled_trace
        from repro.trace.parser import parse_events

        name = os.path.basename(path)[:-4]
        with open(path, "r", encoding="utf-8") as fh:
            via_events = Trace(parse_events(fh), name=name)
        via_columns = load_compiled_trace(path, name=name)
        assert _detector_outputs(via_events) == _detector_outputs(via_columns)
